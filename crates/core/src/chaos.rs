//! The deterministic chaos harness: fault injection for the verification
//! stack's *own* I/O.
//!
//! PR2's `FaultPlan` injects faults into the design under test; this module
//! mirrors that design one level up and injects faults into the campaign
//! infrastructure itself — the on-disk verdict cache and the crash-recovery
//! journal. Both persistence layers route every file operation through the
//! [`IoShim`] trait, so a test (or a `scripts/check.sh` smoke run) can swap
//! the real filesystem for a [`ChaosIo`] driven by a seeded [`ChaosPlan`]:
//!
//! * **fail-nth-write** — the nth durable write reports failure with
//!   nothing on disk (transient I/O error);
//! * **torn-nth-write** — the nth durable write persists only a seeded
//!   prefix and then reports failure (power loss mid-write);
//! * **bitflip-nth-read** — the nth read returns the file's bytes with one
//!   seeded bit flipped (silent media corruption);
//! * **ENOSPC** — writes fail once a cumulative byte budget is exhausted
//!   (disk full mid-campaign);
//! * **rename-then-crash** — the nth rename lands and then every later
//!   operation fails (process death right after the atomic commit);
//! * **kill-after-append** — the process is aborted outright after the nth
//!   journal append lands (a real SIGKILL for smoke tests — the campaign
//!   must be resumable from whatever reached the disk);
//! * **panic-on-block** — a non-I/O fail point: the named campaign work
//!   item panics, exercising the scheduler's quarantine path.
//!
//! The same idea extends one level further up, to the `dfv-serve`
//! transport: a [`WirePlan`] drives a [`ChaosWire`] byte-stream wrapper
//! that tears frames mid-send, flips payload bits on receive, disconnects
//! the peer mid-request, or stalls the reader — so every protocol
//! degradation path in the daemon is deterministically testable offline.
//!
//! Every fault is a pure function of the plan (and its seed), so a chaos
//! run is exactly reproducible: robustness claims are tested, not asserted.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dfv_bits::SplitMix64;

/// What a [`IoShim::fail_point`] decided for the calling code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Proceed normally (the only answer the real shim ever gives).
    Continue,
    /// Panic at this point — the caller must `panic!` so the scheduler's
    /// quarantine machinery is exercised end to end.
    Panic,
}

/// The file operations the campaign persistence layers are allowed to use.
///
/// The interface is deliberately *durability-shaped* rather than
/// POSIX-shaped: `write` and `append` include the fsync, so a fault
/// injected on them models exactly "did these bytes survive the crash?",
/// and `rename` + `sync_dir` model the atomic-commit step of the cache
/// save. Everything the cache ([`crate::cache`]) and journal
/// ([`crate::Campaign`] checkpointing) touch on disk goes through one of
/// these six methods — there is no side channel for chaos to miss.
pub trait IoShim: Send + Sync {
    /// Reads the whole file as UTF-8 text (invalid sequences replaced).
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Creates/truncates `path`, writes `data`, and fsyncs it.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Appends `data` to `path` (creating it if missing) and fsyncs it.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Renames `from` over `to` (atomic on POSIX filesystems).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Best-effort fsync of a directory (durability of a rename).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Exclusively creates `path` with `data` (and fsyncs it), failing
    /// with [`ErrorKind::AlreadyExists`] if the file exists — the
    /// advisory-lock primitive ([`crate::lockfile`]).
    fn create_new(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Non-I/O chaos fail point, consulted by the campaign work loop once
    /// per (point, detail) occurrence. The default — and the real shim —
    /// always says [`FailAction::Continue`].
    fn fail_point(&self, point: &'static str, detail: &str) -> FailAction {
        let _ = (point, detail);
        FailAction::Continue
    }
}

/// The production shim: plain `std::fs`, no faults, ever.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl IoShim for RealIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        Ok(String::from_utf8_lossy(&fs::read(path)?).into_owned())
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Platforms that disallow opening directories for sync lose only
        // crash-durability of the rename, never atomicity.
        if let Ok(d) = fs::File::open(dir) {
            d.sync_all()?;
        }
        Ok(())
    }

    fn create_new(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// A seeded, deterministic fault schedule for [`ChaosIo`].
///
/// All ordinals are 1-based and count *operations on the shim*, in call
/// order: `fail_nth_write`/`torn_nth_write` count durable writes (`write`
/// and `append` together), `bitflip_nth_read` counts reads,
/// `crash_after_nth_rename` counts renames, and `kill_after_nth_append`
/// counts appends only (journal records). `None` everywhere — the default —
/// injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed for the torn-write prefix length and the bit-flip position.
    pub seed: u64,
    /// The nth durable write fails cleanly: nothing reaches the disk.
    pub fail_nth_write: Option<u64>,
    /// The nth durable write persists a seeded prefix, then reports
    /// failure — the on-disk state is the torn record a power loss leaves.
    pub torn_nth_write: Option<u64>,
    /// The nth read returns the data with one seeded bit flipped.
    pub bitflip_nth_read: Option<u64>,
    /// Durable writes fail with an ENOSPC-style error once this many
    /// cumulative bytes have been persisted.
    pub enospc_after_bytes: Option<u64>,
    /// The nth rename fails cleanly — the atomic commit itself is refused
    /// (EXDEV, ENOSPC on metadata, permission flip) and the target file is
    /// left exactly as it was.
    pub fail_nth_rename: Option<u64>,
    /// The nth rename lands, then every later operation fails — the
    /// process "died" immediately after its atomic commit.
    pub crash_after_nth_rename: Option<u64>,
    /// `std::process::abort()` after the nth append lands: a genuine
    /// mid-campaign SIGKILL. Only for smoke-test binaries — an aborted
    /// test process fails the whole suite.
    pub kill_after_nth_append: Option<u64>,
    /// [`IoShim::fail_point`] answers [`FailAction::Panic`] for the
    /// `campaign.block` point whose detail equals this block name.
    pub panic_on_block: Option<String>,
}

impl ChaosPlan {
    /// A plan that injects nothing (the seed only matters once a torn
    /// write or bit flip is armed).
    pub fn none(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        }
    }

    /// Arms a clean failure of the nth durable write (1-based).
    pub fn fail_nth_write(mut self, n: u64) -> Self {
        self.fail_nth_write = Some(n);
        self
    }

    /// Arms a torn nth durable write (1-based).
    pub fn torn_nth_write(mut self, n: u64) -> Self {
        self.torn_nth_write = Some(n);
        self
    }

    /// Arms a single-bit flip on the nth read (1-based).
    pub fn bitflip_nth_read(mut self, n: u64) -> Self {
        self.bitflip_nth_read = Some(n);
        self
    }

    /// Arms disk-full behaviour after `bytes` persisted bytes.
    pub fn enospc_after_bytes(mut self, bytes: u64) -> Self {
        self.enospc_after_bytes = Some(bytes);
        self
    }

    /// Arms a clean failure of the nth rename (1-based).
    pub fn fail_nth_rename(mut self, n: u64) -> Self {
        self.fail_nth_rename = Some(n);
        self
    }

    /// Arms process death right after the nth rename (1-based).
    pub fn crash_after_nth_rename(mut self, n: u64) -> Self {
        self.crash_after_nth_rename = Some(n);
        self
    }

    /// Arms a hard `abort()` after the nth append lands (1-based).
    pub fn kill_after_nth_append(mut self, n: u64) -> Self {
        self.kill_after_nth_append = Some(n);
        self
    }

    /// Arms a panic of the named campaign block's work item.
    pub fn panic_on_block(mut self, block: impl Into<String>) -> Self {
        self.panic_on_block = Some(block.into());
        self
    }
}

/// An [`IoShim`] that forwards to an inner shim while executing a
/// [`ChaosPlan`]. Operation counters are atomic so the shim can be shared
/// (`Arc`) with a running campaign and inspected afterwards.
pub struct ChaosIo {
    inner: Arc<dyn IoShim>,
    plan: ChaosPlan,
    reads: AtomicU64,
    writes: AtomicU64,
    appends: AtomicU64,
    renames: AtomicU64,
    bytes: AtomicU64,
    dead: AtomicBool,
}

impl ChaosIo {
    /// A chaos shim over the real filesystem.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosIo::with_inner(Arc::new(RealIo), plan)
    }

    /// A chaos shim over an arbitrary inner shim (chaos stacks compose).
    pub fn with_inner(inner: Arc<dyn IoShim>, plan: ChaosPlan) -> Self {
        ChaosIo {
            inner,
            plan,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            renames: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        }
    }

    /// The plan this shim executes.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Durable-write operations observed so far (`write` + `append`).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Read operations observed so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Whether a `crash_after_nth_rename` fault has "killed" the process
    /// (every subsequent operation fails).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    fn check_dead(&self) -> io::Result<()> {
        if self.is_dead() {
            return Err(io::Error::other(
                "chaos: process died after rename; no further I/O",
            ));
        }
        Ok(())
    }

    /// One durable write (`append: false`) or append (`append: true`),
    /// with every write-side fault applied in a fixed order.
    fn durable(&self, path: &Path, data: &[u8], append: bool) -> io::Result<()> {
        self.check_dead()?;
        let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.fail_nth_write == Some(n) {
            return Err(io::Error::other(format!(
                "chaos: injected failure of durable write #{n}"
            )));
        }
        if let Some(cap) = self.plan.enospc_after_bytes {
            if self.bytes.load(Ordering::Relaxed) + data.len() as u64 > cap {
                return Err(io::Error::other(format!(
                    "chaos: ENOSPC (byte budget {cap} exhausted at write #{n})"
                )));
            }
        }
        if self.plan.torn_nth_write == Some(n) {
            // A seeded prefix lands — never the whole record, never with
            // its trailing newline — then the "process dies".
            let keep = if data.len() <= 1 {
                0
            } else {
                let mut rng = SplitMix64::new(self.plan.seed ^ n.rotate_left(17));
                (rng.next_u64() % (data.len() as u64 - 1)) as usize
            };
            if append {
                self.inner.append(path, &data[..keep])?;
            } else {
                self.inner.write(path, &data[..keep])?;
            }
            self.bytes.fetch_add(keep as u64, Ordering::Relaxed);
            return Err(io::Error::other(format!(
                "chaos: torn write #{n} ({keep} of {} bytes persisted)",
                data.len()
            )));
        }
        if append {
            self.inner.append(path, data)?;
        } else {
            self.inner.write(path, data)?;
        }
        self.bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        if append {
            let a = self.appends.fetch_add(1, Ordering::Relaxed) + 1;
            if self.plan.kill_after_nth_append == Some(a) {
                // The record above is already durable: this is the
                // SIGKILL-mid-campaign scenario the journal exists for.
                std::process::abort();
            }
        }
        Ok(())
    }
}

impl IoShim for ChaosIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        self.check_dead()?;
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        let text = self.inner.read_to_string(path)?;
        if self.plan.bitflip_nth_read == Some(n) && !text.is_empty() {
            let mut bytes = text.into_bytes();
            let mut rng = SplitMix64::new(self.plan.seed ^ n.rotate_left(33));
            let pos = (rng.next_u64() % bytes.len() as u64) as usize;
            bytes[pos] ^= 1 << (rng.next_u64() % 8);
            return Ok(String::from_utf8_lossy(&bytes).into_owned());
        }
        Ok(text)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.durable(path, data, false)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.durable(path, data, true)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_dead()?;
        let n = self.renames.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.fail_nth_rename == Some(n) {
            return Err(io::Error::other(format!(
                "chaos: injected failure of rename #{n}"
            )));
        }
        self.inner.rename(from, to)?;
        if self.plan.crash_after_nth_rename == Some(n) {
            self.dead.store(true, Ordering::Relaxed);
        }
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.check_dead()?;
        self.inner.sync_dir(dir)
    }

    fn create_new(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        // Lock-file creation shares the durable-write fault schedule: a
        // fail/ENOSPC ordinal landing here models a lock that cannot be
        // taken, which the caller must degrade on, never panic.
        self.check_dead()?;
        let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.fail_nth_write == Some(n) {
            return Err(io::Error::other(format!(
                "chaos: injected failure of durable write #{n}"
            )));
        }
        if let Some(cap) = self.plan.enospc_after_bytes {
            if self.bytes.load(Ordering::Relaxed) + data.len() as u64 > cap {
                return Err(io::Error::other(format!(
                    "chaos: ENOSPC (byte budget {cap} exhausted at write #{n})"
                )));
            }
        }
        self.inner.create_new(path, data)?;
        self.bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.check_dead()?;
        self.inner.remove(path)
    }

    fn fail_point(&self, point: &'static str, detail: &str) -> FailAction {
        if point == "campaign.block" && self.plan.panic_on_block.as_deref() == Some(detail) {
            return FailAction::Panic;
        }
        FailAction::Continue
    }
}

impl fmt::Debug for ChaosIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosIo")
            .field("plan", &self.plan)
            .field("reads", &self.reads())
            .field("writes", &self.writes())
            .field("dead", &self.is_dead())
            .finish()
    }
}

/// A cloneable handle to the I/O shim a campaign uses for all persistence.
///
/// The default handle is the real filesystem; tests and smoke binaries
/// build one over a [`ChaosIo`]. Wrapping the `Arc<dyn IoShim>` keeps
/// [`crate::CampaignOptions`] `Clone + Debug + Default` without exposing
/// the trait-object plumbing.
#[derive(Clone)]
pub struct IoHandle(Arc<dyn IoShim>);

impl IoHandle {
    /// The production handle: plain `std::fs`.
    pub fn real() -> Self {
        IoHandle(Arc::new(RealIo))
    }

    /// A handle over an arbitrary shim (keep your own `Arc` clone to
    /// inspect a [`ChaosIo`]'s counters afterwards).
    pub fn new(shim: Arc<dyn IoShim>) -> Self {
        IoHandle(shim)
    }

    /// A handle over a fresh [`ChaosIo`] executing `plan`.
    pub fn chaos(plan: ChaosPlan) -> Self {
        IoHandle(Arc::new(ChaosIo::new(plan)))
    }

    /// The underlying shim.
    pub fn shim(&self) -> &dyn IoShim {
        self.0.as_ref()
    }
}

impl Default for IoHandle {
    fn default() -> Self {
        IoHandle::real()
    }
}

/// A seeded, deterministic fault schedule for a byte-stream transport —
/// the wire-level twin of [`ChaosPlan`].
///
/// `dfv-serve` routes every client/server connection through a stream
/// wrapper ([`ChaosWire`]) that executes one of these, so every protocol
/// degradation path — torn frame, bit-flipped payload, mid-request
/// disconnect, stalled peer — is testable offline and byte-reproducibly.
/// Ordinals are 1-based and count *calls on the wrapper*: `Write::write`
/// calls for send faults, `Read::read` calls for receive faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WirePlan {
    /// Seed for the torn-send prefix length and bit-flip position.
    pub seed: u64,
    /// The nth send transmits only a seeded strict prefix of its bytes,
    /// then the connection dies (a frame torn mid-flight).
    pub torn_nth_send: Option<u64>,
    /// The nth receive returns its bytes with one seeded bit flipped
    /// (payload corruption the frame checksum must catch).
    pub bitflip_nth_recv: Option<u64>,
    /// After this many receives, the peer is gone: every later receive
    /// reports end-of-stream (clean mid-request disconnect).
    pub disconnect_after_nth_recv: Option<u64>,
    /// The nth receive times out — the peer is alive but not sending
    /// (slow-loris / stalled reader as seen through a read timeout).
    pub stall_nth_recv: Option<u64>,
}

impl WirePlan {
    /// A plan that injects nothing.
    pub fn none(seed: u64) -> Self {
        WirePlan {
            seed,
            ..WirePlan::default()
        }
    }

    /// Arms a torn nth send (1-based).
    pub fn torn_nth_send(mut self, n: u64) -> Self {
        self.torn_nth_send = Some(n);
        self
    }

    /// Arms a single-bit flip on the nth receive (1-based).
    pub fn bitflip_nth_recv(mut self, n: u64) -> Self {
        self.bitflip_nth_recv = Some(n);
        self
    }

    /// Arms a peer disconnect after the nth receive (1-based).
    pub fn disconnect_after_nth_recv(mut self, n: u64) -> Self {
        self.disconnect_after_nth_recv = Some(n);
        self
    }

    /// Arms a read timeout on the nth receive (1-based).
    pub fn stall_nth_recv(mut self, n: u64) -> Self {
        self.stall_nth_recv = Some(n);
        self
    }
}

/// A byte stream (`Read + Write`) wrapper executing a [`WirePlan`].
///
/// Once a torn send has "killed" the connection, every later operation
/// fails with [`io::ErrorKind::BrokenPipe`] — a dead TCP peer, not a
/// half-working one.
#[derive(Debug)]
pub struct ChaosWire<W> {
    inner: W,
    plan: WirePlan,
    sends: u64,
    recvs: u64,
    dead: bool,
}

impl<W> ChaosWire<W> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: W, plan: WirePlan) -> Self {
        ChaosWire {
            inner,
            plan,
            sends: 0,
            recvs: 0,
            dead: false,
        }
    }

    /// The wrapped stream (for tests inspecting the peer afterwards).
    pub fn into_inner(self) -> W {
        self.inner
    }

    fn check_dead(&self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: connection died mid-frame",
            ));
        }
        Ok(())
    }
}

impl<W: io::Read> io::Read for ChaosWire<W> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.check_dead()?;
        self.recvs += 1;
        let n = self.recvs;
        if let Some(after) = self.plan.disconnect_after_nth_recv {
            if n > after {
                return Ok(0); // clean EOF: the peer hung up
            }
        }
        if self.plan.stall_nth_recv == Some(n) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "chaos: peer stalled (read timeout)",
            ));
        }
        let got = self.inner.read(buf)?;
        if self.plan.bitflip_nth_recv == Some(n) && got > 0 {
            let mut rng = SplitMix64::new(self.plan.seed ^ n.rotate_left(21));
            let pos = (rng.next_u64() % got as u64) as usize;
            buf[pos] ^= 1 << (rng.next_u64() % 8);
        }
        Ok(got)
    }
}

impl<W: io::Write> io::Write for ChaosWire<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.check_dead()?;
        self.sends += 1;
        let n = self.sends;
        if self.plan.torn_nth_send == Some(n) {
            // A seeded strict prefix reaches the peer, then the
            // connection is gone for good.
            let keep = if buf.len() <= 1 {
                0
            } else {
                let mut rng = SplitMix64::new(self.plan.seed ^ n.rotate_left(13));
                (rng.next_u64() % (buf.len() as u64 - 1)) as usize
            };
            if keep > 0 {
                self.inner.write_all(&buf[..keep])?;
                let _ = self.inner.flush();
            }
            self.dead = true;
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                format!("chaos: torn send #{n} ({keep} of {} bytes sent)", buf.len()),
            ));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.check_dead()?;
        self.inner.flush()
    }
}

impl fmt::Debug for IoHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("IoHandle(shim)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dfv-chaos-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn real_io_roundtrips_and_appends() {
        let p = temp("real");
        let io = RealIo;
        io.write(&p, b"hello\n").unwrap();
        io.append(&p, b"world\n").unwrap();
        assert_eq!(io.read_to_string(&p).unwrap(), "hello\nworld\n");
        assert_eq!(io.fail_point("campaign.block", "x"), FailAction::Continue);
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn fail_nth_write_leaves_nothing() {
        let p = temp("failw");
        let _ = fs::remove_file(&p);
        let io = ChaosIo::new(ChaosPlan::none(1).fail_nth_write(1));
        let err = io.write(&p, b"doomed").unwrap_err();
        assert!(err.to_string().contains("chaos"), "{err}");
        assert!(!p.exists(), "a failed write must not create the file");
        // The next write succeeds: the fault is one-shot by ordinal.
        io.write(&p, b"ok").unwrap();
        assert_eq!(io.read_to_string(&p).unwrap(), "ok");
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn torn_write_persists_a_strict_prefix() {
        let p = temp("torn");
        let _ = fs::remove_file(&p);
        let io = ChaosIo::new(ChaosPlan::none(0xBAD).torn_nth_write(1));
        let data = b"0123456789abcdef0123456789abcdef\n";
        let err = io.append(&p, data).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        let on_disk = io.read_to_string(&p).unwrap();
        assert!(on_disk.len() < data.len(), "must be a strict prefix");
        assert!(data.starts_with(on_disk.as_bytes()));
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn torn_write_prefix_is_seeded_and_deterministic() {
        let run = |seed| {
            let p = temp(&format!("torn-seed{seed}"));
            let _ = fs::remove_file(&p);
            let io = ChaosIo::new(ChaosPlan::none(seed).torn_nth_write(1));
            let _ = io.write(&p, b"a long enough record to tear somewhere\n");
            let got = io.read_to_string(&p).unwrap();
            let _ = fs::remove_file(&p);
            got
        };
        assert_eq!(run(7), run(7), "same seed, same tear");
    }

    #[test]
    fn bitflip_on_read_changes_exactly_one_bit() {
        let p = temp("flip");
        let io = ChaosIo::new(ChaosPlan::none(3).bitflip_nth_read(2));
        io.write(&p, b"entry checksum guarded").unwrap();
        let clean = io.read_to_string(&p).unwrap(); // read #1: untouched
        assert_eq!(clean, "entry checksum guarded");
        let flipped = io.read_to_string(&p).unwrap(); // read #2: one bit off
        assert_ne!(flipped, clean);
        let diff: u32 = clean
            .bytes()
            .zip(flipped.bytes())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one flipped bit");
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn enospc_trips_on_the_cumulative_budget() {
        let p = temp("enospc");
        let io = ChaosIo::new(ChaosPlan::none(0).enospc_after_bytes(10));
        io.write(&p, b"12345678").unwrap(); // 8 bytes: fits
        let err = io.append(&p, b"xyz").unwrap_err(); // would be 11: ENOSPC
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(io.read_to_string(&p).unwrap(), "12345678");
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn crash_after_rename_kills_all_later_ops() {
        let a = temp("crash-a");
        let b = temp("crash-b");
        let io = ChaosIo::new(ChaosPlan::none(0).crash_after_nth_rename(1));
        io.write(&a, b"payload").unwrap();
        io.rename(&a, &b).unwrap(); // the rename itself lands...
        assert!(io.is_dead());
        assert!(io.read_to_string(&b).is_err(), "...then the process dies");
        assert!(io.write(&a, b"x").is_err());
        assert!(io.sync_dir(std::env::temp_dir().as_path()).is_err());
        // The rename really did land before death.
        assert_eq!(RealIo.read_to_string(&b).unwrap(), "payload");
        let _ = fs::remove_file(&b);
    }

    #[test]
    fn create_new_is_exclusive_and_remove_clears_it() {
        let p = temp("createnew");
        let _ = fs::remove_file(&p);
        let io = RealIo;
        io.create_new(&p, b"owner 1").unwrap();
        let err = io.create_new(&p, b"owner 2").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(io.read_to_string(&p).unwrap(), "owner 1");
        io.remove(&p).unwrap();
        io.create_new(&p, b"owner 2").unwrap();
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn failed_rename_leaves_target_untouched() {
        let a = temp("failren-a");
        let b = temp("failren-b");
        let io = ChaosIo::new(ChaosPlan::none(0).fail_nth_rename(1));
        io.write(&b, b"previous").unwrap();
        io.write(&a, b"next").unwrap();
        let err = io.rename(&a, &b).unwrap_err();
        assert!(err.to_string().contains("rename"), "{err}");
        assert_eq!(io.read_to_string(&b).unwrap(), "previous");
        // The fault is one-shot: the second rename lands.
        io.rename(&a, &b).unwrap();
        assert_eq!(io.read_to_string(&b).unwrap(), "next");
        let _ = fs::remove_file(&b);
    }

    #[test]
    fn enospc_applies_to_create_new_too() {
        let p = temp("enospc-lock");
        let _ = fs::remove_file(&p);
        let io = ChaosIo::new(ChaosPlan::none(0).enospc_after_bytes(4));
        let err = io.create_new(&p, b"a lock record").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert!(!p.exists());
    }

    #[test]
    fn torn_send_transmits_a_strict_prefix_then_kills_the_wire() {
        use std::io::Write as _;
        let mut out = Vec::new();
        let mut wire = ChaosWire::new(&mut out, WirePlan::none(0xABC).torn_nth_send(1));
        let frame = b"a frame long enough to tear somewhere in the middle";
        let err = wire.write(frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // Dead for good: later sends and flushes fail too.
        assert_eq!(
            wire.write(b"more").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert!(out.len() < frame.len(), "strict prefix");
        assert!(frame.starts_with(&out));
    }

    #[test]
    fn bitflip_recv_flips_exactly_one_bit_on_the_armed_read() {
        use std::io::Read as _;
        let data = b"payload guarded by a frame checksum".to_vec();
        let mut wire = ChaosWire::new(&data[..], WirePlan::none(5).bitflip_nth_recv(1));
        let mut buf = vec![0u8; data.len()];
        let got = wire.read(&mut buf).unwrap();
        assert_eq!(got, data.len());
        let diff: u32 = data
            .iter()
            .zip(&buf)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn disconnect_and_stall_surface_as_eof_and_timeout() {
        use std::io::Read as _;
        let data = b"0123456789".to_vec();
        let mut wire = ChaosWire::new(&data[..], WirePlan::none(0).disconnect_after_nth_recv(1));
        let mut buf = [0u8; 4];
        assert_eq!(wire.read(&mut buf).unwrap(), 4); // recv #1 still works
        assert_eq!(wire.read(&mut buf).unwrap(), 0, "then the peer is gone");

        let mut wire = ChaosWire::new(&data[..], WirePlan::none(0).stall_nth_recv(2));
        assert_eq!(wire.read(&mut buf).unwrap(), 4);
        let err = wire.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn fail_point_fires_only_for_the_named_block() {
        let io = ChaosIo::new(ChaosPlan::none(0).panic_on_block("victim"));
        assert_eq!(io.fail_point("campaign.block", "victim"), FailAction::Panic);
        assert_eq!(
            io.fail_point("campaign.block", "other"),
            FailAction::Continue
        );
        assert_eq!(io.fail_point("other.point", "victim"), FailAction::Continue);
    }
}
