//! Append-only checkpoint journal for crash-tolerant campaigns.
//!
//! The verdict cache ([`crate::cache`]) survives a *clean* campaign: it is
//! written once, at the end. A campaign SIGKILL'd at block 900/1000 never
//! reaches that save and restarts cold — exactly the §4.1 economics
//! failure this module closes. The journal is the complementary
//! structure: an append-only, per-record-checksummed, fsynced work-log
//! written by the single-writer merge step *as results complete*, so a
//! re-run with [`crate::CampaignOptions::resume`] replays every journaled
//! verdict and recomputes only the blocks the crash actually lost.
//!
//! On-disk format (version 1, UTF-8, one record per line):
//!
//! ```text
//! dfv-campaign-journal v1
//! entry<TAB>name<TAB>hash<TAB>tag<TAB>attempts<TAB>from_cache<TAB>lints
//!      <TAB>vars<TAB>clauses<TAB>conflicts<TAB>note<TAB>checksum
//! ```
//!
//! (one line per record; wrapped here for width). `hash`, `conflicts` and
//! `checksum` are 16 lower-hex digits; the checksum is FNV-1a over the
//! payload between `entry\t` and the final tab. Records carry everything
//! the canonical report needs — verdict, attempt count, cache provenance,
//! lint-finding count, and summed solver statistics — so a resumed run's
//! canonical JSON is byte-identical to an uninterrupted one.
//!
//! Unlike the cache, the journal persists `inconc` and `crash` records
//! too: resuming *the same run* must reproduce those verdicts byte for
//! byte, not silently retry them. (A fresh run without `resume` still
//! retries them, because it never reads this file.)
//!
//! A kill mid-append leaves a torn final record; its checksum fails and
//! the record is dropped, never trusted. When a load drops records the
//! file is compacted (rewritten from the surviving ones) so damage does
//! not accumulate. All I/O goes through the campaign's
//! [`crate::IoHandle`], so the chaos harness can tear and kill at will.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::cache::{escape, fnv64, status_tag, unescape, PersistError};
use crate::chaos::IoHandle;
use crate::{BlockResult, BlockStatus, SolverTotals};

/// First line of every journal file.
const MAGIC: &str = "dfv-campaign-journal v1";

/// What happened when a campaign opened its checkpoint journal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum JournalLoad {
    /// No journal configured (non-resumable campaign).
    #[default]
    Disabled,
    /// A new journal was started (no usable prior records).
    Fresh,
    /// Prior records were replayed from an interrupted run.
    Resumed {
        /// Number of verdicts replayed from the journal.
        entries: usize,
        /// Number of torn/corrupt records dropped on load.
        dropped: usize,
    },
}

/// The tag persisted in a journal record — unlike the cache, the journal
/// keeps inconclusive and crashed verdicts too.
fn journal_tag(status: &BlockStatus) -> (&'static str, String) {
    match status {
        BlockStatus::Inconclusive(n) => ("inconc", n.clone()),
        BlockStatus::Crashed(n) => ("crash", n.clone()),
        other => status_tag(other).expect("conclusive statuses all have cache tags"),
    }
}

/// Renders one journal record line (with trailing newline).
fn render_record(name: &str, hash: u64, r: &BlockResult) -> String {
    let (tag, note) = journal_tag(&r.status);
    let payload = format!(
        "{}\t{:016x}\t{}\t{}\t{}\t{}\t{}\t{}\t{:016x}\t{}",
        escape(name),
        hash,
        tag,
        r.attempts,
        u8::from(r.from_cache),
        r.lint_count,
        r.solver.cnf_vars,
        r.solver.cnf_clauses,
        r.solver.conflicts,
        escape(&note)
    );
    format!("entry\t{payload}\t{:016x}\n", fnv64(payload.as_bytes()))
}

/// Parses and checksum-verifies one record line; `None` means damaged.
fn parse_record(line: &str) -> Option<(String, u64, BlockResult)> {
    let payload_ck = line.strip_prefix("entry\t")?;
    let (payload, ck_hex) = payload_ck.rsplit_once('\t')?;
    let want = u64::from_str_radix(ck_hex, 16).ok()?;
    if fnv64(payload.as_bytes()) != want {
        return None;
    }
    let fields: Vec<&str> = payload.split('\t').collect();
    if fields.len() != 10 {
        return None;
    }
    let name = unescape(fields[0]).ok()?;
    let hash = u64::from_str_radix(fields[1], 16).ok()?;
    let attempts: u32 = fields[3].parse().ok()?;
    let from_cache = match fields[4] {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let lint_count: usize = fields[5].parse().ok()?;
    let solver = SolverTotals {
        cnf_vars: fields[6].parse().ok()?,
        cnf_clauses: fields[7].parse().ok()?,
        conflicts: u64::from_str_radix(fields[8], 16).ok()?,
    };
    let note = unescape(fields[9]).ok()?;
    let status = crate::cache::status_from_tag(fields[2], note).ok()?;
    let result = BlockResult {
        name: name.clone(),
        status,
        lint_findings: Vec::new(),
        lint_count,
        equiv: None,
        solver,
        duration: Duration::ZERO,
        from_cache,
        from_journal: true,
        attempts,
    };
    Some((name, hash, result))
}

/// The append side of an open journal. Once an append fails the writer
/// degrades to a no-op (the campaign completes without checkpointing;
/// the first error is reported).
///
/// The writer owns the journal's advisory lock ([`crate::lockfile`]) for
/// its whole lifetime — appends from two processes would interleave into
/// silent corruption, so a second opener degrades to journal-off until
/// this writer drops (or its process dies, making the lock stale).
#[derive(Debug)]
pub(crate) struct JournalWriter {
    path: PathBuf,
    io: IoHandle,
    error: Option<PersistError>,
    /// Held, never read — released on drop.
    _lock: Option<crate::lockfile::FileLock>,
}

impl JournalWriter {
    /// Appends one completed-block record, durably. No-op after the first
    /// failure — a journal that can't be written must not abort the run.
    pub(crate) fn append(&mut self, name: &str, hash: u64, r: &BlockResult) {
        if self.error.is_some() {
            return;
        }
        let record = render_record(name, hash, r);
        if let Err(e) = self.io.shim().append(&self.path, record.as_bytes()) {
            self.error = Some(PersistError::io("append", &self.path, &e));
        }
    }

    /// The first append failure, if any.
    pub(crate) fn error(&self) -> Option<&PersistError> {
        self.error.as_ref()
    }
}

/// Opens (or creates) the journal at `path`, replaying any usable records
/// from an interrupted run.
///
/// Returns the append handle, the replayed verdicts keyed by block name
/// (last record wins — a block journaled twice, e.g. re-verified after an
/// inconclusive, replays its newest verdict), and the load summary. Torn
/// or corrupt records are dropped; if any were, the file is compacted so
/// the damage does not survive into the next crash. An unwritable path
/// degrades to a no-op writer with the error recorded, never a panic.
///
/// The journal's advisory lock is taken *before* anything else — the
/// replay read and the compaction rewrite are only trustworthy while no
/// other process is appending. A lock held by a live process degrades to
/// a no-op writer with nothing replayed (journal-off for this run).
pub(crate) fn open(
    path: &Path,
    io: &IoHandle,
) -> (
    JournalWriter,
    HashMap<String, (u64, BlockResult)>,
    JournalLoad,
) {
    let mut writer = JournalWriter {
        path: path.to_path_buf(),
        io: io.clone(),
        error: None,
        _lock: None,
    };
    match crate::lockfile::FileLock::acquire(path, io) {
        Ok(lock) => writer._lock = Some(lock),
        Err(e) => {
            writer.error = Some(e);
            return (writer, HashMap::new(), JournalLoad::Fresh);
        }
    }
    let shim = io.shim();
    let text = match shim.read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == ErrorKind::NotFound => {
            // First run on this path: write the header durably so a later
            // resume can tell "fresh journal" from "not a journal".
            if let Err(e) = shim.write(path, format!("{MAGIC}\n").as_bytes()) {
                writer.error = Some(PersistError::io("write", path, &e));
            }
            return (writer, HashMap::new(), JournalLoad::Fresh);
        }
        Err(e) => {
            writer.error = Some(PersistError::io("read", path, &e));
            return (writer, HashMap::new(), JournalLoad::Fresh);
        }
    };
    let Some(body) = text.strip_prefix(MAGIC).and_then(|r| r.strip_prefix('\n')) else {
        // Not a journal (or a torn header): start it over.
        if let Err(e) = shim.write(path, format!("{MAGIC}\n").as_bytes()) {
            writer.error = Some(PersistError::io("write", path, &e));
        }
        return (writer, HashMap::new(), JournalLoad::Fresh);
    };
    let mut map: HashMap<String, (u64, BlockResult)> = HashMap::new();
    let mut dropped = 0usize;
    for line in body.lines() {
        match parse_record(line) {
            // Last record wins: insert unconditionally.
            Some((name, hash, r)) => {
                map.insert(name, (hash, r));
            }
            None => dropped += 1,
        }
    }
    // A file ending without a newline is itself evidence of a torn append;
    // `lines()` already handed us that fragment and `parse_record` judged
    // it. Compact whenever anything was dropped so the torn bytes are gone.
    // The rewrite goes through a `.tmp` sibling and an atomic rename (like
    // the cache save): an ENOSPC or fault *during* compaction must leave
    // the original file — torn tail and all, still replayable — untouched,
    // never half-truncated. On failure the writer degrades (error recorded,
    // appends no-op) but the already-parsed replay map is still returned.
    if dropped > 0 {
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        let mut fresh = format!("{MAGIC}\n");
        for name in names {
            let (hash, r) = &map[name.as_str()];
            fresh.push_str(&render_record(name, *hash, r));
        }
        let tmp = crate::cache::tmp_path(path);
        let compacted = shim
            .write(&tmp, fresh.as_bytes())
            .map_err(|e| PersistError::io("write", &tmp, &e))
            .and_then(|()| {
                shim.rename(&tmp, path)
                    .map_err(|e| PersistError::io("rename", path, &e))
            })
            .and_then(|()| {
                shim.sync_dir(crate::cache::parent_dir(path))
                    .map_err(|e| PersistError::io("sync_dir", path, &e))
            });
        if let Err(e) = compacted {
            writer.error = Some(e);
        }
    }
    if map.is_empty() && dropped == 0 {
        return (writer, map, JournalLoad::Fresh);
    }
    let entries = map.len();
    (writer, map, JournalLoad::Resumed { entries, dropped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosIo, ChaosPlan, IoShim, RealIo};
    use std::fs;
    use std::sync::Arc;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dfv-journal-{tag}-{}-{:?}.journal",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn result(name: &str, status: BlockStatus) -> BlockResult {
        BlockResult {
            lint_count: 2,
            solver: SolverTotals {
                cnf_vars: 120,
                cnf_clauses: 340,
                conflicts: 7,
            },
            attempts: 3,
            ..crate::cache::disk_result(name, status)
        }
    }

    #[test]
    fn append_then_reopen_replays_every_verdict() {
        let path = temp("roundtrip");
        let _ = fs::remove_file(&path);
        let io = IoHandle::real();
        let (mut w, map, load) = open(&path, &io);
        assert!(map.is_empty());
        assert_eq!(load, JournalLoad::Fresh);
        w.append("a", 0x11, &result("a", BlockStatus::Pass));
        w.append(
            "b",
            0x22,
            &result("b", BlockStatus::NotEquivalent("cex".into())),
        );
        w.append(
            "c",
            0x33,
            &result("c", BlockStatus::Inconclusive("budget".into())),
        );
        w.append("d", 0x44, &result("d", BlockStatus::Crashed("boom".into())));
        assert!(w.error().is_none());
        drop(w); // release the journal lock before reopening

        let (_, map, load) = open(&path, &io);
        assert_eq!(
            load,
            JournalLoad::Resumed {
                entries: 4,
                dropped: 0
            }
        );
        assert_eq!(map["a"].0, 0x11);
        assert_eq!(map["a"].1.status, BlockStatus::Pass);
        assert_eq!(map["a"].1.attempts, 3);
        assert_eq!(map["a"].1.lint_count, 2);
        assert_eq!(map["a"].1.solver.cnf_clauses, 340);
        assert!(map["a"].1.from_journal);
        assert_eq!(map["b"].1.status, BlockStatus::NotEquivalent("cex".into()));
        assert_eq!(
            map["c"].1.status,
            BlockStatus::Inconclusive("budget".into())
        );
        assert_eq!(map["d"].1.status, BlockStatus::Crashed("boom".into()));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_and_compacted() {
        let path = temp("torn");
        let _ = fs::remove_file(&path);
        let io = IoHandle::real();
        let (mut w, _, _) = open(&path, &io);
        w.append("a", 1, &result("a", BlockStatus::Pass));
        w.append("b", 2, &result("b", BlockStatus::Pass));
        drop(w);

        // Tear the final record the way a kill mid-append would.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 7]).unwrap();

        let (_, map, load) = open(&path, &io);
        assert_eq!(
            load,
            JournalLoad::Resumed {
                entries: 1,
                dropped: 1
            }
        );
        assert!(map.contains_key("a"));

        // The compaction rewrote the file: reopening sees no damage.
        let (_, map, load) = open(&path, &io);
        assert_eq!(
            load,
            JournalLoad::Resumed {
                entries: 1,
                dropped: 0
            }
        );
        assert!(map.contains_key("a"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn last_record_wins_for_a_rejournaled_block() {
        let path = temp("dedup");
        let _ = fs::remove_file(&path);
        let io = IoHandle::real();
        let (mut w, _, _) = open(&path, &io);
        w.append(
            "a",
            1,
            &result("a", BlockStatus::Inconclusive("try1".into())),
        );
        w.append("a", 1, &result("a", BlockStatus::Pass));
        drop(w);
        let (_, map, load) = open(&path, &io);
        assert_eq!(
            load,
            JournalLoad::Resumed {
                entries: 1,
                dropped: 0
            }
        );
        assert_eq!(map["a"].1.status, BlockStatus::Pass);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn non_journal_file_is_restarted_not_trusted() {
        let path = temp("alien");
        RealIo.write(&path, b"some other file entirely\n").unwrap();
        let io = IoHandle::real();
        let (_, map, load) = open(&path, &io);
        assert!(map.is_empty());
        assert_eq!(load, JournalLoad::Fresh);
        // The file is now a valid fresh journal.
        assert!(fs::read_to_string(&path).unwrap().starts_with(MAGIC));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn bitflipped_record_is_dropped_via_chaos_shim() {
        let path = temp("flip");
        let _ = fs::remove_file(&path);
        let real = IoHandle::real();
        let (mut w, _, _) = open(&path, &real);
        for (i, name) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            w.append(name, i as u64, &result(name, BlockStatus::Pass));
        }
        drop(w);
        let io = IoHandle::new(Arc::new(ChaosIo::new(
            ChaosPlan::none(0xF11B).bitflip_nth_read(1),
        )));
        let (_, map, load) = open(&path, &io);
        match load {
            JournalLoad::Resumed { entries, dropped } => {
                assert!(entries >= 4, "at most one record lost to one flip");
                assert!(dropped <= 1);
                assert_eq!(entries + dropped, 5);
            }
            // The flip landed on the magic header: journal restarted.
            JournalLoad::Fresh => assert!(map.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn enospc_during_compaction_degrades_and_preserves_the_file() {
        let path = temp("enospc-compact");
        let _ = fs::remove_file(&path);
        let real = IoHandle::real();
        let (mut w, _, _) = open(&path, &real);
        w.append("a", 1, &result("a", BlockStatus::Pass));
        w.append("b", 2, &result("b", BlockStatus::Pass));
        drop(w);
        // Tear the tail so the next open wants to compact.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 7]).unwrap();
        let damaged = fs::read_to_string(&path).unwrap();

        // Byte budget: the lock file (~25 bytes) fits; the compaction's
        // tmp write (header + a full record) does not.
        let io = IoHandle::new(Arc::new(ChaosIo::new(
            ChaosPlan::none(0).enospc_after_bytes(64),
        )));
        let (w, map, load) = open(&path, &io);
        // The replay is still served from the damaged file...
        assert_eq!(
            load,
            JournalLoad::Resumed {
                entries: 1,
                dropped: 1
            }
        );
        assert!(map.contains_key("a"));
        // ...the failure is typed, not a panic...
        let err = w.error().unwrap();
        assert_eq!(err.op, "write");
        assert!(err.msg.contains("ENOSPC"), "{err}");
        drop(w);
        // ...and the original file is byte-identical, never truncated.
        assert_eq!(fs::read_to_string(&path).unwrap(), damaged);

        // Once space is back, the next open compacts successfully.
        let (w2, map, load) = open(&path, &real);
        assert!(w2.error().is_none());
        assert_eq!(
            load,
            JournalLoad::Resumed {
                entries: 1,
                dropped: 1
            }
        );
        assert!(map.contains_key("a"));
        drop(w2);
        let (_, _, load) = open(&path, &real);
        assert_eq!(
            load,
            JournalLoad::Resumed {
                entries: 1,
                dropped: 0
            }
        );
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(crate::cache::tmp_path(&path));
    }

    #[test]
    fn failed_rename_during_compaction_leaves_the_original_journal() {
        let path = temp("rename-compact");
        let _ = fs::remove_file(&path);
        let real = IoHandle::real();
        let (mut w, _, _) = open(&path, &real);
        w.append("a", 1, &result("a", BlockStatus::Pass));
        w.append("b", 2, &result("b", BlockStatus::Pass));
        drop(w);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 7]).unwrap();
        let damaged = fs::read_to_string(&path).unwrap();

        let io = IoHandle::new(Arc::new(ChaosIo::new(
            ChaosPlan::none(0).fail_nth_rename(1),
        )));
        let (w, map, load) = open(&path, &io);
        assert_eq!(
            load,
            JournalLoad::Resumed {
                entries: 1,
                dropped: 1
            }
        );
        assert!(map.contains_key("a"));
        let err = w.error().unwrap();
        assert_eq!(err.op, "rename");
        drop(w);
        // The fault fired before the rename touched anything: the damaged
        // (but replayable) original is exactly as it was.
        assert_eq!(fs::read_to_string(&path).unwrap(), damaged);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(crate::cache::tmp_path(&path));
    }

    #[test]
    fn locked_journal_degrades_to_journal_off_with_no_replay() {
        let path = temp("locked");
        let _ = fs::remove_file(&path);
        let real = IoHandle::real();
        let (mut w, _, _) = open(&path, &real);
        w.append("a", 1, &result("a", BlockStatus::Pass));

        // A second opener while the first writer is live: typed lock
        // failure, nothing replayed, appends no-op — never interleaved.
        let (w2, map, load) = open(&path, &real);
        assert!(map.is_empty());
        assert_eq!(load, JournalLoad::Fresh);
        let err = w2.error().unwrap();
        assert_eq!(err.op, "lock");
        drop(w2);
        drop(w);

        // With the first writer gone the journal opens normally again.
        let (_, map, load) = open(&path, &real);
        assert_eq!(
            load,
            JournalLoad::Resumed {
                entries: 1,
                dropped: 0
            }
        );
        assert!(map.contains_key("a"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn failed_append_degrades_writer_without_panicking() {
        let path = temp("degrade");
        let _ = fs::remove_file(&path);
        // Durable write #1 is the lock creation, #2 the header (both
        // succeed); #3 is the first record append (fails); the writer
        // must go quiet after that.
        let io = IoHandle::new(Arc::new(ChaosIo::new(ChaosPlan::none(0).fail_nth_write(3))));
        let (mut w, _, load) = open(&path, &io);
        assert_eq!(load, JournalLoad::Fresh);
        w.append("a", 1, &result("a", BlockStatus::Pass));
        assert!(w.error().is_some());
        w.append("b", 2, &result("b", BlockStatus::Pass));
        let err = w.error().unwrap();
        assert_eq!(err.op, "append");
        drop(w);
        // Only the header reached the disk.
        let (_, map, load) = open(&path, &IoHandle::real());
        assert!(map.is_empty());
        assert_eq!(load, JournalLoad::Fresh);
        let _ = fs::remove_file(&path);
    }
}
