//! The deterministic parallel campaign scheduler.
//!
//! The paper's economic argument (§4.1) is that many *cheap* verification
//! runs beat one late batch run — and campaign work items (per-block
//! proofs, per-block fault sweeps) are already independent: seeds are
//! derived per cell, cache keys are content hashes, and nothing in a work
//! item's body touches shared mutable state. This module supplies the
//! missing piece: a worker pool that executes the items concurrently
//! while keeping the *observable output identical to the serial run*.
//!
//! The determinism contract, relied on by `scripts/check.sh` and the
//! property tests:
//!
//! 1. **Self-scheduling pool.** Workers claim items from one shared
//!    atomic cursor, so an idle worker steals the next unclaimed item
//!    instead of waiting behind a static partition. Which worker runs
//!    which item varies run to run — and must not matter.
//! 2. **Plan-order merge.** Every result is slotted by its *item index*,
//!    never by completion order; the assembled vector is
//!    indistinguishable from a serial for-loop's output.
//! 3. **Single-writer side effects.** Work items are pure; anything
//!    stateful (cache insertion, cache persistence, report assembly)
//!    happens after the join, on the calling thread, in plan order.
//!
//! The pool size comes from [`resolve_workers`]: an explicit request, the
//! `DFV_WORKERS` environment override, or `available_parallelism`.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use dfv_obs::ObsHook;

/// Environment variable overriding the worker count for every campaign
/// in the process (useful for `scripts/check.sh` style A/B runs).
pub const WORKERS_ENV: &str = "DFV_WORKERS";

/// Upper bound on the worker-pool size. A `DFV_WORKERS` override beyond
/// this (a typo like `44444`, or an outright overflow) falls back to the
/// default rather than spawning a machine-crushing number of threads.
pub const MAX_WORKERS: usize = 4096;

/// Resolves the worker count for a campaign run.
///
/// Priority: the `DFV_WORKERS` environment variable (when set to an
/// integer in `1..=`[`MAX_WORKERS`]), then the explicit `requested`
/// option, then [`std::thread::available_parallelism`]. Always at least 1.
/// An unusable override (zero, garbage, out of range) is *ignored*, not
/// obeyed and not fatal — use [`resolve_workers_with`] to also record the
/// fallback as a warning event.
pub fn resolve_workers(requested: Option<usize>) -> usize {
    resolve_workers_from(
        std::env::var(WORKERS_ENV).ok().as_deref(),
        requested,
        &ObsHook::default(),
    )
}

/// [`resolve_workers`] that records a `core.sched.workers_fallback` event
/// through `obs` when the environment override was unusable.
pub fn resolve_workers_with(requested: Option<usize>, obs: &ObsHook) -> usize {
    resolve_workers_from(std::env::var(WORKERS_ENV).ok().as_deref(), requested, obs)
}

/// The resolution logic itself, with the environment value injected —
/// testable without mutating the process-global environment.
pub fn resolve_workers_from(env: Option<&str>, requested: Option<usize>, obs: &ObsHook) -> usize {
    if let Some(s) = env {
        match s.trim().parse::<usize>() {
            Ok(n) if (1..=MAX_WORKERS).contains(&n) => return n,
            Ok(n) => obs.event(dfv_obs::kinds::SCHED_WORKERS_FALLBACK, || {
                format!("{WORKERS_ENV}={n} out of range 1..={MAX_WORKERS}; using default")
            }),
            Err(_) => obs.event(dfv_obs::kinds::SCHED_WORKERS_FALLBACK, || {
                format!("{WORKERS_ENV}={s:?} is not an integer; using default")
            }),
        }
    }
    match requested {
        Some(n) => n.clamp(1, MAX_WORKERS),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Canonicalizes a panic payload into deterministic, single-line text.
///
/// Only the payload's own message survives — no backtrace, no thread
/// name, no addresses — so a `Crashed` verdict's note is byte-stable
/// across runs and safe for canonical JSON. Long messages are truncated
/// at a fixed budget.
pub fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    let text = if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    };
    let line = text.lines().next().unwrap_or("");
    const MAX: usize = 240;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let mut cut = MAX;
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &line[..cut])
    }
}

/// Runs `f` over every item of `items`, returning the results in item
/// order — the parallel equivalent of `items.iter().enumerate().map(f)`.
///
/// With `workers <= 1` (or fewer than two items) this *is* that serial
/// loop: no threads are spawned, so the one-worker path has zero
/// scheduling overhead and is the reference the parallel path must match
/// byte for byte. Otherwise `workers` scoped threads self-schedule over
/// a shared atomic cursor and each result lands in its item's slot.
pub fn run_indexed<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_quarantined(items, workers, f, |_, _| {})
        .into_iter()
        .map(|r| r.unwrap_or_else(|payload| panic!("campaign worker panicked: {payload}")))
        .collect()
}

/// [`run_indexed`] with panic isolation: a work item that panics becomes
/// `Err(canonicalized payload)` in its slot instead of poisoning the
/// pool, and every other worker keeps draining the queue.
///
/// `sink` is called on the *calling thread* — the single writer — once
/// per completed item, in *completion order* (nondeterministic under
/// parallelism). This is the checkpoint hook: the campaign journals each
/// verdict the moment it exists, so a kill between two sink calls loses
/// at most the in-flight items. Anything order-sensitive must instead
/// consume the returned vector, which is in deterministic item order.
pub fn run_quarantined<T, R, F, S>(
    items: &[T],
    workers: usize,
    f: F,
    mut sink: S,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: FnMut(usize, &Result<R, String>),
{
    let guarded = |i: usize, t: &T| -> Result<R, String> {
        // `f` only borrows Sync data, and on panic the partial state is
        // dropped with the unwound stack — nothing torn escapes, so the
        // unwind-safety assertion is sound.
        panic::catch_unwind(AssertUnwindSafe(|| f(i, t))).map_err(|p| panic_text(p.as_ref()))
    };
    if workers <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let r = guarded(i, t);
                sink(i, &r);
                r
            })
            .collect();
    }
    let workers = workers.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<R, String>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        // Workers stream (index, result) pairs to the calling thread,
        // which is the single writer: it runs the sink in completion
        // order and slots each result into item order.
        let (tx, rx) = mpsc::channel::<(usize, Result<R, String>)>();
        for _ in 0..workers {
            let cursor = &cursor;
            let guarded = &guarded;
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // A send can only fail if the receiver was dropped, which
                // only happens when this scope is already unwinding.
                if tx.send((i, guarded(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            sink(i, &r);
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every item index was claimed exactly once"))
        .collect()
}

/// A shared, amortized campaign deadline clock.
///
/// A serial campaign checked its deadline with one `Instant::now()` per
/// block — cheap, but wasteful on large plans and awkward to share
/// across workers. This clock keeps the elapsed time in a single
/// `AtomicU64` of microseconds: any thread may refresh it (every
/// [`DeadlineClock::STRIDE`]th query takes the real clock reading and
/// `fetch_max`es it in), and every query compares the cached coarse tick
/// against the deadline without touching the OS clock.
///
/// Expiry is monotonic — once `expired` returns true it stays true —
/// because the atomic only ever grows.
#[derive(Debug)]
pub struct DeadlineClock {
    start: Instant,
    deadline_us: Option<u64>,
    elapsed_us: AtomicU64,
    queries: AtomicU64,
}

impl DeadlineClock {
    /// How many `expired` queries share one real clock reading.
    pub const STRIDE: u64 = 32;

    /// A clock started at `start` with an optional budget. With
    /// `deadline == None` every query is a branch on a constant.
    pub fn new(start: Instant, deadline: Option<Duration>) -> Self {
        DeadlineClock {
            start,
            deadline_us: deadline.map(|d| d.as_micros().min(u64::MAX as u128) as u64),
            elapsed_us: AtomicU64::new(0),
            queries: AtomicU64::new(0),
        }
    }

    /// Whether the deadline has passed, using the amortized coarse tick.
    ///
    /// The first query and every [`Self::STRIDE`]th one after it refresh
    /// the tick from the real clock; queries in between reuse the cached
    /// value, so a thundering herd of workers polling between blocks
    /// costs two atomic ops each, not a syscall each.
    pub fn expired(&self) -> bool {
        let Some(deadline_us) = self.deadline_us else {
            return false;
        };
        let n = self.queries.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(Self::STRIDE) {
            let now = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            self.elapsed_us.fetch_max(now, Ordering::Relaxed);
        }
        self.elapsed_us.load(Ordering::Relaxed) >= deadline_us
    }

    /// The absolute deadline instant, for handing down into per-block
    /// budgets (the solver keeps its own finer-grained amortization).
    pub fn instant(&self) -> Option<Instant> {
        self.deadline_us
            .map(|us| self.start + Duration::from_micros(us))
    }
}

/// A cooperative cancellation flag shared between a campaign and whoever
/// is waiting on it (a `dfv-serve` client connection, a timeout watcher).
///
/// Cancellation is a *latch*: once [`CancelToken::cancel`] fires it stays
/// set, and every not-yet-started work item degrades to a skip at its
/// next check — in-flight blocks finish (and are journaled) normally, so
/// no completed proof work is lost. The default token is never cancelled
/// and costs one relaxed atomic load per block.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(std::sync::Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Latches the token; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn serial_and_parallel_agree_in_item_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial = run_indexed(&items, 1, |i, x| (i as u64) * 1000 + x * x);
        for workers in [2, 3, 8, 200] {
            let par = run_indexed(&items, workers, |i, x| (i as u64) * 1000 + x * x);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counts: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        run_indexed(&counts, 4, |_, c| c.fetch_add(1, Ordering::Relaxed));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn empty_and_single_item_take_the_serial_path() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_indexed(&empty, 8, |_, x| *x).is_empty());
        assert_eq!(run_indexed(&[7u32], 8, |i, x| (i, *x)), vec![(0, 7)]);
    }

    #[test]
    fn worker_resolution_priority() {
        // NOTE: tests must not *set* DFV_WORKERS (process-global); assert
        // only when the harness environment leaves it unset.
        if std::env::var(WORKERS_ENV).is_err() {
            assert_eq!(resolve_workers(Some(3)), 3);
            assert_eq!(resolve_workers(Some(0)), 1);
            assert!(resolve_workers(None) >= 1);
        }
    }

    /// Runs the injected-env resolver and returns (workers, fallback events).
    fn resolve_with_env(env: Option<&str>, requested: Option<usize>) -> (usize, usize) {
        use dfv_obs::MemoryRecorder;
        let rec = MemoryRecorder::shared();
        let obs = ObsHook::attached(rec.clone());
        let n = resolve_workers_from(env, requested, &obs);
        let fallbacks = rec
            .lock()
            .unwrap()
            .events_of(dfv_obs::kinds::SCHED_WORKERS_FALLBACK)
            .len();
        (n, fallbacks)
    }

    #[test]
    fn zero_workers_env_falls_back_with_warning() {
        let (n, warns) = resolve_with_env(Some("0"), Some(3));
        assert_eq!(n, 3, "an unusable override defers to the request");
        assert_eq!(warns, 1);
    }

    #[test]
    fn garbage_workers_env_falls_back_with_warning() {
        for garbage in ["lots", "", "4x", "-2", "3.5"] {
            let (n, warns) = resolve_with_env(Some(garbage), Some(2));
            assert_eq!(n, 2, "env {garbage:?}");
            assert_eq!(warns, 1, "env {garbage:?}");
        }
    }

    #[test]
    fn overflow_workers_env_falls_back_with_warning() {
        // Bigger than MAX_WORKERS but parseable...
        let (n, warns) = resolve_with_env(Some("99999"), Some(4));
        assert_eq!(n, 4);
        assert_eq!(warns, 1);
        // ...and bigger than usize itself.
        let (n, warns) = resolve_with_env(Some("99999999999999999999999999"), Some(4));
        assert_eq!(n, 4);
        assert_eq!(warns, 1);
    }

    #[test]
    fn valid_workers_env_wins_without_warning() {
        let (n, warns) = resolve_with_env(Some(" 7 "), Some(2));
        assert_eq!(n, 7, "a valid override beats the request");
        assert_eq!(warns, 0);
        let (n, _) = resolve_with_env(None, None);
        assert!(n >= 1);
    }

    #[test]
    fn requested_workers_are_clamped_to_max() {
        let (n, warns) = resolve_with_env(None, Some(usize::MAX));
        assert_eq!(n, MAX_WORKERS);
        assert_eq!(warns, 0, "clamping an explicit request is not a warning");
    }

    #[test]
    fn panicking_item_is_quarantined_and_the_rest_complete() {
        let items: Vec<u32> = (0..40).collect();
        for workers in [1, 4] {
            let out = run_quarantined(
                &items,
                workers,
                |_, x| {
                    if *x == 13 {
                        panic!("unlucky item {x}");
                    }
                    x * 2
                },
                |_, _| {},
            );
            assert_eq!(out.len(), 40, "workers={workers}");
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    assert_eq!(r.as_ref().unwrap_err(), "unlucky item 13");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), (i as u32) * 2);
                }
            }
        }
    }

    #[test]
    fn sink_sees_every_item_exactly_once_on_the_calling_thread() {
        let items: Vec<u32> = (0..30).collect();
        let caller = std::thread::current().id();
        let mut seen = vec![0u32; items.len()];
        run_quarantined(
            &items,
            4,
            |_, x| *x,
            |i, r| {
                assert_eq!(std::thread::current().id(), caller, "single writer");
                assert!(r.is_ok());
                seen[i] += 1;
            },
        );
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn panic_text_is_canonical() {
        let p = panic::catch_unwind(|| panic!("boom at line {}", 7)).unwrap_err();
        assert_eq!(panic_text(p.as_ref()), "boom at line 7");
        let p = panic::catch_unwind(|| panic!("two\nlines")).unwrap_err();
        assert_eq!(panic_text(p.as_ref()), "two", "first line only");
        let p = panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_text(p.as_ref()), "<non-string panic payload>");
        let p = panic::catch_unwind(|| panic!("{}", "x".repeat(1000))).unwrap_err();
        let t = panic_text(p.as_ref());
        assert!(t.len() <= 250 && t.ends_with('…'), "long payloads truncate");
    }

    #[test]
    fn deadline_clock_none_never_expires_and_zero_expires_at_once() {
        let free = DeadlineClock::new(Instant::now(), None);
        for _ in 0..100 {
            assert!(!free.expired());
        }
        assert_eq!(free.instant(), None);

        let zero = DeadlineClock::new(Instant::now(), Some(Duration::ZERO));
        // The very first query refreshes the tick, so expiry is seen
        // immediately — not STRIDE queries later.
        assert!(zero.expired());
        assert!(zero.expired(), "expiry is sticky");
    }

    #[test]
    fn deadline_clock_expires_within_a_stride_of_the_deadline() {
        let clock = DeadlineClock::new(Instant::now(), Some(Duration::from_millis(5)));
        let t0 = Instant::now();
        while !clock.expired() {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "clock never expired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
