//! The deterministic parallel campaign scheduler.
//!
//! The paper's economic argument (§4.1) is that many *cheap* verification
//! runs beat one late batch run — and campaign work items (per-block
//! proofs, per-block fault sweeps) are already independent: seeds are
//! derived per cell, cache keys are content hashes, and nothing in a work
//! item's body touches shared mutable state. This module supplies the
//! missing piece: a worker pool that executes the items concurrently
//! while keeping the *observable output identical to the serial run*.
//!
//! The determinism contract, relied on by `scripts/check.sh` and the
//! property tests:
//!
//! 1. **Self-scheduling pool.** Workers claim items from one shared
//!    atomic cursor, so an idle worker steals the next unclaimed item
//!    instead of waiting behind a static partition. Which worker runs
//!    which item varies run to run — and must not matter.
//! 2. **Plan-order merge.** Every result is slotted by its *item index*,
//!    never by completion order; the assembled vector is
//!    indistinguishable from a serial for-loop's output.
//! 3. **Single-writer side effects.** Work items are pure; anything
//!    stateful (cache insertion, cache persistence, report assembly)
//!    happens after the join, on the calling thread, in plan order.
//!
//! The pool size comes from [`resolve_workers`]: an explicit request, the
//! `DFV_WORKERS` environment override, or `available_parallelism`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Environment variable overriding the worker count for every campaign
/// in the process (useful for `scripts/check.sh` style A/B runs).
pub const WORKERS_ENV: &str = "DFV_WORKERS";

/// Resolves the worker count for a campaign run.
///
/// Priority: the `DFV_WORKERS` environment variable (when set to a
/// positive integer), then the explicit `requested` option, then
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn resolve_workers(requested: Option<usize>) -> usize {
    if let Ok(s) = std::env::var(WORKERS_ENV) {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs `f` over every item of `items`, returning the results in item
/// order — the parallel equivalent of `items.iter().enumerate().map(f)`.
///
/// With `workers <= 1` (or fewer than two items) this *is* that serial
/// loop: no threads are spawned, so the one-worker path has zero
/// scheduling overhead and is the reference the parallel path must match
/// byte for byte. Otherwise `workers` scoped threads self-schedule over
/// a shared atomic cursor and each result lands in its item's slot.
pub fn run_indexed<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = workers.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        // Each worker returns its (index, result) pairs; the join loop
        // below is the single writer that slots them into item order.
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut produced: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    produced.push((i, f(i, &items[i])));
                }
                produced
            }));
        }
        for h in handles {
            // A worker can only panic if `f` panicked; propagate it
            // rather than return a hole-y result vector.
            for (i, r) in h.join().expect("campaign worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every item index was claimed exactly once"))
        .collect()
}

/// A shared, amortized campaign deadline clock.
///
/// A serial campaign checked its deadline with one `Instant::now()` per
/// block — cheap, but wasteful on large plans and awkward to share
/// across workers. This clock keeps the elapsed time in a single
/// `AtomicU64` of microseconds: any thread may refresh it (every
/// [`DeadlineClock::STRIDE`]th query takes the real clock reading and
/// `fetch_max`es it in), and every query compares the cached coarse tick
/// against the deadline without touching the OS clock.
///
/// Expiry is monotonic — once `expired` returns true it stays true —
/// because the atomic only ever grows.
#[derive(Debug)]
pub struct DeadlineClock {
    start: Instant,
    deadline_us: Option<u64>,
    elapsed_us: AtomicU64,
    queries: AtomicU64,
}

impl DeadlineClock {
    /// How many `expired` queries share one real clock reading.
    pub const STRIDE: u64 = 32;

    /// A clock started at `start` with an optional budget. With
    /// `deadline == None` every query is a branch on a constant.
    pub fn new(start: Instant, deadline: Option<Duration>) -> Self {
        DeadlineClock {
            start,
            deadline_us: deadline.map(|d| d.as_micros().min(u64::MAX as u128) as u64),
            elapsed_us: AtomicU64::new(0),
            queries: AtomicU64::new(0),
        }
    }

    /// Whether the deadline has passed, using the amortized coarse tick.
    ///
    /// The first query and every [`Self::STRIDE`]th one after it refresh
    /// the tick from the real clock; queries in between reuse the cached
    /// value, so a thundering herd of workers polling between blocks
    /// costs two atomic ops each, not a syscall each.
    pub fn expired(&self) -> bool {
        let Some(deadline_us) = self.deadline_us else {
            return false;
        };
        let n = self.queries.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(Self::STRIDE) {
            let now = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            self.elapsed_us.fetch_max(now, Ordering::Relaxed);
        }
        self.elapsed_us.load(Ordering::Relaxed) >= deadline_us
    }

    /// The absolute deadline instant, for handing down into per-block
    /// budgets (the solver keeps its own finer-grained amortization).
    pub fn instant(&self) -> Option<Instant> {
        self.deadline_us
            .map(|us| self.start + Duration::from_micros(us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn serial_and_parallel_agree_in_item_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial = run_indexed(&items, 1, |i, x| (i as u64) * 1000 + x * x);
        for workers in [2, 3, 8, 200] {
            let par = run_indexed(&items, workers, |i, x| (i as u64) * 1000 + x * x);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counts: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        run_indexed(&counts, 4, |_, c| c.fetch_add(1, Ordering::Relaxed));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn empty_and_single_item_take_the_serial_path() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_indexed(&empty, 8, |_, x| *x).is_empty());
        assert_eq!(run_indexed(&[7u32], 8, |i, x| (i, *x)), vec![(0, 7)]);
    }

    #[test]
    fn worker_resolution_priority() {
        // NOTE: tests must not *set* DFV_WORKERS (process-global); assert
        // only when the harness environment leaves it unset.
        if std::env::var(WORKERS_ENV).is_err() {
            assert_eq!(resolve_workers(Some(3)), 3);
            assert_eq!(resolve_workers(Some(0)), 1);
            assert!(resolve_workers(None) >= 1);
        }
    }

    #[test]
    fn deadline_clock_none_never_expires_and_zero_expires_at_once() {
        let free = DeadlineClock::new(Instant::now(), None);
        for _ in 0..100 {
            assert!(!free.expired());
        }
        assert_eq!(free.instant(), None);

        let zero = DeadlineClock::new(Instant::now(), Some(Duration::ZERO));
        // The very first query refreshes the tick, so expiry is seen
        // immediately — not STRIDE queries later.
        assert!(zero.expired());
        assert!(zero.expired(), "expiry is sticky");
    }

    #[test]
    fn deadline_clock_expires_within_a_stride_of_the_deadline() {
        let clock = DeadlineClock::new(Instant::now(), Some(Duration::from_millis(5)));
        let t0 = Instant::now();
        while !clock.expired() {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "clock never expired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
