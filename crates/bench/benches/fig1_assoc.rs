//! E1 bench: SEC solve cost for the Figure-1 pair across datapath widths —
//! regenerates the width-sweep series of experiment E1 as a timing curve.
//!
//! Gated: criterion is an external crate offline builds cannot fetch.
//! Enable with `--features criterion-benches` where crates.io resolves.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
    use dfv_designs::alu;
    use dfv_sec::{check_equivalence, EquivOutcome};
    use dfv_slmir::{elaborate, parse};
    use std::hint::black_box;

    fn bench_fig1(c: &mut Criterion) {
        let mut g = c.benchmark_group("fig1_sec");
        // Counterexample search (int-style vs narrow RTL) and full proof
        // (bit-accurate vs narrow RTL) at increasing widths.
        for width in [8u32, 16, 24] {
            let cex_src = format!(
                "int<{r}> alu(int<{w}> a, int<{w}> b, int<{w}> c) {{
                    int<34> t = (int<34>) a + (int<34>) b;
                    return (int<{r}>)(t + (int<34>) c);
                }}",
                w = width,
                r = width + 1
            );
            let cex_slm = elaborate(&parse(&cex_src).unwrap(), "alu").unwrap();
            let rtl = alu::rtl(width, width);
            let spec = alu::equiv_spec();
            g.bench_with_input(BenchmarkId::new("find_cex", width), &width, |b, _| {
                b.iter(|| {
                    let r = check_equivalence(&cex_slm, &rtl, &spec).unwrap();
                    assert!(matches!(r.outcome, EquivOutcome::NotEquivalent(_)));
                    black_box(r.cnf_vars)
                })
            });
        }
        let proof_slm = elaborate(&parse(alu::slm_bit_accurate()).unwrap(), "alu").unwrap();
        let rtl = alu::rtl(8, 8);
        let spec = alu::equiv_spec();
        g.bench_function("prove_equivalent_w8", |b| {
            b.iter(|| {
                let r = check_equivalence(&proof_slm, &rtl, &spec).unwrap();
                assert!(r.outcome.is_equivalent());
                black_box(r.cnf_vars)
            })
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(20);
        targets = bench_fig1
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "bench gated behind the `criterion-benches` feature (needs the external criterion crate)"
    );
}
