//! E8 bench: block-level vs flat equivalence checks (paper §4.2).
//!
//! Gated: criterion is an external crate offline builds cannot fetch.
//! Enable with `--features criterion-benches` where crates.io resolves.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion};
    use dfv_designs::{alu, conv, fir};
    use dfv_sec::check_equivalence;
    use dfv_slmir::{elaborate, parse};
    use std::hint::black_box;

    fn bench_partitioning(c: &mut Criterion) {
        let alu_slm = elaborate(&parse(alu::slm_bit_accurate()).unwrap(), "alu").unwrap();
        let alu_rtl = alu::rtl(8, 8);
        let alu_spec = alu::equiv_spec();
        let fir_slm = elaborate(&parse(fir::slm_source()).unwrap(), "fir").unwrap();
        let fir_rtl = fir::rtl();
        let fir_spec = fir::equiv_spec();
        let conv_slm = elaborate(&parse(conv::slm_source()).unwrap(), "blur").unwrap();
        let conv_rtl = conv::rtl();
        let conv_spec = conv::equiv_spec();

        let mut g = c.benchmark_group("partitioned_sec");
        g.sample_size(10);
        g.bench_function("alu_block", |b| {
            b.iter(|| black_box(check_equivalence(&alu_slm, &alu_rtl, &alu_spec).unwrap()))
        });
        g.bench_function("fir_block", |b| {
            b.iter(|| black_box(check_equivalence(&fir_slm, &fir_rtl, &fir_spec).unwrap()))
        });
        g.bench_function("conv_block", |b| {
            b.iter(|| black_box(check_equivalence(&conv_slm, &conv_rtl, &conv_spec).unwrap()))
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = bench_partitioning
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "bench gated behind the `criterion-benches` feature (needs the external criterion crate)"
    );
}
