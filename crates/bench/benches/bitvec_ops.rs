//! Component bench: arbitrary-width bit-vector arithmetic (`dfv-bits`).
//!
//! Gated: criterion is an external crate offline builds cannot fetch.
//! Enable with `--features criterion-benches` where crates.io resolves.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
    use dfv_bits::Bv;
    use std::hint::black_box;

    fn bench_bv(c: &mut Criterion) {
        let mut g = c.benchmark_group("bitvec");
        for width in [8u32, 64, 256, 1024] {
            let a =
                Bv::from_u64(width, 0xDEAD_BEEF_CAFE_F00D).wrapping_mul(&Bv::from_u64(width, 3));
            let b = Bv::from_u64(width, 0x0123_4567_89AB_CDEF);
            g.bench_with_input(BenchmarkId::new("add", width), &width, |bench, _| {
                bench.iter(|| black_box(black_box(&a).wrapping_add(black_box(&b))))
            });
            g.bench_with_input(BenchmarkId::new("mul", width), &width, |bench, _| {
                bench.iter(|| black_box(black_box(&a).wrapping_mul(black_box(&b))))
            });
            g.bench_with_input(BenchmarkId::new("udivrem", width), &width, |bench, _| {
                bench.iter(|| black_box(black_box(&a).udivrem(black_box(&b))))
            });
            g.bench_with_input(
                BenchmarkId::new("slice_concat", width),
                &width,
                |bench, _| {
                    bench.iter(|| {
                        let hi = a.slice(width - 1, width / 2);
                        let lo = a.slice(width / 2 - 1, 0);
                        black_box(hi.concat(&lo))
                    })
                },
            );
        }
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(40);
        targets = bench_bv
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "bench gated behind the `criterion-benches` feature (needs the external criterion crate)"
    );
}
