//! E4 bench: comparator throughput for the three alignment policies.
//!
//! Gated: criterion is an external crate offline builds cannot fetch.
//! Enable with `--features criterion-benches` where crates.io resolves.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion, Throughput};
    use dfv_bits::Bv;
    use dfv_cosim::{
        Comparator, ExactComparator, InOrderComparator, OutOfOrderComparator, StreamItem,
    };
    use std::hint::black_box;

    const N: u64 = 4096;

    fn item(v: u64, t: u64) -> StreamItem {
        StreamItem {
            value: Bv::from_u64(16, v),
            time: t,
        }
    }

    fn drive(cmp: &mut dyn Comparator, shift: u64) -> usize {
        for i in 0..N {
            cmp.push_expected(item(i & 0xFFF | (i % 8) << 12, i));
            cmp.push_actual(item(i & 0xFFF | (i % 8) << 12, i + shift));
        }
        let r = cmp.finish();
        r.matched
    }

    fn bench_compare(c: &mut Criterion) {
        let mut g = c.benchmark_group("comparators");
        g.throughput(Throughput::Elements(N));
        g.bench_function("exact", |b| {
            b.iter(|| {
                let mut cmp = ExactComparator::new();
                black_box(drive(&mut cmp, 0))
            })
        });
        g.bench_function("inorder_tolerant", |b| {
            b.iter(|| {
                let mut cmp = InOrderComparator::new(8);
                black_box(drive(&mut cmp, 5))
            })
        });
        g.bench_function("out_of_order_tagged", |b| {
            b.iter(|| {
                let mut cmp = OutOfOrderComparator::new(15, 12, 8);
                black_box(drive(&mut cmp, 3))
            })
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(30);
        targets = bench_compare
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "bench gated behind the `criterion-benches` feature (needs the external criterion crate)"
    );
}
