//! E3 bench: cost of exposing one injected bug — SEC counterexample search
//! vs constrained-random co-simulation.
//!
//! Gated: criterion is an external crate offline builds cannot fetch.
//! Enable with `--features criterion-benches` where crates.io resolves.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion};
    use dfv_cosim::{apply_mutation, enumerate_mutations, FieldSpec, Mutation, StimulusGen};
    use dfv_designs::alu;
    use dfv_rtl::Simulator;
    use dfv_sec::{check_equivalence, EquivOutcome};
    use dfv_slmir::{elaborate, parse};
    use std::hint::black_box;

    fn bench_detection(c: &mut Criterion) {
        let slm = elaborate(&parse(alu::slm_bit_accurate()).unwrap(), "alu").unwrap();
        let golden = alu::rtl(8, 8);
        let spec = alu::equiv_spec();
        // A real datapath bug: the first operator swap.
        let m = enumerate_mutations(&golden)
            .into_iter()
            .find(|m| matches!(m, Mutation::SwapBinOp { .. }))
            .expect("alu has swappable operators");
        let mutant = apply_mutation(&golden, &m);

        let mut g = c.benchmark_group("bug_detection");
        g.bench_function("sec_counterexample", |b| {
            b.iter(|| {
                let r = check_equivalence(&slm, &mutant, &spec).unwrap();
                assert!(matches!(r.outcome, EquivOutcome::NotEquivalent(_)));
                black_box(r.solver_stats.conflicts)
            })
        });
        g.bench_function("random_cosim_until_detect", |b| {
            let mut slm_sim = Simulator::new(slm.clone()).unwrap();
            let mut dut = Simulator::new(mutant.clone()).unwrap();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                let mut gen = StimulusGen::new(round);
                let corner = FieldSpec::Corners {
                    width: 8,
                    corner_percent: 25,
                };
                let mut txns = 0u64;
                loop {
                    txns += 1;
                    let (a, bv, cv) = (gen.draw(&corner), gen.draw(&corner), gen.draw(&corner));
                    let expect = slm_sim.eval_comb(&[
                        ("a", a.clone()),
                        ("b", bv.clone()),
                        ("c", cv.clone()),
                    ])["return"]
                        .clone();
                    dut.reset();
                    dut.step_with(&[("a", a), ("b", bv), ("c", cv)]);
                    if dut.output("out") != expect {
                        break;
                    }
                    assert!(txns < 1_000_000, "mutant never detected");
                }
                black_box(txns)
            })
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(20);
        targets = bench_detection
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "bench gated behind the `criterion-benches` feature (needs the external criterion crate)"
    );
}
