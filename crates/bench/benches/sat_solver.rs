//! Component bench: the CDCL solver (`dfv-sat`) on classic instances.
//!
//! Gated: criterion is an external crate offline builds cannot fetch.
//! Enable with `--features criterion-benches` where crates.io resolves.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
    use dfv_sat::{SolveResult, Solver, Var};
    use std::hint::black_box;

    fn pigeonhole(n: usize) -> Solver {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n).map(|_| s.new_vars(n - 1)).collect();
        for row in &p {
            let clause: Vec<_> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        s
    }

    fn random_3sat(nvars: usize, nclauses: usize, seed: u64) -> Solver {
        let mut s = Solver::new();
        let vars = s.new_vars(nvars);
        let mut state = seed | 1;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..nclauses {
            let c: Vec<_> = (0..3)
                .map(|_| vars[(rnd() % nvars as u64) as usize].lit(rnd() % 2 == 0))
                .collect();
            s.add_clause(&c);
        }
        s
    }

    fn bench_sat(c: &mut Criterion) {
        let mut g = c.benchmark_group("sat");
        for n in [5usize, 6] {
            g.bench_with_input(BenchmarkId::new("pigeonhole_unsat", n), &n, |b, &n| {
                b.iter_batched(
                    || pigeonhole(n),
                    |mut s| {
                        assert_eq!(s.solve(), SolveResult::Unsat);
                        black_box(s.stats())
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
        // Near the 3-SAT phase transition (ratio ~4.26).
        for nvars in [40usize, 60] {
            let nclauses = (nvars as f64 * 4.26) as usize;
            g.bench_with_input(BenchmarkId::new("random3sat", nvars), &nvars, |b, &nv| {
                b.iter_batched(
                    || random_3sat(nv, nclauses, nv as u64 * 17),
                    |mut s| black_box(s.solve()),
                    criterion::BatchSize::SmallInput,
                )
            });
        }
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(20);
        targets = bench_sat
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "bench gated behind the `criterion-benches` feature (needs the external criterion crate)"
    );
}
