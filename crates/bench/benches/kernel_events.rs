//! Component bench: the discrete-event kernel (`dfv-slm`).
//!
//! Gated: criterion is an external crate offline builds cannot fetch.
//! Enable with `--features criterion-benches` where crates.io resolves.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion};
    use dfv_slm::{Fifo, Kernel};
    use std::hint::black_box;

    fn bench_kernel(c: &mut Criterion) {
        let mut g = c.benchmark_group("kernel");
        g.bench_function("producer_consumer_1k_items", |b| {
            b.iter(|| {
                let mut k = Kernel::new();
                let ch: Fifo<u64> = Fifo::new(&mut k, "ch", 16);
                let go = k.event("go");
                let tx = ch.clone();
                let mut produced = 0u64;
                k.process("producer", &[go, ch.read_event()], move |k| {
                    while produced < 1000 {
                        if tx.try_put(k, produced).is_err() {
                            break;
                        }
                        produced += 1;
                    }
                });
                let rx = ch.clone();
                let mut sum = 0u64;
                k.process("consumer", &[ch.written_event()], move |k| {
                    while let Some(v) = rx.try_get(k) {
                        sum = sum.wrapping_add(v);
                    }
                    black_box(sum);
                });
                k.notify(go, 1);
                black_box(k.run(10_000).unwrap())
            })
        });
        g.bench_function("timed_notifications_10k", |b| {
            b.iter(|| {
                let mut k = Kernel::new();
                let e = k.event("tick");
                let mut count = 0u64;
                k.process("p", &[e], move |k| {
                    count += 1;
                    if count < 10_000 {
                        k.notify(e, 1);
                    }
                });
                k.notify(e, 1);
                black_box(k.run(u64::MAX / 2).unwrap());
                black_box(k.stats())
            })
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(20);
        targets = bench_kernel
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "bench gated behind the `criterion-benches` feature (needs the external criterion crate)"
    );
}
