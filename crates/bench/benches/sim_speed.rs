//! E2 bench: the abstraction-level simulation-speed ladder as Criterion
//! series (samples/sec shape of experiment E2).
//!
//! Gated: criterion is an external crate offline builds cannot fetch.
//! Enable with `--features criterion-benches` where crates.io resolves.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion, Throughput};
    use dfv_bench::models::{sample_block, untimed_fir, CycleApproxFir, InterpFir, RtlFir};
    use dfv_designs::fir::BLOCK;
    use std::hint::black_box;

    fn bench_levels(c: &mut Criterion) {
        let mut g = c.benchmark_group("sim_speed");
        g.throughput(Throughput::Elements(BLOCK as u64));
        g.bench_function("untimed_native", |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(untimed_fir(&sample_block(seed)))
            })
        });
        g.bench_function("untimed_interpreted_slmc", |b| {
            let m = InterpFir::new();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(m.run(&sample_block(seed)))
            })
        });
        g.bench_function("cycle_approx_kernel", |b| {
            let mut m = CycleApproxFir::new();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(m.run(&sample_block(seed)))
            })
        });
        g.bench_function("rtl_cycle_accurate", |b| {
            let mut m = RtlFir::new();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(m.run(&sample_block(seed)))
            })
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(30);
        targets = bench_levels
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "bench gated behind the `criterion-benches` feature (needs the external criterion crate)"
    );
}
