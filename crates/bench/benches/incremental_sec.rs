//! E6 bench: a campaign run with a warm incremental cache vs a cold
//! from-scratch run (the paper's §4.1 incremental-SEC payoff).
//!
//! Gated: criterion is an external crate offline builds cannot fetch.
//! Enable with `--features criterion-benches` where crates.io resolves.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion};
    use dfv_core::{BlockPair, Campaign, VerificationPlan};
    use dfv_designs::{alu, fir};
    use std::hint::black_box;

    fn plan() -> VerificationPlan {
        VerificationPlan::new()
            .block(BlockPair {
                name: "alu".into(),
                slm_source: alu::slm_bit_accurate().into(),
                slm_entry: "alu".into(),
                rtl: alu::rtl(8, 8),
                spec: alu::equiv_spec(),
            })
            .block(BlockPair {
                name: "fir".into(),
                slm_source: fir::slm_source().into(),
                slm_entry: "fir".into(),
                rtl: fir::rtl(),
                spec: fir::equiv_spec(),
            })
    }

    fn bench_incremental(c: &mut Criterion) {
        let mut g = c.benchmark_group("campaign");
        g.bench_function("cold_full_run", |b| {
            let p = plan();
            b.iter(|| {
                let mut campaign = Campaign::new();
                let r = campaign.run(&p);
                assert!(r.all_pass());
                black_box(r.duration)
            })
        });
        g.bench_function("warm_cached_run", |b| {
            let p = plan();
            let mut campaign = Campaign::new();
            campaign.run(&p); // prime the cache
            b.iter(|| {
                let r = campaign.run(&p);
                assert_eq!(r.cache_hits(), 2);
                black_box(r.duration)
            })
        });
        g.bench_function("one_block_edited", |b| {
            let base = plan();
            let mut edited = plan();
            edited.blocks[0].slm_source =
                "int<9> alu(int8 a, int8 b, int8 c) { int8 t = (int8)(a + b); return (int<9>)((int)t + c); }"
                    .into();
            let mut campaign = Campaign::new();
            campaign.run(&base);
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let r = campaign.run(if flip { &edited } else { &base });
                assert_eq!(r.cache_hits(), 1);
                black_box(r.duration)
            })
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(20);
        targets = bench_incremental
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "bench gated behind the `criterion-benches` feature (needs the external criterion crate)"
    );
}
