//! Component bench: the cycle-accurate RTL simulator on the design RTLs.
//!
//! Gated: criterion is an external crate offline builds cannot fetch.
//! Enable with `--features criterion-benches` where crates.io resolves.

#[cfg(feature = "criterion-benches")]
mod imp {
    use criterion::{criterion_group, criterion_main, Criterion};
    use dfv_bench::models::{sample_block, RtlFir};
    use dfv_bits::Bv;
    use dfv_rtl::Simulator;
    use std::hint::black_box;

    fn bench_rtl(c: &mut Criterion) {
        let mut g = c.benchmark_group("rtl_sim");
        g.bench_function("fir_block_8", |b| {
            let mut m = RtlFir::new();
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(m.run(&sample_block(seed)))
            })
        });
        g.bench_function("blur_tile_load_stream", |b| {
            let mut sim = Simulator::new(dfv_designs::conv::rtl()).unwrap();
            b.iter(|| {
                sim.reset();
                for i in 0..dfv_designs::conv::PIXELS as u64 {
                    sim.poke("in_valid", Bv::from_bool(true));
                    sim.poke("pix_in", Bv::from_u64(8, i * 11));
                    sim.step();
                }
                let mut acc = 0u64;
                for _ in 0..dfv_designs::conv::PIXELS {
                    sim.poke("in_valid", Bv::from_bool(false));
                    acc ^= sim.output("pix_out").to_u64();
                    sim.step();
                }
                black_box(acc)
            })
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(30);
        targets = bench_rtl
    }
}

#[cfg(feature = "criterion-benches")]
fn main() {
    imp::benches();
}

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    eprintln!(
        "bench gated behind the `criterion-benches` feature (needs the external criterion crate)"
    );
}
