//! The experiment harness: one module per experiment from DESIGN.md's
//! per-experiment index (E1–E17), each regenerating the table/series for the
//! corresponding figure or claim of the paper.
//!
//! Run everything with `cargo run --release -p dfv-bench --bin experiments`
//! (or pass experiment ids, e.g. `-- e1 e3`). Criterion micro-benchmarks
//! for the underlying components live in `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod models;
pub mod secbench;
pub mod simbench;

/// Renders a simple aligned table: a header row plus data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}
