//! The deterministic simulator workload sweep behind `bench sim` and E12,
//! plus the 64-lane batched sweep behind `bench sim --batch` and E15.
//!
//! Three seeded workloads from `dfv-designs` — a dense FIR stream, a
//! valid-gated convolution stream, and a mostly-idle memory system — each
//! run on both evaluation engines ([`dfv_rtl::EvalMode::DirtyCone`] and
//! the full-reevaluation reference). The comparable payload is the
//! deterministic counter set (`steps`, `eval_passes`, `node_evals`, and a
//! cross-engine output hash); wall-clock lives only in the report's
//! timing section, so the canonical JSON reproduces byte-for-byte across
//! runs and machines while the full JSON still carries the measured
//! speedup.
//!
//! The batched sweep ([`add_batch_sweep`]) measures campaign throughput
//! instead of single-stream latency: 64 independently-seeded copies of
//! each workload run once per engine — 64 scalar simulators versus one
//! 64-lane [`dfv_rtl::LaneSim`] carrying one stream per lane — with the
//! per-lane output hashes asserted identical before any counter is
//! reported. `node_evals` counts kernel dispatches, so the lane engine's
//! ~1/64 dispatch count (plus its per-lane fallback evaluations for
//! division-class ops) is the honest work ratio.

use dfv_bits::{Bv, SplitMix64};
use dfv_designs::{conv, fir, memsys};
use dfv_obs::{Json, RunReport};
use dfv_rtl::{EvalMode, LaneSim, Module, SimStats, Simulator};

/// Lanes in the batched sweep (the lane engine's fixed width).
pub const BATCH_LANES: usize = 64;

/// One named deterministic workload: a module plus a seeded driver.
struct Workload {
    name: &'static str,
    module: fn() -> Module,
    /// Produces the input values for one cycle from the given rng and
    /// cycle index. Ports not mentioned hold their previous value — both
    /// engines share that semantics, so the same value stream drives
    /// scalar simulators and individual lanes alike.
    drive: fn(&mut SplitMix64, u64) -> Vec<(&'static str, Bv)>,
    /// Output ports folded into the cross-engine hash each cycle.
    hash_outputs: &'static [&'static str],
}

fn fir_module() -> Module {
    fir::rtl()
}

fn conv_module() -> Module {
    conv::rtl()
}

fn memsys_module() -> Module {
    memsys::rtl(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3])
}

/// Dense: a new sample every cycle, occasional stalls.
fn drive_fir(rng: &mut SplitMix64, _cycle: u64) -> Vec<(&'static str, Bv)> {
    let r = rng.next_u64();
    vec![
        ("in_valid", Bv::from_bool(true)),
        ("stall", Bv::from_bool(r & 0xF == 0)),
        ("x", Bv::from_u64(8, r >> 8)),
    ]
}

/// Medium density: a pixel on three cycles out of four.
fn drive_conv(rng: &mut SplitMix64, _cycle: u64) -> Vec<(&'static str, Bv)> {
    let r = rng.next_u64();
    vec![
        ("in_valid", Bv::from_bool(r & 3 != 0)),
        ("pix_in", Bv::from_u64(8, r >> 8)),
    ]
}

/// Sparse: one request every 16th cycle, idle otherwise — the dirty-cone
/// engine's best case.
fn drive_memsys(rng: &mut SplitMix64, cycle: u64) -> Vec<(&'static str, Bv)> {
    let req = cycle.is_multiple_of(16);
    let mut vals = vec![("req_valid", Bv::from_bool(req))];
    if req {
        let r = rng.next_u64();
        vals.push(("tag", Bv::from_u64(memsys::TAG_W, r)));
        vals.push(("addr", Bv::from_u64(memsys::ADDR_W, r >> 32)));
    }
    vals
}

const WORKLOADS: [Workload; 3] = [
    Workload {
        name: "fir_dense",
        module: fir_module,
        drive: drive_fir,
        hash_outputs: &["y", "out_valid"],
    },
    Workload {
        name: "conv_stream",
        module: conv_module,
        drive: drive_conv,
        hash_outputs: &["pix_out", "out_valid"],
    },
    Workload {
        name: "memsys_sparse",
        module: memsys_module,
        drive: drive_memsys,
        hash_outputs: &["resp0_valid", "resp0_data", "resp1_valid", "resp1_data"],
    },
];

/// The base stimulus seed for a workload.
fn base_seed(w: &Workload) -> u64 {
    0xD15C_0000 ^ w.name.len() as u64
}

/// Per-lane stream seed — lane 0 is the base stream itself, so the
/// single-stream sweep (`bench sim`) and lane 0 of the batched sweep
/// replay the identical workload.
fn lane_seed(base: u64, lane: usize) -> u64 {
    base ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn fnv_fold(hash: u64, limb: u64) -> u64 {
    (hash ^ limb).wrapping_mul(0x100000001b3)
}

/// Runs one workload stream on one scalar engine; returns the simulator's
/// counters and a fold of the watched outputs (engine-independent by
/// construction).
fn run_workload(w: &Workload, mode: EvalMode, seed: u64, cycles: u64) -> (SimStats, u64) {
    let module = (w.module)();
    let mut sim = match mode {
        EvalMode::DirtyCone => Simulator::new(module),
        EvalMode::FullOracle => Simulator::new_reference(module),
    }
    .expect("workload module builds");
    let mut rng = SplitMix64::new(seed);
    let mut hash = 0xcbf29ce484222325u64; // FNV-1a
    for cycle in 0..cycles {
        for (port, value) in (w.drive)(&mut rng, cycle) {
            sim.poke(port, value);
        }
        sim.step();
        for port in w.hash_outputs {
            for &limb in sim.output(port).limbs() {
                hash = fnv_fold(hash, limb);
            }
        }
    }
    (sim.stats(), hash)
}

/// Runs 64 independently-seeded streams of one workload on a single
/// [`LaneSim`]; returns the lane engine's counters and the per-lane
/// output hashes (same fold as [`run_workload`]).
fn run_workload_lanes(w: &Workload, cycles: u64) -> (dfv_rtl::LaneStats, Vec<u64>) {
    let mut sim = LaneSim::new((w.module)()).expect("workload module builds");
    let mut rngs: Vec<SplitMix64> = (0..BATCH_LANES)
        .map(|lane| SplitMix64::new(lane_seed(base_seed(w), lane)))
        .collect();
    let mut hashes = vec![0xcbf29ce484222325u64; BATCH_LANES];
    for cycle in 0..cycles {
        for (lane, rng) in rngs.iter_mut().enumerate() {
            for (port, value) in (w.drive)(rng, cycle) {
                sim.poke_lane(port, lane, value);
            }
        }
        sim.step();
        for (lane, hash) in hashes.iter_mut().enumerate() {
            for port in w.hash_outputs {
                for &limb in sim.output_lane(port, lane).limbs() {
                    *hash = fnv_fold(*hash, limb);
                }
            }
        }
    }
    (sim.stats(), hashes)
}

fn engine_tag(mode: EvalMode) -> &'static str {
    match mode {
        EvalMode::DirtyCone => "dirty",
        EvalMode::FullOracle => "reference",
    }
}

/// Runs the full sweep and reduces it to a [`RunReport`].
///
/// Counters and values are a pure function of the fixed seeds (the
/// canonical JSON is byte-reproducible); one timing phase per
/// workload/engine pair carries the wall-clock measurements.
///
/// # Panics
///
/// Panics if the two engines disagree on any workload's output stream —
/// that would be a simulator bug, not a measurement.
pub fn sim_bench_report(cycles: u64) -> RunReport {
    let mut rep = RunReport::new("sim_engine_sweep");
    rep.set_value("cycles_per_workload", Json::UInt(cycles));
    for w in &WORKLOADS {
        let mut results = Vec::new();
        for mode in [EvalMode::DirtyCone, EvalMode::FullOracle] {
            let (stats, hash) = rep.phase(format!("{}.{}", w.name, engine_tag(mode)), || {
                run_workload(w, mode, base_seed(w), cycles)
            });
            rep.set_counter(
                format!("sim.{}.{}.steps", w.name, engine_tag(mode)),
                stats.steps,
            );
            rep.set_counter(
                format!("sim.{}.{}.eval_passes", w.name, engine_tag(mode)),
                stats.eval_passes,
            );
            rep.set_counter(
                format!("sim.{}.{}.node_evals", w.name, engine_tag(mode)),
                stats.node_evals,
            );
            results.push((stats, hash));
        }
        let (dirty, reference) = (&results[0], &results[1]);
        assert_eq!(
            dirty.1, reference.1,
            "engines diverged on workload {}",
            w.name
        );
        rep.set_counter(format!("sim.{}.out_hash", w.name), dirty.1);
        let ratio = reference.0.node_evals * 100 / dirty.0.node_evals.max(1);
        rep.set_value(
            format!("node_evals_ref_over_dirty_x100.{}", w.name),
            Json::UInt(ratio),
        );
    }
    rep
}

/// Appends the 64-lane batched sweep to a report (`bench sim --batch`,
/// E15): for each workload, 64 independently-seeded streams on 64 scalar
/// dirty-cone simulators versus the same 64 streams on one [`LaneSim`].
/// Counters land under `sim_batch.*`; the per-lane output hashes must
/// agree or this panics (a lane/scalar divergence is a simulator bug).
///
/// `node_evals` counts kernel dispatches on both engines, and the lane
/// engine's per-lane fallback evaluations (division-class ops) are
/// reported — and charged — separately, so
/// `sim_batch.<w>.scalar.node_evals` versus
/// `sim_batch.<w>.lanes.node_evals + sim_batch.<w>.lanes.fallback_evals`
/// is an apples-to-apples work comparison.
pub fn add_batch_sweep(rep: &mut RunReport, cycles: u64) {
    rep.set_value("batch_lanes", Json::UInt(BATCH_LANES as u64));
    for w in &WORKLOADS {
        let (scalar_evals, scalar_hashes) = rep.phase(format!("{}.scalar64", w.name), || {
            let mut evals = 0u64;
            let mut hashes = Vec::with_capacity(BATCH_LANES);
            for lane in 0..BATCH_LANES {
                let (stats, hash) = run_workload(
                    w,
                    EvalMode::DirtyCone,
                    lane_seed(base_seed(w), lane),
                    cycles,
                );
                evals += stats.node_evals;
                hashes.push(hash);
            }
            (evals, hashes)
        });
        let (lane_stats, lane_hashes) = rep.phase(format!("{}.lanes", w.name), || {
            run_workload_lanes(w, cycles)
        });
        assert_eq!(
            scalar_hashes, lane_hashes,
            "lane engine diverged from scalar on workload {}",
            w.name
        );
        let out_hash = scalar_hashes
            .iter()
            .fold(0xcbf29ce484222325u64, |h, &x| fnv_fold(h, x));
        let lane_work = lane_stats.node_evals + lane_stats.lane_fallback_evals;
        rep.set_counter(
            format!("sim_batch.{}.scalar.node_evals", w.name),
            scalar_evals,
        );
        rep.set_counter(
            format!("sim_batch.{}.lanes.node_evals", w.name),
            lane_stats.node_evals,
        );
        rep.set_counter(
            format!("sim_batch.{}.lanes.fallback_evals", w.name),
            lane_stats.lane_fallback_evals,
        );
        rep.set_counter(format!("sim_batch.{}.out_hash", w.name), out_hash);
        rep.set_value(
            format!("node_evals_scalar_over_lanes_x100.{}", w.name),
            Json::UInt(scalar_evals * 100 / lane_work.max(1)),
        );
    }
}

/// Renders the sweep as a table plus the measured wall-clock speedups.
pub fn render_sim_bench(rep: &RunReport) -> String {
    let mut out = String::from(
        "simulator workload sweep: compiled dirty-cone engine vs full-reevaluation reference\n\n",
    );
    let mut rows = Vec::new();
    for w in &WORKLOADS {
        let dirty = rep.counter(&format!("sim.{}.dirty.node_evals", w.name));
        let reference = rep.counter(&format!("sim.{}.reference.node_evals", w.name));
        let (mut dirty_us, mut ref_us) = (0u128, 0u128);
        for p in rep.phases() {
            if p.name == format!("{}.dirty", w.name) {
                dirty_us += p.wall.as_micros();
            } else if p.name == format!("{}.reference", w.name) {
                ref_us += p.wall.as_micros();
            }
        }
        rows.push(vec![
            w.name.to_string(),
            dirty.to_string(),
            reference.to_string(),
            format!("{:.2}x", reference as f64 / dirty.max(1) as f64),
            format!("{dirty_us}"),
            format!("{ref_us}"),
            if dirty_us > 0 {
                format!("{:.2}x", ref_us as f64 / dirty_us as f64)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "workload",
            "dirty node_evals",
            "ref node_evals",
            "work ratio",
            "dirty us",
            "ref us",
            "wall speedup",
        ],
        &rows,
    ));
    out.push_str(
        "\nnode_evals are deterministic (canonical JSON payload); the us / speedup\ncolumns are measured wall-clock and live only in the full JSON's timing section.\n",
    );
    out
}

/// Renders the batched sweep table ([`add_batch_sweep`] counters).
pub fn render_sim_batch(rep: &RunReport) -> String {
    let mut out = format!(
        "batched campaign sweep: {BATCH_LANES} scalar simulators vs one {BATCH_LANES}-lane engine\n\n",
    );
    let mut rows = Vec::new();
    for w in &WORKLOADS {
        let scalar = rep.counter(&format!("sim_batch.{}.scalar.node_evals", w.name));
        let lanes = rep.counter(&format!("sim_batch.{}.lanes.node_evals", w.name));
        let fallback = rep.counter(&format!("sim_batch.{}.lanes.fallback_evals", w.name));
        let lane_work = lanes + fallback;
        let (mut scalar_us, mut lanes_us) = (0u128, 0u128);
        for p in rep.phases() {
            if p.name == format!("{}.scalar64", w.name) {
                scalar_us += p.wall.as_micros();
            } else if p.name == format!("{}.lanes", w.name) {
                lanes_us += p.wall.as_micros();
            }
        }
        rows.push(vec![
            w.name.to_string(),
            scalar.to_string(),
            lanes.to_string(),
            fallback.to_string(),
            format!("{:.2}x", scalar as f64 / lane_work.max(1) as f64),
            format!("{scalar_us}"),
            format!("{lanes_us}"),
            if lanes_us > 0 {
                format!("{:.2}x", scalar_us as f64 / lanes_us as f64)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "workload",
            "scalar64 node_evals",
            "lane dispatches",
            "lane fallbacks",
            "work ratio",
            "scalar us",
            "lanes us",
            "wall speedup",
        ],
        &rows,
    ));
    out.push_str(
        "\nper-lane output hashes are asserted identical before any counter is reported;\nthe work ratio charges every per-lane fallback evaluation against the lane engine.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_reproduces_and_sparse_workload_wins() {
        let a = sim_bench_report(200);
        let b = sim_bench_report(200);
        assert_eq!(a.canonical_json(), b.canonical_json());
        // On the sparse workload the dirty-cone engine must do strictly
        // less node work than the reference.
        let dirty = a.counter("sim.memsys_sparse.dirty.node_evals");
        let reference = a.counter("sim.memsys_sparse.reference.node_evals");
        assert!(dirty > 0);
        assert!(dirty < reference, "dirty {dirty} vs reference {reference}");
        // Timing never leaks into the canonical form.
        assert!(!a.canonical_json().contains("wall_us"));
    }

    #[test]
    fn batch_sweep_reproduces_and_beats_scalar_by_8x() {
        let mk = || {
            let mut rep = RunReport::new("batch_only");
            add_batch_sweep(&mut rep, 120);
            rep
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.canonical_json(), b.canonical_json());
        for w in ["fir_dense", "conv_stream", "memsys_sparse"] {
            let scalar = a.counter(&format!("sim_batch.{w}.scalar.node_evals"));
            let lane_work = a.counter(&format!("sim_batch.{w}.lanes.node_evals"))
                + a.counter(&format!("sim_batch.{w}.lanes.fallback_evals"));
            assert!(lane_work > 0, "{w}");
            assert!(
                lane_work * 8 <= scalar,
                "{w}: lane work {lane_work} vs scalar {scalar}"
            );
        }
    }
}
