//! The deterministic simulator workload sweep behind `bench sim` and E12.
//!
//! Three seeded workloads from `dfv-designs` — a dense FIR stream, a
//! valid-gated convolution stream, and a mostly-idle memory system — each
//! run on both evaluation engines ([`dfv_rtl::EvalMode::DirtyCone`] and
//! the full-reevaluation reference). The comparable payload is the
//! deterministic counter set (`steps`, `eval_passes`, `node_evals`, and a
//! cross-engine output hash); wall-clock lives only in the report's
//! timing section, so the canonical JSON reproduces byte-for-byte across
//! runs and machines while the full JSON still carries the measured
//! speedup.

use dfv_bits::{Bv, SplitMix64};
use dfv_designs::{conv, fir, memsys};
use dfv_obs::{Json, RunReport};
use dfv_rtl::{EvalMode, Module, SimStats, Simulator};

/// One named deterministic workload: a module plus a seeded driver.
struct Workload {
    name: &'static str,
    module: fn() -> Module,
    /// Pokes every input for one cycle from the given rng and cycle index.
    drive: fn(&mut Simulator, &mut SplitMix64, u64),
    /// Output ports folded into the cross-engine hash each cycle.
    hash_outputs: &'static [&'static str],
}

fn fir_module() -> Module {
    fir::rtl()
}

fn conv_module() -> Module {
    conv::rtl()
}

fn memsys_module() -> Module {
    memsys::rtl(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3])
}

/// Dense: a new sample every cycle, occasional stalls.
fn drive_fir(sim: &mut Simulator, rng: &mut SplitMix64, _cycle: u64) {
    let r = rng.next_u64();
    sim.poke("in_valid", Bv::from_bool(true));
    sim.poke("stall", Bv::from_bool(r & 0xF == 0));
    sim.poke("x", Bv::from_u64(8, r >> 8));
}

/// Medium density: a pixel on three cycles out of four.
fn drive_conv(sim: &mut Simulator, rng: &mut SplitMix64, _cycle: u64) {
    let r = rng.next_u64();
    sim.poke("in_valid", Bv::from_bool(r & 3 != 0));
    sim.poke("pix_in", Bv::from_u64(8, r >> 8));
}

/// Sparse: one request every 16th cycle, idle otherwise — the dirty-cone
/// engine's best case.
fn drive_memsys(sim: &mut Simulator, rng: &mut SplitMix64, cycle: u64) {
    let req = cycle.is_multiple_of(16);
    sim.poke("req_valid", Bv::from_bool(req));
    if req {
        let r = rng.next_u64();
        sim.poke("tag", Bv::from_u64(memsys::TAG_W, r));
        sim.poke("addr", Bv::from_u64(memsys::ADDR_W, r >> 32));
    }
}

const WORKLOADS: [Workload; 3] = [
    Workload {
        name: "fir_dense",
        module: fir_module,
        drive: drive_fir,
        hash_outputs: &["y", "out_valid"],
    },
    Workload {
        name: "conv_stream",
        module: conv_module,
        drive: drive_conv,
        hash_outputs: &["pix_out", "out_valid"],
    },
    Workload {
        name: "memsys_sparse",
        module: memsys_module,
        drive: drive_memsys,
        hash_outputs: &["resp0_valid", "resp0_data", "resp1_valid", "resp1_data"],
    },
];

/// Runs one workload on one engine; returns the simulator's counters and
/// a fold of the watched outputs (engine-independent by construction).
fn run_workload(w: &Workload, mode: EvalMode, cycles: u64) -> (SimStats, u64) {
    let module = (w.module)();
    let mut sim = match mode {
        EvalMode::DirtyCone => Simulator::new(module),
        EvalMode::FullOracle => Simulator::new_reference(module),
    }
    .expect("workload module builds");
    let mut rng = SplitMix64::new(0xD15C_0000 ^ w.name.len() as u64);
    let mut hash = 0xcbf29ce484222325u64; // FNV-1a
    for cycle in 0..cycles {
        (w.drive)(&mut sim, &mut rng, cycle);
        sim.step();
        for port in w.hash_outputs {
            for &limb in sim.output(port).limbs() {
                hash = (hash ^ limb).wrapping_mul(0x100000001b3);
            }
        }
    }
    (sim.stats(), hash)
}

fn engine_tag(mode: EvalMode) -> &'static str {
    match mode {
        EvalMode::DirtyCone => "dirty",
        EvalMode::FullOracle => "reference",
    }
}

/// Runs the full sweep and reduces it to a [`RunReport`].
///
/// Counters and values are a pure function of the fixed seeds (the
/// canonical JSON is byte-reproducible); one timing phase per
/// workload/engine pair carries the wall-clock measurements.
///
/// # Panics
///
/// Panics if the two engines disagree on any workload's output stream —
/// that would be a simulator bug, not a measurement.
pub fn sim_bench_report(cycles: u64) -> RunReport {
    let mut rep = RunReport::new("sim_engine_sweep");
    rep.set_value("cycles_per_workload", Json::UInt(cycles));
    for w in &WORKLOADS {
        let mut results = Vec::new();
        for mode in [EvalMode::DirtyCone, EvalMode::FullOracle] {
            let (stats, hash) = rep.phase(format!("{}.{}", w.name, engine_tag(mode)), || {
                run_workload(w, mode, cycles)
            });
            rep.set_counter(
                format!("sim.{}.{}.steps", w.name, engine_tag(mode)),
                stats.steps,
            );
            rep.set_counter(
                format!("sim.{}.{}.eval_passes", w.name, engine_tag(mode)),
                stats.eval_passes,
            );
            rep.set_counter(
                format!("sim.{}.{}.node_evals", w.name, engine_tag(mode)),
                stats.node_evals,
            );
            results.push((stats, hash));
        }
        let (dirty, reference) = (&results[0], &results[1]);
        assert_eq!(
            dirty.1, reference.1,
            "engines diverged on workload {}",
            w.name
        );
        rep.set_counter(format!("sim.{}.out_hash", w.name), dirty.1);
        let ratio = reference.0.node_evals * 100 / dirty.0.node_evals.max(1);
        rep.set_value(
            format!("node_evals_ref_over_dirty_x100.{}", w.name),
            Json::UInt(ratio),
        );
    }
    rep
}

/// Renders the sweep as a table plus the measured wall-clock speedups.
pub fn render_sim_bench(rep: &RunReport) -> String {
    let mut out = String::from(
        "simulator workload sweep: compiled dirty-cone engine vs full-reevaluation reference\n\n",
    );
    let mut rows = Vec::new();
    for w in &WORKLOADS {
        let dirty = rep.counter(&format!("sim.{}.dirty.node_evals", w.name));
        let reference = rep.counter(&format!("sim.{}.reference.node_evals", w.name));
        let (mut dirty_us, mut ref_us) = (0u128, 0u128);
        for p in rep.phases() {
            if p.name == format!("{}.dirty", w.name) {
                dirty_us += p.wall.as_micros();
            } else if p.name == format!("{}.reference", w.name) {
                ref_us += p.wall.as_micros();
            }
        }
        rows.push(vec![
            w.name.to_string(),
            dirty.to_string(),
            reference.to_string(),
            format!("{:.2}x", reference as f64 / dirty.max(1) as f64),
            format!("{dirty_us}"),
            format!("{ref_us}"),
            if dirty_us > 0 {
                format!("{:.2}x", ref_us as f64 / dirty_us as f64)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "workload",
            "dirty node_evals",
            "ref node_evals",
            "work ratio",
            "dirty us",
            "ref us",
            "wall speedup",
        ],
        &rows,
    ));
    out.push_str(
        "\nnode_evals are deterministic (canonical JSON payload); the us / speedup\ncolumns are measured wall-clock and live only in the full JSON's timing section.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_reproduces_and_sparse_workload_wins() {
        let a = sim_bench_report(200);
        let b = sim_bench_report(200);
        assert_eq!(a.canonical_json(), b.canonical_json());
        // On the sparse workload the dirty-cone engine must do strictly
        // less node work than the reference.
        let dirty = a.counter("sim.memsys_sparse.dirty.node_evals");
        let reference = a.counter("sim.memsys_sparse.reference.node_evals");
        assert!(dirty > 0);
        assert!(dirty < reference, "dirty {dirty} vs reference {reference}");
        // Timing never leaks into the canonical form.
        assert!(!a.canonical_json().contains("wall_us"));
    }
}
