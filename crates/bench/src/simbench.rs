//! The deterministic simulator workload sweep behind `bench sim` and E16,
//! plus the 64-lane batched sweep behind `bench sim --batch` and E15.
//!
//! Three seeded workloads from `dfv-designs` — a dense FIR stream, a
//! valid-gated convolution stream, and a mostly-idle memory system — each
//! run on the scalar evaluation engines: the compiled dirty-cone
//! interpreter ([`dfv_rtl::EvalMode::DirtyCone`]), the register-bytecode
//! VM ([`dfv_rtl::EvalMode::Bytecode`]), and the full-reevaluation
//! reference oracle. The oracle always runs — every other engine's output
//! hash is asserted against it before any number lands in the report.
//! The comparable payload is the deterministic counter set (`steps`,
//! `eval_passes`, `node_evals`, and a cross-engine output hash);
//! wall-clock lives only in the report's timing section, so the canonical
//! JSON reproduces byte-for-byte across runs and machines while the full
//! JSON still carries the measured speedup.
//!
//! `node_evals` means "work units dispatched" per engine: IR nodes for
//! the interpreters, VM instructions for the bytecode engine (fusion can
//! make it smaller than the node count at equal coverage). Cross-engine
//! work ratios are therefore approximate; the hashes are exact.
//!
//! The batched sweep ([`add_batch_sweep`]) measures campaign throughput
//! instead of single-stream latency: 64 independently-seeded copies of
//! each workload run once per engine — 64 scalar simulators versus one
//! 64-lane [`dfv_rtl::LaneSim`] carrying one stream per lane — with the
//! per-lane output hashes asserted identical before any counter is
//! reported. `node_evals` counts kernel dispatches, so the lane engine's
//! ~1/64 dispatch count (plus its per-lane fallback evaluations for
//! division-class ops) is the honest work ratio.

use dfv_bits::{Bv, SplitMix64};
use dfv_designs::{conv, fir, memsys};
use dfv_obs::{Json, RunReport};
use dfv_rtl::{EvalMode, LaneSim, Module, SimStats, Simulator};

/// Lanes in the batched sweep (the lane engine's fixed width).
pub const BATCH_LANES: usize = 64;

/// Wall-clock repetitions per workload/engine pair in the scalar sweep;
/// the recorded time is the minimum across repetitions.
const TIMING_REPS: usize = 5;

/// One named deterministic workload: a module plus a seeded driver.
struct Workload {
    name: &'static str,
    module: fn() -> Module,
    /// Pushes the input values for one cycle into `out` (cleared and
    /// reused by the harness so driving allocates no per-cycle `Vec`).
    /// Ports not mentioned hold their previous value — both engines share
    /// that semantics, so the same value stream drives scalar simulators
    /// and individual lanes alike.
    drive: fn(&mut SplitMix64, u64, &mut Vec<(&'static str, Bv)>),
    /// Output ports folded into the cross-engine hash each cycle.
    hash_outputs: &'static [&'static str],
}

fn fir_module() -> Module {
    fir::rtl()
}

fn conv_module() -> Module {
    conv::rtl()
}

fn memsys_module() -> Module {
    memsys::rtl(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3])
}

/// Dense: a new sample every cycle, occasional stalls. `in_valid` is
/// constant, so it is driven once — ports hold their value, and a poke
/// that changes nothing is free on every engine.
fn drive_fir(rng: &mut SplitMix64, cycle: u64, out: &mut Vec<(&'static str, Bv)>) {
    let r = rng.next_u64();
    if cycle == 0 {
        out.push(("in_valid", Bv::from_bool(true)));
    }
    out.push(("stall", Bv::from_bool(r & 0xF == 0)));
    out.push(("x", Bv::from_u64(8, r >> 8)));
}

/// Medium density: a pixel on three cycles out of four.
fn drive_conv(rng: &mut SplitMix64, _cycle: u64, out: &mut Vec<(&'static str, Bv)>) {
    let r = rng.next_u64();
    out.push(("in_valid", Bv::from_bool(r & 3 != 0)));
    out.push(("pix_in", Bv::from_u64(8, r >> 8)));
}

/// Sparse: one request every 16th cycle, idle otherwise — the dirty-cone
/// engine's best case.
fn drive_memsys(rng: &mut SplitMix64, cycle: u64, out: &mut Vec<(&'static str, Bv)>) {
    // Drive only edges: raise req_valid on request cycles, drop it the
    // cycle after. Ports hold their value in between, so the effective
    // stimulus (and every engine's counters) is identical to re-driving
    // the idle value each cycle.
    if cycle.is_multiple_of(16) {
        let r = rng.next_u64();
        out.push(("req_valid", Bv::from_bool(true)));
        out.push(("tag", Bv::from_u64(memsys::TAG_W, r)));
        out.push(("addr", Bv::from_u64(memsys::ADDR_W, r >> 32)));
    } else if cycle % 16 == 1 {
        out.push(("req_valid", Bv::from_bool(false)));
    }
}

const WORKLOADS: [Workload; 3] = [
    Workload {
        name: "fir_dense",
        module: fir_module,
        drive: drive_fir,
        hash_outputs: &["y", "out_valid"],
    },
    Workload {
        name: "conv_stream",
        module: conv_module,
        drive: drive_conv,
        hash_outputs: &["pix_out", "out_valid"],
    },
    Workload {
        name: "memsys_sparse",
        module: memsys_module,
        drive: drive_memsys,
        hash_outputs: &["resp0_valid", "resp0_data", "resp1_valid", "resp1_data"],
    },
];

/// The base stimulus seed for a workload.
fn base_seed(w: &Workload) -> u64 {
    0xD15C_0000 ^ w.name.len() as u64
}

/// Per-lane stream seed — lane 0 is the base stream itself, so the
/// single-stream sweep (`bench sim`) and lane 0 of the batched sweep
/// replay the identical workload.
fn lane_seed(base: u64, lane: usize) -> u64 {
    base ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn fnv_fold(hash: u64, limb: u64) -> u64 {
    (hash ^ limb).wrapping_mul(0x100000001b3)
}

/// Runs one workload stream on one scalar engine; returns the simulator's
/// counters and a fold of the watched outputs (engine-independent by
/// construction).
fn run_workload(w: &Workload, mode: EvalMode, seed: u64, cycles: u64) -> (SimStats, u64) {
    let module = (w.module)();
    let mut sim = match mode {
        EvalMode::DirtyCone => Simulator::new(module),
        EvalMode::Bytecode => Simulator::new_vm(module),
        EvalMode::FullOracle => Simulator::new_reference(module),
    }
    .expect("workload module builds");
    // Resolve the hashed ports once; the read loop is name-scan-free so
    // the sweep times the engines, not the port lookups.
    let out_idx: Vec<usize> = w
        .hash_outputs
        .iter()
        .map(|p| sim.module().output_index(p).expect("workload output port"))
        .collect();
    let mut rng = SplitMix64::new(seed);
    let mut hash = 0xcbf29ce484222325u64; // FNV-1a
    let mut stim = Vec::new();
    // Tiny name→index cache for driven ports (drive reuses the same
    // `'static` literals each cycle, so the pointer comparison hits);
    // resolves each port name once instead of scanning it every poke.
    let mut in_idx: Vec<(&'static str, usize)> = Vec::new();
    for cycle in 0..cycles {
        stim.clear();
        (w.drive)(&mut rng, cycle, &mut stim);
        for (port, value) in stim.drain(..) {
            let idx = match in_idx
                .iter()
                .find(|(p, _)| std::ptr::eq(*p, port) || *p == port)
            {
                Some(&(_, i)) => i,
                None => {
                    let i = sim.module().input_index(port).expect("workload input port");
                    in_idx.push((port, i));
                    i
                }
            };
            sim.poke_at(idx, value);
        }
        sim.step();
        sim.for_each_output_limb(&out_idx, |limb| hash = fnv_fold(hash, limb));
    }
    (sim.stats(), hash)
}

/// Runs 64 independently-seeded streams of one workload on a single
/// [`LaneSim`]; returns the lane engine's counters and the per-lane
/// output hashes (same fold as [`run_workload`]).
fn run_workload_lanes(w: &Workload, cycles: u64) -> (dfv_rtl::LaneStats, Vec<u64>) {
    let mut sim = LaneSim::new((w.module)()).expect("workload module builds");
    let mut rngs: Vec<SplitMix64> = (0..BATCH_LANES)
        .map(|lane| SplitMix64::new(lane_seed(base_seed(w), lane)))
        .collect();
    let mut hashes = vec![0xcbf29ce484222325u64; BATCH_LANES];
    let mut stim = Vec::new();
    for cycle in 0..cycles {
        for (lane, rng) in rngs.iter_mut().enumerate() {
            stim.clear();
            (w.drive)(rng, cycle, &mut stim);
            for (port, value) in stim.drain(..) {
                sim.poke_lane(port, lane, value);
            }
        }
        sim.step();
        for (lane, hash) in hashes.iter_mut().enumerate() {
            for port in w.hash_outputs {
                for &limb in sim.output_lane(port, lane).limbs() {
                    *hash = fnv_fold(*hash, limb);
                }
            }
        }
    }
    (sim.stats(), hashes)
}

fn engine_tag(mode: EvalMode) -> &'static str {
    match mode {
        EvalMode::DirtyCone => "dirty",
        EvalMode::Bytecode => "vm",
        EvalMode::FullOracle => "reference",
    }
}

/// All scalar engines, reference last (its hash anchors the parity
/// asserts, and "compiled engines first" keeps the table order stable).
pub const ALL_ENGINES: [EvalMode; 3] = [
    EvalMode::DirtyCone,
    EvalMode::Bytecode,
    EvalMode::FullOracle,
];

/// Runs the full sweep over all three engines; see
/// [`sim_bench_report_engines`].
pub fn sim_bench_report(cycles: u64) -> RunReport {
    sim_bench_report_engines(cycles, &ALL_ENGINES)
}

/// Runs the workload sweep on the requested `engines` and reduces it to a
/// [`RunReport`]. The full-reevaluation reference always runs (it is
/// appended if absent) — it is the oracle every other engine's output
/// hash is checked against.
///
/// Counters and values are a pure function of the fixed seeds (the
/// canonical JSON is byte-reproducible); one timing phase per
/// workload/engine pair carries the wall-clock measurements.
///
/// # Panics
///
/// Panics if any engine disagrees with the reference oracle on any
/// workload's output stream — that would be a simulator bug, not a
/// measurement. The assert fires before the report (and thus any timing)
/// is returned.
pub fn sim_bench_report_engines(cycles: u64, engines: &[EvalMode]) -> RunReport {
    let mut rep = RunReport::new("sim_engine_sweep");
    add_engine_sweep(&mut rep, cycles, engines);
    rep
}

/// Appends the scalar engine sweep to an existing report (the body of
/// [`sim_bench_report_engines`], reused by E16). Same counters, same
/// oracle-anchored parity asserts.
pub fn add_engine_sweep(rep: &mut RunReport, cycles: u64, engines: &[EvalMode]) {
    let mut modes: Vec<EvalMode> = Vec::new();
    for &m in engines.iter().chain([EvalMode::FullOracle].iter()) {
        if !modes.contains(&m) {
            modes.push(m);
        }
    }
    rep.set_value("cycles_per_workload", Json::UInt(cycles));
    for w in &WORKLOADS {
        // Best-of-N wall clock, engines interleaved within each
        // repetition: the per-engine timed section is a few milliseconds,
        // so a single run is dominated by scheduler noise on a shared
        // machine, and timing engines seconds apart would let load drift
        // skew their *ratio*. The counters and hash are a pure function
        // of the seed — identical across repetitions — so only the
        // minimum wall time per engine is recorded.
        let mut best = vec![std::time::Duration::MAX; modes.len()];
        let mut outs: Vec<Option<(SimStats, u64)>> = vec![None; modes.len()];
        for _ in 0..TIMING_REPS {
            for (k, &mode) in modes.iter().enumerate() {
                let t = std::time::Instant::now();
                let r = run_workload(w, mode, base_seed(w), cycles);
                best[k] = best[k].min(t.elapsed());
                outs[k].get_or_insert(r);
            }
        }
        let mut results = Vec::new();
        for (k, &mode) in modes.iter().enumerate() {
            rep.push_phase(format!("{}.{}", w.name, engine_tag(mode)), best[k]);
            let (stats, hash) = outs[k].take().expect("at least one timing rep");
            rep.set_counter(
                format!("sim.{}.{}.steps", w.name, engine_tag(mode)),
                stats.steps,
            );
            rep.set_counter(
                format!("sim.{}.{}.eval_passes", w.name, engine_tag(mode)),
                stats.eval_passes,
            );
            rep.set_counter(
                format!("sim.{}.{}.node_evals", w.name, engine_tag(mode)),
                stats.node_evals,
            );
            results.push((mode, stats, hash));
        }
        let &(_, ref ref_stats, ref_hash) = results
            .iter()
            .find(|(m, ..)| *m == EvalMode::FullOracle)
            .expect("reference always runs");
        for (mode, stats, hash) in &results {
            if *mode == EvalMode::FullOracle {
                continue;
            }
            assert_eq!(
                *hash,
                ref_hash,
                "{} engine diverged from the reference oracle on workload {}",
                engine_tag(*mode),
                w.name
            );
            rep.set_value(
                format!("node_evals_ref_over_{}_x100.{}", engine_tag(*mode), w.name),
                Json::UInt(ref_stats.node_evals * 100 / stats.node_evals.max(1)),
            );
        }
        rep.set_counter(format!("sim.{}.out_hash", w.name), ref_hash);
    }
}

/// Appends the 64-lane batched sweep to a report (`bench sim --batch`,
/// E15): for each workload, 64 independently-seeded streams on 64 scalar
/// dirty-cone simulators versus the same 64 streams on one [`LaneSim`].
/// Counters land under `sim_batch.*`; the per-lane output hashes must
/// agree or this panics (a lane/scalar divergence is a simulator bug).
///
/// `node_evals` counts kernel dispatches on both engines, and the lane
/// engine's per-lane fallback evaluations (division-class ops) are
/// reported — and charged — separately, so
/// `sim_batch.<w>.scalar.node_evals` versus
/// `sim_batch.<w>.lanes.node_evals + sim_batch.<w>.lanes.fallback_evals`
/// is an apples-to-apples work comparison.
pub fn add_batch_sweep(rep: &mut RunReport, cycles: u64) {
    rep.set_value("batch_lanes", Json::UInt(BATCH_LANES as u64));
    for w in &WORKLOADS {
        let (scalar_evals, scalar_hashes) = rep.phase(format!("{}.scalar64", w.name), || {
            let mut evals = 0u64;
            let mut hashes = Vec::with_capacity(BATCH_LANES);
            for lane in 0..BATCH_LANES {
                let (stats, hash) = run_workload(
                    w,
                    EvalMode::DirtyCone,
                    lane_seed(base_seed(w), lane),
                    cycles,
                );
                evals += stats.node_evals;
                hashes.push(hash);
            }
            (evals, hashes)
        });
        let (lane_stats, lane_hashes) = rep.phase(format!("{}.lanes", w.name), || {
            run_workload_lanes(w, cycles)
        });
        assert_eq!(
            scalar_hashes, lane_hashes,
            "lane engine diverged from scalar on workload {}",
            w.name
        );
        let out_hash = scalar_hashes
            .iter()
            .fold(0xcbf29ce484222325u64, |h, &x| fnv_fold(h, x));
        let lane_work = lane_stats.node_evals + lane_stats.lane_fallback_evals;
        rep.set_counter(
            format!("sim_batch.{}.scalar.node_evals", w.name),
            scalar_evals,
        );
        rep.set_counter(
            format!("sim_batch.{}.lanes.node_evals", w.name),
            lane_stats.node_evals,
        );
        rep.set_counter(
            format!("sim_batch.{}.lanes.fallback_evals", w.name),
            lane_stats.lane_fallback_evals,
        );
        rep.set_counter(format!("sim_batch.{}.out_hash", w.name), out_hash);
        rep.set_value(
            format!("node_evals_scalar_over_lanes_x100.{}", w.name),
            Json::UInt(scalar_evals * 100 / lane_work.max(1)),
        );
    }
}

/// Wall-clock of the phase `{workload}.{tag}`, in microseconds.
fn phase_us(rep: &RunReport, workload: &str, tag: &str) -> u128 {
    let name = format!("{workload}.{tag}");
    rep.phases()
        .iter()
        .filter(|p| p.name == name)
        .map(|p| p.wall.as_micros())
        .sum()
}

/// Renders the sweep as a table — one row per workload x engine that ran
/// — plus the measured wall-clock speedups against the reference oracle.
pub fn render_sim_bench(rep: &RunReport) -> String {
    let mut out = String::from(
        "simulator workload sweep: compiled engines (dirty-cone interpreter, bytecode VM)\nvs the full-reevaluation reference oracle\n\n",
    );
    let mut rows = Vec::new();
    for w in &WORKLOADS {
        let ref_evals = rep.counter(&format!("sim.{}.reference.node_evals", w.name));
        let ref_us = phase_us(rep, w.name, "reference");
        for mode in ALL_ENGINES {
            let tag = engine_tag(mode);
            if rep.counter(&format!("sim.{}.{tag}.steps", w.name)) == 0 {
                continue; // engine not part of this run
            }
            let evals = rep.counter(&format!("sim.{}.{tag}.node_evals", w.name));
            let us = phase_us(rep, w.name, tag);
            rows.push(vec![
                w.name.to_string(),
                tag.to_string(),
                evals.to_string(),
                format!("{:.2}x", ref_evals as f64 / evals.max(1) as f64),
                format!("{us}"),
                if us > 0 {
                    format!("{:.2}x", ref_us as f64 / us as f64)
                } else {
                    "-".into()
                },
            ]);
        }
    }
    out.push_str(&crate::render_table(
        &[
            "workload",
            "engine",
            "node_evals",
            "work vs ref",
            "us",
            "wall vs ref",
        ],
        &rows,
    ));
    out.push_str(
        "\nnode_evals are deterministic work units per engine (IR nodes for the\ninterpreters, VM instructions for the bytecode engine) and form the canonical\nJSON payload; the us / speedup columns are measured wall-clock and live only\nin the full JSON's timing section. Every engine's output hash is asserted\nagainst the reference oracle before the report exists.\n",
    );
    out
}

/// Renders the batched sweep table ([`add_batch_sweep`] counters).
pub fn render_sim_batch(rep: &RunReport) -> String {
    let mut out = format!(
        "batched campaign sweep: {BATCH_LANES} scalar simulators vs one {BATCH_LANES}-lane engine\n\n",
    );
    let mut rows = Vec::new();
    for w in &WORKLOADS {
        let scalar = rep.counter(&format!("sim_batch.{}.scalar.node_evals", w.name));
        let lanes = rep.counter(&format!("sim_batch.{}.lanes.node_evals", w.name));
        let fallback = rep.counter(&format!("sim_batch.{}.lanes.fallback_evals", w.name));
        let lane_work = lanes + fallback;
        let (mut scalar_us, mut lanes_us) = (0u128, 0u128);
        for p in rep.phases() {
            if p.name == format!("{}.scalar64", w.name) {
                scalar_us += p.wall.as_micros();
            } else if p.name == format!("{}.lanes", w.name) {
                lanes_us += p.wall.as_micros();
            }
        }
        rows.push(vec![
            w.name.to_string(),
            scalar.to_string(),
            lanes.to_string(),
            fallback.to_string(),
            format!("{:.2}x", scalar as f64 / lane_work.max(1) as f64),
            format!("{scalar_us}"),
            format!("{lanes_us}"),
            if lanes_us > 0 {
                format!("{:.2}x", scalar_us as f64 / lanes_us as f64)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "workload",
            "scalar64 node_evals",
            "lane dispatches",
            "lane fallbacks",
            "work ratio",
            "scalar us",
            "lanes us",
            "wall speedup",
        ],
        &rows,
    ));
    out.push_str(
        "\nper-lane output hashes are asserted identical before any counter is reported;\nthe work ratio charges every per-lane fallback evaluation against the lane engine.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_reproduces_and_sparse_workload_wins() {
        let a = sim_bench_report(200);
        let b = sim_bench_report(200);
        assert_eq!(a.canonical_json(), b.canonical_json());
        // On the sparse workload the dirty-cone engine must do strictly
        // less node work than the reference.
        let dirty = a.counter("sim.memsys_sparse.dirty.node_evals");
        let reference = a.counter("sim.memsys_sparse.reference.node_evals");
        assert!(dirty > 0);
        assert!(dirty < reference, "dirty {dirty} vs reference {reference}");
        // Timing never leaks into the canonical form.
        assert!(!a.canonical_json().contains("wall_us"));
    }

    #[test]
    fn vm_rows_present_and_engine_subsets_reproduce() {
        let a = sim_bench_report(200);
        for w in ["fir_dense", "conv_stream", "memsys_sparse"] {
            // The default sweep carries a vm row whose step/pass counters
            // match the interpreter's (same stimulus, same schedule).
            assert_eq!(
                a.counter(&format!("sim.{w}.vm.steps")),
                a.counter(&format!("sim.{w}.dirty.steps"))
            );
            assert!(a.counter(&format!("sim.{w}.vm.node_evals")) > 0);
        }
        // A vm-only run appends the reference oracle automatically, skips
        // the interpreter, and reproduces byte-for-byte.
        let v1 = sim_bench_report_engines(150, &[EvalMode::Bytecode]);
        let v2 = sim_bench_report_engines(150, &[EvalMode::Bytecode]);
        assert_eq!(v1.canonical_json(), v2.canonical_json());
        assert!(v1.counter("sim.fir_dense.reference.steps") > 0);
        assert_eq!(v1.counter("sim.fir_dense.dirty.steps"), 0);
    }

    #[test]
    fn batch_sweep_reproduces_and_beats_scalar_by_8x() {
        let mk = || {
            let mut rep = RunReport::new("batch_only");
            add_batch_sweep(&mut rep, 120);
            rep
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.canonical_json(), b.canonical_json());
        for w in ["fir_dense", "conv_stream", "memsys_sparse"] {
            let scalar = a.counter(&format!("sim_batch.{w}.scalar.node_evals"));
            let lane_work = a.counter(&format!("sim_batch.{w}.lanes.node_evals"))
                + a.counter(&format!("sim_batch.{w}.lanes.fallback_evals"));
            assert!(lane_work > 0, "{w}");
            assert!(
                lane_work * 8 <= scalar,
                "{w}: lane work {lane_work} vs scalar {scalar}"
            );
        }
    }
}
