//! E1 — Figure 1: non-associativity of finite-precision addition.
//!
//! Reproduces the paper's Figure 1 with the sequential equivalence checker:
//! the `int`-style C model masks the 8-bit overflow and SEC produces the
//! concrete witness; the bit-accurate model is proven equivalent; the
//! widened-temporary fix makes the `int`-style model pass too. A width
//! sweep shows the (modest) growth in solve effort.

use std::time::Instant;

use dfv_designs::alu;
use dfv_sec::{check_equivalence, EquivOutcome};
use dfv_slmir::{elaborate, parse};

use crate::render_table;

/// Runs E1 and renders its report.
pub fn e1_fig1_nonassociativity() -> String {
    let mut out = String::from("E1 — Fig 1: non-associativity / int-masking (SEC verdicts)\n\n");

    // Part A: the three SLM variants against the 8-bit-temp RTL.
    let mut rows = Vec::new();
    for (name, src, temp_w) in [
        ("bit-accurate vs temp8", alu::slm_bit_accurate(), 8u32),
        ("int-style    vs temp8", alu::slm_int_style(), 8),
        ("reassociated vs temp8", alu::slm_reassociated(), 8),
        ("int-style    vs temp9 (fix)", alu::slm_int_style(), 9),
    ] {
        let slm = elaborate(&parse(src).expect("parses"), "alu").expect("conditioned");
        let rtl = alu::rtl(8, temp_w);
        let t0 = Instant::now();
        let report = check_equivalence(&slm, &rtl, &alu::equiv_spec()).expect("valid spec");
        let dt = t0.elapsed();
        let (verdict, witness) = match &report.outcome {
            EquivOutcome::Equivalent => ("EQUIVALENT".to_string(), "-".to_string()),
            EquivOutcome::NotEquivalent(cex) => {
                let vals: Vec<String> = cex
                    .slm_inputs
                    .iter()
                    .map(|(n, v)| format!("{n}={}", v.to_i64()))
                    .collect();
                ("COUNTEREXAMPLE".to_string(), vals.join(" "))
            }
            EquivOutcome::Inconclusive { reason, .. } => {
                ("INCONCLUSIVE".to_string(), reason.to_string())
            }
        };
        rows.push(vec![
            name.to_string(),
            verdict,
            witness,
            report.cnf_vars.to_string(),
            format!("{dt:.1?}"),
        ]);
    }
    out.push_str(&render_table(
        &["pair", "verdict", "witness", "cnf vars", "time"],
        &rows,
    ));

    // Part B: width sweep of the diverging pair (solve effort growth).
    out.push_str("\nwidth sweep (int-style SLM vs narrow RTL — always a counterexample):\n");
    let mut rows = Vec::new();
    // Up to 24 bits: beyond that the operands stop being narrower than
    // `int`, so C's promotion no longer masks anything (there is no bug to
    // find at 32).
    for width in [4u32, 8, 12, 16, 20, 24] {
        // Regenerate the SLM at this width.
        let src = format!(
            "int<{ret}> alu(int<{w}> a, int<{w}> b, int<{w}> c) {{
                int<{ww}> t = (int<{ww}>) a + (int<{ww}>) b;
                return (int<{ret}>)(t + (int<{ww}>) c);
            }}",
            w = width,
            ww = width.max(32) + 2, // comfortably wide "int-like" temp
            ret = width + 1
        );
        let slm = elaborate(&parse(&src).expect("parses"), "alu").expect("conditioned");
        let rtl = alu::rtl(width, width);
        let t0 = Instant::now();
        let report = check_equivalence(&slm, &rtl, &alu::equiv_spec()).expect("valid spec");
        let dt = t0.elapsed();
        let found = matches!(report.outcome, EquivOutcome::NotEquivalent(_));
        rows.push(vec![
            width.to_string(),
            if found { "cex found" } else { "EQUIV?!" }.to_string(),
            report.cnf_vars.to_string(),
            report.cnf_clauses.to_string(),
            report.solver_stats.conflicts.to_string(),
            format!("{dt:.1?}"),
        ]);
    }
    out.push_str(&render_table(
        &["width", "verdict", "vars", "clauses", "conflicts", "time"],
        &rows,
    ));
    out.push_str(
        "\nshape: the int-style model always diverges from the narrow datapath \
         (the paper's Fig 1),\nthe bit-accurate model is proven equivalent, and \
         widening the RTL temporary fixes the\nint-style pair — with SEC effort \
         growing only modestly in width.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_produces_expected_shape() {
        let report = super::e1_fig1_nonassociativity();
        assert!(report.contains("COUNTEREXAMPLE"));
        assert!(report.contains("EQUIVALENT"));
        assert!(!report.contains("EQUIV?!"));
    }
}
