//! E9 — interface-fault robustness: sweeping the Fig 2 hazard taxonomy
//! over live co-simulated designs.
//!
//! The paper's Fig 2 blames most apparent SLM↔RTL divergence on interface
//! timing: latency, stalls, back-pressure, out-of-order completion. E9
//! turns that around and asks whether the comparison layer is *robust*:
//! for each fault class injected into a design's real RTL output stream,
//! is it detected (with provenance), tolerated (by the declared
//! comparator policy), or masked (an undetected escape)?
//!
//! Three blocks are swept:
//!
//! * **fir** — the streaming FIR over random samples, compared in-order
//!   untimed (the latency-divergent pair);
//! * **memsys** — the dual-bank tagged lookup engine, compared
//!   out-of-order by tag (the reorder-divergent pair);
//! * **fir-dc** — the FIR fed a constant input, exhibiting the one
//!   legitimate *masked* cell: reordering identical values is invisible
//!   to any value-based comparator.

use dfv_bits::{Bv, SplitMix64};
use dfv_core::{FaultBlock, FaultCampaign};
use dfv_cosim::{ComparatorPolicy, StreamItem};
use dfv_designs::{fir, memsys};
use dfv_rtl::Simulator;

/// Deterministic campaign seed: E9 must render identically run to run.
const SEED: u64 = 0x00E9_0B05;

/// Masks a signed accumulator into the FIR's 18-bit output encoding.
fn fir_out(acc: i64) -> Bv {
    Bv::from_u64(fir::OUT_WIDTH, (acc as u64) & ((1 << fir::OUT_WIDTH) - 1))
}

/// Builds a FIR fault block: SLM convolution as the expected stream, the
/// streaming RTL's sampled outputs as the actual stream.
fn fir_block(name: &str, samples: &[i8]) -> FaultBlock {
    // Expected: direct convolution with zero history, one item per sample.
    let mut expected = Vec::with_capacity(samples.len());
    for n in 0..samples.len() {
        let mut acc = 0i64;
        for (k, &c) in fir::COEFFS.iter().enumerate() {
            if k > n {
                break;
            }
            acc += c * samples[n - k] as i64;
        }
        expected.push(StreamItem {
            value: fir_out(acc),
            time: n as u64,
        });
    }
    // Actual: drive the RTL one sample per cycle, sample y on out_valid.
    let mut sim = Simulator::new(fir::rtl()).expect("fir rtl builds");
    sim.poke("stall", Bv::from_bool(false));
    let mut actual = Vec::new();
    for cycle in 0..samples.len() as u64 + 2 {
        match samples.get(cycle as usize) {
            Some(&x) => {
                sim.poke("in_valid", Bv::from_bool(true));
                sim.poke("x", Bv::from_u64(8, (x as u64) & 0xFF));
            }
            None => sim.poke("in_valid", Bv::from_bool(false)),
        }
        sim.step();
        if sim.output("out_valid").bit(0) {
            actual.push(StreamItem {
                value: sim.output("y"),
                time: cycle,
            });
        }
    }
    FaultBlock {
        name: name.into(),
        expected,
        actual,
        policy: ComparatorPolicy::InOrder {
            tolerance: u64::MAX,
            max_skew: None,
        },
    }
}

/// Builds the memsys fault block: zero-delay SLM lookups in issue order
/// vs the dual-bank RTL's tagged, latency-split responses.
fn memsys_block() -> FaultBlock {
    let mut table = [0u8; 16];
    for (i, v) in table.iter_mut().enumerate() {
        *v = (i as u8) * 11 + 5;
    }
    // Interleave fast- and slow-bank requests so the RTL genuinely
    // reorders; tags stay unique among in-flight transactions.
    let mut rng = SplitMix64::new(SEED ^ 0xA5);
    let reqs: Vec<(u64, u64)> = (0..24).map(|i| (i % 8, rng.below(16))).collect();
    let expected: Vec<StreamItem> = reqs
        .iter()
        .enumerate()
        .map(|(i, &(tag, addr))| StreamItem {
            value: memsys::pack_response(tag, memsys::slm_golden(&table, addr as u8) as u64),
            time: i as u64,
        })
        .collect();
    let mut sim = Simulator::new(memsys::rtl(&table)).expect("memsys rtl builds");
    let mut actual = Vec::new();
    for cycle in 0..reqs.len() as u64 + memsys::SLOW_LATENCY + 2 {
        match reqs.get(cycle as usize) {
            Some(&(tag, addr)) => {
                sim.poke("req_valid", Bv::from_bool(true));
                sim.poke("tag", Bv::from_u64(memsys::TAG_W, tag));
                sim.poke("addr", Bv::from_u64(memsys::ADDR_W, addr));
            }
            None => sim.poke("req_valid", Bv::from_bool(false)),
        }
        sim.step();
        for port in ["resp0", "resp1"] {
            if sim.output(&format!("{port}_valid")).bit(0) {
                actual.push(StreamItem {
                    value: memsys::pack_response(
                        sim.output(&format!("{port}_tag")).to_u64(),
                        sim.output(&format!("{port}_data")).to_u64(),
                    ),
                    time: cycle,
                });
            }
        }
    }
    FaultBlock {
        name: "memsys".into(),
        expected,
        actual,
        policy: ComparatorPolicy::OutOfOrder {
            tag_hi: 8 + memsys::TAG_W - 1,
            tag_lo: 8,
            window: 4,
            max_skew: None,
        },
    }
}

/// Runs E9 and renders its report.
pub fn e9_fault_robustness() -> String {
    let mut out = String::from(
        "E9 — interface-fault robustness: detected / tolerated / masked (Fig 2 taxonomy)\n\n",
    );

    // Random FIR samples (seeded — the whole experiment is reproducible).
    let mut rng = SplitMix64::new(SEED);
    let samples: Vec<i8> = (0..48).map(|_| rng.bits(8) as i8).collect();

    let live = [fir_block("fir", &samples), memsys_block()];
    let campaign = FaultCampaign::new(SEED);
    let report = campaign.run(&live);
    assert!(
        report.baseline_errors.is_empty(),
        "clean streams must baseline clean: {:?}",
        report.baseline_errors
    );
    assert!(
        report.all_accounted(),
        "every fault over the live designs must be detected or tolerated:\n{report}"
    );
    out.push_str(&report.to_string());
    out.push_str("\n\n");

    // The masked exhibit: a DC input stream makes reordering invisible.
    let dc = [fir_block("fir-dc", &[13i8; 48])];
    let masked_report = FaultCampaign::new(SEED).run(&dc);
    assert!(
        masked_report.masked() >= 1,
        "the constant stream must mask reorder:\n{masked_report}"
    );
    out.push_str(&masked_report.to_string());
    out.push_str(
        "\n\nshape: over live streams every Fig 2 hazard is either absorbed by the \
         declared\ncomparator policy or flagged with cycle+transaction provenance; \
         the DC-input FIR shows\nthe residual risk — faults that do not change the \
         observable value stream (reordering\nidentical values) are masked, which \
         is why fault campaigns sweep *random* stimulus,\nnot quiescent corners.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_classifies_all_faults() {
        let report = super::e9_fault_robustness();
        assert!(report.contains("DETECTED"));
        assert!(report.contains("TOLERATED"));
        assert!(report.contains("MASKED"));
        // Reproducible byte for byte.
        assert_eq!(report, super::e9_fault_robustness());
    }
}
