//! E10 — the observability layer end to end: one instrumented SLM run and
//! one instrumented RTL run of the same FIR workload, reduced to a
//! machine-readable [`RunReport`].
//!
//! This is the first experiment whose output is *numbers about the runs
//! themselves* rather than about the designs: the `slm.*` / `rtl.*`
//! counters recorded by the engines, per-phase wall time measured at the
//! edges, and the SLM-vs-RTL cost ratio in both forms —
//!
//! * **work ratio** (`rtl.node_evals` per `slm.activations`) — a
//!   deterministic structural proxy that lands in the canonical JSON and
//!   reproduces byte-for-byte across runs;
//! * **wall ratio** (RTL phase time per SLM phase time) — the measured
//!   §2 "SLM simulates faster than RTL" number, reported in the rendered
//!   text and the report's `timing` section only, since wall time varies
//!   run to run.

use dfv_obs::{Json, MemoryRecorder, RunReport};

use crate::models::{sample_block, CycleApproxFir, RtlFir};
use crate::render_table;

/// Seeded sample blocks each model processes.
const BLOCKS: u64 = 16;

/// Runs the instrumented workload and reduces it to a [`RunReport`].
///
/// The canonical JSON of the result is a pure function of the (fixed)
/// seeds: counters from the engines plus the derived work ratio, with
/// wall time confined to the `timing` section.
pub fn e10_report() -> RunReport {
    let mut rep = RunReport::new("e10_observability");

    let slm_rec = MemoryRecorder::shared();
    let mut slm = CycleApproxFir::new();
    slm.set_recorder(slm_rec.clone());
    rep.phase("slm", || {
        let mut sink = 0i64;
        for seed in 0..BLOCKS {
            sink ^= slm.run(&sample_block(seed))[0];
        }
        std::hint::black_box(sink);
    });

    let rtl_rec = MemoryRecorder::shared();
    let mut rtl = RtlFir::new();
    rtl.set_recorder(rtl_rec.clone());
    rep.phase("rtl", || {
        let mut sink = 0i64;
        for seed in 0..BLOCKS {
            sink ^= rtl.run(&sample_block(seed))[0];
        }
        std::hint::black_box(sink);
    });

    rep.add_counters(
        slm_rec
            .lock()
            .unwrap()
            .counters()
            .iter()
            .map(|(k, v)| (*k, *v)),
    );
    rep.add_counters(
        rtl_rec
            .lock()
            .unwrap()
            .counters()
            .iter()
            .map(|(k, v)| (*k, *v)),
    );
    rep.set_value("blocks", Json::UInt(BLOCKS));
    let slm_work = rep.counter("slm.activations").max(1);
    let rtl_work = rep.counter("rtl.node_evals");
    rep.set_value(
        "work_ratio_rtl_over_slm_x100",
        Json::UInt(rtl_work * 100 / slm_work),
    );
    rep
}

/// Runs E10 and renders its report.
pub fn e10_observability() -> String {
    let rep = e10_report();
    let mut out =
        String::from("E10 — observability: instrumented SLM vs RTL runs of the FIR workload\n\n");
    let rows: Vec<Vec<String>> = [
        "slm.activations",
        "slm.delta_cycles",
        "slm.events_fired",
        "rtl.steps",
        "rtl.eval_passes",
        "rtl.node_evals",
        "rtl.value_changes",
    ]
    .iter()
    .map(|name| vec![name.to_string(), rep.counter(name).to_string()])
    .collect();
    out.push_str(&render_table(&["counter", "value"], &rows));

    let work_x100 = rep
        .value("work_ratio_rtl_over_slm_x100")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    out.push_str(&format!(
        "\nwork ratio (deterministic): the RTL model evaluates {:.2} IR nodes per\nSLM process activation for the same {} blocks.\n",
        work_x100 as f64 / 100.0,
        BLOCKS
    ));
    let (mut slm_us, mut rtl_us) = (0u128, 0u128);
    for p in rep.phases() {
        match p.name.as_str() {
            "slm" => slm_us += p.wall.as_micros(),
            "rtl" => rtl_us += p.wall.as_micros(),
            _ => {}
        }
    }
    if slm_us > 0 {
        out.push_str(&format!(
            "wall ratio (measured at the phase edges): RTL took {:.1}x the SLM's time\n({} us vs {} us) — the §2 speed gap, now emitted as machine-readable JSON.\n",
            rtl_us as f64 / slm_us as f64,
            rtl_us,
            slm_us
        ));
    }
    out.push_str("\ncanonical JSON (byte-reproducible; timing lives only in the full report):\n");
    out.push_str(&rep.canonical_json());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_reproduces_and_ratio_is_nonzero() {
        let j1 = e10_report().canonical_json();
        let j2 = e10_report().canonical_json();
        assert_eq!(j1, j2);
        let parsed = dfv_obs::parse_json(&j1).unwrap();
        let ratio = parsed
            .get("values")
            .and_then(|v| v.get("work_ratio_rtl_over_slm_x100"))
            .and_then(Json::as_u64)
            .unwrap();
        // The RTL netlist does strictly more work per sample than one SLM
        // process activation.
        assert!(ratio >= 100, "ratio_x100 = {ratio}");
        assert!(!j1.contains("wall_us"));
        let full = dfv_obs::parse_json(&e10_report().full_json()).unwrap();
        assert!(full.get("timing").is_some());
    }
}
