//! E5 — §3.1.2: floating-point divergence between IEEE SLMs and
//! reduced-feature hardware, and the input-constraint fix.
//!
//! Random `a * b + c` triples are drawn from three distributions
//! (bit-uniform, magnitude-spread, and benign-constrained); the table
//! reports how often the native-IEEE SLM and the flush-to-zero/no-specials
//! hardware model disagree, broken down by corner-case cause.

use dfv_bits::SplitMix64;
use dfv_designs::fpmac;

use crate::render_table;

struct Tally {
    total: u64,
    diverged: u64,
    denormal: u64,
    overflow: u64,
    nan: u64,
}

fn classify(a: f32, b: f32, c: f32, t: &mut Tally) {
    t.total += 1;
    if !fpmac::diverges(a, b, c) {
        return;
    }
    t.diverged += 1;
    let slm = fpmac::slm_mac(a, b, c);
    if slm.is_nan() {
        t.nan += 1;
    } else if slm.is_infinite() {
        t.overflow += 1;
    } else {
        // Everything else traces back to denormal inputs or underflow.
        t.denormal += 1;
    }
}

/// Runs E5 and renders its report.
pub fn e5_float_corner_cases() -> String {
    const N: u64 = 50_000;
    let mut out =
        String::from("E5 — float corner cases: IEEE SLM vs reduced hardware on a*b + c\n\n");
    let mut rng = SplitMix64::new(0xE5);
    let mut rows = Vec::new();

    // Distribution 1: uniform random bit patterns (heavy on corner cases).
    let mut t = Tally {
        total: 0,
        diverged: 0,
        denormal: 0,
        overflow: 0,
        nan: 0,
    };
    for _ in 0..N {
        let (a, b, c) = (
            f32::from_bits(rng.next_u32()),
            f32::from_bits(rng.next_u32()),
            f32::from_bits(rng.next_u32()),
        );
        classify(a, b, c, &mut t);
    }
    push_row(&mut rows, "uniform bit patterns", &t);

    // Distribution 2: magnitudes spread over the whole exponent range.
    let mut t = Tally {
        total: 0,
        diverged: 0,
        denormal: 0,
        overflow: 0,
        nan: 0,
    };
    for _ in 0..N {
        let mut draw = || {
            let exp = rng.range_i64(-45, 38) as i32;
            let mant = 1.0 + rng.next_f32();
            let sign = if rng.next_bool() { -1.0 } else { 1.0 };
            sign * mant * 2f32.powi(exp)
        };
        classify(draw(), draw(), draw(), &mut t);
    }
    push_row(&mut rows, "magnitude-spread finite", &t);

    // Distribution 3: constrained to benign inputs (the paper's fix).
    let mut t = Tally {
        total: 0,
        diverged: 0,
        denormal: 0,
        overflow: 0,
        nan: 0,
    };
    let mut accepted = 0u64;
    while accepted < N {
        let mut draw = || {
            let exp = rng.range_i64(-28, 27) as i32;
            let mant = 1.0 + rng.next_f32();
            let sign = if rng.next_bool() { -1.0 } else { 1.0 };
            sign * mant * 2f32.powi(exp)
        };
        let (a, b, c) = (draw(), draw(), draw());
        if !(fpmac::benign(a) && fpmac::benign(b) && fpmac::benign(c)) {
            continue;
        }
        accepted += 1;
        classify(a, b, c, &mut t);
    }
    push_row(&mut rows, "benign-constrained", &t);

    out.push_str(&render_table(
        &[
            "input distribution",
            "samples",
            "diverged",
            "rate",
            "denorm/underflow",
            "overflow/inf",
            "nan",
        ],
        &rows,
    ));
    out.push_str(
        "\nshape: unconstrained inputs diverge at a substantial rate, dominated \
         by the exact\ncorner cases the paper lists (denormals, infinity, NaN); \
         under the benign-input\nconstraint the divergence rate is exactly zero — \
         \"constrain the input space ... such\nthat the differences do not show \
         up\" (§3.1.2).\n",
    );
    out
}

fn push_row(rows: &mut Vec<Vec<String>>, name: &str, t: &Tally) {
    rows.push(vec![
        name.to_string(),
        t.total.to_string(),
        t.diverged.to_string(),
        format!("{:.2}%", 100.0 * t.diverged as f64 / t.total as f64),
        t.denormal.to_string(),
        t.overflow.to_string(),
        t.nan.to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_constrained_row_is_clean() {
        let report = super::e5_float_corner_cases();
        let benign_line = report
            .lines()
            .find(|l| l.contains("benign-constrained"))
            .expect("row present");
        assert!(benign_line.contains("0.00%"), "{benign_line}");
    }
}
