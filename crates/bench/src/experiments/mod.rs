//! Experiments E1–E17: one per figure/claim of the paper. See DESIGN.md's
//! per-experiment index for the mapping.

mod e1;
mod e10;
mod e11;
mod e12;
mod e13;
mod e14;
mod e15;
mod e16;
mod e17;
mod e2;
mod e3;
mod e4;
mod e5;
mod e6;
mod e7;
mod e8;
mod e9;

pub use e1::e1_fig1_nonassociativity;
pub use e10::{e10_observability, e10_report};
pub use e11::{e11_parallel_campaign, e11_plan, e11_report};
pub use e12::{e12_report, e12_sim_engine};
pub use e13::{e13_crash_resume, e13_plan, e13_report};
pub use e14::{e14_report, e14_serve};
pub use e15::{e15_lane_batching, e15_report};
pub use e16::{e16_bytecode_vm, e16_report};
pub use e17::{e17_report, e17_sat_sweeping};
pub use e2::e2_simulation_speed;
pub use e3::e3_sec_vs_simulation;
pub use e4::e4_timing_alignment;
pub use e5::e5_float_corner_cases;
pub use e6::e6_incremental_sec;
pub use e7::e7_model_conditioning;
pub use e8::e8_partitioned_sec;
pub use e9::e9_fault_robustness;

/// Runs one experiment by id (`"e1"`..`"e17"`); returns its report text.
pub fn run(id: &str) -> Option<String> {
    Some(match id {
        "e1" => e1_fig1_nonassociativity(),
        "e2" => e2_simulation_speed(),
        "e3" => e3_sec_vs_simulation(),
        "e4" => e4_timing_alignment(),
        "e5" => e5_float_corner_cases(),
        "e6" => e6_incremental_sec(),
        "e7" => e7_model_conditioning(),
        "e8" => e8_partitioned_sec(),
        "e9" => e9_fault_robustness(),
        "e10" => e10_observability(),
        "e11" => e11_parallel_campaign(),
        "e12" => e12_sim_engine(),
        "e13" => e13_crash_resume(),
        "e14" => e14_serve(),
        "e15" => e15_lane_batching(),
        "e16" => e16_bytecode_vm(),
        "e17" => e17_sat_sweeping(),
        _ => return None,
    })
}

/// All experiment ids in order.
pub const ALL: [&str; 17] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17",
];
