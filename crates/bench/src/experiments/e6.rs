//! E6 — §4.1: incremental equivalence checking during development vs one
//! late batch run.
//!
//! A synthetic development history applies a sequence of edits to a
//! three-block design; two of the edits introduce real bugs (which later
//! edits would mask from an end-of-project run of *simulation*, and which
//! get harder to localize the longer they sit). The incremental workflow
//! runs the campaign after every edit (cache skips untouched blocks and
//! divergences are localized to the *edit that introduced them*); the batch
//! workflow runs everything once at the end.

use std::time::{Duration, Instant};

use dfv_core::{BlockPair, BlockStatus, Campaign, VerificationPlan};
use dfv_designs::{alu, fir};
use dfv_sec::{Binding, EquivSpec};

use crate::render_table;

/// The evolving SLM sources for the "inc" block across the edit history.
const INC_VERSIONS: [&str; 4] = [
    "uint8 inc(uint8 x) { return x + 1; }",
    "uint8 inc(uint8 x) { uint8 y = x + 1; return y; }", // refactor, OK
    "uint8 inc(uint8 x) { uint8 y = x + 2; return y; }", // BUG introduced
    "uint8 inc(uint8 x) { return (uint8)(x + 1); }",     // bug fixed
];

fn inc_rtl() -> dfv_rtl::Module {
    let mut b = dfv_rtl::ModuleBuilder::new("inc_rtl");
    let x = b.input("x", 8);
    let one = b.lit(8, 1);
    let y = b.add(x, one);
    b.output("y", y);
    b.finish().expect("inc rtl")
}

fn plan_at(step: usize) -> VerificationPlan {
    // Block 1 evolves through INC_VERSIONS; the big blocks change rarely.
    let inc_src = INC_VERSIONS[step.min(INC_VERSIONS.len() - 1)];
    let alu_src = if step >= 2 {
        alu::slm_bit_accurate() // formatting-only change at step 2
            .trim()
    } else {
        alu::slm_bit_accurate()
    };
    VerificationPlan::new()
        .block(BlockPair {
            name: "inc".into(),
            slm_source: inc_src.into(),
            slm_entry: "inc".into(),
            rtl: inc_rtl(),
            spec: EquivSpec::new(1)
                .bind("x", 0, Binding::Slm("x".into()))
                .compare("return", "y", 0),
        })
        .block(BlockPair {
            name: "alu".into(),
            slm_source: alu_src.into(),
            slm_entry: "alu".into(),
            rtl: alu::rtl(8, 8),
            spec: alu::equiv_spec(),
        })
        .block(BlockPair {
            name: "fir".into(),
            slm_source: fir::slm_source().into(),
            slm_entry: "fir".into(),
            rtl: fir::rtl(),
            spec: fir::equiv_spec(),
        })
}

/// Runs E6 and renders its report.
pub fn e6_incremental_sec() -> String {
    let steps = INC_VERSIONS.len();
    let mut out = String::from("E6 — incremental vs batch equivalence checking (§4.1)\n\n");

    // Incremental: run after each edit with a warm cache.
    let mut campaign = Campaign::new();
    let mut rows = Vec::new();
    let mut incremental_total = Duration::ZERO;
    let mut bug_caught_at_edit = None;
    for step in 0..steps {
        let plan = plan_at(step);
        let t0 = Instant::now();
        let report = campaign.run(&plan);
        let dt = t0.elapsed();
        incremental_total += dt;
        let failures: Vec<&str> = report
            .blocks
            .iter()
            .filter(|b| matches!(b.status, BlockStatus::NotEquivalent(_)))
            .map(|b| b.name.as_str())
            .collect();
        if !failures.is_empty() && bug_caught_at_edit.is_none() {
            bug_caught_at_edit = Some(step);
        }
        rows.push(vec![
            format!("edit {step}"),
            (report.blocks.len() - report.cache_hits()).to_string(),
            report.cache_hits().to_string(),
            format!("{dt:.1?}"),
            if failures.is_empty() {
                "all pass".into()
            } else {
                format!("FAIL in {} (this edit!)", failures.join(","))
            },
        ]);
    }
    out.push_str("incremental workflow (campaign after every edit):\n");
    out.push_str(&render_table(
        &["step", "checked", "cached", "time", "verdict"],
        &rows,
    ));

    // Batch: a single cold run at the end of the history.
    let mut cold = Campaign::new();
    let t0 = Instant::now();
    let final_report = cold.run(&plan_at(steps - 1));
    let batch_total = t0.elapsed();
    out.push_str(&format!(
        "\nbatch workflow (single cold run after all edits): {batch_total:.1?}, \
         all pass — the step-2 bug\nwas silently present for one edit and is \
         invisible to the end-of-project run; localizing\nit would mean bisecting \
         the history.\n",
    ));
    let _ = final_report;
    out.push_str(&format!(
        "\nincremental total {incremental_total:.1?} across {steps} runs \
         (mostly cache hits); the injected bug was\nreported at edit {edit}, the \
         exact edit that introduced it — the paper's \"help localize\nthe source \
         of any difference quickly\".\n",
        edit = bug_caught_at_edit.map_or("?".into(), |e| e.to_string()),
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_catches_the_bug_at_its_edit() {
        let report = super::e6_incremental_sec();
        assert!(report.contains("FAIL in inc (this edit!)"));
        assert!(report.contains("reported at edit 2"));
    }
}
