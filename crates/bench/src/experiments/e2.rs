//! E2 — §2's "the SLM simulates several orders of magnitude faster
//! (typically 10x to 1000x) than the RTL model".
//!
//! The same FIR function is run at four abstraction levels (see
//! [`crate::models`]); throughput is measured in samples/second and
//! reported relative to RTL.

use std::time::{Duration, Instant};

use crate::models::{sample_block, untimed_fir, CycleApproxFir, InterpFir, RtlFir};
use crate::render_table;
use dfv_designs::fir::BLOCK;

fn throughput(mut f: impl FnMut(u64), min_time: Duration, samples_per_call: u64) -> f64 {
    // Warm up.
    for seed in 0..3 {
        f(seed);
    }
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < min_time {
        f(calls);
        calls += 1;
    }
    (calls * samples_per_call) as f64 / start.elapsed().as_secs_f64()
}

/// Runs E2 and renders its report.
pub fn e2_simulation_speed() -> String {
    let mut out =
        String::from("E2 — simulation speed across abstraction levels (FIR, samples/sec)\n\n");
    let budget = Duration::from_millis(300);
    let spb = BLOCK as u64;

    let mut sink = 0i64; // prevent the optimizer from deleting the work
    let untimed = throughput(
        |seed| {
            let ys = untimed_fir(&sample_block(seed));
            sink ^= ys[0];
        },
        budget,
        spb,
    );
    let interp_model = InterpFir::new();
    let interp = throughput(
        |seed| {
            let ys = interp_model.run(&sample_block(seed));
            sink ^= ys[0];
        },
        budget,
        spb,
    );
    let mut cyc_model = CycleApproxFir::new();
    let cycle = throughput(
        |seed| {
            let ys = cyc_model.run(&sample_block(seed));
            sink ^= ys[0];
        },
        budget,
        spb,
    );
    let mut rtl_model = RtlFir::new();
    let rtl = throughput(
        |seed| {
            let ys = rtl_model.run(&sample_block(seed));
            sink ^= ys[0];
        },
        budget,
        spb,
    );
    std::hint::black_box(sink);

    let rows: Vec<Vec<String>> = [
        ("untimed native (compiled C model)", untimed),
        ("untimed SLM-C (interpreted)", interp),
        ("cycle-approx SLM (event kernel)", cycle),
        ("RTL (cycle-accurate netlist)", rtl),
    ]
    .iter()
    .map(|(name, s)| {
        vec![
            name.to_string(),
            format!("{s:.0}"),
            format!("{:.1}x", s / rtl),
        ]
    })
    .collect();
    out.push_str(&render_table(&["model", "samples/sec", "vs RTL"], &rows));
    out.push_str(&format!(
        "\nshape: the paper claims 10x-1000x; measured here the untimed native \
         model runs {:.0}x\nfaster than RTL, with the event-kernel model in \
         between — the ladder the paper describes.\n",
        untimed / rtl
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untimed_is_much_faster_than_rtl() {
        // A cheap inline version of the measurement with tiny budgets.
        let budget = Duration::from_millis(40);
        let mut sink = 0i64;
        let untimed = throughput(
            |seed| {
                sink ^= untimed_fir(&sample_block(seed))[0];
            },
            budget,
            BLOCK as u64,
        );
        let mut rtl_model = RtlFir::new();
        let rtl = throughput(
            |seed| {
                sink ^= rtl_model.run(&sample_block(seed))[0];
            },
            budget,
            BLOCK as u64,
        );
        std::hint::black_box(sink);
        assert!(
            untimed > rtl * 10.0,
            "untimed {untimed:.0} must be >=10x RTL {rtl:.0}"
        );
    }
}
