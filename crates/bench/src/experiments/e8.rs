//! E8 — §4.2: design partitioning. The same system is verified two ways:
//! block-by-block (the paper's recommended one-to-one SLM/RTL partitioning)
//! and as one flat lump. The table compares CNF size and solve time.

use std::time::{Duration, Instant};

use dfv_bits::Bv;
use dfv_designs::{alu, fir};
use dfv_rtl::{flatten, Design, Module, ModuleBuilder};
use dfv_sec::{check_equivalence, Binding, EquivSpec};
use dfv_slmir::{elaborate, parse};

use crate::render_table;

/// The combined SLM: ALU and FIR side by side in one function — the
/// monolithic model the paper advises against.
fn combined_slm_source() -> String {
    format!(
        r#"
        void system(int8 a, int8 b, int8 c, int8 xs[8],
                    out int<9> alu_out, out int<18> ys[8]) {{
            // --- alu block (bit-accurate Fig-1 datapath) ---
            int8 t = (int8)(a + b);
            alu_out = (int<9>)((int)t + c);
            // --- fir block ---
            int coeffs[4];
            coeffs[0] = {c0}; coeffs[1] = {c1}; coeffs[2] = {c2}; coeffs[3] = {c3};
            for (int n = 0; n < 8; n++) {{
                int acc = 0;
                for (int k = 0; k < 4; k++) {{
                    if (k > n) break;
                    acc += coeffs[k] * xs[n - k];
                }}
                ys[n] = (int<18>) acc;
            }}
        }}
        "#,
        c0 = fir::COEFFS[0],
        c1 = fir::COEFFS[1],
        c2 = fir::COEFFS[2],
        c3 = fir::COEFFS[3],
    )
}

/// The combined RTL: both blocks instantiated in one top and flattened.
fn combined_rtl() -> Module {
    let alu_m = alu::rtl(8, 8);
    let fir_m = fir::rtl();
    let mut b = ModuleBuilder::new("system_top");
    let a = b.input("a", 8);
    let bi = b.input("b", 8);
    let c = b.input("c", 8);
    let in_valid = b.input("in_valid", 1);
    let x = b.input("x", 8);
    let stall = b.input("stall", 1);
    let alu_outs = b.instantiate("u_alu", &alu_m, &[a, bi, c]);
    let fir_outs = b.instantiate("u_fir", &fir_m, &[in_valid, x, stall]);
    b.output("alu_out", alu_outs[0]);
    b.output("y", fir_outs[0]);
    b.output("out_valid", fir_outs[1]);
    let top = b.finish().expect("top builds");
    let mut d = Design::new();
    d.add_module(alu_m);
    d.add_module(fir_m);
    d.add_module(top);
    flatten(&d, "system_top").expect("flattens")
}

/// The combined spec: union of both blocks' transactions over 9 cycles.
fn combined_spec() -> EquivSpec {
    let mut spec = EquivSpec::new(fir::BLOCK as u32 + 1)
        .bind("a", 0, Binding::Slm("a".into()))
        .bind("b", 0, Binding::Slm("b".into()))
        .bind("c", 0, Binding::Slm("c".into()))
        .compare("alu_out", "alu_out", 1);
    for n in 0..fir::BLOCK as u32 {
        spec = spec
            .bind("in_valid", n, Binding::Const(Bv::from_bool(true)))
            .bind("stall", n, Binding::Const(Bv::from_bool(false)))
            .bind(
                "x",
                n,
                Binding::SlmSlice {
                    name: "xs".into(),
                    hi: n * 8 + 7,
                    lo: n * 8,
                },
            )
            .compare_slice(
                "ys",
                (n + 1) * fir::OUT_WIDTH - 1,
                n * fir::OUT_WIDTH,
                "y",
                n + 1,
            );
    }
    spec.bind(
        "in_valid",
        fir::BLOCK as u32,
        Binding::Const(Bv::from_bool(false)),
    )
}

/// Runs E8 and renders its report.
pub fn e8_partitioned_sec() -> String {
    let mut out = String::from("E8 — partitioned vs flat equivalence checking (§4.2)\n\n");
    let mut rows = Vec::new();

    // Block-level checks.
    let mut partitioned_time = Duration::ZERO;
    let mut partitioned_vars = 0usize;
    for (name, src, entry, rtl, spec) in [
        (
            "alu (block)",
            alu::slm_bit_accurate().to_string(),
            "alu",
            alu::rtl(8, 8),
            alu::equiv_spec(),
        ),
        (
            "fir (block)",
            fir::slm_source().to_string(),
            "fir",
            fir::rtl(),
            fir::equiv_spec(),
        ),
    ] {
        let slm = elaborate(&parse(&src).expect("parses"), entry).expect("conditioned");
        let t0 = Instant::now();
        let report = check_equivalence(&slm, &rtl, &spec).expect("valid");
        let dt = t0.elapsed();
        assert!(report.outcome.is_equivalent(), "{name} must pass");
        partitioned_time += dt;
        partitioned_vars += report.cnf_vars;
        rows.push(vec![
            name.to_string(),
            report.cnf_vars.to_string(),
            report.cnf_clauses.to_string(),
            report.solver_stats.conflicts.to_string(),
            format!("{dt:.1?}"),
        ]);
    }
    rows.push(vec![
        "partitioned total".into(),
        partitioned_vars.to_string(),
        "-".into(),
        "-".into(),
        format!("{partitioned_time:.1?}"),
    ]);

    // Flat check.
    let slm =
        elaborate(&parse(&combined_slm_source()).expect("parses"), "system").expect("conditioned");
    let rtl = combined_rtl();
    let t0 = Instant::now();
    let report = check_equivalence(&slm, &rtl, &combined_spec()).expect("valid");
    let flat_time = t0.elapsed();
    assert!(report.outcome.is_equivalent(), "flat system must pass");
    rows.push(vec![
        "flat system".into(),
        report.cnf_vars.to_string(),
        report.cnf_clauses.to_string(),
        report.solver_stats.conflicts.to_string(),
        format!("{flat_time:.1?}"),
    ]);
    out.push_str(&render_table(
        &["check", "cnf vars", "clauses", "conflicts", "time"],
        &rows,
    ));
    out.push_str(&format!(
        "\nshape: consistent partitioning keeps each check small and — crucially — \
         lets the\ncampaign re-verify only edited blocks (E6); the flat check \
         re-pays the whole cost on\nevery edit and reports divergences without a \
         block to pin them on. (flat {flat:.1?} vs\npartitioned-after-one-edit \
         {one:.1?} per touched block.)\n",
        flat = flat_time,
        one = partitioned_time / 2,
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_both_strategies_pass() {
        let report = super::e8_partitioned_sec();
        assert!(report.contains("flat system"));
        assert!(report.contains("partitioned total"));
    }
}
