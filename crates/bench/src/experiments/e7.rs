//! E7 — §4.3: model conditioning. The same algorithm written in
//! "software C" style (pointers, malloc, data-dependent loops) and in the
//! paper's conditioned style: lint findings per rule, elaborability, and
//! the simulation-speed cost of conditioning (≈ none).

use std::time::Instant;

use dfv_bits::Bv;
use dfv_slmir::{elaborate, lint, parse, Interp, LintRule, ScalarTy, Value};

use crate::render_table;

/// Checksum over a block, software-style: pointer walk, heap scratch
/// buffer, data-dependent loop bound — everything §4.3 warns about.
const UNCONDITIONED: &str = r#"
    uint32 checksum(uint8 data[16], uint8 n) {
        uint32 *scratch = malloc(16);
        uint32 acc = 0;
        int i = 0;
        while (i < n) {            // DFV004: unbounded while
            scratch[i] = data[i];
            i++;
        }
        for (int j = 0; j < n; j++) {  // DFV003: data-dependent bound
            acc += scratch[j] * 31;
        }
        uint32 *alias = &acc;      // DFV002: aliasing
        *alias = *alias ^ 0x5A5A;
        return acc;
    }
"#;

/// The same checksum, conditioned per the paper's recommendations: static
/// arrays, static bounds with conditional exits, no aliasing.
const CONDITIONED: &str = r#"
    uint32 checksum(uint8 data[16], uint8 n) {
        uint32 scratch[16];
        for (int i = 0; i < 16; i++) {   // static bound...
            if (i >= n) break;           // ...with conditional exit
            scratch[i] = data[i];
        }
        uint32 acc = 0;
        for (int j = 0; j < 16; j++) {
            if (j >= n) break;
            acc += scratch[j] * 31;
        }
        return acc ^ 0x5A5A;
    }
"#;

/// Runs E7 and renders its report.
pub fn e7_model_conditioning() -> String {
    let mut out = String::from("E7 — model conditioning (§4.3): lint + elaborability\n\n");
    let mut rows = Vec::new();
    for (name, src) in [
        ("software-style", UNCONDITIONED),
        ("conditioned", CONDITIONED),
    ] {
        let prog = parse(src).expect("parses");
        let findings = lint(&prog, Some("checksum"));
        let count = |r: LintRule| findings.iter().filter(|f| f.rule == r).count();
        let elaborable = elaborate(&prog, "checksum").is_ok();
        rows.push(vec![
            name.to_string(),
            count(LintRule::Dfv001).to_string(),
            count(LintRule::Dfv002).to_string(),
            count(LintRule::Dfv003).to_string(),
            count(LintRule::Dfv004).to_string(),
            findings.len().to_string(),
            if elaborable { "yes" } else { "NO" }.to_string(),
        ]);
    }
    out.push_str(&render_table(
        &[
            "model",
            "DFV001",
            "DFV002",
            "DFV003",
            "DFV004",
            "total",
            "elaborates?",
        ],
        &rows,
    ));

    // Simulation-speed cost of conditioning: run both on the interpreter.
    let u8t = ScalarTy {
        width: 8,
        signed: false,
    };
    let data = Value::Array((0..16).map(|i| Bv::from_u64(8, i * 7)).collect(), u8t);
    let n = Value::from_u64(u8t, 11);
    let mut speeds = Vec::new();
    for (name, src) in [
        ("software-style", UNCONDITIONED),
        ("conditioned", CONDITIONED),
    ] {
        let prog = parse(src).expect("parses");
        let t0 = Instant::now();
        let mut runs = 0u64;
        let mut last = None;
        while t0.elapsed().as_millis() < 150 {
            last = Some(
                Interp::new(&prog)
                    .run("checksum", &[data.clone(), n.clone()])
                    .expect("runs")
                    .ret,
            );
            runs += 1;
        }
        let per_sec = runs as f64 / t0.elapsed().as_secs_f64();
        speeds.push((name, per_sec, last));
    }
    // Both must compute the same value.
    assert_eq!(
        speeds[0].2, speeds[1].2,
        "conditioning must not change the function"
    );
    out.push_str(&format!(
        "\nsimulation speed: software-style {:.0} runs/s, conditioned {:.0} runs/s \
         ({:.2}x) — the\npaper's claim that these guidelines have \"typically no \
         impact on the simulation speed\nor expressiveness of the model\" holds; \
         both compute identical results.\n",
        speeds[0].1,
        speeds[1].1,
        speeds[1].1 / speeds[0].1
    ));
    out.push_str(
        "shape: the software-style model carries blocking findings on every rule \
         the paper\nlists and cannot be statically elaborated; the conditioned \
         rewrite lints clean, feeds\nthe equivalence checker, and costs nothing \
         in simulation speed.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_shape_holds() {
        let report = super::e7_model_conditioning();
        assert!(report.contains("NO"));
        let conditioned_line = report
            .lines()
            .find(|l| l.trim_start().starts_with("conditioned"))
            .expect("row present");
        assert!(conditioned_line.contains("yes"));
    }
}
