//! E14 — verification as a service: the `dfv-serve` daemon under a
//! multi-client workload, measured on two axes the paper's §4.1 economic
//! argument turns on.
//!
//! **Dedup ratio.** N clients submit the *same* block set concurrently.
//! The daemon's shared content-hash verdict store means the fleet pays
//! for each proof once: the first job to reach a block computes it, and
//! every other client's identical block is a cache hit. With the
//! executor pool serialized the split is exact — one client's worth of
//! proofs computed, `(N-1) × blocks` hits — and the experiment asserts
//! it.
//!
//! **Overload accounting.** With the executor pool frozen and small
//! admission limits, a flood of submissions must produce typed,
//! *transient* `ServiceBusy` rejections with exact counter accounting
//! and a queue pinned at its cap — refused work costs the daemon
//! nothing, and the client knows it may retry.

use dfv_core::BlockPair;
use dfv_obs::{kinds, Json, RunReport};
use dfv_rtl::ModuleBuilder;
use dfv_sec::{Binding, EquivSpec};
use dfv_serve::{
    duplex, Admission, Client, JobSpec, Limits, ServeConfig, Server, SubmitOptions, SubmitOutcome,
};

use crate::render_table;

/// Clients in the dedup phase.
const CLIENTS: usize = 3;

/// A one-cycle `y = x + delta` equivalence block. Every client builds
/// the identical plan, so content hashes collide across jobs by design.
fn add_block(name: &str, delta: u64) -> BlockPair {
    let mut b = ModuleBuilder::new("add_rtl");
    let x = b.input("x", 8);
    let k = b.lit(8, delta);
    let y = b.add(x, k);
    b.output("y", y);
    BlockPair {
        name: name.into(),
        slm_source: format!("uint8 f(uint8 x) {{ return x + {delta}; }}"),
        slm_entry: "f".into(),
        rtl: b.finish().expect("add rtl builds"),
        spec: EquivSpec::new(1)
            .bind("x", 0, Binding::Slm("x".into()))
            .compare("return", "y", 0),
    }
}

fn plan() -> Vec<BlockPair> {
    (1..=4).map(|d| add_block(&format!("add{d}"), d)).collect()
}

fn submit_spec(blocks: Vec<BlockPair>) -> JobSpec {
    JobSpec::Campaign {
        blocks,
        options: SubmitOptions {
            workers: Some(1),
            deadline_ms: None,
            journal: None,
        },
    }
}

fn state_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dfv-e14-{tag}-{}", std::process::id()))
}

/// Runs the service workload and reduces it to a [`RunReport`].
///
/// Canonical values: client/block counts, computed-vs-dedup split,
/// overload accepted/rejected tallies, and the daemon's own `serve.*`
/// counters for both phases. Wall time lands only in `timing`.
pub fn e14_report() -> RunReport {
    let mut rep = RunReport::new("e14_serve");
    let blocks = plan().len();

    // Phase 1 — dedup: N concurrent clients, identical plans, one
    // executor so the jobs serialize and the split is exact.
    let mut cfg = ServeConfig::new(state_dir("dedup"));
    cfg.executors = 1;
    let server = Server::start(cfg);
    let hits: Vec<u64> = rep.phase("dedup_clients", || {
        let threads: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let ((cr, cw), (sr, sw)) = duplex();
                let conn = server.attach(sr, sw);
                std::thread::spawn(move || {
                    let mut client = Client::new(cr, cw);
                    let outcome = client
                        .submit(&submit_spec(plan()), |_, _| {})
                        .expect("submission survives");
                    drop(client);
                    conn.join();
                    match outcome {
                        SubmitOutcome::Report { report, .. } => report
                            .get("counters")
                            .and_then(|c| c.get("campaign.cache_hits"))
                            .and_then(Json::as_u64)
                            .unwrap_or(0),
                        other => panic!("unexpected {other:?}"),
                    }
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });
    let dedup_hits: u64 = hits.iter().sum();
    let computed = (CLIENTS * blocks) as u64 - dedup_hits;
    let dedup_completed = server.counter(kinds::SERVE_COMPLETED);
    server.stop();

    // Phase 2 — overload: freeze the executor pool, shrink the limits,
    // and flood. Every refusal must be typed transient; the queue stays
    // pinned at the cap.
    let mut cfg = ServeConfig::new(state_dir("overload"));
    cfg.executors = 0;
    cfg.limits = Limits {
        total: 4,
        campaigns: 2,
        fault_sweeps: 2,
    };
    let server = Server::start(cfg);
    let (accepted, rejected, queued_at_cap) = rep.phase("overload_flood", || {
        let ((cr, cw), (sr, sw)) = duplex();
        let conn = server.attach(sr, sw);
        let mut client = Client::new(cr, cw);
        let (mut acc, mut rej) = (0u64, 0u64);
        for round in 0..8u64 {
            let specs = [
                submit_spec(plan()),
                JobSpec::FaultSweep {
                    seed: round,
                    blocks: vec![],
                    options: SubmitOptions::default(),
                },
            ];
            for spec in &specs {
                match client.submit_nowait(spec).expect("admission answers") {
                    Admission::Accepted(_) => acc += 1,
                    Admission::Rejected { class, .. } => {
                        assert_eq!(
                            class,
                            dfv_serve::RetryClass::Transient,
                            "overload refusals are retryable"
                        );
                        rej += 1;
                    }
                }
            }
        }
        // Read the depth while the client still holds its jobs: once it
        // disconnects, the daemon purges its queued work on purpose.
        let depth = server.queued() as u64;
        drop(client);
        conn.join();
        (acc, rej, depth)
    });
    let serve_rejected = server.counter(kinds::SERVE_REJECTED);
    server.stop();

    rep.set_value("clients", Json::UInt(CLIENTS as u64));
    rep.set_value("blocks_per_client", Json::UInt(blocks as u64));
    rep.set_value("proofs_computed", Json::UInt(computed));
    rep.set_value("dedup_hits", Json::UInt(dedup_hits));
    rep.set_value("dedup_jobs_completed", Json::UInt(dedup_completed));
    rep.set_value("overload_accepted", Json::UInt(accepted));
    rep.set_value("overload_rejected", Json::UInt(rejected));
    rep.set_value("overload_queue_at_cap", Json::UInt(queued_at_cap));
    rep.set_value("serve_rejected_counter", Json::UInt(serve_rejected));
    rep.set_value(
        "table",
        Json::Str(render_table(
            &["phase", "submitted", "computed", "dedup hits", "rejected"],
            &[
                vec![
                    format!("dedup ×{CLIENTS} clients"),
                    format!("{}", CLIENTS * blocks),
                    format!("{computed}"),
                    format!("{dedup_hits}"),
                    "0".into(),
                ],
                vec![
                    "overload flood".into(),
                    "16".into(),
                    "0".into(),
                    "0".into(),
                    format!("{rejected}"),
                ],
            ],
        )),
    );
    rep
}

/// Renders E14 as the experiment runner's report text.
pub fn e14_serve() -> String {
    let rep = e14_report();
    let mut out = String::from(
        "E14 — verification as a service: N clients against the dfv-serve\n\
         daemon, measuring cross-client proof dedup and overload refusal\n\n",
    );
    if let Some(Json::Str(table)) = rep.value("table") {
        out.push_str(table);
    }
    out.push_str(
        "\nthe shared content-hash store means a fleet submitting overlapping\n\
         block sets pays for each proof once; admission limits turn overload\n\
         into typed transient rejections instead of unbounded queue growth.\n",
    );
    out.push_str("\ncanonical JSON (byte-reproducible; wall time lives only in `timing`):\n");
    out.push_str(&rep.canonical_json());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_dedup_is_exact_and_overload_accounting_balances() {
        let rep = e14_report();
        let blocks = match rep.value("blocks_per_client") {
            Some(Json::UInt(n)) => *n,
            other => panic!("missing blocks: {other:?}"),
        };
        // One client's worth computed, everyone else's deduped.
        assert_eq!(rep.value("proofs_computed"), Some(&Json::UInt(blocks)));
        assert_eq!(
            rep.value("dedup_hits"),
            Some(&Json::UInt((CLIENTS as u64 - 1) * blocks))
        );
        assert_eq!(
            rep.value("dedup_jobs_completed"),
            Some(&Json::UInt(CLIENTS as u64))
        );
        // 16 submissions against limits {total 4, 2 per class}: exactly
        // four admitted, the rest refused, the queue pinned at the cap.
        assert_eq!(rep.value("overload_accepted"), Some(&Json::UInt(4)));
        assert_eq!(rep.value("overload_rejected"), Some(&Json::UInt(12)));
        assert_eq!(rep.value("serve_rejected_counter"), Some(&Json::UInt(12)));
        assert_eq!(rep.value("overload_queue_at_cap"), Some(&Json::UInt(4)));
        assert!(!rep.canonical_json().contains("wall_us"));
    }
}
