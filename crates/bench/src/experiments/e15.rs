//! E15 — 64-lane batched campaign simulation: the lane engine's work
//! ratio on the three standard workloads, plus the determinism grid that
//! justifies using it inside campaigns.
//!
//! Two claims, both rendered from one report:
//!
//! * **throughput** — 64 independently-seeded streams of each workload
//!   cost ~1/64 the kernel dispatches on one [`dfv_rtl::LaneSim`] that 64
//!   scalar simulators pay, with per-lane output hashes asserted
//!   identical first (the [`crate::simbench::add_batch_sweep`] counters);
//! * **determinism** — a [`dfv_core::StimulusSweep`] over the FIR design
//!   and a [`dfv_core::FaultCampaign`] over seeded stream blocks render
//!   byte-identical canonical reports at every point of the
//!   workers x lanes grid {1,4} x {1,64}, because scenario/cell seeds
//!   derive from indices, never from the executing lane, group, or
//!   worker.

use dfv_bits::Bv;
use dfv_core::{FaultBlock, FaultCampaign, StimulusSweep};
use dfv_cosim::{ComparatorPolicy, FieldSpec, StreamItem};
use dfv_obs::{Json, RunReport};

use crate::render_table;

/// Cycles per stream in the batched workload sweep.
const BATCH_CYCLES: u64 = 250;
/// Stimulus-sweep geometry: scenarios x cycles.
const SCENARIOS: usize = 96;
const SWEEP_CYCLES: usize = 64;

/// The workers x lanes grid every campaign surface is swept over.
const GRID: [(usize, usize); 4] = [(1, 1), (1, 64), (4, 1), (4, 64)];

fn fir_sweep(seed: u64) -> StimulusSweep {
    StimulusSweep::new(seed)
        .field("in_valid", FieldSpec::Uniform { width: 1 })
        .field(
            "x",
            FieldSpec::Corners {
                width: 8,
                corner_percent: 25,
            },
        )
        .scenarios(SCENARIOS)
        .cycles(SWEEP_CYCLES)
}

/// Seeded per-block streams for the fault-campaign grid (distinct values,
/// so every structural fault is observable).
fn fault_blocks() -> Vec<FaultBlock> {
    ["fir", "conv", "memsys"]
        .iter()
        .enumerate()
        .map(|(bi, name)| {
            let s: Vec<StreamItem> = (0..48)
                .map(|i| StreamItem {
                    value: Bv::from_u64(16, 0x100 * (bi as u64 + 1) + i),
                    time: i * 3,
                })
                .collect();
            FaultBlock {
                name: (*name).into(),
                expected: s.clone(),
                actual: s,
                policy: ComparatorPolicy::InOrder {
                    tolerance: u64::MAX,
                    max_skew: None,
                },
            }
        })
        .collect()
}

/// Runs E15 and reduces it to a [`RunReport`]. The canonical JSON is a
/// pure function of the fixed seeds.
///
/// # Panics
///
/// Panics if any grid point's canonical report diverges from the
/// (workers=1, lanes=1) baseline, or if the lane engine's per-lane
/// outputs diverge from the scalar engine on any workload.
pub fn e15_report() -> RunReport {
    let mut rep = RunReport::new("e15_lane_batching");
    crate::simbench::add_batch_sweep(&mut rep, BATCH_CYCLES);

    let module = dfv_designs::fir::rtl();
    let (digest, scalar_evals, lane_evals) = rep.phase("stimsweep_grid", || {
        let mut base: Option<String> = None;
        let mut digest = 0u64;
        let mut scalar_evals = 0u64;
        let mut lane_evals = 0u64;
        for (workers, lanes) in GRID {
            let r = fir_sweep(0xE15)
                .with_workers(workers)
                .with_lanes(lanes)
                .run(&module)
                .expect("fir sweep fields match the module");
            let canon = r.to_run_report().canonical_json();
            match &base {
                None => {
                    digest = r.digest();
                    base = Some(canon);
                }
                Some(b) => assert_eq!(
                    &canon, b,
                    "stimulus sweep diverged at workers={workers} lanes={lanes}"
                ),
            }
            if workers == 1 {
                if lanes == 64 {
                    lane_evals = r.total_evals();
                } else {
                    scalar_evals = r.total_evals();
                }
            }
        }
        (digest, scalar_evals, lane_evals)
    });
    rep.set_counter("e15.stimsweep.digest", digest);
    rep.set_counter("e15.stimsweep.scalar_evals", scalar_evals);
    rep.set_counter("e15.stimsweep.lane_evals", lane_evals);
    rep.set_counter("e15.stimsweep.grid_points", GRID.len() as u64);

    let blocks = fault_blocks();
    let detected = rep.phase("faultcamp_grid", || {
        let mut base: Option<String> = None;
        let mut detected = 0u64;
        for (workers, lanes) in GRID {
            let r = FaultCampaign::new(0xE15_0002)
                .with_workers(workers)
                .with_lanes(lanes)
                .run(&blocks);
            let canon = r.to_run_report().canonical_json();
            match &base {
                None => {
                    detected = r.detected() as u64;
                    base = Some(canon);
                }
                Some(b) => assert_eq!(
                    &canon, b,
                    "fault campaign diverged at workers={workers} lanes={lanes}"
                ),
            }
        }
        detected
    });
    rep.set_counter("e15.faultcamp.detected", detected);
    rep.set_counter("e15.faultcamp.grid_points", GRID.len() as u64);
    rep.set_value("grid", Json::Str("workers {1,4} x lanes {1,64}".into()));
    rep
}

/// Runs E15 and renders its report.
pub fn e15_lane_batching() -> String {
    let rep = e15_report();
    let mut out = String::from(
        "E15 — 64-lane batched campaign simulation: one LaneSim vs 64 scalar\nsimulators per workload, and the workers x lanes determinism grid\n\n",
    );
    let mut rows = Vec::new();
    for w in ["fir_dense", "conv_stream", "memsys_sparse"] {
        let scalar = rep.counter(&format!("sim_batch.{w}.scalar.node_evals"));
        let lanes = rep.counter(&format!("sim_batch.{w}.lanes.node_evals"));
        let fallback = rep.counter(&format!("sim_batch.{w}.lanes.fallback_evals"));
        let lane_work = lanes + fallback;
        rows.push(vec![
            w.to_string(),
            scalar.to_string(),
            lanes.to_string(),
            fallback.to_string(),
            format!("{:.2}x", scalar as f64 / lane_work.max(1) as f64),
        ]);
    }
    out.push_str(&render_table(
        &[
            "workload",
            "scalar64 node_evals",
            "lane dispatches",
            "lane fallbacks",
            "work ratio",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nstimulus sweep: {} scenarios x {} cycles on the FIR design; canonical\nreports byte-identical across all {} grid points (digest {:#x});\nbatched work {} evals vs scalar {}.\n",
        SCENARIOS,
        SWEEP_CYCLES,
        rep.counter("e15.stimsweep.grid_points"),
        rep.counter("e15.stimsweep.digest"),
        rep.counter("e15.stimsweep.lane_evals"),
        rep.counter("e15.stimsweep.scalar_evals"),
    ));
    out.push_str(&format!(
        "fault campaign: {} cells detected over 3 blocks; canonical reports\nbyte-identical across all {} grid points.\n",
        rep.counter("e15.faultcamp.detected"),
        rep.counter("e15.faultcamp.grid_points"),
    ));
    out.push_str("\ncanonical JSON (byte-reproducible; timing lives only in the full report):\n");
    out.push_str(&rep.canonical_json());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_reproduces_and_batching_ratio_holds() {
        let j1 = e15_report().canonical_json();
        let j2 = e15_report().canonical_json();
        assert_eq!(j1, j2);
        assert!(!j1.contains("wall_us"));
        let parsed = dfv_obs::parse_json(&j1).unwrap();
        let counters = parsed.get("counters").unwrap();
        for w in ["fir_dense", "conv_stream", "memsys_sparse"] {
            let scalar = counters
                .get(&format!("sim_batch.{w}.scalar.node_evals"))
                .and_then(Json::as_u64)
                .unwrap();
            let lane_work = counters
                .get(&format!("sim_batch.{w}.lanes.node_evals"))
                .and_then(Json::as_u64)
                .unwrap()
                + counters
                    .get(&format!("sim_batch.{w}.lanes.fallback_evals"))
                    .and_then(Json::as_u64)
                    .unwrap();
            assert!(
                lane_work * 8 <= scalar,
                "{w}: lane work {lane_work} vs scalar {scalar}"
            );
        }
    }
}
