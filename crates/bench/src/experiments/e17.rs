//! E17 — the SAT-sweeping miter front-end: word-level rewriting plus
//! simulation-guided fraiging before CNF, measured sweep-on versus
//! sweep-off with verdict parity gated per workload.
//!
//! Two halves, one report:
//!
//! * **Workload sweep** — the full `bench sec` miter set
//!   ([`crate::secbench::sec_bench_report`]): commuted multipliers, a
//!   multiply-accumulate, reassociated adders, an FMA mantissa slice, the
//!   memory-system fast bank, and a seeded-bug falsification. Each
//!   workload is checked both ways; the verdicts and counterexample
//!   mismatch locations are asserted identical before any number lands.
//! * **The cliff** — commuted multiplier miters at widths the *unswept*
//!   path cannot finish: sweep-off runs under a hard conflict budget and
//!   degrades to Inconclusive, sweep-on proves the same miter outright in
//!   milliseconds. The gate here is monotonicity, not parity: the swept
//!   path may *rescue* a proof the raw path cannot afford, but the two
//!   may never return contradictory Equivalent/NotEquivalent verdicts.
//!
//! Wall-clock lives only in the report's timing section; every counter is
//! a pure function of the fixed workloads.

use dfv_obs::{Json, RunReport};
use dfv_sec::{check_equivalence_with, Budget, CheckOptions, EquivOutcome};

use crate::render_table;
use crate::secbench;

/// Conflict budget for the unswept side of the cliff table — far above
/// anything the swept side needs, far below what the raw miters want.
const CLIFF_CONFLICT_BUDGET: u64 = 20_000;

/// Multiplier widths for the cliff table. Width 8 already costs the raw
/// path ~200k conflicts; 16 is the paper-scale datapath.
const CLIFF_WIDTHS: [u32; 3] = [8, 12, 16];

/// Runs E17 and reduces it to a [`RunReport`].
///
/// # Panics
///
/// Panics if sweeping changes any workload's verdict or counterexample
/// locations (the workload sweep), if the swept cliff miters fail to
/// prove, or if a cliff pair returns contradictory verdicts.
pub fn e17_report() -> RunReport {
    let mut rep = secbench::sec_bench_report(false);

    for &w in &CLIFF_WIDTHS {
        let (slm, rtl, spec) = secbench::mul_pair(w, false);
        let mut opts =
            CheckOptions::with_budget(Budget::unlimited().with_conflicts(CLIFF_CONFLICT_BUDGET));
        opts.fallback_transactions = 0;
        let off = rep.phase(format!("cliff.mul{w}.off"), || {
            check_equivalence_with(&slm, &rtl, &spec, &opts).unwrap()
        });
        let mut swept = opts;
        swept.sweep = dfv_sec::SweepOptions::on();
        let on = rep.phase(format!("cliff.mul{w}.on"), || {
            check_equivalence_with(&slm, &rtl, &spec, &swept).unwrap()
        });
        // Monotonicity gate: sweeping may only *rescue* proofs, never
        // flip one. A contradiction here would be a soundness bug.
        let contradiction = matches!(
            (&off.outcome, &on.outcome),
            (EquivOutcome::Equivalent, EquivOutcome::NotEquivalent(_))
                | (EquivOutcome::NotEquivalent(_), EquivOutcome::Equivalent)
        );
        assert!(
            !contradiction,
            "mul{w}: contradictory verdicts off={:?} on={:?}",
            off.outcome, on.outcome
        );
        assert!(
            on.outcome.is_equivalent(),
            "mul{w}: swept commutativity miter must prove, got {:?}",
            on.outcome
        );
        let code = |o: &EquivOutcome| match o {
            EquivOutcome::Equivalent => 0u64,
            EquivOutcome::NotEquivalent(_) => 1,
            EquivOutcome::Inconclusive { .. } => 2,
        };
        rep.set_counter(format!("cliff.mul{w}.off.verdict"), code(&off.outcome));
        rep.set_counter(format!("cliff.mul{w}.on.verdict"), code(&on.outcome));
        rep.set_counter(
            format!("cliff.mul{w}.off.conflicts"),
            off.solver_stats.conflicts,
        );
        rep.set_counter(
            format!("cliff.mul{w}.on.conflicts"),
            on.solver_stats.conflicts,
        );
    }
    rep.set_value("cliff_conflict_budget", Json::UInt(CLIFF_CONFLICT_BUDGET));
    rep
}

/// Runs E17 and renders both tables.
pub fn e17_sat_sweeping() -> String {
    let rep = e17_report();
    let mut out = String::from(
        "E17 — SAT-sweeping miter front-end: word-level rewriting + simulation-guided\nfraiging before CNF, verdict parity gated per workload\n\n",
    );
    out.push_str(&secbench::render_sec_bench(&rep));

    let mut rows = Vec::new();
    for &w in &CLIFF_WIDTHS {
        let verdict = |v: u64| match v {
            0 => "equivalent",
            1 => "not-equiv",
            _ => "inconclusive",
        };
        let (mut off_us, mut on_us) = (0u128, 0u128);
        for p in rep.phases() {
            if p.name == format!("cliff.mul{w}.off") {
                off_us += p.wall.as_micros();
            } else if p.name == format!("cliff.mul{w}.on") {
                on_us += p.wall.as_micros();
            }
        }
        rows.push(vec![
            format!("mul{w}_comm"),
            verdict(rep.counter(&format!("cliff.mul{w}.off.verdict"))).into(),
            rep.counter(&format!("cliff.mul{w}.off.conflicts"))
                .to_string(),
            format!("{off_us}"),
            verdict(rep.counter(&format!("cliff.mul{w}.on.verdict"))).into(),
            rep.counter(&format!("cliff.mul{w}.on.conflicts"))
                .to_string(),
            format!("{on_us}"),
        ]);
    }
    out.push_str(&format!(
        "\nbeyond the cliff: commuted multiplier miters, sweep-off capped at {CLIFF_CONFLICT_BUDGET} conflicts\n\n"
    ));
    out.push_str(&render_table(
        &[
            "miter",
            "off verdict",
            "off conflicts",
            "off us",
            "on verdict",
            "on conflicts",
            "on us",
        ],
        &rows,
    ));
    out.push_str(
        "\nsweep-off exhausts its conflict budget and degrades to Inconclusive on every\nwidth; sweep-on proves each miter with zero solver conflicts. Sweeping may\nrescue a proof the raw path cannot afford, but contradictory verdicts are\nasserted impossible before this table is printed.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A debug-build-sized slice of the cliff: one width, a small
    /// budget. The full table (all widths, 20k-conflict budget, the
    /// whole workload sweep) runs in release via `experiments -- e17`,
    /// which `scripts/check.sh` gates on.
    #[test]
    fn cliff_rescues_a_wide_multiplier() {
        let (slm, rtl, spec) = secbench::mul_pair(8, false);
        let mut opts = CheckOptions::with_budget(Budget::unlimited().with_conflicts(500));
        opts.fallback_transactions = 0;
        let off = check_equivalence_with(&slm, &rtl, &spec, &opts).unwrap();
        assert!(
            matches!(off.outcome, EquivOutcome::Inconclusive { .. }),
            "raw mul8 commutativity must exhaust a 500-conflict budget"
        );
        opts.sweep = dfv_sec::SweepOptions::on();
        let on = check_equivalence_with(&slm, &rtl, &spec, &opts).unwrap();
        assert!(on.outcome.is_equivalent(), "{:?}", on.outcome);
        assert_eq!(on.solver_stats.conflicts, 0);
    }
}
