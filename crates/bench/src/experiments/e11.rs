//! E11 — the deterministic parallel campaign scheduler: the same
//! verification plan run at 1, 2, 4 and 8 workers, with the wall time of
//! each run recorded in the report's `timing` section and the canonical
//! campaign reports asserted byte-identical across all worker counts.
//!
//! The experiment makes the scheduler's contract measurable: parallelism
//! buys wall time (on multi-core hosts) and costs *nothing* in
//! reproducibility — the canonical JSON a CI gate would diff is the same
//! string whether the campaign ran on one thread or eight. Speedup is a
//! property of the host (`available_parallelism`), so it lives in the
//! rendered text and the `timing` section, never in the canonical JSON.

use dfv_core::{BlockPair, Campaign, CampaignOptions, RetryPolicy, VerificationPlan};
use dfv_designs::{alu, fir};
use dfv_obs::{Json, RunReport};
use dfv_rtl::ModuleBuilder;
use dfv_sec::{Binding, EquivSpec};

use crate::render_table;

/// Worker counts swept by the experiment.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A genuinely-equivalent multiplier-commutativity block: `a * b` in the
/// SLM against `b * a` in RTL, `width` bits per operand. SAT cost grows
/// steeply with `width`, giving the plan a mix of cheap and pricey items.
fn mul_block(width: u32) -> BlockPair {
    let out = 2 * width;
    let mut rb = ModuleBuilder::new("rtl_mul");
    let a = rb.input("a", width);
    let b = rb.input("b", width);
    let (aw, bw) = (rb.zext(a, out), rb.zext(b, out));
    let y = rb.mul(bw, aw);
    rb.output("y", y);
    BlockPair {
        name: format!("mul{width}"),
        slm_source: format!(
            "uint<{out}> mul(uint<{width}> a, uint<{width}> b) {{ return (uint<{out}>)a * (uint<{out}>)b; }}"
        ),
        slm_entry: "mul".into(),
        rtl: rb.finish().expect("mul rtl builds"),
        spec: EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("b", 0, Binding::Slm("b".into()))
            .compare("return", "y", 0),
    }
}

/// The E11 plan: the ALU and FIR reference blocks plus a ramp of
/// multiplier widths — eight independent proof obligations of uneven
/// cost, which is exactly the load shape self-scheduling is for.
pub fn e11_plan() -> VerificationPlan {
    let mut plan = VerificationPlan::new()
        .block(BlockPair {
            name: "alu".into(),
            slm_source: alu::slm_bit_accurate().into(),
            slm_entry: "alu".into(),
            rtl: alu::rtl(8, 8),
            spec: alu::equiv_spec(),
        })
        .block(BlockPair {
            name: "fir".into(),
            slm_source: fir::slm_source().into(),
            slm_entry: "fir".into(),
            rtl: fir::rtl(),
            spec: fir::equiv_spec(),
        });
    for width in [4, 4, 5, 5, 6, 6] {
        let mut b = mul_block(width);
        // Widths repeat, but names must stay unique within the plan.
        b.name = format!("mul{width}_{}", plan.blocks.len());
        plan = plan.block(b);
    }
    plan
}

fn options(workers: usize) -> CampaignOptions {
    CampaignOptions {
        retry: RetryPolicy::default(),
        workers: Some(workers),
        ..CampaignOptions::default()
    }
}

/// Runs the sweep and reduces it to a [`RunReport`].
///
/// Canonical values: block count, worker counts, and whether every run's
/// canonical campaign report matched the serial reference byte for byte.
/// Per-worker-count wall time lands in the `timing` section as phases
/// named `workers_N`.
pub fn e11_report() -> RunReport {
    let mut rep = RunReport::new("e11_parallel_campaign");
    let plan = e11_plan();
    let mut reference: Option<String> = None;
    let mut identical = true;
    for w in WORKER_COUNTS {
        let campaign_report = rep.phase(format!("workers_{w}"), || {
            Campaign::with_options(options(w)).run(&plan)
        });
        assert!(
            campaign_report.all_pass(),
            "all E11 blocks are genuinely equivalent: {:?}",
            campaign_report
                .blocks
                .iter()
                .map(|b| (b.name.as_str(), b.status.to_string()))
                .collect::<Vec<_>>()
        );
        let canon = campaign_report.to_run_report().canonical_json();
        match &reference {
            None => reference = Some(canon),
            Some(r) => identical &= &canon == r,
        }
    }
    rep.set_value("blocks", Json::UInt(plan.blocks.len() as u64));
    rep.set_value(
        "worker_counts",
        Json::Arr(
            WORKER_COUNTS
                .iter()
                .map(|w| Json::UInt(*w as u64))
                .collect(),
        ),
    );
    rep.set_value("reports_identical_across_workers", Json::Bool(identical));
    rep
}

/// Runs E11 and renders its report.
pub fn e11_parallel_campaign() -> String {
    let rep = e11_report();
    let mut out =
        String::from("E11 — parallel campaign scheduling: one plan, swept over worker counts\n\n");
    let serial_us = rep
        .phases()
        .iter()
        .find(|p| p.name == "workers_1")
        .map(|p| p.wall.as_micros())
        .unwrap_or(0);
    let rows: Vec<Vec<String>> = rep
        .phases()
        .iter()
        .map(|p| {
            let us = p.wall.as_micros();
            vec![
                p.name.trim_start_matches("workers_").to_string(),
                format!("{:.1} ms", us as f64 / 1000.0),
                if us > 0 {
                    format!("{:.2}x", serial_us as f64 / us as f64)
                } else {
                    "-".into()
                },
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["workers", "wall", "speedup vs serial"],
        &rows,
    ));
    let identical = rep
        .value("reports_identical_across_workers")
        .map(|v| matches!(v, Json::Bool(true)))
        .unwrap_or(false);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push_str(&format!(
        "\ncanonical reports identical across all worker counts: {identical}\n\
         host parallelism: {cores} core(s) — speedup saturates there; on a \
         single-core host\nthe sweep still proves the determinism contract, \
         just not the wall-time win.\n"
    ));
    out.push_str("\ncanonical JSON (byte-reproducible; wall time lives only in `timing`):\n");
    out.push_str(&rep.canonical_json());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_reports_identical_across_worker_counts() {
        // One sweep is enough here: run-to-run byte reproducibility is
        // covered by dfv-core's prop_parallel tests; this asserts the
        // cross-worker-count identity on the real E11 plan.
        let r1 = e11_report();
        assert_eq!(
            r1.value("reports_identical_across_workers"),
            Some(&Json::Bool(true))
        );
        assert!(!r1.canonical_json().contains("wall_us"));
        let full = dfv_obs::parse_json(&r1.full_json()).unwrap();
        assert!(full.get("timing").is_some());
    }
}
