//! E3 — §2's "sequential equivalence checking is very effective at quickly
//! finding discrepancies between SLM and RTL models".
//!
//! Every width-preserving mutation of the Fig-1 ALU is attacked two ways:
//! constrained-random co-simulation against the SLM (counting transactions
//! to first mismatch) and SEC (which proves or refutes). The table reports
//! detection rate and cost for both.
//!
//! The co-simulation side runs on the 64-lane batched engine
//! ([`LaneSim`]): transactions are drawn in stimulus order, packed one
//! per lane, stepped once per block, and scanned back in the same order —
//! so the reported detection latency is a pure function of the seed and
//! budget, identical at every lane count
//! (see [`detection_latency`] and the `detection_latency_is_lane_invariant`
//! test).

use std::time::{Duration, Instant};

use dfv_bits::limbs::LANES;
use dfv_cosim::{apply_mutation, enumerate_mutations, FieldSpec, StimulusGen};
use dfv_designs::alu;
use dfv_rtl::{LaneSim, Module, Simulator};
use dfv_sec::{check_equivalence, EquivOutcome};
use dfv_slmir::{elaborate, parse};

use crate::render_table;

/// The stimulus field every ALU port draws from.
fn alu_corner() -> FieldSpec {
    FieldSpec::Corners {
        width: 8,
        corner_percent: 25,
    }
}

/// Transactions-to-first-mismatch for `mutant` against the SLM oracle,
/// batched `lanes` transactions at a time on the 64-lane engine. Each
/// transaction is independent (reset, poke a/b/c, one step), so a block
/// resets once and carries one transaction per lane; outputs are scanned
/// back in draw order. The stimulus stream, the scan order, and hence the
/// returned latency depend only on `seed` and `budget` — never on
/// `lanes`.
fn detection_latency(
    mutant: &Module,
    slm_sim: &mut Simulator,
    seed: u64,
    budget: u64,
    lanes: usize,
) -> Option<u64> {
    let lanes = lanes.clamp(1, LANES);
    let mut gen = StimulusGen::new(seed);
    let corner = alu_corner();
    let mut dut = LaneSim::new(mutant.clone()).expect("mutant simulates");
    let mut expects = Vec::with_capacity(lanes);
    let mut t = 0u64;
    while t < budget {
        let block = lanes.min((budget - t) as usize);
        dut.reset();
        expects.clear();
        for lane in 0..block {
            let (a, b, c) = (gen.draw(&corner), gen.draw(&corner), gen.draw(&corner));
            let expect = slm_sim.eval_comb(&[("a", a.clone()), ("b", b.clone()), ("c", c.clone())])
                ["return"]
                .clone();
            dut.poke_lane("a", lane, a);
            dut.poke_lane("b", lane, b);
            dut.poke_lane("c", lane, c);
            expects.push(expect);
        }
        dut.step();
        for (lane, expect) in expects.iter().enumerate() {
            if dut.output_lane("out", lane) != *expect {
                return Some(t + lane as u64 + 1);
            }
        }
        t += block as u64;
    }
    None
}

/// Runs E3 and renders its report.
pub fn e3_sec_vs_simulation() -> String {
    let mut out = String::from(
        "E3 — bug-finding effectiveness: random co-simulation vs SEC (ALU mutants)\n\n",
    );
    let slm =
        elaborate(&parse(alu::slm_bit_accurate()).expect("parses"), "alu").expect("conditioned");
    let golden = alu::rtl(8, 8);
    let spec = alu::equiv_spec();
    let mutations = enumerate_mutations(&golden);

    let budget = 4000u64;
    let mut rows = Vec::new();
    let mut sim_txns_when_caught = Vec::new();
    let mut sim_caught = 0usize;
    let mut sec_caught = 0usize;
    let mut benign = 0usize;
    let mut sim_total = Duration::ZERO;
    let mut sec_total = Duration::ZERO;
    let mut slm_sim = Simulator::new(slm.clone()).expect("slm simulates");
    for (i, m) in mutations.iter().enumerate() {
        let mutant = apply_mutation(&golden, m);
        // Random co-simulation, 64 transactions per batched step.
        let t0 = Instant::now();
        let found = detection_latency(&mutant, &mut slm_sim, 0xE3 + i as u64, budget, LANES);
        let sim_dt = t0.elapsed();
        sim_total += sim_dt;
        // SEC.
        let t1 = Instant::now();
        let report = check_equivalence(&slm, &mutant, &spec).expect("valid spec");
        let sec_dt = t1.elapsed();
        sec_total += sec_dt;
        let equivalent = matches!(report.outcome, EquivOutcome::Equivalent);
        if let Some(t) = found {
            sim_caught += 1;
            sim_txns_when_caught.push(t);
        }
        if equivalent {
            benign += 1;
        } else {
            sec_caught += 1;
        }
        rows.push(vec![
            format!("{i}"),
            format!("{m:?}").chars().take(26).collect(),
            found.map_or("-".into(), |t| t.to_string()),
            format!("{sim_dt:.1?}"),
            if equivalent {
                "benign(proof)"
            } else {
                "caught"
            }
            .to_string(),
            format!("{sec_dt:.1?}"),
        ]);
    }
    out.push_str(&render_table(
        &[
            "#",
            "mutation",
            "sim txns",
            "sim time",
            "sec verdict",
            "sec time",
        ],
        &rows,
    ));
    let mean_txns = if sim_txns_when_caught.is_empty() {
        0.0
    } else {
        sim_txns_when_caught.iter().sum::<u64>() as f64 / sim_txns_when_caught.len() as f64
    };
    out.push_str(&format!(
        "\nsummary: {total} mutants | SEC caught {sec_caught} + proved {benign} benign \
         (total {sec:?}) |\nrandom sim caught {sim_caught} within {budget} txns \
         (mean {mean_txns:.0} txns to detect, total {sim:?})\n",
        total = mutations.len(),
        sec = sec_total,
        sim = sim_total,
    ));

    // The deep-corner "needle": the RTL is wrong on exactly one of the 2^24
    // input combinations. Random simulation is essentially blind to it;
    // SEC pulls out the witness directly.
    let needle = needle_rtl();
    let t0 = Instant::now();
    let found = detection_latency(&needle, &mut slm_sim, 0xD1E, budget * 25, LANES);
    let sim_dt = t0.elapsed();
    let t1 = Instant::now();
    let report = check_equivalence(&slm, &needle, &spec).expect("valid spec");
    let sec_dt = t1.elapsed();
    let witness = match &report.outcome {
        EquivOutcome::NotEquivalent(cex) => cex
            .slm_inputs
            .iter()
            .map(|(n, v)| format!("{n}={:#04x}", v.to_u64()))
            .collect::<Vec<_>>()
            .join(" "),
        EquivOutcome::Equivalent => "MISSED".into(),
        EquivOutcome::Inconclusive { reason, .. } => format!("INCONCLUSIVE ({reason})"),
    };
    out.push_str(&format!(
        "\nneedle bug (wrong on exactly 1 of 2^24 inputs): random sim {} after \
         {} txns ({sim_dt:.1?});\nSEC found the witness [{witness}] in \
         {sec_dt:.1?}.\nshape: SEC both finds every real bug — including \
         needles simulation cannot sample —\nand *proves* the benign mutants \
         equivalent; §2's \"very effective at quickly finding\ndiscrepancies\".\n",
        found.map_or("gave up", |_| "got lucky"),
        found.unwrap_or(budget * 25),
    ));
    out
}

/// The ALU with a one-point corruption: output bit 0 flips iff
/// (a, b, c) == (0x5A, 0x3C, 0x7E).
fn needle_rtl() -> dfv_rtl::Module {
    use dfv_bits::Bv;
    let mut b = dfv_rtl::ModuleBuilder::new("alu_needle");
    let a = b.input("a", 8);
    let bi = b.input("b", 8);
    let c = b.input("c", 8);
    let sum = b.add(a, bi);
    let tmp_r = b.reg("tmp", 8, Bv::zero(8));
    b.connect_reg(tmp_r, sum);
    let c_r = b.reg("c_r", 8, Bv::zero(8));
    b.connect_reg(c_r, c);
    // Needle detector, registered alongside stage 1.
    let ka = b.lit(8, 0x5A);
    let kb = b.lit(8, 0x3C);
    let kc = b.lit(8, 0x7E);
    let ea = b.eq(a, ka);
    let eb = b.eq(bi, kb);
    let ec = b.eq(c, kc);
    let e1 = b.and(ea, eb);
    let hit = b.and(e1, ec);
    let hit_r = b.reg("hit", 1, Bv::zero(1));
    b.connect_reg(hit_r, hit);
    let tq = b.reg_q(tmp_r);
    let cq = b.reg_q(c_r);
    let tw = b.sext(tq, 9);
    let cw = b.sext(cq, 9);
    let out_ok = b.add(tw, cw);
    let hq = b.reg_q(hit_r);
    let zeros = b.lit(8, 0);
    let flip = b.concat(zeros, hq);
    let out = b.xor(out_ok, flip);
    b.output("out", out);
    b.finish().expect("needle rtl builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_sec_never_misses() {
        let report = e3_sec_vs_simulation();
        // Every mutant line ends in a SEC verdict; none may be ambiguous.
        assert!(report.contains("caught"));
        assert!(report.contains("benign(proof)"));
    }

    /// The deterministic core of the E3 report — the per-mutant
    /// transactions-to-detection column — must be byte-identical whether
    /// the sweep batches 1, 5, or 64 transactions per lane step.
    #[test]
    fn detection_latency_is_lane_invariant() {
        let slm = elaborate(&parse(alu::slm_bit_accurate()).expect("parses"), "alu")
            .expect("conditioned");
        let mut slm_sim = Simulator::new(slm).expect("slm simulates");
        let golden = alu::rtl(8, 8);
        let budget = 500u64; // multiple full 64-lane blocks plus a partial one
        for (i, m) in enumerate_mutations(&golden).iter().enumerate() {
            let mutant = apply_mutation(&golden, m);
            let seed = 0xE3 + i as u64;
            let at64 = detection_latency(&mutant, &mut slm_sim, seed, budget, 64);
            for lanes in [1usize, 5] {
                let at = detection_latency(&mutant, &mut slm_sim, seed, budget, lanes);
                assert_eq!(at, at64, "mutant {i} ({m:?}) diverged at lanes={lanes}");
            }
        }
        let needle = needle_rtl();
        assert_eq!(
            detection_latency(&needle, &mut slm_sim, 0xD1E, 2000, 1),
            detection_latency(&needle, &mut slm_sim, 0xD1E, 2000, 64),
        );
    }
}
