//! E4 — Figure 2 / §3.2: interface-timing alignment between SLM and RTL.
//!
//! Two studies:
//!
//! * **latency + stalls (FIR)**: the RTL stream is delayed and stretched by
//!   random stalls; an exact (cycle-matched) comparator reports almost
//!   everything as a mismatch, while the value-ordered comparator stays
//!   clean — quantifying why "timing alignment between SLM and RTL can be
//!   non-trivial".
//! * **out-of-order completion (memsys)**: dual-latency lookups need the
//!   tag-matched comparator; the table sweeps the reorder window.

use dfv_bits::Bv;
use dfv_bits::SplitMix64;
use dfv_cosim::{Comparator, ExactComparator, InOrderComparator, OutOfOrderComparator, StreamItem};
use dfv_designs::{fir, memsys};
use dfv_rtl::Simulator;

use crate::render_table;

/// Runs E4 and renders its report.
pub fn e4_timing_alignment() -> String {
    let mut out = String::from("E4 — Fig 2: timing alignment between SLM and RTL\n\n");
    out.push_str("part A: FIR stream under random stalls (256 samples per row)\n");
    let mut rows = Vec::new();
    for stall_pct in [0u32, 10, 30, 50] {
        let (exact_mis, ordered_mis, cycles) = fir_stall_run(stall_pct, 256);
        rows.push(vec![
            format!("{stall_pct}%"),
            cycles.to_string(),
            format!("{exact_mis}/256"),
            format!("{ordered_mis}/256"),
        ]);
    }
    out.push_str(&render_table(
        &[
            "stall prob",
            "rtl cycles",
            "exact-compare mismatches",
            "ordered-compare mismatches",
        ],
        &rows,
    ));

    out.push_str("\npart B: memsys out-of-order completion (48 tagged lookups per row)\n");
    let mut rows = Vec::new();
    for window in [0usize, 1, 2, 4, 8] {
        let (matched, mismatches, in_order_mis) = memsys_run(window, 48);
        rows.push(vec![
            window.to_string(),
            format!("{matched}/48"),
            mismatches.to_string(),
            format!("{in_order_mis}"),
        ]);
    }
    out.push_str(&render_table(
        &[
            "reorder window",
            "ooo-compare matched",
            "ooo flags",
            "in-order-compare mismatches",
        ],
        &rows,
    ));
    out.push_str(
        "\nshape: with the right alignment policy (value-ordered for stalls, \
         tag-matched with a\nsufficient window for dual-latency completion) the \
         functionally-equal streams compare\nclean; naive cycle-exact comparison \
         drowns in false mismatches — the paper's Fig 2.\n",
    );
    out
}

/// Streams samples through the FIR RTL with random stalls; compares against
/// the untimed SLM with an exact and an order-based comparator. Returns
/// (exact mismatches, ordered mismatches, RTL cycles used).
fn fir_stall_run(stall_pct: u32, nsamples: usize) -> (usize, usize, u64) {
    let mut rng = SplitMix64::new(0xE4 + stall_pct as u64);
    let samples: Vec<i64> = (0..nsamples).map(|_| rng.range_i64(-128, 127)).collect();

    // Untimed SLM: outputs at "time" = sample index (zero-delay ideal).
    let mut hist = [0i64; fir::TAPS];
    let mut expected = Vec::new();
    for (i, &x) in samples.iter().enumerate() {
        hist.rotate_right(1);
        hist[0] = x;
        let y: i64 = fir::COEFFS.iter().zip(&hist).map(|(c, v)| c * v).sum();
        expected.push(StreamItem {
            value: Bv::from_i64(fir::OUT_WIDTH, y),
            time: i as u64,
        });
    }

    // RTL with random stalls.
    let mut sim = Simulator::new(fir::rtl()).expect("fir rtl");
    let mut actual = Vec::new();
    let mut i = 0usize;
    let mut cycle = 0u64;
    while actual.len() < nsamples {
        let stall = (rng.below(100) as u32) < stall_pct;
        sim.poke("stall", Bv::from_bool(stall));
        sim.poke("in_valid", Bv::from_bool(i < nsamples));
        sim.poke(
            "x",
            Bv::from_i64(8, if i < nsamples { samples[i] } else { 0 }),
        );
        let advanced = !stall && i < nsamples;
        sim.step();
        if sim.output("out_valid").bit(0) && advanced {
            // The value appears on the RTL port during cycle + 1 (it is
            // registered); stamp it with its true wall-clock cycle.
            actual.push(StreamItem {
                value: sim.output("y"),
                time: cycle + 1,
            });
        }
        if advanced {
            i += 1;
        }
        cycle += 1;
        if cycle > 100_000 {
            break;
        }
    }

    let mut exact = ExactComparator::new();
    let mut ordered = InOrderComparator::default();
    for e in &expected {
        exact.push_expected(e.clone());
        ordered.push_expected(e.clone());
    }
    for a in &actual {
        exact.push_actual(a.clone());
        ordered.push_actual(a.clone());
    }
    (
        exact.finish().mismatches.len(),
        ordered.finish().mismatches.len(),
        cycle,
    )
}

/// Runs tagged lookups through memsys and compares with an out-of-order
/// comparator of the given window plus an in-order comparator. Returns
/// (ooo matched, ooo flags, in-order mismatches).
fn memsys_run(window: usize, nreqs: usize) -> (usize, usize, usize) {
    let mut table = [0u8; 16];
    for (i, v) in table.iter_mut().enumerate() {
        *v = (i as u8) * 13 + 1;
    }
    let mut rng = SplitMix64::new(0xE4_00 + window as u64);
    let reqs: Vec<(u64, u64)> = (0..nreqs as u64).map(|i| (i % 8, rng.below(16))).collect();

    let mut sim = Simulator::new(memsys::rtl(&table)).expect("memsys rtl");
    let mut ooo = OutOfOrderComparator::new(10, 8, window);
    let mut inorder = InOrderComparator::default();
    for (i, &(tag, addr)) in reqs.iter().enumerate() {
        let v = memsys::pack_response(tag, memsys::slm_golden(&table, addr as u8) as u64);
        // The SLM answers in issue order; tags repeat every 8 requests, but
        // in-flight windows are shorter than 8, so tag matching is sound.
        ooo.push_expected(StreamItem {
            value: v.clone(),
            time: i as u64,
        });
        inorder.push_expected(StreamItem {
            value: v,
            time: i as u64,
        });
    }
    for cycle in 0..(nreqs as u64 + memsys::SLOW_LATENCY + 1) {
        if let Some(&(tag, addr)) = reqs.get(cycle as usize) {
            sim.poke("req_valid", Bv::from_bool(true));
            sim.poke("tag", Bv::from_u64(memsys::TAG_W, tag));
            sim.poke("addr", Bv::from_u64(memsys::ADDR_W, addr));
        } else {
            sim.poke("req_valid", Bv::from_bool(false));
        }
        sim.step();
        for port in ["resp0", "resp1"] {
            if sim.output(&format!("{port}_valid")).bit(0) {
                let v = memsys::pack_response(
                    sim.output(&format!("{port}_tag")).to_u64(),
                    sim.output(&format!("{port}_data")).to_u64(),
                );
                ooo.push_actual(StreamItem {
                    value: v.clone(),
                    time: cycle,
                });
                inorder.push_actual(StreamItem {
                    value: v,
                    time: cycle,
                });
            }
        }
    }
    let ooo_report = ooo.finish();
    let inorder_report = inorder.finish();
    (
        ooo_report.matched,
        ooo_report.mismatches.len(),
        inorder_report.mismatches.len(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn stall_free_streams_compare_clean_even_exactly_shifted() {
        let (exact_mis, ordered_mis, _) = super::fir_stall_run(0, 64);
        // Even with zero stalls, the RTL is one cycle late: exact compare
        // flags everything, ordered compare is clean.
        assert_eq!(ordered_mis, 0);
        assert!(exact_mis > 0);
    }

    #[test]
    fn heavy_stalls_stay_clean_under_ordered_compare() {
        let (_, ordered_mis, cycles) = super::fir_stall_run(50, 64);
        assert_eq!(ordered_mis, 0);
        assert!(cycles > 64, "stalls must stretch the run");
    }

    #[test]
    fn window_large_enough_aligns_memsys() {
        let (matched, flags, inorder_mis) = super::memsys_run(8, 48);
        assert_eq!(matched, 48);
        assert_eq!(flags, 0);
        assert!(inorder_mis > 0, "in-order compare must suffer");
    }
}
