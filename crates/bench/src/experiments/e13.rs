//! E13 — crash-tolerant campaigns: a journaled verification campaign is
//! killed at a sweep of checkpoint positions and resumed, and at every
//! cut the resumed run's canonical report is byte-identical to the
//! uninterrupted reference while the journal converts already-proved
//! blocks from recomputation into replay.
//!
//! The experiment quantifies what the journal buys: at each cut point it
//! reports how many records survived the "kill" (a byte-truncation of
//! the journal file — exactly the state a SIGKILL can leave), how many
//! blocks the resumed run replayed versus recomputed, and whether the
//! canonical JSON still matched the reference byte for byte. One cut is
//! deliberately torn mid-record to show the checksum dropping the tail
//! instead of trusting it.

use dfv_core::{BlockPair, Campaign, CampaignOptions, VerificationPlan};
use dfv_designs::{alu, fir};
use dfv_obs::{Json, RunReport};
use dfv_rtl::ModuleBuilder;
use dfv_sec::{Binding, EquivSpec};
use std::path::PathBuf;

use crate::render_table;

/// A genuinely-equivalent multiplier-commutativity block, as in E11.
fn mul_block(width: u32, tag: usize) -> BlockPair {
    let out = 2 * width;
    let mut rb = ModuleBuilder::new("rtl_mul");
    let a = rb.input("a", width);
    let b = rb.input("b", width);
    let (aw, bw) = (rb.zext(a, out), rb.zext(b, out));
    let y = rb.mul(bw, aw);
    rb.output("y", y);
    BlockPair {
        name: format!("mul{width}_{tag}"),
        slm_source: format!(
            "uint<{out}> mul(uint<{width}> a, uint<{width}> b) {{ return (uint<{out}>)a * (uint<{out}>)b; }}"
        ),
        slm_entry: "mul".into(),
        rtl: rb.finish().expect("mul rtl builds"),
        spec: EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("b", 0, Binding::Slm("b".into()))
            .compare("return", "y", 0),
    }
}

/// The E13 plan: the ALU and FIR reference blocks plus a multiplier ramp
/// — six proof obligations of uneven cost, so each journal record
/// represents a materially different amount of rescued work.
pub fn e13_plan() -> VerificationPlan {
    let mut plan = VerificationPlan::new()
        .block(BlockPair {
            name: "alu".into(),
            slm_source: alu::slm_bit_accurate().into(),
            slm_entry: "alu".into(),
            rtl: alu::rtl(8, 8),
            spec: alu::equiv_spec(),
        })
        .block(BlockPair {
            name: "fir".into(),
            slm_source: fir::slm_source().into(),
            slm_entry: "fir".into(),
            rtl: fir::rtl(),
            spec: fir::equiv_spec(),
        });
    for (i, width) in [4, 5, 5, 6].into_iter().enumerate() {
        plan = plan.block(mul_block(width, i));
    }
    plan
}

fn options(journal: Option<PathBuf>) -> CampaignOptions {
    CampaignOptions {
        workers: Some(2),
        journal_path: journal,
        ..CampaignOptions::default()
    }
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dfv-e13-{tag}-{}.journal", std::process::id()))
}

/// Byte offset of the end of the `n`-th journal record (the header line
/// counts as record 0's predecessor). `n` past the record count clamps
/// to the full file.
fn record_boundary(journal: &str, n: usize) -> usize {
    let mut seen = 0usize;
    for (i, b) in journal.bytes().enumerate() {
        if b == b'\n' {
            seen += 1;
            // Line 0 is the header; record k ends at newline k+1.
            if seen == n + 1 {
                return i + 1;
            }
        }
    }
    journal.len()
}

struct Cut {
    label: String,
    bytes: usize,
}

/// Runs the kill/resume sweep and reduces it to a [`RunReport`].
///
/// Canonical values: block count, per-cut replayed/recomputed counts,
/// and whether every resumed report matched the reference byte for byte.
/// Wall time for the reference run and the resume sweep lands in
/// `timing`.
pub fn e13_report() -> RunReport {
    let mut rep = RunReport::new("e13_crash_resume");
    let plan = e13_plan();
    let blocks = plan.blocks.len();

    // Uninterrupted journal-free reference: the ground truth.
    let reference = rep
        .phase("reference", || {
            Campaign::with_options(options(None)).run(&plan)
        })
        .to_run_report()
        .canonical_json();

    // One full journaled run to produce the journal we then mutilate.
    let journal_path = temp_journal("full");
    let _ = std::fs::remove_file(&journal_path);
    let full = rep.phase("journaled_run", || {
        Campaign::with_options(options(Some(journal_path.clone()))).run(&plan)
    });
    assert!(
        full.journal_error.is_none(),
        "journal must be writable in E13"
    );
    let journal = std::fs::read_to_string(&journal_path).expect("journal readable");
    let _ = std::fs::remove_file(&journal_path);

    // The kill sweep: record-aligned cuts at none / a third / two thirds /
    // all of the plan, plus one torn mid-record cut the checksum must
    // refuse to trust.
    let torn = record_boundary(&journal, blocks * 2 / 3).saturating_sub(7);
    let cuts = [
        Cut {
            label: "0 records".into(),
            bytes: record_boundary(&journal, 0),
        },
        Cut {
            label: format!("{} records", blocks / 3),
            bytes: record_boundary(&journal, blocks / 3),
        },
        Cut {
            label: format!("{} records", blocks * 2 / 3),
            bytes: record_boundary(&journal, blocks * 2 / 3),
        },
        Cut {
            label: format!("all {blocks} records"),
            bytes: journal.len(),
        },
        Cut {
            label: format!("torn mid-record ({} records intact)", blocks * 2 / 3 - 1),
            bytes: torn,
        },
    ];

    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut cut_values = Vec::new();
    rep.phase("resume_sweep", || {
        for (i, cut) in cuts.iter().enumerate() {
            let path = temp_journal(&format!("cut{i}"));
            std::fs::write(&path, &journal.as_bytes()[..cut.bytes]).expect("cut journal written");
            let resumed = Campaign::with_options(options(Some(path.clone()))).run(&plan);
            let _ = std::fs::remove_file(&path);
            let replayed = resumed.journal_replayed();
            let recomputed = blocks - replayed;
            let identical = resumed.to_run_report().canonical_json() == reference;
            all_identical &= identical;
            rows.push(vec![
                cut.label.clone(),
                format!("{}", cut.bytes),
                format!("{replayed}"),
                format!("{recomputed}"),
                if identical { "yes".into() } else { "NO".into() },
            ]);
            cut_values.push(Json::Arr(vec![
                Json::UInt(replayed as u64),
                Json::UInt(recomputed as u64),
            ]));
        }
    });

    rep.set_value("blocks", Json::UInt(blocks as u64));
    rep.set_value("cuts", Json::UInt(cuts.len() as u64));
    rep.set_value("replayed_recomputed_per_cut", Json::Arr(cut_values));
    rep.set_value("reports_identical_after_resume", Json::Bool(all_identical));
    rep.set_value(
        "table",
        Json::Str(render_table(
            &[
                "journal cut at",
                "bytes kept",
                "replayed",
                "recomputed",
                "canonical identical",
            ],
            &rows,
        )),
    );
    rep
}

/// Runs E13 and renders its report.
pub fn e13_crash_resume() -> String {
    let rep = e13_report();
    let mut out = String::from(
        "E13 — crash-tolerant campaigns: kill a journaled run at a sweep of\n\
         checkpoint positions, resume, and diff the canonical report\n\n",
    );
    if let Some(Json::Str(table)) = rep.value("table") {
        out.push_str(table);
    }
    let identical = matches!(
        rep.value("reports_identical_after_resume"),
        Some(Json::Bool(true))
    );
    out.push_str(&format!(
        "\nall resumed reports byte-identical to the uninterrupted run: {identical}\n\
         replayed blocks skip parse, lint, and SAT entirely — the journal\n\
         converts a crash from \"lose the campaign\" into \"lose at most the\n\
         blocks in flight\"; the torn cut shows the checksum dropping a\n\
         half-written record instead of resuming from garbage.\n"
    ));
    out.push_str("\ncanonical JSON (byte-reproducible; wall time lives only in `timing`):\n");
    out.push_str(&rep.canonical_json());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_resumes_byte_identical_at_every_cut() {
        let rep = e13_report();
        assert_eq!(
            rep.value("reports_identical_after_resume"),
            Some(&Json::Bool(true))
        );
        assert_eq!(rep.value("cuts"), Some(&Json::UInt(5)));
        // The full-journal cut replays everything; the 0-record cut nothing.
        let Some(Json::Arr(per_cut)) = rep.value("replayed_recomputed_per_cut") else {
            panic!("missing per-cut values");
        };
        let blocks = match rep.value("blocks") {
            Some(Json::UInt(n)) => *n,
            other => panic!("missing blocks: {other:?}"),
        };
        assert_eq!(
            per_cut[0],
            Json::Arr(vec![Json::UInt(0), Json::UInt(blocks)])
        );
        assert_eq!(
            per_cut[3],
            Json::Arr(vec![Json::UInt(blocks), Json::UInt(0)])
        );
        assert!(!rep.canonical_json().contains("wall_us"));
    }
}
