//! E16 — the register-bytecode VM: both hot loops lowered to the same
//! flat bytecode, with the interpreters kept as oracles.
//!
//! Two halves, one report:
//!
//! * **RTL** — the three standard workloads run on the dirty-cone
//!   interpreter, the bytecode VM ([`dfv_rtl::EvalMode::Bytecode`]), and
//!   the full-reevaluation reference oracle, with every engine's output
//!   hash asserted against the oracle before any counter lands (the
//!   [`crate::simbench::add_engine_sweep`] counters);
//! * **SLM** — a scalar-heavy SLM-C mixing loop runs on the tree-walking
//!   interpreter ([`dfv_slmir::Interp::new`]) and on the
//!   segment-compiling interpreter ([`dfv_slmir::Interp::new_compiled`]),
//!   which lowers straight-line statement runs to the same bytecode; the
//!   full [`dfv_slmir::RunResult`] — return value, out params, and the
//!   exact fuel-visible step count — is asserted identical.
//!
//! Wall-clock lives only in the report's timing section; the canonical
//! JSON is a pure function of the fixed seeds.

use dfv_obs::{Json, RunReport};
use dfv_slmir::{parse, Interp, ScalarTy, Value};

use crate::render_table;
use crate::simbench;

/// Cycles per RTL workload stream.
const RTL_CYCLES: u64 = 400;
/// Iterations of the SLM mixing loop.
const SLM_ROUNDS: u64 = 20_000;

/// A scalar-heavy SLM-C kernel: every loop-body statement is a 32-bit
/// scalar op, so the segment compiler lowers the whole body to one
/// bytecode segment per iteration.
const MIX_SRC: &str = r#"
    uint32 mix(uint32 seed, uint32 rounds) {
        uint32 h = seed;
        for (uint32 i = 0; i < rounds; i++) {
            uint32 x = h ^ i;
            x = x * 40503;
            x = x ^ (x >> 13);
            x = x + 40961;
            x = x * 257;
            x = x ^ (x >> 7);
            h = h + x;
        }
        return h;
    }
"#;

/// Runs E16 and reduces it to a [`RunReport`]. The canonical JSON is a
/// pure function of the fixed seeds.
///
/// # Panics
///
/// Panics if any RTL engine's output hash diverges from the reference
/// oracle, or if the compiled SLM interpreter's `RunResult` differs from
/// the tree-walking oracle's in any field.
pub fn e16_report() -> RunReport {
    let mut rep = RunReport::new("e16_bytecode_vm");
    simbench::add_engine_sweep(&mut rep, RTL_CYCLES, &simbench::ALL_ENGINES);

    let prog = parse(MIX_SRC).expect("mix kernel parses");
    let u32ty = ScalarTy {
        width: 32,
        signed: false,
    };
    let args = [
        Value::from_u64(u32ty, 0x5EED),
        Value::from_u64(u32ty, SLM_ROUNDS),
    ];
    let oracle_res = rep.phase("slm.oracle", || {
        Interp::new(&prog).run("mix", &args).expect("mix runs")
    });
    let (compiled_res, segments) = rep.phase("slm.compiled", || {
        let mut interp = Interp::new_compiled(&prog);
        let r = interp.run("mix", &args).expect("mix runs");
        (r, interp.compiled_segments())
    });
    assert_eq!(
        compiled_res, oracle_res,
        "segment-compiled interpreter diverged from the oracle"
    );
    rep.set_counter("e16.slm.segments", segments as u64);
    rep.set_counter("e16.slm.steps", oracle_res.steps);
    rep.set_counter(
        "e16.slm.ret",
        oracle_res.ret.as_bv().expect("scalar return").to_u64(),
    );
    rep.set_value("slm_rounds", Json::UInt(SLM_ROUNDS));
    rep
}

/// Runs E16 and renders its report.
pub fn e16_bytecode_vm() -> String {
    let rep = e16_report();
    let mut out = String::from(
        "E16 — register-bytecode VM: RTL schedule levels and SLM-IR statement runs\nlowered to one flat bytecode, interpreters kept as oracles\n\n",
    );
    out.push_str(&simbench::render_sim_bench(&rep));

    let (mut oracle_us, mut compiled_us) = (0u128, 0u128);
    for p in rep.phases() {
        match p.name.as_str() {
            "slm.oracle" => oracle_us += p.wall.as_micros(),
            "slm.compiled" => compiled_us += p.wall.as_micros(),
            _ => {}
        }
    }
    let rows = vec![
        vec![
            "tree-walking oracle".into(),
            rep.counter("e16.slm.steps").to_string(),
            "-".into(),
            format!("{oracle_us}"),
        ],
        vec![
            "segment-compiled".into(),
            rep.counter("e16.slm.steps").to_string(),
            rep.counter("e16.slm.segments").to_string(),
            format!("{compiled_us}"),
        ],
    ];
    out.push_str(&format!(
        "\nSLM mixing loop ({SLM_ROUNDS} rounds, ret {:#x}):\n\n",
        rep.counter("e16.slm.ret"),
    ));
    out.push_str(&render_table(
        &["interpreter", "steps (fuel ticks)", "segments", "us"],
        &rows,
    ));
    out.push_str(&format!(
        "\nboth interpreters report the identical RunResult — return value, outs, and\nthe exact step count — and the compiled one runs {} bytecode segment(s)\ninstead of walking the statement tree",
        rep.counter("e16.slm.segments"),
    ));
    if compiled_us > 0 {
        out.push_str(&format!(
            " ({:.2}x wall, timing section only)",
            oracle_us as f64 / compiled_us as f64
        ));
    }
    out.push_str(
        ".\n\ncanonical JSON (byte-reproducible; timing lives only in the full report):\n",
    );
    out.push_str(&rep.canonical_json());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_reproduces_and_vm_parity_holds() {
        let a = e16_report();
        let b = e16_report();
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert!(!a.canonical_json().contains("wall_us"));
        // The mixing loop must actually engage the segment compiler.
        assert!(a.counter("e16.slm.segments") >= 1);
        // And the vm rows must be present with the same step counters as
        // the interpreter rows (same stimulus, same schedule).
        for w in ["fir_dense", "conv_stream", "memsys_sparse"] {
            assert_eq!(
                a.counter(&format!("sim.{w}.vm.steps")),
                a.counter(&format!("sim.{w}.dirty.steps"))
            );
        }
    }
}
