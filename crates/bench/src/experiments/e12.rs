//! E12 — the compiled simulation engine, measured: E10's SLM-vs-RTL work
//! ratio re-taken on the dirty-cone engine, plus an old-vs-new engine
//! comparison on the identical FIR workload in the same report.
//!
//! The pre-compilation baseline survives as
//! [`Simulator::new_reference`](dfv_rtl::Simulator::new_reference) — the
//! full-reevaluation oracle whose `node_evals` equals
//! `eval_passes * node_count` by construction. Running both engines on
//! the same seeded blocks gives two deterministic numbers:
//!
//! * **work ratio vs SLM** (`rtl_dirty.node_evals` per
//!   `slm.activations`) — E10's structural cost proxy, now measured on
//!   the engine that skips stable cones;
//! * **engine work ratio** (`rtl_ref.node_evals` per
//!   `rtl_dirty.node_evals`) — how much of the reference engine's node
//!   work the compiled engine avoids on a dense streaming workload.
//!
//! Wall-clock throughput for both engines is measured at the phase edges
//! and reported in the rendered text and the `timing` section only; the
//! canonical JSON stays byte-reproducible.

use std::sync::{Arc, Mutex};

use dfv_obs::{Json, MemoryRecorder, RunReport};

use crate::models::{sample_block, CycleApproxFir, RtlFir};
use crate::render_table;

/// Seeded sample blocks each model processes (matches E10).
const BLOCKS: u64 = 16;

/// Re-keys one engine's `rtl.*` recorder counters under an
/// engine-specific prefix so the two RTL runs do not collide.
fn add_prefixed(rep: &mut RunReport, prefix: &str, rec: &Arc<Mutex<MemoryRecorder>>) {
    for (k, v) in rec.lock().unwrap().counters() {
        let suffix = k.strip_prefix("rtl.").unwrap_or(k);
        rep.set_counter(format!("{prefix}.{suffix}"), *v);
    }
}

/// Runs the instrumented workload on all three models and reduces it to a
/// [`RunReport`]. The canonical JSON is a pure function of the fixed
/// seeds.
pub fn e12_report() -> RunReport {
    let mut rep = RunReport::new("e12_sim_engine");

    let slm_rec = MemoryRecorder::shared();
    let mut slm = CycleApproxFir::new();
    slm.set_recorder(slm_rec.clone());
    rep.phase("slm", || {
        let mut sink = 0i64;
        for seed in 0..BLOCKS {
            sink ^= slm.run(&sample_block(seed))[0];
        }
        std::hint::black_box(sink);
    });

    let dirty_rec = MemoryRecorder::shared();
    let mut rtl_dirty = RtlFir::new();
    rtl_dirty.set_recorder(dirty_rec.clone());
    let dirty_sink = rep.phase("rtl_dirty", || {
        let mut sink = 0i64;
        for seed in 0..BLOCKS {
            sink ^= rtl_dirty.run(&sample_block(seed))[0];
        }
        sink
    });

    let ref_rec = MemoryRecorder::shared();
    let mut rtl_ref = RtlFir::new_reference();
    rtl_ref.set_recorder(ref_rec.clone());
    let ref_sink = rep.phase("rtl_reference", || {
        let mut sink = 0i64;
        for seed in 0..BLOCKS {
            sink ^= rtl_ref.run(&sample_block(seed))[0];
        }
        sink
    });
    assert_eq!(dirty_sink, ref_sink, "engines diverged on the FIR workload");

    rep.add_counters(
        slm_rec
            .lock()
            .unwrap()
            .counters()
            .iter()
            .map(|(k, v)| (*k, *v)),
    );
    add_prefixed(&mut rep, "rtl_dirty", &dirty_rec);
    add_prefixed(&mut rep, "rtl_ref", &ref_rec);

    rep.set_value("blocks", Json::UInt(BLOCKS));
    let slm_work = rep.counter("slm.activations").max(1);
    let dirty_work = rep.counter("rtl_dirty.node_evals");
    let ref_work = rep.counter("rtl_ref.node_evals");
    rep.set_value(
        "work_ratio_rtl_over_slm_x100",
        Json::UInt(dirty_work * 100 / slm_work),
    );
    rep.set_value(
        "engine_work_ratio_ref_over_dirty_x100",
        Json::UInt(ref_work * 100 / dirty_work.max(1)),
    );
    rep
}

/// Runs E12 and renders its report.
pub fn e12_sim_engine() -> String {
    let rep = e12_report();
    let mut out = String::from(
        "E12 — compiled simulation engine: dirty-cone vs full-reevaluation reference\non the FIR workload, with E10's SLM-vs-RTL work ratio re-taken\n\n",
    );
    let rows: Vec<Vec<String>> = [
        "slm.activations",
        "rtl_dirty.steps",
        "rtl_dirty.eval_passes",
        "rtl_dirty.node_evals",
        "rtl_ref.eval_passes",
        "rtl_ref.node_evals",
    ]
    .iter()
    .map(|name| vec![name.to_string(), rep.counter(name).to_string()])
    .collect();
    out.push_str(&render_table(&["counter", "value"], &rows));

    let work_x100 = rep
        .value("work_ratio_rtl_over_slm_x100")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let engine_x100 = rep
        .value("engine_work_ratio_ref_over_dirty_x100")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    out.push_str(&format!(
        "\nwork ratio vs SLM (deterministic): the compiled RTL engine evaluates {:.2}\nIR nodes per SLM process activation for the same {} blocks (E10 measured the\nsame metric on the pre-compilation engine).\n",
        work_x100 as f64 / 100.0,
        BLOCKS
    ));
    out.push_str(&format!(
        "engine work ratio (deterministic): the reference engine evaluates {:.2}x the\nnodes the dirty-cone engine does on this dense workload.\n",
        engine_x100 as f64 / 100.0
    ));
    let (mut dirty_us, mut ref_us) = (0u128, 0u128);
    for p in rep.phases() {
        match p.name.as_str() {
            "rtl_dirty" => dirty_us += p.wall.as_micros(),
            "rtl_reference" => ref_us += p.wall.as_micros(),
            _ => {}
        }
    }
    if dirty_us > 0 {
        out.push_str(&format!(
            "engine wall speedup (measured at the phase edges): {:.2}x\n({} us reference vs {} us dirty-cone) — timing section only.\n",
            ref_us as f64 / dirty_us as f64,
            ref_us,
            dirty_us
        ));
    }
    out.push_str("\ncanonical JSON (byte-reproducible; timing lives only in the full report):\n");
    out.push_str(&rep.canonical_json());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_reproduces_and_engine_ratio_holds() {
        let j1 = e12_report().canonical_json();
        let j2 = e12_report().canonical_json();
        assert_eq!(j1, j2);
        let parsed = dfv_obs::parse_json(&j1).unwrap();
        let engine = parsed
            .get("values")
            .and_then(|v| v.get("engine_work_ratio_ref_over_dirty_x100"))
            .and_then(Json::as_u64)
            .unwrap();
        // The reference engine re-evaluates every node per pass; the
        // dirty-cone engine never does more than that.
        assert!(engine >= 100, "engine ratio_x100 = {engine}");
        assert!(!j1.contains("wall_us"));
        let full = dfv_obs::parse_json(&e12_report().full_json()).unwrap();
        assert!(full.get("timing").is_some());
    }
}
