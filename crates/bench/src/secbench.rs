//! The SEC sweeping benchmark behind `bench sec` and E17: every miter
//! workload is checked twice — sweep-off (the raw bit-blasted miter) and
//! sweep-on (word-level rewriting + simulation-guided fraiging, `dfv-sec`'s
//! [`SweepOptions`]) — and the two runs' *verdicts* and counterexample
//! mismatch locations are asserted identical before any number lands in
//! the report. The comparable payload is the deterministic counter set
//! (SAT conflicts, CNF size, sweep statistics, a structural
//! counterexample hash); wall-clock lives only in the timing section, so
//! the canonical JSON reproduces byte-for-byte across processes while the
//! full JSON still carries the measured speedup.
//!
//! The counterexample hash folds only mismatch *locations* (output names
//! and the RTL sample cycle): sweeping legitimately changes which
//! satisfying assignment the solver surfaces, but never *where* the
//! models can be made to disagree — and each counterexample has already
//! been replayed concretely by the checker before it reaches this module.

use dfv_obs::{Json, RunReport};
use dfv_rtl::{Module, ModuleBuilder};
use dfv_sec::{check_equivalence_with, Binding, CheckOptions, EquivOutcome, EquivSpec};

/// Wall-clock repetitions per workload; off/on runs are interleaved
/// within each repetition (same rationale as the simulator sweep: the
/// *ratio* is the measurement, so both sides must see the same load).
const TIMING_REPS: usize = 5;

/// One named miter workload: both models, the transaction spec, and
/// whether the pair is equivalent by construction (checked, not trusted).
struct SecWorkload {
    name: &'static str,
    build: fn(smoke: bool) -> (Module, Module, EquivSpec),
    equivalent: bool,
}

/// `a*b` versus `b*a`, zero-extended to the full product width. The
/// classic CDCL cliff: the unswept miter is exponential in the operand
/// width, while commutative canonicalization collapses the two cones to
/// the same literals.
fn mul_comm(smoke: bool) -> (Module, Module, EquivSpec) {
    let w = if smoke { 5 } else { 7 };
    mul_pair(w, false)
}

/// Like [`mul_comm`] with a seeded near-miss: the RTL adds 1 to the
/// product exactly when `(a, b) == (3, 5)`, so the miter is falsifiable
/// at a single input point — the counterexample-parity workload.
fn mul_bug(smoke: bool) -> (Module, Module, EquivSpec) {
    let w = if smoke { 4 } else { 6 };
    mul_pair(w, true)
}

pub(crate) fn mul_pair(w: u32, inject_bug: bool) -> (Module, Module, EquivSpec) {
    let ow = 2 * w;
    let mut sb = ModuleBuilder::new("slm_mul");
    let a = sb.input("a", w);
    let b = sb.input("b", w);
    let (aw, bw) = (sb.zext(a, ow), sb.zext(b, ow));
    let y = sb.mul(aw, bw);
    sb.output("y", y);
    let slm = sb.finish().unwrap();

    let mut rb = ModuleBuilder::new("rtl_mul");
    let a = rb.input("a", w);
    let b = rb.input("b", w);
    let (aw, bw) = (rb.zext(a, ow), rb.zext(b, ow));
    let mut y = rb.mul(bw, aw);
    if inject_bug {
        let three = rb.lit(w, 3);
        let five = rb.lit(w, 5);
        let ea = rb.eq(a, three);
        let eb = rb.eq(b, five);
        let hit = rb.and(ea, eb);
        let bump = rb.zext(hit, ow);
        y = rb.add(y, bump);
    }
    rb.output("y", y);
    let rtl = rb.finish().unwrap();

    let spec = EquivSpec::new(1)
        .bind("a", 0, Binding::Slm("a".into()))
        .bind("b", 0, Binding::Slm("b".into()))
        .compare("y", "y", 0);
    (slm, rtl, spec)
}

/// A multiply-accumulate with both the multiply and the accumulate
/// commuted: `(a*b) + c` versus `c + (b*a)`.
fn madd_comm(smoke: bool) -> (Module, Module, EquivSpec) {
    let w = if smoke { 4 } else { 6 };
    let ow = 2 * w;
    let mut sb = ModuleBuilder::new("slm_madd");
    let a = sb.input("a", w);
    let b = sb.input("b", w);
    let c = sb.input("c", ow);
    let (aw, bw) = (sb.zext(a, ow), sb.zext(b, ow));
    let p = sb.mul(aw, bw);
    let y = sb.add(p, c);
    sb.output("y", y);
    let slm = sb.finish().unwrap();

    let mut rb = ModuleBuilder::new("rtl_madd");
    let a = rb.input("a", w);
    let b = rb.input("b", w);
    let c = rb.input("c", ow);
    let (aw, bw) = (rb.zext(a, ow), rb.zext(b, ow));
    let p = rb.mul(bw, aw);
    let y = rb.add(c, p);
    rb.output("y", y);
    let rtl = rb.finish().unwrap();

    let spec = EquivSpec::new(1)
        .bind("a", 0, Binding::Slm("a".into()))
        .bind("b", 0, Binding::Slm("b".into()))
        .bind("c", 0, Binding::Slm("c".into()))
        .compare("y", "y", 0);
    (slm, rtl, spec)
}

/// `(a+b)+c` versus `(c+a)+b`: associativity, which the word-level GVN
/// deliberately does *not* rewrite. Here the structural collapse fails
/// and the sweep has to earn its merges with budgeted SAT proofs — the
/// honest cost model for the fraiging stage.
fn add_assoc(smoke: bool) -> (Module, Module, EquivSpec) {
    let w = if smoke { 8 } else { 16 };
    let mut sb = ModuleBuilder::new("slm_assoc");
    let a = sb.input("a", w);
    let b = sb.input("b", w);
    let c = sb.input("c", w);
    let t = sb.add(a, b);
    let y = sb.add(t, c);
    sb.output("y", y);
    let slm = sb.finish().unwrap();

    let mut rb = ModuleBuilder::new("rtl_assoc");
    let a = rb.input("a", w);
    let b = rb.input("b", w);
    let c = rb.input("c", w);
    let t = rb.add(c, a);
    let y = rb.add(t, b);
    rb.output("y", y);
    let rtl = rb.finish().unwrap();

    let spec = EquivSpec::new(1)
        .bind("a", 0, Binding::Slm("a".into()))
        .bind("b", 0, Binding::Slm("b".into()))
        .bind("c", 0, Binding::Slm("c".into()))
        .compare("y", "y", 0);
    (slm, rtl, spec)
}

/// A fused-multiply-add mantissa slice — significand multiply, addend
/// alignment, sum, one-step normalization — with the RTL's multiply and
/// add commuted and its datapath decorated with `|0` / `^0` identities
/// the word-level rewriter must strip. The significand multiplier
/// dominates the unswept miter; sweeping collapses it structurally.
fn fpu_slice(smoke: bool) -> (Module, Module, EquivSpec) {
    let mw = if smoke { 4 } else { 6 };
    let pw = 2 * mw + 1; // product plus one guard bit of headroom
    let build = |name: &str, commuted: bool| -> Module {
        let mut b = ModuleBuilder::new(name);
        let ma = b.input("ma", mw);
        let mb = b.input("mb", mw);
        let mc = b.input("mc", mw);
        let d = b.input("d", 3); // addend alignment shift
        let (maw, mbw) = (b.zext(ma, pw), b.zext(mb, pw));
        let p = if commuted {
            b.mul(mbw, maw)
        } else {
            b.mul(maw, mbw)
        };
        // Align the addend below the product and sum.
        let mcw = b.zext(mc, pw);
        let dw = b.zext(d, pw);
        let shifted = b.lshr(mcw, dw);
        let sum = if commuted {
            b.add(shifted, p)
        } else {
            b.add(p, shifted)
        };
        // Normalize: on overflow into the guard bit, shift right one.
        let carry = b.bit(sum, pw - 1);
        let one = b.lit(pw, 1);
        let norm = b.lshr(sum, one);
        let mant = b.mux(carry, norm, sum);
        let mant = if commuted {
            // Identity decorations the rewriter must see through.
            let z = b.lit(pw, 0);
            let t = b.or(mant, z);
            b.xor(t, z)
        } else {
            mant
        };
        b.output("mant", mant);
        b.output("carry", carry);
        b.finish().unwrap()
    };
    let slm = build("slm_fpu", false);
    let rtl = build("rtl_fpu", true);
    let spec = EquivSpec::new(1)
        .bind("ma", 0, Binding::Slm("ma".into()))
        .bind("mb", 0, Binding::Slm("mb".into()))
        .bind("mc", 0, Binding::Slm("mc".into()))
        .bind("d", 0, Binding::Slm("d".into()))
        .compare("mant", "mant", 0)
        .compare("carry", "carry", 0);
    (slm, rtl, spec)
}

/// The memory-system design's fast bank (1-cycle ROM latency), SLM
/// elaborated from its conditioned C source — a sequential miter with
/// real memories and `Free` tag pins, measuring sweep overhead on a
/// workload the raw path already handles well.
fn memsys_fast(_smoke: bool) -> (Module, Module, EquivSpec) {
    let table = [3u8, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
    let slm = dfv_slmir::elaborate(
        &dfv_slmir::parse(&dfv_designs::memsys::slm_source(&table)).unwrap(),
        "lookup",
    )
    .unwrap();
    let rtl = dfv_designs::memsys::rtl(&table);
    (slm, rtl, dfv_designs::memsys::equiv_spec_fast())
}

const WORKLOADS: [SecWorkload; 6] = [
    SecWorkload {
        name: "mul_comm",
        build: mul_comm,
        equivalent: true,
    },
    SecWorkload {
        name: "madd_comm",
        build: madd_comm,
        equivalent: true,
    },
    SecWorkload {
        name: "add_assoc",
        build: add_assoc,
        equivalent: true,
    },
    SecWorkload {
        name: "fpu_slice",
        build: fpu_slice,
        equivalent: true,
    },
    SecWorkload {
        name: "memsys_fast",
        build: memsys_fast,
        equivalent: true,
    },
    SecWorkload {
        name: "mul_bug",
        build: mul_bug,
        equivalent: false,
    },
];

fn fnv_fold(hash: u64, limb: u64) -> u64 {
    (hash ^ limb).wrapping_mul(0x100000001b3)
}

fn fnv_str(hash: u64, s: &str) -> u64 {
    s.bytes().fold(hash, |h, b| fnv_fold(h, b as u64))
}

/// Structural counterexample hash: a fold of the sorted mismatch
/// locations. `0` for non-falsifying outcomes.
fn cex_hash(outcome: &EquivOutcome) -> u64 {
    let EquivOutcome::NotEquivalent(cex) = outcome else {
        return 0;
    };
    let mut locs: Vec<(String, String, u32)> = cex
        .mismatches
        .iter()
        .map(|m| (m.slm_output.clone(), m.rtl_output.clone(), m.rtl_cycle))
        .collect();
    locs.sort();
    let mut h = 0xcbf29ce484222325u64;
    for (s, r, c) in &locs {
        h = fnv_str(h, s);
        h = fnv_str(h, r);
        h = fnv_fold(h, *c as u64);
    }
    h
}

fn verdict_code(outcome: &EquivOutcome) -> u64 {
    match outcome {
        EquivOutcome::Equivalent => 0,
        EquivOutcome::NotEquivalent(_) => 1,
        EquivOutcome::Inconclusive { .. } => 2,
    }
}

/// Runs the sweep-on/sweep-off miter sweep and reduces it to a
/// [`RunReport`]. Counters are a pure function of the workloads (the
/// canonical JSON is byte-reproducible across processes); per-workload
/// timing phases carry the wall-clock.
///
/// # Panics
///
/// Panics if sweeping changes any workload's verdict or counterexample
/// mismatch locations, or if a by-construction-equivalent workload is
/// falsified — each of those would be a checker bug, not a measurement.
/// The asserts fire before the report (and thus any timing) is returned.
pub fn sec_bench_report(smoke: bool) -> RunReport {
    let mut rep = RunReport::new("sec_sweep");
    rep.set_value("smoke", Json::Bool(smoke));
    for w in &WORKLOADS {
        let (slm, rtl, spec) = (w.build)(smoke);
        let opt_off = CheckOptions::default();
        let opt_on = CheckOptions::swept();
        // Best-of-N wall clock, off/on interleaved within each
        // repetition so load drift cannot skew the ratio. The verdicts
        // and counters are deterministic — identical across repetitions
        // — so only the first repetition's reports are kept.
        let mut best_off = std::time::Duration::MAX;
        let mut best_on = std::time::Duration::MAX;
        let mut kept: Option<(dfv_sec::EquivReport, dfv_sec::EquivReport)> = None;
        for _ in 0..TIMING_REPS {
            let t = std::time::Instant::now();
            let off = check_equivalence_with(&slm, &rtl, &spec, &opt_off).unwrap();
            best_off = best_off.min(t.elapsed());
            let t = std::time::Instant::now();
            let on = check_equivalence_with(&slm, &rtl, &spec, &opt_on).unwrap();
            best_on = best_on.min(t.elapsed());
            kept.get_or_insert((off, on));
        }
        let (off, on) = kept.expect("at least one timing rep");

        // Parity gates — everything below is measurement, this is truth.
        assert_eq!(
            verdict_code(&off.outcome),
            verdict_code(&on.outcome),
            "workload {}: sweeping changed the verdict: off={:?} on={:?}",
            w.name,
            off.outcome,
            on.outcome
        );
        assert_eq!(
            cex_hash(&off.outcome),
            cex_hash(&on.outcome),
            "workload {}: sweeping changed the counterexample locations",
            w.name
        );
        assert_eq!(
            w.equivalent,
            off.outcome.is_equivalent(),
            "workload {}: unexpected verdict {:?}",
            w.name,
            off.outcome
        );

        rep.push_phase(format!("{}.off", w.name), best_off);
        rep.push_phase(format!("{}.on", w.name), best_on);
        rep.set_counter(
            format!("sec.{}.verdict", w.name),
            verdict_code(&off.outcome),
        );
        rep.set_counter(format!("sec.{}.cex_hash", w.name), cex_hash(&off.outcome));
        for (tag, r) in [("off", &off), ("on", &on)] {
            rep.set_counter(
                format!("sec.{}.{tag}.conflicts", w.name),
                r.solver_stats.conflicts,
            );
            rep.set_counter(format!("sec.{}.{tag}.vars", w.name), r.cnf_vars as u64);
            rep.set_counter(
                format!("sec.{}.{tag}.clauses", w.name),
                r.cnf_clauses as u64,
            );
        }
        let sw = on.sweep.expect("sweep-on run carries sweep stats");
        rep.set_counter(format!("sec.{}.sweep.classes", w.name), sw.classes);
        rep.set_counter(format!("sec.{}.sweep.candidates", w.name), sw.candidates);
        rep.set_counter(format!("sec.{}.sweep.proved", w.name), sw.proved);
        rep.set_counter(format!("sec.{}.sweep.refuted", w.name), sw.refuted);
        rep.set_counter(format!("sec.{}.sweep.merged_lits", w.name), sw.merged_lits);
        rep.set_counter(
            format!("sec.{}.sweep.proof_conflicts", w.name),
            sw.proof_conflicts,
        );
        rep.set_value(
            format!("conflicts_off_over_on_x100.{}", w.name),
            Json::UInt(off.solver_stats.conflicts * 100 / on.solver_stats.conflicts.max(1)),
        );
    }
    rep
}

/// Wall-clock of the phase `{workload}.{tag}`, in microseconds.
fn phase_us(rep: &RunReport, workload: &str, tag: &str) -> u128 {
    let name = format!("{workload}.{tag}");
    rep.phases()
        .iter()
        .filter(|p| p.name == name)
        .map(|p| p.wall.as_micros())
        .sum()
}

/// Renders the sweep as a table: one row per workload, sweep-off versus
/// sweep-on conflicts and wall-clock.
pub fn render_sec_bench(rep: &RunReport) -> String {
    let mut out = String::from(
        "SEC sweeping front-end: raw bit-blasted miter (off) vs word-level rewriting\n+ simulation-guided fraiging (on), verdict parity asserted per workload\n\n",
    );
    let mut rows = Vec::new();
    for w in &WORKLOADS {
        let c_off = rep.counter(&format!("sec.{}.off.conflicts", w.name));
        let c_on = rep.counter(&format!("sec.{}.on.conflicts", w.name));
        let us_off = phase_us(rep, w.name, "off");
        let us_on = phase_us(rep, w.name, "on");
        let verdict = match rep.counter(&format!("sec.{}.verdict", w.name)) {
            0 => "equivalent",
            1 => "not-equiv",
            _ => "inconclusive",
        };
        rows.push(vec![
            w.name.to_string(),
            verdict.to_string(),
            c_off.to_string(),
            c_on.to_string(),
            format!("{:.1}x", c_off as f64 / c_on.max(1) as f64),
            format!("{us_off}"),
            format!("{us_on}"),
            if us_on > 0 {
                format!("{:.1}x", us_off as f64 / us_on as f64)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&crate::render_table(
        &[
            "workload",
            "verdict",
            "conflicts off",
            "conflicts on",
            "ratio",
            "off us",
            "on us",
            "wall speedup",
        ],
        &rows,
    ));
    out.push_str(
        "\nconflicts (and all sweep.* counters) are deterministic and form the canonical\nJSON payload; the us / speedup columns are measured wall-clock and live only in\nthe full JSON's timing section. Verdicts and counterexample mismatch locations\nare asserted identical off-vs-on before the report exists.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_reproduces_and_sweep_wins_where_promised() {
        let a = sec_bench_report(true);
        let b = sec_bench_report(true);
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert!(!a.canonical_json().contains("wall_us"));
        // The two commutativity workloads must show an integer-factor
        // conflict drop even in smoke mode.
        for w in ["mul_comm", "madd_comm"] {
            let off = a.counter(&format!("sec.{w}.off.conflicts"));
            let on = a.counter(&format!("sec.{w}.on.conflicts"));
            assert!(
                off >= 2 * on.max(1),
                "{w}: conflicts off {off} vs on {on} — sweep lost its edge"
            );
        }
        // The seeded bug is found with matching mismatch locations.
        assert_eq!(a.counter("sec.mul_bug.verdict"), 1);
        assert_ne!(a.counter("sec.mul_bug.cex_hash"), 0);
    }
}
