//! The FIR filter at every abstraction level of the paper's §1 model
//! catalogue — the ladder experiment E2 climbs.
//!
//! All four models compute the identical bit-accurate function (checked in
//! tests); they differ only in how much timing/communication detail they
//! carry, which is what determines simulation speed.

use std::cell::RefCell;
use std::rc::Rc;

use dfv_bits::Bv;
use dfv_designs::fir::{BLOCK, COEFFS, TAPS};
use dfv_rtl::Simulator;
use dfv_slm::{Clock, Kernel, Signal};
use dfv_slmir::{Interp, Program, ScalarTy, Value};

/// Level 0 — **untimed native**: the compiled C model (a plain function).
/// One call processes a whole block; no events, no clocks.
pub fn untimed_fir(xs: &[i64; BLOCK]) -> [i64; BLOCK] {
    let mut ys = [0i64; BLOCK];
    for n in 0..BLOCK {
        let mut acc = 0i64;
        for (k, &c) in COEFFS.iter().enumerate().take(n + 1) {
            acc += c * xs[n - k];
        }
        ys[n] = acc;
    }
    ys
}

/// Level 1 — **interpreted SLM-C**: the same untimed model executed by the
/// `dfv-slmir` interpreter (an interpreted, rather than compiled, C model).
pub struct InterpFir {
    prog: Program,
}

impl InterpFir {
    /// Parses the design's SLM-C source.
    pub fn new() -> Self {
        InterpFir {
            prog: dfv_slmir::parse(dfv_designs::fir::slm_source()).expect("source parses"),
        }
    }

    /// Processes one block.
    pub fn run(&self, xs: &[i64; BLOCK]) -> [i64; BLOCK] {
        let s8 = ScalarTy {
            width: 8,
            signed: true,
        };
        let arr = Value::Array(xs.iter().map(|&x| Bv::from_i64(8, x)).collect(), s8);
        let r = Interp::new(&self.prog)
            .run("fir", &[arr])
            .expect("fir executes");
        let (_, Value::Array(ys, _)) = &r.outs[0] else {
            panic!("fir has one out array")
        };
        let mut out = [0i64; BLOCK];
        for (o, y) in out.iter_mut().zip(ys) {
            *o = y.to_i64();
        }
        out
    }
}

impl Default for InterpFir {
    fn default() -> Self {
        InterpFir::new()
    }
}

/// Level 2 — **cycle-approximate SLM**: a clocked process on the `dfv-slm`
/// event kernel, one sample per clock edge, but computing in native
/// integers (no bit-level datapath detail).
pub struct CycleApproxFir {
    kernel: Kernel,
    input: Signal<i64>,
    output: Rc<RefCell<Vec<i64>>>,
    period: u64,
}

impl CycleApproxFir {
    /// Builds the model with the given clock period.
    pub fn new() -> Self {
        let mut kernel = Kernel::new();
        let clock = Clock::new(&mut kernel, "clk", 2);
        let input: Signal<i64> = Signal::new(&mut kernel, "x", 0);
        let output = Rc::new(RefCell::new(Vec::new()));
        let (sig, out) = (input.clone(), Rc::clone(&output));
        let mut hist = [0i64; TAPS];
        kernel.process("mac", &[clock.posedge()], move |_| {
            hist.rotate_right(1);
            hist[0] = sig.read();
            let y: i64 = COEFFS.iter().zip(&hist).map(|(c, x)| c * x).sum();
            out.borrow_mut().push(y);
        });
        CycleApproxFir {
            kernel,
            input,
            output,
            period: clock.period(),
        }
    }

    /// Streams one block through, returning the outputs.
    pub fn run(&mut self, xs: &[i64; BLOCK]) -> [i64; BLOCK] {
        self.output.borrow_mut().clear();
        let start = self.kernel.time();
        // Rising edges land on odd times (period 2, first edge at t = 1).
        let first_edge = if start.is_multiple_of(self.period) {
            start + self.period / 2
        } else {
            start + self.period
        };
        for (i, &x) in xs.iter().enumerate() {
            // Present the sample, then run through its rising edge.
            self.input.write(x);
            self.kernel
                .run(first_edge + self.period * i as u64)
                .expect("cycle model stays within kernel watchdog bounds");
        }
        let out = self.output.borrow();
        let mut ys = [0i64; BLOCK];
        let n = out.len();
        ys.copy_from_slice(&out[n - BLOCK..]);
        ys
    }

    /// Kernel statistics (for the activity report).
    pub fn stats(&self) -> dfv_slm::KernelStats {
        self.kernel.stats()
    }

    /// Streams the kernel's `slm.*` counters into `rec`.
    pub fn set_recorder(&mut self, rec: dfv_obs::SharedRecorder) {
        self.kernel.set_recorder(rec);
    }
}

impl Default for CycleApproxFir {
    fn default() -> Self {
        CycleApproxFir::new()
    }
}

/// Level 3 — **RTL**: the gate-accurate streaming datapath on the cycle
/// simulator.
pub struct RtlFir {
    sim: Simulator,
}

impl RtlFir {
    /// Builds the simulator (compiled dirty-cone engine).
    pub fn new() -> Self {
        RtlFir {
            sim: Simulator::new(dfv_designs::fir::rtl()).expect("fir rtl builds"),
        }
    }

    /// Builds the simulator on the full-reevaluation reference engine —
    /// the pre-compilation baseline for engine throughput comparisons.
    pub fn new_reference() -> Self {
        RtlFir {
            sim: Simulator::new_reference(dfv_designs::fir::rtl()).expect("fir rtl builds"),
        }
    }

    /// Streams one block through, returning the outputs.
    pub fn run(&mut self, xs: &[i64; BLOCK]) -> [i64; BLOCK] {
        self.sim.reset();
        let mut ys = [0i64; BLOCK];
        for (i, &x) in xs.iter().enumerate() {
            self.sim.poke("in_valid", Bv::from_bool(true));
            self.sim.poke("stall", Bv::from_bool(false));
            self.sim.poke("x", Bv::from_i64(8, x));
            self.sim.step();
            ys[i] = self.sim.output("y").to_i64();
        }
        ys
    }

    /// Streams the simulator's `rtl.*` counters into `rec`.
    pub fn set_recorder(&mut self, rec: dfv_obs::SharedRecorder) {
        self.sim.set_recorder(rec);
    }
}

impl Default for RtlFir {
    fn default() -> Self {
        RtlFir::new()
    }
}

/// A deterministic sample-block generator for throughput runs.
pub fn sample_block(seed: u64) -> [i64; BLOCK] {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut xs = [0i64; BLOCK];
    for x in &mut xs {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *x = ((s % 256) as i64) - 128;
    }
    xs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_models_agree() {
        let interp = InterpFir::new();
        let mut cycle = CycleApproxFir::new();
        let mut rtl = RtlFir::new();
        for seed in 0..10 {
            let xs = sample_block(seed);
            let golden = untimed_fir(&xs);
            assert_eq!(interp.run(&xs), golden, "interp seed {seed}");
            assert_eq!(rtl.run(&xs), golden, "rtl seed {seed}");
        }
        // The cycle-approximate model keeps history across blocks (it has
        // no reset), so compare it on a single fresh run.
        let xs = sample_block(42);
        assert_eq!(cycle.run(&xs), untimed_fir(&xs));
    }
}
