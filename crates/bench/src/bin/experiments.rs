//! The experiment runner: regenerates every table/series (E1–E12) from the
//! paper's figures and claims.
//!
//! Usage:
//! ```text
//! cargo run --release -p dfv-bench --bin experiments           # all
//! cargo run --release -p dfv-bench --bin experiments -- e1 e3  # a subset
//! ```

use dfv_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let mut failed = false;
    for id in ids {
        match experiments::run(id) {
            Some(report) => {
                println!("{}", "=".repeat(78));
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment {id:?} (valid: {:?})", experiments::ALL);
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
