//! Standalone benchmark runner (no external harness).
//!
//! Usage:
//! ```text
//! cargo run --release -p dfv-bench --bin bench -- sim
//! cargo run --release -p dfv-bench --bin bench -- sim --smoke
//! cargo run --release -p dfv-bench --bin bench -- sim --batch
//! cargo run --release -p dfv-bench --bin bench -- sim --engine vm
//! cargo run --release -p dfv-bench --bin bench -- sim --out BENCH_sim.json --canonical /tmp/c.json
//! cargo run --release -p dfv-bench --bin bench -- sec
//! cargo run --release -p dfv-bench --bin bench -- sec --smoke --canonical /tmp/c.json
//! ```
//!
//! The `sim` subcommand runs the deterministic simulator workload sweep
//! (FIR, convolution, memory system) and writes the full report —
//! measured wall-clock included — to `BENCH_sim.json` (override with
//! `--out`). By default every scalar engine runs: the dirty-cone
//! interpreter, the register-bytecode VM, and the full-reevaluation
//! reference oracle; `--engine interp` or `--engine vm` restricts the
//! sweep to that compiled engine (the oracle always runs — it anchors
//! the output-hash parity assert). With `--batch` it additionally runs
//! the 64-lane batched campaign sweep (64 seeded streams per workload:
//! 64 scalar simulators vs one `LaneSim`) and folds its `sim_batch.*`
//! counters into the same report. With `--canonical PATH` it
//! additionally writes the timing-free canonical JSON, which is
//! byte-identical across runs and is what CI diffs. `--smoke` shrinks
//! the cycle counts for fast gating runs.
//!
//! The `sec` subcommand runs the SAT-sweeping miter sweep: every SEC
//! workload checked sweep-off and sweep-on with verdict and
//! counterexample-location parity asserted inside the harness, written
//! to `BENCH_sec.json`. Same `--smoke`/`--out`/`--canonical` contract.

use dfv_bench::{secbench, simbench};
use dfv_rtl::EvalMode;

/// Cycles per workload for a real measurement run.
const FULL_CYCLES: u64 = 20_000;
/// Cycles per workload in `--smoke` mode (CI gate).
const SMOKE_CYCLES: u64 = 500;
/// Cycles per stream in the batched sweep's full mode — the scalar side
/// runs 64 streams per workload, so this keeps a full run's wall-clock
/// comparable to the single-stream sweep's.
const FULL_BATCH_CYCLES: u64 = 2_000;
/// Cycles per stream in `--batch --smoke` mode.
const SMOKE_BATCH_CYCLES: u64 = 120;

fn usage() -> ! {
    eprintln!(
        "usage: bench sim [--smoke] [--batch] [--engine interp|vm] [--out PATH] [--canonical PATH]\n       bench sec [--smoke] [--out PATH] [--canonical PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sim") => run_sim(&args[1..]),
        Some("sec") => run_sec(&args[1..]),
        _ => usage(),
    }
}

fn run_sim(args: &[String]) {
    let mut smoke = false;
    let mut batch = false;
    let mut engines: Vec<EvalMode> = Vec::new();
    let mut out_path = String::from("BENCH_sim.json");
    let mut canonical_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--batch" => batch = true,
            "--engine" => match it.next().map(String::as_str) {
                Some("interp") => engines.push(EvalMode::DirtyCone),
                Some("vm") => engines.push(EvalMode::Bytecode),
                _ => usage(),
            },
            "--out" => out_path = it.next().cloned().unwrap_or_else(|| usage()),
            "--canonical" => canonical_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if engines.is_empty() {
        engines.extend(simbench::ALL_ENGINES);
    }
    let cycles = if smoke { SMOKE_CYCLES } else { FULL_CYCLES };
    let mut rep = simbench::sim_bench_report_engines(cycles, &engines);
    print!("{}", simbench::render_sim_bench(&rep));
    if batch {
        let batch_cycles = if smoke {
            SMOKE_BATCH_CYCLES
        } else {
            FULL_BATCH_CYCLES
        };
        simbench::add_batch_sweep(&mut rep, batch_cycles);
        print!("\n{}", simbench::render_sim_batch(&rep));
    }
    std::fs::write(&out_path, rep.full_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("\nfull report (with timing) written to {out_path}");
    if let Some(p) = canonical_path {
        std::fs::write(&p, rep.canonical_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {p}: {e}");
            std::process::exit(1);
        });
        println!("canonical report (deterministic) written to {p}");
    }
}

fn run_sec(args: &[String]) {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_sec.json");
    let mut canonical_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = it.next().cloned().unwrap_or_else(|| usage()),
            "--canonical" => canonical_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let rep = secbench::sec_bench_report(smoke);
    print!("{}", secbench::render_sec_bench(&rep));
    std::fs::write(&out_path, rep.full_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("\nfull report (with timing) written to {out_path}");
    if let Some(p) = canonical_path {
        std::fs::write(&p, rep.canonical_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {p}: {e}");
            std::process::exit(1);
        });
        println!("canonical report (deterministic) written to {p}");
    }
}
