//! Differential property suite for the compiled simulation engines.
//!
//! Every seeded design runs through **four** engines under seeded
//! constrained-random stimulus (in-tree SplitMix64, no external deps):
//!
//! * the dirty-cone compiled engine ([`Simulator::new`]),
//! * the register-bytecode VM engine ([`Simulator::new_vm`]),
//! * the reference full-reevaluation interpreter
//!   ([`Simulator::new_reference`]), and
//! * the 64-lane batched engine ([`LaneSim`]), each lane driven with its
//!   own independent stimulus stream.
//!
//! The three scalar engines are compared on per-cycle outputs, recorded
//! traces, and rendered VCD dumps — byte for byte. The batched engine is
//! compared per lane: lane `l`'s outputs and trace must be bit-identical
//! to a scalar run of lane `l`'s stimulus.
//!
//! Regression tests then pin down the point of each engine: the
//! dirty-cone `node_evals` counter must come in strictly below the
//! reference engine's full-pass count on a sparse workload, and the
//! batched engine must cover 64 scenarios for well under 1/8th (in
//! practice ~1/64th) of 64 scalar runs' dispatches.

use dfv_bits::limbs::LANES;
use dfv_bits::{Bv, SplitMix64};
use dfv_designs::{alu, conv, fir, memsys};
use dfv_rtl::{
    eval_bin, trace_to_vcd, EvalMode, LaneSim, Module, ModuleBuilder, NodeId, Simulator,
};

/// A two-operand `ModuleBuilder` node constructor.
type BinCtor = fn(&mut ModuleBuilder, NodeId, NodeId) -> NodeId;
/// A one-operand `ModuleBuilder` node constructor.
type UnCtor = fn(&mut ModuleBuilder, NodeId) -> NodeId;

fn random_bv(rng: &mut SplitMix64, width: u32) -> Bv {
    let bits: Vec<bool> = (0..width).map(|_| rng.next_u64() & 1 == 1).collect();
    Bv::from_bits_lsb(&bits)
}

/// The stimulus seed of lane `lane` (lane 0 gets `seed` itself, so the
/// plain scalar run doubles as lane 0's checker).
fn lane_seed(seed: u64, lane: usize) -> u64 {
    seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Drives all four engines with seeded stimulus for `cycles` cycles.
/// The scalar engines share lane 0's stream and are held bit-identical
/// on every output, the traces, and the VCDs; the 64-lane batched engine
/// gets an independent stream per lane and every lane in `check_lanes`
/// is held bit-identical (outputs per cycle + full trace) to a fresh
/// scalar run of that lane's stream.
fn assert_engines_agree_lanes(module: Module, seed: u64, cycles: u32, check_lanes: &[usize]) {
    let name = module.name.clone();
    let mut fast = Simulator::new(module.clone()).unwrap();
    let mut vm = Simulator::new_vm(module.clone()).unwrap();
    let mut oracle = Simulator::new_reference(module.clone()).unwrap();
    let mut lanes = LaneSim::new(module.clone()).unwrap();
    assert_eq!(fast.eval_mode(), EvalMode::DirtyCone);
    assert_eq!(vm.eval_mode(), EvalMode::Bytecode);
    assert_eq!(oracle.eval_mode(), EvalMode::FullOracle);
    for p in &module.outputs {
        fast.watch_output(&p.name);
        vm.watch_output(&p.name);
        oracle.watch_output(&p.name);
        lanes.watch_output(&p.name);
    }
    // Scalar checkers for the sampled lanes (lane 0 is covered by `fast`).
    let mut checkers: Vec<(usize, Simulator, SplitMix64)> = check_lanes
        .iter()
        .filter(|&&l| l != 0)
        .map(|&l| {
            let mut sim = Simulator::new(module.clone()).unwrap();
            for p in &module.outputs {
                sim.watch_output(&p.name);
            }
            (l, sim, SplitMix64::new(lane_seed(seed, l)))
        })
        .collect();
    let mut rng_a = SplitMix64::new(seed);
    let mut rng_v = SplitMix64::new(seed);
    let mut rng_b = SplitMix64::new(seed);
    let mut lane_rngs: Vec<SplitMix64> = (0..LANES)
        .map(|l| SplitMix64::new(lane_seed(seed, l)))
        .collect();
    for cycle in 0..cycles {
        for p in &module.inputs {
            fast.poke(&p.name, random_bv(&mut rng_a, p.width));
            vm.poke(&p.name, random_bv(&mut rng_v, p.width));
            oracle.poke(&p.name, random_bv(&mut rng_b, p.width));
            for (l, rng) in lane_rngs.iter_mut().enumerate() {
                lanes.poke_lane(&p.name, l, random_bv(rng, p.width));
            }
            for (_, sim, rng) in checkers.iter_mut() {
                sim.poke(&p.name, random_bv(rng, p.width));
            }
        }
        fast.step();
        vm.step();
        oracle.step();
        lanes.step();
        for (_, sim, _) in checkers.iter_mut() {
            sim.step();
        }
        for p in &module.outputs {
            let f = fast.output(&p.name);
            assert_eq!(
                f,
                oracle.output(&p.name),
                "{name}: output {:?} diverged at cycle {cycle} (seed {seed:#x})",
                p.name
            );
            assert_eq!(
                vm.output(&p.name),
                f,
                "{name}: vm output {:?} diverged at cycle {cycle} (seed {seed:#x})",
                p.name
            );
            if check_lanes.contains(&0) {
                assert_eq!(
                    lanes.output_lane(&p.name, 0),
                    f,
                    "{name}: lane 0 output {:?} diverged at cycle {cycle} (seed {seed:#x})",
                    p.name
                );
            }
            for (l, sim, _) in checkers.iter_mut() {
                assert_eq!(
                    lanes.output_lane(&p.name, *l),
                    sim.output(&p.name),
                    "{name}: lane {l} output {:?} diverged at cycle {cycle} (seed {seed:#x})",
                    p.name
                );
            }
        }
    }
    assert_eq!(fast.trace(), oracle.trace(), "{name}: traces diverged");
    assert_eq!(vm.trace(), oracle.trace(), "{name}: vm trace diverged");
    assert_eq!(
        trace_to_vcd(&fast, "tb"),
        trace_to_vcd(&oracle, "tb"),
        "{name}: VCD dumps diverged"
    );
    assert_eq!(
        trace_to_vcd(&vm, "tb"),
        trace_to_vcd(&oracle, "tb"),
        "{name}: vm VCD dump diverged"
    );
    if check_lanes.contains(&0) {
        assert_eq!(
            &lanes.trace_lane(0)[..],
            fast.trace(),
            "{name}: lane 0 trace diverged"
        );
    }
    for (l, sim, _) in &checkers {
        assert_eq!(
            &lanes.trace_lane(*l)[..],
            sim.trace(),
            "{name}: lane {l} trace diverged"
        );
    }
}

const ALL_LANES: [usize; 64] = {
    let mut l = [0usize; 64];
    let mut i = 0;
    while i < 64 {
        l[i] = i;
        i += 1;
    }
    l
};

/// Spread sample for the expensive wide-op modules: both ends, the limb
/// boundary neighborhood, and a mid lane.
const SAMPLED_LANES: [usize; 8] = [0, 1, 7, 31, 32, 33, 62, 63];

/// The classic 2-engine + all-lane check used by the design tests.
fn assert_engines_agree(module: Module, seed: u64, cycles: u32) {
    assert_engines_agree_lanes(module, seed, cycles, &ALL_LANES);
}

/// A module using every `BinOp`/`UnOp` plus mux/slice/concat/zext/sext, a
/// register, and a memory — all at operand width `w`, so `w > 64`
/// exercises the multi-limb kernels and the oracle fallback for the wide
/// hard ops.
fn op_soup(w: u32) -> Module {
    let mut b = ModuleBuilder::new("op_soup");
    let a = b.input("a", w);
    let x = b.input("x", w);
    let amt = b.input("amt", 8);
    let sel = b.input("sel", 1);

    let bin: [(&str, BinCtor); 10] = [
        ("add", ModuleBuilder::add),
        ("sub", ModuleBuilder::sub),
        ("mul", ModuleBuilder::mul),
        ("udiv", ModuleBuilder::udiv),
        ("urem", ModuleBuilder::urem),
        ("sdiv", ModuleBuilder::sdiv),
        ("srem", ModuleBuilder::srem),
        ("and", ModuleBuilder::and),
        ("or", ModuleBuilder::or),
        ("xor", ModuleBuilder::xor),
    ];
    for (name, f) in bin {
        let n = f(&mut b, a, x);
        b.output(name, n);
    }
    let cmp: [(&str, BinCtor); 6] = [
        ("eq", ModuleBuilder::eq),
        ("ne", ModuleBuilder::ne),
        ("ult", ModuleBuilder::ult),
        ("ule", ModuleBuilder::ule),
        ("slt", ModuleBuilder::slt),
        ("sle", ModuleBuilder::sle),
    ];
    for (name, f) in cmp {
        let n = f(&mut b, a, x);
        b.output(name, n);
    }
    let sh: [(&str, BinCtor); 3] = [
        ("shl", ModuleBuilder::shl),
        ("lshr", ModuleBuilder::lshr),
        ("ashr", ModuleBuilder::ashr),
    ];
    for (name, f) in sh {
        let n = f(&mut b, a, amt);
        b.output(name, n);
    }
    let un: [(&str, UnCtor); 5] = [
        ("not", ModuleBuilder::not),
        ("neg", ModuleBuilder::neg),
        ("red_and", ModuleBuilder::red_and),
        ("red_or", ModuleBuilder::red_or),
        ("red_xor", ModuleBuilder::red_xor),
    ];
    for (name, f) in un {
        let n = f(&mut b, a);
        b.output(name, n);
    }
    let m = b.mux(sel, a, x);
    b.output("mux", m);
    let s = b.slice(a, w - 1, w / 2);
    b.output("slice", s);
    let c = b.concat(a, x);
    b.output("concat", c);
    let z = b.zext(a, w + 13);
    b.output("zext", z);
    let e = b.sext(a, w + 13);
    b.output("sext", e);

    // A wide accumulator register and a wide memory exercise the state
    // paths of the commit phase at the same widths.
    let acc = b.reg("acc", w, Bv::zero(w));
    let q = b.reg_q(acc);
    let nx = b.xor(q, a);
    b.connect_reg(acc, nx);
    b.output("acc", q);
    let mem = b.mem("m", 4, w, 16);
    let waddr = b.slice(amt, 3, 0);
    b.mem_write(mem, sel, waddr, x);
    let raddr = b.slice(amt, 7, 4);
    let rd = b.mem_read(mem, raddr);
    b.output("rdata", rd);
    b.finish().unwrap()
}

#[test]
fn engines_agree_on_alu() {
    for seed in [1u64, 0xDEAD_BEEF] {
        assert_engines_agree(alu::rtl(8, 8), seed, 64);
        assert_engines_agree(alu::rtl(8, 32), seed, 64);
    }
}

#[test]
fn engines_agree_on_fir() {
    for seed in [2u64, 0xFEED_F00D] {
        assert_engines_agree(fir::rtl(), seed, 128);
    }
}

#[test]
fn engines_agree_on_conv() {
    for seed in [3u64, 0xC0FF_EE00] {
        assert_engines_agree(conv::rtl(), seed, 128);
    }
}

#[test]
fn engines_agree_on_memsys() {
    let table: [u8; 16] = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
    for seed in [4u64, 0xBADC_0DE5] {
        assert_engines_agree(memsys::rtl(&table), seed, 128);
    }
}

#[test]
fn engines_agree_on_op_soup_single_limb() {
    for &w in &[1u32, 8, 33, 63, 64] {
        assert_engines_agree_lanes(op_soup(w), 0x5EED ^ w as u64, 48, &SAMPLED_LANES);
    }
}

#[test]
fn engines_agree_on_op_soup_multi_limb() {
    for &w in &[65u32, 100, 128, 200] {
        assert_engines_agree_lanes(op_soup(w), 0x1DEA ^ w as u64, 48, &SAMPLED_LANES);
    }
}

/// Shift kernels at the limb-boundary amounts (63/64/65), at and above
/// the data width, through every engine — pinned against the `Bv` oracle
/// directly, so a regression in any layer (single-limb fast path,
/// multi-limb kernel, lane fallback) names the diverging case.
#[test]
fn shift_kernels_agree_at_limb_boundaries() {
    for &w in &[1u32, 8, 63, 64, 65, 127, 128, 200] {
        let mut b = ModuleBuilder::new("shifter");
        let a = b.input("a", w);
        let amt = b.input("amt", 16);
        let shl = b.shl(a, amt);
        let lshr = b.lshr(a, amt);
        let ashr = b.ashr(a, amt);
        b.output("shl", shl);
        b.output("lshr", lshr);
        b.output("ashr", ashr);
        let module = b.finish().unwrap();

        let mut rng = SplitMix64::new(0x5817 ^ w as u64);
        let mut values = vec![
            Bv::zero(w),
            Bv::ones(w),
            Bv::from_u64(w, 1),
            random_bv(&mut rng, w),
        ];
        // Sign bit alone: the adversarial AShr operand.
        let mut sign = Bv::zero(w);
        sign = sign.not().shl(w - 1);
        values.push(sign);
        let amounts: Vec<u64> = [0u64, 1, 62, 63, 64, 65, 127, 128]
            .into_iter()
            .chain([w as u64 - 1, w as u64, w as u64 + 1, 1000])
            .collect();

        let mut fast = Simulator::new(module.clone()).unwrap();
        let mut vm = Simulator::new_vm(module.clone()).unwrap();
        let mut oracle = Simulator::new_reference(module.clone()).unwrap();
        let mut lanes = LaneSim::new(module.clone()).unwrap();
        // Lane-chunk the (value, amount) grid; every case also runs the
        // scalar engines and the direct oracle.
        let cases: Vec<(Bv, u64)> = values
            .iter()
            .flat_map(|v| amounts.iter().map(move |&m| (v.clone(), m)))
            .collect();
        for chunk in cases.chunks(LANES) {
            for (lane, (v, m)) in chunk.iter().enumerate() {
                lanes.poke_lane("a", lane, v.clone());
                lanes.poke_lane("amt", lane, Bv::from_u64(16, *m));
            }
            for (lane, (v, m)) in chunk.iter().enumerate() {
                let amt_bv = Bv::from_u64(16, *m);
                fast.poke("a", v.clone());
                fast.poke("amt", amt_bv.clone());
                vm.poke("a", v.clone());
                vm.poke("amt", amt_bv.clone());
                oracle.poke("a", v.clone());
                oracle.poke("amt", amt_bv.clone());
                for (port, op) in [
                    ("shl", dfv_rtl::ir::BinOp::Shl),
                    ("lshr", dfv_rtl::ir::BinOp::LShr),
                    ("ashr", dfv_rtl::ir::BinOp::AShr),
                ] {
                    let expect = eval_bin(op, v, &amt_bv);
                    assert_eq!(
                        fast.output(port),
                        expect,
                        "compiled {port} w={w} amt={m} a={v:?}"
                    );
                    assert_eq!(vm.output(port), expect, "vm {port} w={w} amt={m} a={v:?}");
                    assert_eq!(
                        oracle.output(port),
                        expect,
                        "oracle {port} w={w} amt={m} a={v:?}"
                    );
                    assert_eq!(
                        lanes.output_lane(port, lane),
                        expect,
                        "lane {port} w={w} amt={m} a={v:?}"
                    );
                }
            }
        }
    }
}

/// The batched engine's reason to exist: 64 scenarios on the sparse
/// memsys workload cost one lane run — well under 1/8th (measured
/// ~1/64th) of what 64 scalar dirty-cone runs dispatch.
#[test]
fn lane_batching_cuts_node_evals_on_sparse_workload() {
    let table: [u8; 16] = [0; 16];
    let m = memsys::rtl(&table);

    // 64 scalar runs, one per scenario.
    let mut scalar_evals = 0u64;
    for lane in 0..LANES {
        let mut sim = Simulator::new(m.clone()).unwrap();
        sim.step_with(&[
            ("req_valid", Bv::from_bool(true)),
            ("tag", Bv::from_u64(memsys::TAG_W, lane as u64 % 16)),
            ("addr", Bv::from_u64(memsys::ADDR_W, lane as u64 % 8)),
        ]);
        sim.poke("req_valid", Bv::from_bool(false));
        for _ in 0..100 {
            sim.step();
        }
        sim.output("resp0_valid");
        scalar_evals += sim.stats().node_evals;
    }

    // One batched run covering the same 64 scenarios.
    let mut lanes = LaneSim::new(m).unwrap();
    for lane in 0..LANES {
        lanes.poke_lane("req_valid", lane, Bv::from_bool(true));
        lanes.poke_lane("tag", lane, Bv::from_u64(memsys::TAG_W, lane as u64 % 16));
        lanes.poke_lane("addr", lane, Bv::from_u64(memsys::ADDR_W, lane as u64 % 8));
    }
    lanes.step();
    lanes.poke_splat("req_valid", Bv::from_bool(false));
    for _ in 0..100 {
        lanes.step();
    }
    lanes.output_lane("resp0_valid", 0);
    let batched = lanes.stats().node_evals + lanes.stats().lane_fallback_evals;

    assert!(
        batched * 8 <= scalar_evals,
        "batched run dispatched {batched} (incl. fallbacks) vs {scalar_evals} scalar node evals \
         — expected at least 8x savings"
    );
}

/// The engine's reason to exist: on a sparse workload (one request, then a
/// long idle stretch) the dirty-cone engine evaluates strictly fewer nodes
/// than the full-reevaluation reference under identical stimulus.
#[test]
fn dirty_cone_beats_full_reeval_on_sparse_workload() {
    let table: [u8; 16] = [0; 16];
    let m = memsys::rtl(&table);
    let mut fast = Simulator::new(m.clone()).unwrap();
    let mut oracle = Simulator::new_reference(m).unwrap();
    let drive = |sim: &mut Simulator| {
        sim.step_with(&[
            ("req_valid", Bv::from_bool(true)),
            ("tag", Bv::from_u64(memsys::TAG_W, 7)),
            ("addr", Bv::from_u64(memsys::ADDR_W, 3)),
        ]);
        sim.poke("req_valid", Bv::from_bool(false));
        for _ in 0..200 {
            sim.step();
        }
        sim.output("resp0_valid")
    };
    let a = drive(&mut fast);
    let b = drive(&mut oracle);
    assert_eq!(a, b);
    let (f, o) = (fast.stats(), oracle.stats());
    assert_eq!(f.steps, o.steps);
    assert!(
        f.node_evals < o.node_evals,
        "dirty-cone did {} node evals, reference {} — expected strictly less",
        f.node_evals,
        o.node_evals
    );
    // The idle tail should cost almost nothing: well under one full pass
    // per cycle on average.
    assert!(f.node_evals * 2 < o.node_evals);
}
