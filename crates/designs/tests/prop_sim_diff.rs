//! Differential property suite for the compiled simulation engine.
//!
//! The dirty-cone engine ([`Simulator::new`]) must be bit-identical to the
//! reference full-reevaluation interpreter ([`Simulator::new_reference`])
//! on every design in this crate plus a synthetic "op soup" module that
//! exercises every operator at single- and multi-limb widths. Both engines
//! are driven with identical seeded constrained-random stimulus (in-tree
//! SplitMix64, so the test is reproducible with no external deps) and
//! compared on per-cycle outputs, the recorded traces, and the rendered
//! VCD dumps — byte for byte.
//!
//! A final regression test pins down the point of the engine: on a sparse
//! workload the dirty-cone `node_evals` counter must come in strictly
//! below the reference engine's full-pass count.

use dfv_bits::{Bv, SplitMix64};
use dfv_designs::{alu, conv, fir, memsys};
use dfv_rtl::{trace_to_vcd, EvalMode, Module, ModuleBuilder, NodeId, Simulator};

/// A two-operand `ModuleBuilder` node constructor.
type BinCtor = fn(&mut ModuleBuilder, NodeId, NodeId) -> NodeId;
/// A one-operand `ModuleBuilder` node constructor.
type UnCtor = fn(&mut ModuleBuilder, NodeId) -> NodeId;

fn random_bv(rng: &mut SplitMix64, width: u32) -> Bv {
    let bits: Vec<bool> = (0..width).map(|_| rng.next_u64() & 1 == 1).collect();
    Bv::from_bits_lsb(&bits)
}

/// Drives both engines with the same seeded stimulus for `cycles` cycles
/// and asserts bit-identity of every output every cycle, of the recorded
/// traces, and of the VCD dumps.
fn assert_engines_agree(module: Module, seed: u64, cycles: u32) {
    let name = module.name.clone();
    let mut fast = Simulator::new(module.clone()).unwrap();
    let mut oracle = Simulator::new_reference(module.clone()).unwrap();
    assert_eq!(fast.eval_mode(), EvalMode::DirtyCone);
    assert_eq!(oracle.eval_mode(), EvalMode::FullOracle);
    for p in &module.outputs {
        fast.watch_output(&p.name);
        oracle.watch_output(&p.name);
    }
    // Two independent streams with the same seed produce the same pokes.
    let mut rng_a = SplitMix64::new(seed);
    let mut rng_b = SplitMix64::new(seed);
    for cycle in 0..cycles {
        for p in &module.inputs {
            fast.poke(&p.name, random_bv(&mut rng_a, p.width));
            oracle.poke(&p.name, random_bv(&mut rng_b, p.width));
        }
        fast.step();
        oracle.step();
        for p in &module.outputs {
            assert_eq!(
                fast.output(&p.name),
                oracle.output(&p.name),
                "{name}: output {:?} diverged at cycle {cycle} (seed {seed:#x})",
                p.name
            );
        }
    }
    assert_eq!(fast.trace(), oracle.trace(), "{name}: traces diverged");
    assert_eq!(
        trace_to_vcd(&fast, "tb"),
        trace_to_vcd(&oracle, "tb"),
        "{name}: VCD dumps diverged"
    );
}

/// A module using every `BinOp`/`UnOp` plus mux/slice/concat/zext/sext, a
/// register, and a memory — all at operand width `w`, so `w > 64`
/// exercises the multi-limb kernels and the oracle fallback for the wide
/// hard ops.
fn op_soup(w: u32) -> Module {
    let mut b = ModuleBuilder::new("op_soup");
    let a = b.input("a", w);
    let x = b.input("x", w);
    let amt = b.input("amt", 8);
    let sel = b.input("sel", 1);

    let bin: [(&str, BinCtor); 10] = [
        ("add", ModuleBuilder::add),
        ("sub", ModuleBuilder::sub),
        ("mul", ModuleBuilder::mul),
        ("udiv", ModuleBuilder::udiv),
        ("urem", ModuleBuilder::urem),
        ("sdiv", ModuleBuilder::sdiv),
        ("srem", ModuleBuilder::srem),
        ("and", ModuleBuilder::and),
        ("or", ModuleBuilder::or),
        ("xor", ModuleBuilder::xor),
    ];
    for (name, f) in bin {
        let n = f(&mut b, a, x);
        b.output(name, n);
    }
    let cmp: [(&str, BinCtor); 6] = [
        ("eq", ModuleBuilder::eq),
        ("ne", ModuleBuilder::ne),
        ("ult", ModuleBuilder::ult),
        ("ule", ModuleBuilder::ule),
        ("slt", ModuleBuilder::slt),
        ("sle", ModuleBuilder::sle),
    ];
    for (name, f) in cmp {
        let n = f(&mut b, a, x);
        b.output(name, n);
    }
    let sh: [(&str, BinCtor); 3] = [
        ("shl", ModuleBuilder::shl),
        ("lshr", ModuleBuilder::lshr),
        ("ashr", ModuleBuilder::ashr),
    ];
    for (name, f) in sh {
        let n = f(&mut b, a, amt);
        b.output(name, n);
    }
    let un: [(&str, UnCtor); 5] = [
        ("not", ModuleBuilder::not),
        ("neg", ModuleBuilder::neg),
        ("red_and", ModuleBuilder::red_and),
        ("red_or", ModuleBuilder::red_or),
        ("red_xor", ModuleBuilder::red_xor),
    ];
    for (name, f) in un {
        let n = f(&mut b, a);
        b.output(name, n);
    }
    let m = b.mux(sel, a, x);
    b.output("mux", m);
    let s = b.slice(a, w - 1, w / 2);
    b.output("slice", s);
    let c = b.concat(a, x);
    b.output("concat", c);
    let z = b.zext(a, w + 13);
    b.output("zext", z);
    let e = b.sext(a, w + 13);
    b.output("sext", e);

    // A wide accumulator register and a wide memory exercise the state
    // paths of the commit phase at the same widths.
    let acc = b.reg("acc", w, Bv::zero(w));
    let q = b.reg_q(acc);
    let nx = b.xor(q, a);
    b.connect_reg(acc, nx);
    b.output("acc", q);
    let mem = b.mem("m", 4, w, 16);
    let waddr = b.slice(amt, 3, 0);
    b.mem_write(mem, sel, waddr, x);
    let raddr = b.slice(amt, 7, 4);
    let rd = b.mem_read(mem, raddr);
    b.output("rdata", rd);
    b.finish().unwrap()
}

#[test]
fn engines_agree_on_alu() {
    for seed in [1u64, 0xDEAD_BEEF] {
        assert_engines_agree(alu::rtl(8, 8), seed, 64);
        assert_engines_agree(alu::rtl(8, 32), seed, 64);
    }
}

#[test]
fn engines_agree_on_fir() {
    for seed in [2u64, 0xFEED_F00D] {
        assert_engines_agree(fir::rtl(), seed, 128);
    }
}

#[test]
fn engines_agree_on_conv() {
    for seed in [3u64, 0xC0FF_EE00] {
        assert_engines_agree(conv::rtl(), seed, 128);
    }
}

#[test]
fn engines_agree_on_memsys() {
    let table: [u8; 16] = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
    for seed in [4u64, 0xBADC_0DE5] {
        assert_engines_agree(memsys::rtl(&table), seed, 128);
    }
}

#[test]
fn engines_agree_on_op_soup_single_limb() {
    for &w in &[8u32, 33, 63, 64] {
        assert_engines_agree(op_soup(w), 0x5EED ^ w as u64, 48);
    }
}

#[test]
fn engines_agree_on_op_soup_multi_limb() {
    for &w in &[65u32, 100, 128, 200] {
        assert_engines_agree(op_soup(w), 0x1DEA ^ w as u64, 48);
    }
}

/// The engine's reason to exist: on a sparse workload (one request, then a
/// long idle stretch) the dirty-cone engine evaluates strictly fewer nodes
/// than the full-reevaluation reference under identical stimulus.
#[test]
fn dirty_cone_beats_full_reeval_on_sparse_workload() {
    let table: [u8; 16] = [0; 16];
    let m = memsys::rtl(&table);
    let mut fast = Simulator::new(m.clone()).unwrap();
    let mut oracle = Simulator::new_reference(m).unwrap();
    let drive = |sim: &mut Simulator| {
        sim.step_with(&[
            ("req_valid", Bv::from_bool(true)),
            ("tag", Bv::from_u64(memsys::TAG_W, 7)),
            ("addr", Bv::from_u64(memsys::ADDR_W, 3)),
        ]);
        sim.poke("req_valid", Bv::from_bool(false));
        for _ in 0..200 {
            sim.step();
        }
        sim.output("resp0_valid")
    };
    let a = drive(&mut fast);
    let b = drive(&mut oracle);
    assert_eq!(a, b);
    let (f, o) = (fast.stats(), oracle.stats());
    assert_eq!(f.steps, o.steps);
    assert!(
        f.node_evals < o.node_evals,
        "dirty-cone did {} node evals, reference {} — expected strictly less",
        f.node_evals,
        o.node_evals
    );
    // The idle tail should cost almost nothing: well under one full pass
    // per cycle on average.
    assert!(f.node_evals * 2 < o.node_evals);
}
