//! Paired SLM + RTL reference designs shared by the examples, integration
//! tests, and benchmark harness.
//!
//! Each module holds one design pair from DESIGN.md's inventory, chosen to
//! exercise a distinct consistency challenge from the paper:
//!
//! | module | paper hook |
//! |--------|-----------|
//! | [`alu`] | Fig 1 — narrow-adder non-associativity vs `int`-style C masking |
//! | [`fir`] | §1 word-width exploration, §3.2 streams + stalls |
//! | [`conv`] | §3.2 parallel (whole-image) SLM vs serial (pixel-stream) RTL |
//! | [`memsys`] | §3.2 variable latency and out-of-order completion |
//! | [`fpmac`] | §3.1.2 reduced-IEEE hardware floating point |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alu;
pub mod conv;
pub mod fir;
pub mod fpmac;
pub mod memsys;
