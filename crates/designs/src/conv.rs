//! A 3x3 Gaussian-blur image tile: the parallel-vs-serial interface pair.
//!
//! The paper's §3.2, verbatim: "the SLM of an image processing block may
//! read in the entire image as a single array of pixels while the RTL reads
//! it as a stream of pixels." The SLM here takes a whole 4x4 tile as one
//! array argument; the RTL loads pixels one per cycle into an internal
//! register file, then streams results out one per cycle. Larger images are
//! processed tile by tile (see the `image_pipeline` example).

use dfv_bits::Bv;
use dfv_rtl::{Module, ModuleBuilder, NodeId};
use dfv_sec::{Binding, EquivSpec};

/// Image tile side length.
pub const SIDE: usize = 4;
/// Pixels per tile.
pub const PIXELS: usize = SIDE * SIDE;
/// Counter width: one phase bit above the pixel index bits.
const CNT_W: u32 = 5;
const IDX_W: u32 = 4;

/// The SLM-C source: whole-tile-in, whole-tile-out, 3x3 kernel
/// (1 2 1 / 2 4 2 / 1 2 1) / 16 with zero padding at the borders.
///
/// Written in the paper's *conditioned* style: every loop bound and array
/// index is a static expression of loop variables, so the elaborator emits
/// constant indexing (no mux trees) and static control.
pub fn slm_source() -> &'static str {
    r#"
    // 3x3 Gaussian blur over a 4x4 tile, zero padding outside.
    void blur(uint8 img[16], out uint8 res[16]) {
        for (int y = 0; y < 4; y++) {
            for (int x = 0; x < 4; x++) {
                int acc = 0;
                for (int dy = 0 - 1; dy <= 1; dy++) {
                    for (int dx = 0 - 1; dx <= 1; dx++) {
                        if (y + dy >= 0) {
                            if (y + dy <= 3) {
                                if (x + dx >= 0) {
                                    if (x + dx <= 3) {
                                        int w = (dy == 0 ? 2 : 1) * (dx == 0 ? 2 : 1);
                                        acc += w * img[(y + dy) * 4 + (x + dx)];
                                    }
                                }
                            }
                        }
                    }
                }
                res[y * 4 + x] = (uint8)(acc >> 4);
            }
        }
    }
    "#
}

/// Builds the combinational blur of pixel (x, y) from the 16 pixel nodes.
fn blur_pixel(b: &mut ModuleBuilder, pix: &[NodeId], x: i64, y: i64) -> NodeId {
    let mut acc = b.lit(12, 0);
    for dy in -1i64..=1 {
        for dx in -1i64..=1 {
            let (yy, xx) = (y + dy, x + dx);
            if !(0..SIDE as i64).contains(&yy) || !(0..SIDE as i64).contains(&xx) {
                continue;
            }
            let w = (if dy == 0 { 2u32 } else { 1 }) * (if dx == 0 { 2 } else { 1 });
            let p = pix[(yy * SIDE as i64 + xx) as usize];
            let pw = b.zext(p, 12);
            let shift = b.lit(2, w.trailing_zeros() as u64);
            let term = b.shl(pw, shift);
            acc = b.add(acc, term);
        }
    }
    let four = b.lit(4, 4);
    let shifted = b.lshr(acc, four);
    b.trunc(shifted, 8)
}

/// The streaming RTL: [`PIXELS`] LOAD cycles (one pixel per cycle on
/// `pix_in` when `in_valid`), then [`PIXELS`] OUTPUT cycles (`pix_out` +
/// `out_valid`). The pixel store is a register file; the blur of the
/// streamed-out pixel is computed combinationally from it.
pub fn rtl() -> Module {
    let mut b = ModuleBuilder::new("blur_rtl");
    let in_valid = b.input("in_valid", 1);
    let pix_in = b.input("pix_in", 8);
    let regs: Vec<_> = (0..PIXELS)
        .map(|i| b.reg(format!("p{i}"), 8, Bv::zero(8)))
        .collect();
    let pix_q: Vec<NodeId> = regs.iter().map(|r| b.reg_q(*r)).collect();
    // Phase counter: low IDX_W bits index pixels; the top bit selects the
    // output phase.
    let cnt = b.reg("cnt", CNT_W, Bv::zero(CNT_W));
    let cntq = b.reg_q(cnt);
    let streaming = b.bit(cntq, CNT_W - 1);
    let loading = b.not(streaming);
    let advance = {
        let iv = b.and(loading, in_valid);
        b.or(iv, streaming)
    };
    let one = b.lit(CNT_W, 1);
    let next_cnt = b.add(cntq, one);
    b.connect_reg(cnt, next_cnt);
    b.reg_enable(cnt, advance);
    // Load decode.
    let idx = b.trunc(cntq, IDX_W);
    for (i, r) in regs.iter().enumerate() {
        let iv = b.lit(IDX_W, i as u64);
        let hit = b.eq(idx, iv);
        let en = {
            let lh = b.and(loading, hit);
            b.and(lh, in_valid)
        };
        b.connect_reg(*r, pix_in);
        b.reg_enable(*r, en);
    }
    // Output select.
    let mut out_val = b.lit(8, 0);
    for y in 0..SIDE as i64 {
        for x in 0..SIDE as i64 {
            let i = (y * SIDE as i64 + x) as u64;
            let iv = b.lit(IDX_W, i);
            let hit = b.eq(idx, iv);
            let v = blur_pixel(&mut b, &pix_q, x, y);
            out_val = b.mux(hit, v, out_val);
        }
    }
    b.output("pix_out", out_val);
    b.output("out_valid", streaming);
    b.finish().expect("blur rtl is well formed")
}

/// The transaction spec: [`PIXELS`] load cycles streaming `img` slices,
/// then [`PIXELS`] compare cycles against `res` slices.
pub fn equiv_spec() -> EquivSpec {
    let mut spec = EquivSpec::new(2 * PIXELS as u32);
    for i in 0..PIXELS as u32 {
        spec = spec
            .bind("in_valid", i, Binding::Const(Bv::from_bool(true)))
            .bind(
                "pix_in",
                i,
                Binding::SlmSlice {
                    name: "img".into(),
                    hi: i * 8 + 7,
                    lo: i * 8,
                },
            );
        let t = PIXELS as u32 + i;
        spec = spec
            .bind("in_valid", t, Binding::Const(Bv::from_bool(false)))
            .compare_slice("res", i * 8 + 7, i * 8, "pix_out", t);
    }
    spec
}

/// Runs the SLM (via the interpreter) on a packed tile, returning the
/// packed result — the golden model for co-simulation.
///
/// # Panics
///
/// Panics if `img` is not `PIXELS * 8` bits wide.
pub fn slm_golden(img: &Bv) -> Bv {
    use dfv_slmir::{Interp, ScalarTy, Value};
    assert_eq!(img.width() as usize, PIXELS * 8);
    let prog = dfv_slmir::parse(slm_source()).expect("slm source parses");
    let u8t = ScalarTy {
        width: 8,
        signed: false,
    };
    let words: Vec<Bv> = (0..PIXELS as u32)
        .map(|i| img.slice(i * 8 + 7, i * 8))
        .collect();
    let r = Interp::new(&prog)
        .run("blur", &[Value::Array(words, u8t)])
        .expect("slm executes");
    let (_, Value::Array(out, _)) = &r.outs[0] else {
        panic!("blur has one out array")
    };
    let mut packed = out[0].clone();
    for w in &out[1..] {
        packed = w.concat(&packed);
    }
    packed
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_rtl::Simulator;

    fn pack(pixels: &[u64]) -> Bv {
        let mut packed = Bv::from_u64(8, pixels[0]);
        for &p in &pixels[1..] {
            packed = Bv::from_u64(8, p).concat(&packed);
        }
        packed
    }

    #[test]
    fn uniform_tile_blurs_predictably() {
        let img = pack(&[100; PIXELS]);
        let out = slm_golden(&img);
        let at = |x: u32, y: u32| {
            let i = y * SIDE as u32 + x;
            out.slice(i * 8 + 7, i * 8).to_u64()
        };
        // Interior pixel (full 16/16 kernel coverage): unchanged.
        assert_eq!(at(1, 1), 100);
        assert_eq!(at(2, 2), 100);
        // Corner: covered weight 4+2+2+1 = 9 -> (100 * 9) >> 4 = 56.
        assert_eq!(at(0, 0), 56);
        // Edge (non-corner): weight 12 -> 75.
        assert_eq!(at(1, 0), 75);
    }

    #[test]
    fn rtl_streams_match_golden() {
        let pixels: Vec<u64> = (0..PIXELS as u64).map(|i| (i * 31 + 7) % 256).collect();
        let img = pack(&pixels);
        let golden = slm_golden(&img);

        let mut sim = Simulator::new(rtl()).unwrap();
        for &p in pixels.iter() {
            sim.poke("in_valid", Bv::from_bool(true));
            sim.poke("pix_in", Bv::from_u64(8, p));
            sim.step();
        }
        for i in 0..PIXELS as u32 {
            sim.poke("in_valid", Bv::from_bool(false));
            assert!(sim.output("out_valid").bit(0), "pixel {i}");
            let expect = golden.slice(i * 8 + 7, i * 8).to_u64();
            assert_eq!(sim.output("pix_out").to_u64(), expect, "pixel {i}");
            sim.step();
        }
    }

    #[test]
    fn load_phase_respects_in_valid_gaps() {
        let pixels: Vec<u64> = (0..PIXELS as u64).map(|i| (i * 13) % 256).collect();
        let mut sim = Simulator::new(rtl()).unwrap();
        let mut i = 0usize;
        let mut cycle = 0;
        while i < PIXELS {
            let bubble = cycle % 5 == 2;
            sim.poke("in_valid", Bv::from_bool(!bubble));
            sim.poke("pix_in", Bv::from_u64(8, pixels[i.min(PIXELS - 1)]));
            sim.step();
            if !bubble {
                i += 1;
            }
            cycle += 1;
        }
        let golden = slm_golden(&pack(&pixels));
        sim.poke("in_valid", Bv::from_bool(false));
        assert!(sim.output("out_valid").bit(0));
        assert_eq!(sim.output("pix_out").to_u64(), golden.slice(7, 0).to_u64());
    }

    #[test]
    fn slm_rtl_equivalence_via_sec() {
        let slm = dfv_slmir::elaborate(&dfv_slmir::parse(slm_source()).unwrap(), "blur").unwrap();
        let report = dfv_sec::check_equivalence(&slm, &rtl(), &equiv_spec()).unwrap();
        assert!(
            report.outcome.is_equivalent(),
            "blur SLM and RTL must be transaction equivalent: {:?}",
            report.outcome
        );
    }
}
