//! A floating-point multiply-accumulate: the §3.1.2 divergence pair.
//!
//! The SLM computes `a * b + c` with the host's IEEE `f32`; the "RTL"
//! behavioural model uses [`FpUnit`] with [`FloatFeatures::REDUCED_HARDWARE`]
//! (flush-to-zero, saturate-on-overflow, no NaN). They agree on ordinary
//! values and diverge exactly on the corner cases the paper lists —
//! denormals, infinities, NaN — which the [`benign`] input constraint
//! excludes, making the constrained pair equivalent (the paper's
//! recommended technique for equivalence checking such designs).

use dfv_float::{FloatFeatures, FloatFormat, FpUnit};

/// The full-IEEE unit (bit-exact with the host FPU — property-tested in
/// `dfv-float`).
pub fn ieee_unit() -> FpUnit {
    FpUnit::new(FloatFormat::IEEE_SINGLE, FloatFeatures::FULL_IEEE)
}

/// The reduced hardware unit.
pub fn hw_unit() -> FpUnit {
    FpUnit::new(FloatFormat::IEEE_SINGLE, FloatFeatures::REDUCED_HARDWARE)
}

/// The SLM: native IEEE multiply-accumulate (separate rounding per
/// operation, like C source code `a * b + c` — not a fused MAC).
pub fn slm_mac(a: f32, b: f32, c: f32) -> f32 {
    a * b + c
}

/// The RTL behavioural model: the same dataflow through a unit.
pub fn unit_mac(u: &FpUnit, a: u32, b: u32, c: u32) -> u64 {
    let p = u.mul(u64::from(a), u64::from(b));
    u.add(p, u64::from(c))
}

/// Whether SLM and reduced hardware diverge on this input triple.
pub fn diverges(a: f32, b: f32, c: f32) -> bool {
    let slm = slm_mac(a, b, c);
    let hw = unit_mac(&hw_unit(), a.to_bits(), b.to_bits(), c.to_bits());
    if slm.is_nan() {
        // Reduced hardware cannot represent NaN at all — always divergent.
        return true;
    }
    u64::from(slm.to_bits()) != hw
}

/// The input constraint of the paper's §3.1.2: values for which the
/// reduced-feature hardware is exact. Zero or a normal number whose
/// magnitude keeps products and sums away from overflow and underflow.
pub fn benign(x: f32) -> bool {
    if x == 0.0 {
        return true;
    }
    if !x.is_finite() || x.is_nan() {
        return false;
    }
    let mag = x.abs();
    // Normal, and within 2^-30 .. 2^30 so products stay in 2^-60 .. 2^60:
    // comfortably inside single-precision normal range.
    (f32::MIN_POSITIVE..=f32::MAX).contains(&mag) && (1e-9..=1e9).contains(&mag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::approx_constant)] // arbitrary sample floats, not stand-ins for consts
    fn ordinary_values_agree() {
        for (a, b, c) in [
            (1.5f32, 2.0, 3.25),
            (-7.0, 0.125, 100.0),
            (3.14159, 2.71828, -1.41421),
            (0.0, 5.0, 9.5),
        ] {
            assert!(!diverges(a, b, c), "{a} {b} {c}");
        }
    }

    #[test]
    fn denormals_diverge() {
        let tiny = f32::from_bits(0x0000_1000); // denormal
        assert!(diverges(tiny, 1.0, 0.0));
        // A product that underflows into the denormal range.
        assert!(diverges(1e-25, 1e-15, 0.0));
    }

    #[test]
    fn overflow_diverges() {
        // IEEE gives +inf, reduced hardware saturates to MAX.
        assert!(diverges(f32::MAX, 2.0, 0.0));
    }

    #[test]
    fn nan_diverges() {
        assert!(diverges(f32::NAN, 1.0, 1.0));
        assert!(diverges(f32::INFINITY, 0.0, 1.0)); // inf * 0 = NaN
    }

    #[test]
    fn benign_inputs_never_diverge() {
        // Deterministic pseudo-random sweep over benign triples.
        let mut seed = 0x5EED_5EEDu64;
        let mut next_f32 = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            // Map into +-[1e-6, 1e6] — comfortably benign.
            let mant = (seed % 2_000_000) as f32 / 1000.0 - 1000.0;
            if mant == 0.0 {
                1.0
            } else {
                mant
            }
        };
        for _ in 0..2000 {
            let (a, b, c) = (next_f32(), next_f32(), next_f32());
            assert!(benign(a) && benign(b) && benign(c));
            assert!(!diverges(a, b, c), "{a} {b} {c}");
        }
    }

    #[test]
    fn benign_rejects_corners() {
        assert!(!benign(f32::NAN));
        assert!(!benign(f32::INFINITY));
        assert!(!benign(f32::from_bits(1))); // denormal
        assert!(!benign(f32::MAX)); // overflow risk under multiplication
        assert!(benign(0.0));
        assert!(benign(-123.5));
    }
}
