//! A 4-tap FIR filter: the signal-processing design pair.
//!
//! The SLM processes a whole block of samples through one function call
//! (parallel interface); the RTL is a streaming MAC datapath consuming one
//! sample per cycle with an optional stall input — the paper's §3.2
//! interface- and latency-divergence in one design. The paper's §1
//! word-width exploration use-case is exposed through the quantized
//! fixed-point reference model [`fir_reference_fx`].

use dfv_bits::{Bv, Fx, OverflowMode, RoundingMode};
use dfv_rtl::{Module, ModuleBuilder};
use dfv_sec::{Binding, EquivSpec};

/// Block size of the SLM interface.
pub const BLOCK: usize = 8;
/// Number of taps.
pub const TAPS: usize = 4;
/// Default coefficients (signed 8-bit): a small low-pass.
pub const COEFFS: [i64; TAPS] = [3, 17, 17, 3];
/// Output width: 8-bit sample x 8-bit coeff + log2(4) tap growth.
pub const OUT_WIDTH: u32 = 18;

/// The SLM-C source: block-in / block-out, zero initial history.
pub fn slm_source() -> &'static str {
    r#"
    // 4-tap FIR over a block of 8 signed samples, zero-padded history.
    // y[n] = sum_k c[k] * x[n-k]
    void fir(int8 xs[8], out int<18> ys[8]) {
        int c[4];
        c[0] = 3; c[1] = 17; c[2] = 17; c[3] = 3;
        for (int n = 0; n < 8; n++) {
            int acc = 0;
            for (int k = 0; k < 4; k++) {
                if (k > n) break; // history before the block is zero
                acc += c[k] * xs[n - k];
            }
            ys[n] = (int<18>) acc;
        }
    }
    "#
}

/// The streaming RTL: one sample per cycle on `x` gated by `in_valid`,
/// `y`/`out_valid` one cycle later; `stall` freezes the whole pipeline
/// (§3.2's "external stall conditions ... typically not modeled in the
/// SLM").
pub fn rtl() -> Module {
    let mut b = ModuleBuilder::new("fir_rtl");
    let in_valid = b.input("in_valid", 1);
    let x = b.input("x", 8);
    let stall = b.input("stall", 1);
    let advance = {
        let ns = b.not(stall);
        b.and(in_valid, ns)
    };
    // Sample history shift register.
    let mut taps_q = Vec::new();
    for i in 0..TAPS {
        let r = b.reg(format!("h{i}"), 8, Bv::zero(8));
        taps_q.push(r);
    }
    // h0 <= x, h1 <= h0, ... when advancing.
    for i in (1..TAPS).rev() {
        let prev = b.reg_q(taps_q[i - 1]);
        b.connect_reg(taps_q[i], prev);
        b.reg_enable(taps_q[i], advance);
    }
    b.connect_reg(taps_q[0], x);
    b.reg_enable(taps_q[0], advance);
    // MAC: y = sum c[k] * h[k] — but h is *post-edge*, so compute from the
    // pre-edge values: tap 0 uses the live input x, tap k uses h[k-1].
    let mut acc = b.lit(OUT_WIDTH, 0);
    for (k, &c) in COEFFS.iter().enumerate() {
        let sample = if k == 0 { x } else { b.reg_q(taps_q[k - 1]) };
        let sw = b.sext(sample, OUT_WIDTH);
        let cw = b.constant(Bv::from_i64(OUT_WIDTH, c));
        let prod = b.mul(sw, cw);
        acc = b.add(acc, prod);
    }
    let y_r = b.reg("y_r", OUT_WIDTH, Bv::zero(OUT_WIDTH));
    b.connect_reg(y_r, acc);
    b.reg_enable(y_r, advance);
    let v_r = b.reg("v_r", 1, Bv::zero(1));
    b.connect_reg(v_r, advance);
    let yq = b.reg_q(y_r);
    let vq = b.reg_q(v_r);
    b.output("y", yq);
    b.output("out_valid", vq);
    b.finish().expect("fir rtl is well formed")
}

/// The stall-free transaction spec: 8 samples streamed in over cycles
/// 0..8, each `ys` slice compared one cycle after its sample enters.
pub fn equiv_spec() -> EquivSpec {
    let mut spec = EquivSpec::new(BLOCK as u32 + 1);
    for n in 0..BLOCK as u32 {
        spec = spec
            .bind("in_valid", n, Binding::Const(Bv::from_bool(true)))
            .bind("stall", n, Binding::Const(Bv::from_bool(false)))
            .bind(
                "x",
                n,
                Binding::SlmSlice {
                    name: "xs".into(),
                    hi: n * 8 + 7,
                    lo: n * 8,
                },
            );
        spec = spec.compare_slice("ys", (n + 1) * OUT_WIDTH - 1, n * OUT_WIDTH, "y", n + 1);
    }
    spec.bind(
        "in_valid",
        BLOCK as u32,
        Binding::Const(Bv::from_bool(false)),
    )
    .bind("stall", BLOCK as u32, Binding::Const(Bv::from_bool(false)))
}

/// Reference fixed-point FIR at an arbitrary (width, frac) format — the
/// word-width exploration model (§1: "decide on the optimal word widths to
/// support the desired bit error rates"). Coefficients are quantized from
/// their exact values; the output is quantized after each accumulation.
pub fn fir_reference_fx(samples: &[f64], width: u32, frac: u32) -> Vec<f64> {
    let coeffs: Vec<Fx> = COEFFS
        .iter()
        .map(|&c| Fx::from_f64(width, frac, c as f64 / 64.0))
        .collect();
    let mut out = Vec::with_capacity(samples.len());
    for n in 0..samples.len() {
        let mut acc = Fx::zero(width, frac);
        for (k, c) in coeffs.iter().enumerate() {
            if k > n {
                break;
            }
            let x = Fx::from_f64(width, frac, samples[n - k]);
            let p = x
                .mul(c)
                .quantize(width, frac, RoundingMode::HalfEven, OverflowMode::Saturate);
            acc = acc
                .add(&p)
                .quantize(width, frac, RoundingMode::HalfEven, OverflowMode::Saturate);
        }
        out.push(acc.to_f64());
    }
    out
}

/// The exact (double-precision) FIR the fixed-point model approximates.
pub fn fir_reference_exact(samples: &[f64]) -> Vec<f64> {
    let coeffs: Vec<f64> = COEFFS.iter().map(|&c| c as f64 / 64.0).collect();
    (0..samples.len())
        .map(|n| {
            coeffs
                .iter()
                .enumerate()
                .take(n + 1)
                .map(|(k, c)| c * samples[n - k])
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_rtl::Simulator;
    use dfv_slmir::{elaborate, parse, Interp, ScalarTy, Value};

    #[test]
    fn slm_interpreter_computes_fir() {
        let prog = parse(slm_source()).unwrap();
        let s8 = ScalarTy {
            width: 8,
            signed: true,
        };
        let xs = Value::Array(
            vec![
                Bv::from_i64(8, 10),
                Bv::from_i64(8, 0),
                Bv::from_i64(8, 0),
                Bv::from_i64(8, 0),
                Bv::from_i64(8, -5),
                Bv::from_i64(8, 0),
                Bv::from_i64(8, 0),
                Bv::from_i64(8, 0),
            ],
            s8,
        );
        let r = Interp::new(&prog).run("fir", &[xs]).unwrap();
        let (_, Value::Array(ys, _)) = &r.outs[0] else {
            panic!()
        };
        // Impulse of 10 at n=0 reproduces the coefficients x10.
        assert_eq!(ys[0].to_i64(), 30);
        assert_eq!(ys[1].to_i64(), 170);
        assert_eq!(ys[2].to_i64(), 170);
        assert_eq!(ys[3].to_i64(), 30);
        // Second impulse of -5 at n=4.
        assert_eq!(ys[4].to_i64(), -15);
        assert_eq!(ys[5].to_i64(), -85);
    }

    #[test]
    fn rtl_streams_the_same_values() {
        let mut sim = Simulator::new(rtl()).unwrap();
        let samples = [10i64, 0, 0, 0, -5, 0, 0, 0];
        let mut got = Vec::new();
        for &s in &samples {
            sim.poke("in_valid", Bv::from_bool(true));
            sim.poke("stall", Bv::from_bool(false));
            sim.poke("x", Bv::from_i64(8, s));
            sim.step();
            if sim.output("out_valid").bit(0) {
                got.push(sim.output("y").to_i64());
            }
        }
        assert_eq!(got, vec![30, 170, 170, 30, -15, -85, -85, -15]);
    }

    #[test]
    fn slm_rtl_equivalence_via_sec() {
        let slm = elaborate(&parse(slm_source()).unwrap(), "fir").unwrap();
        let report = dfv_sec::check_equivalence(&slm, &rtl(), &equiv_spec()).unwrap();
        assert!(
            report.outcome.is_equivalent(),
            "FIR SLM and RTL must be transaction equivalent: {:?}",
            report.outcome
        );
    }

    #[test]
    fn stall_freezes_pipeline_without_changing_values() {
        let mut sim = Simulator::new(rtl()).unwrap();
        let samples = [3i64, -7, 11, 2, 5, -1, 0, 9];
        let mut got = Vec::new();
        let mut i = 0;
        let mut cycle = 0;
        while got.len() < samples.len() {
            let stall = cycle % 3 == 1; // stall every third cycle
            sim.poke("stall", Bv::from_bool(stall));
            sim.poke("in_valid", Bv::from_bool(i < samples.len()));
            sim.poke(
                "x",
                Bv::from_i64(8, if i < samples.len() { samples[i] } else { 0 }),
            );
            let advanced = !stall && i < samples.len();
            sim.step();
            if advanced {
                i += 1;
            }
            if sim.output("out_valid").bit(0) && advanced {
                got.push(sim.output("y").to_i64());
            }
            cycle += 1;
            assert!(cycle < 100, "hung");
        }
        // Same values as the stall-free run (impulse response of 3 then…).
        let mut reference = Simulator::new(rtl()).unwrap();
        let mut expect = Vec::new();
        for &s in &samples {
            reference.poke("in_valid", Bv::from_bool(true));
            reference.poke("stall", Bv::from_bool(false));
            reference.poke("x", Bv::from_i64(8, s));
            reference.step();
            expect.push(reference.output("y").to_i64());
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn wordwidth_exploration_error_shrinks() {
        let samples: Vec<f64> = (0..32)
            .map(|i| ((i * 37 % 17) as f64 - 8.0) / 8.0)
            .collect();
        let exact = fir_reference_exact(&samples);
        let mut last_err = f64::INFINITY;
        for frac in [4, 6, 8, 12] {
            let fx = fir_reference_fx(&samples, 18, frac);
            let err: f64 = exact
                .iter()
                .zip(&fx)
                .map(|(e, f)| (e - f).abs())
                .fold(0.0, f64::max);
            assert!(
                err <= last_err + 1e-12,
                "error must shrink with more fraction bits ({frac}: {err} > {last_err})"
            );
            last_err = err;
        }
        assert!(last_err < 0.01);
    }
}
