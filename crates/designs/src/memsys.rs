//! A dual-bank tagged lookup engine: the out-of-order-completion pair.
//!
//! The paper's §3.2: variable input-to-output latency "can mean that the
//! order in which the RTL produces outputs may be different than the order
//! in which SLM produces the corresponding outputs", requiring complicated
//! transactors/comparators. Here bank 0 (addresses 0..7) answers in 1
//! cycle and bank 1 (addresses 8..15) in 3 cycles, each on its own tagged
//! response port — so a bank-0 request issued after a bank-1 request
//! overtakes it, exactly like a cache hit under a miss.
//!
//! The SLM is the paper's zero-delay array ([`slm_golden`]): every lookup
//! answers immediately and in order.

use dfv_bits::Bv;
use dfv_rtl::{Module, ModuleBuilder};

/// Address width (16 words; the top bit selects the bank).
pub const ADDR_W: u32 = 4;
/// Tag width carried with each request.
pub const TAG_W: u32 = 3;
/// Bank-1 extra delay stages beyond its 1-cycle memory read.
pub const SLOW_EXTRA: u32 = 2;
/// Fast-bank response latency in cycles.
pub const FAST_LATENCY: u64 = 1;
/// Slow-bank response latency in cycles.
pub const SLOW_LATENCY: u64 = FAST_LATENCY + SLOW_EXTRA as u64;

/// Builds the RTL with the given 16-entry ROM contents.
pub fn rtl(table: &[u8; 16]) -> Module {
    let mut b = ModuleBuilder::new("memsys_rtl");
    let req_valid = b.input("req_valid", 1);
    let tag = b.input("tag", TAG_W);
    let addr = b.input("addr", ADDR_W);
    let bank_sel = b.bit(addr, ADDR_W - 1);
    let word_addr = b.trunc(addr, ADDR_W - 1);

    // Two 8-entry memories with synchronous (1-cycle) reads.
    let mem0 = b.mem("bank0", ADDR_W - 1, 8, 8);
    let mem1 = b.mem("bank1", ADDR_W - 1, 8, 8);
    b.mem_init(
        mem0,
        table[..8]
            .iter()
            .map(|&v| Bv::from_u64(8, v as u64))
            .collect(),
    );
    b.mem_init(
        mem1,
        table[8..]
            .iter()
            .map(|&v| Bv::from_u64(8, v as u64))
            .collect(),
    );
    let rd0 = b.mem_read(mem0, word_addr);
    let rd1 = b.mem_read(mem1, word_addr);

    // Request-accepted strobes per bank.
    let nb = b.not(bank_sel);
    let go0 = b.and(req_valid, nb);
    let go1 = b.and(req_valid, bank_sel);

    // Bank 0: valid/tag delayed 1 cycle alongside the memory read.
    let v0 = b.reg("v0", 1, Bv::zero(1));
    b.connect_reg(v0, go0);
    let t0 = b.reg("t0", TAG_W, Bv::zero(TAG_W));
    b.connect_reg(t0, tag);
    let v0q = b.reg_q(v0);
    let t0q = b.reg_q(t0);
    b.output("resp0_valid", v0q);
    b.output("resp0_tag", t0q);
    b.output("resp0_data", rd0);

    // Bank 1: the read data and tag ride SLOW_EXTRA more stages.
    let mut v = go1;
    let mut t = tag;
    let v1a = b.reg("v1a", 1, Bv::zero(1));
    b.connect_reg(v1a, v);
    let t1a = b.reg("t1a", TAG_W, Bv::zero(TAG_W));
    b.connect_reg(t1a, t);
    v = b.reg_q(v1a);
    t = b.reg_q(t1a);
    let mut d = rd1;
    for i in 0..SLOW_EXTRA {
        let vr = b.reg(format!("v1b{i}"), 1, Bv::zero(1));
        b.connect_reg(vr, v);
        let tr = b.reg(format!("t1b{i}"), TAG_W, Bv::zero(TAG_W));
        b.connect_reg(tr, t);
        let dr = b.reg(format!("d1b{i}"), 8, Bv::zero(8));
        b.connect_reg(dr, d);
        v = b.reg_q(vr);
        t = b.reg_q(tr);
        d = b.reg_q(dr);
    }
    b.output("resp1_valid", v);
    b.output("resp1_tag", t);
    b.output("resp1_data", d);
    b.finish().expect("memsys rtl is well formed")
}

/// The zero-delay SLM: an array lookup (paper: "the SLM may model a memory
/// simply as a static array in C").
pub fn slm_golden(table: &[u8; 16], addr: u8) -> u8 {
    table[(addr & 0xF) as usize]
}

/// SLM-C source for the same lookup with the table baked in — the paper's
/// "static array in C" — for equivalence checking against the RTL (whose
/// memory is symbolic state with a real read latency).
pub fn slm_source(table: &[u8; 16]) -> String {
    let mut inits = String::new();
    for (i, v) in table.iter().enumerate() {
        inits.push_str(&format!("        t[{i}] = {v};\n"));
    }
    format!("uint8 lookup(uint<4> addr) {{\n    uint8 t[16];\n{inits}    return t[addr];\n}}\n")
}

/// The transaction spec for one *fast-bank* lookup: address constrained to
/// bank 0 (top bit clear via a slice binding of a 3-bit SLM view would
/// change widths, so the constraint module restricts the address instead),
/// response sampled on `resp0_data` after [`FAST_LATENCY`] cycles.
pub fn equiv_spec_fast() -> dfv_sec::EquivSpec {
    use dfv_rtl::ModuleBuilder;
    use dfv_sec::{Binding, EquivSpec};
    // Constraint: addr < 8 (bank 0).
    let mut cb = ModuleBuilder::new("bank0_only");
    let a = cb.input("addr", ADDR_W);
    let eight = cb.lit(ADDR_W, 8);
    let ok = cb.ult(a, eight);
    cb.output("ok", ok);
    let constraint = cb.finish().expect("constraint builds");
    EquivSpec::new(FAST_LATENCY as u32 + 1)
        .bind("req_valid", 0, Binding::Const(Bv::from_bool(true)))
        .bind("addr", 0, Binding::Slm("addr".into()))
        .bind("tag", 0, Binding::Free)
        .compare("return", "resp0_data", FAST_LATENCY as u32)
        .constrain(constraint)
}

/// The spec for one *slow-bank* lookup (`addr >= 8`), sampled on
/// `resp1_data` after [`SLOW_LATENCY`] cycles.
pub fn equiv_spec_slow() -> dfv_sec::EquivSpec {
    use dfv_rtl::ModuleBuilder;
    use dfv_sec::{Binding, EquivSpec};
    let mut cb = ModuleBuilder::new("bank1_only");
    let a = cb.input("addr", ADDR_W);
    let eight = cb.lit(ADDR_W, 8);
    let ok = cb.ule(eight, a);
    cb.output("ok", ok);
    let constraint = cb.finish().expect("constraint builds");
    EquivSpec::new(SLOW_LATENCY as u32 + 1)
        .bind("req_valid", 0, Binding::Const(Bv::from_bool(true)))
        .bind("addr", 0, Binding::Slm("addr".into()))
        .bind("tag", 0, Binding::Free)
        .compare("return", "resp1_data", SLOW_LATENCY as u32)
        .constrain(constraint)
}

/// Packs a (tag, data) response into the 11-bit stream value used by the
/// out-of-order comparator (tag in bits `[10:8]`).
pub fn pack_response(tag: u64, data: u64) -> Bv {
    Bv::from_u64(8 + TAG_W, (tag << 8) | (data & 0xFF))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_cosim::{Comparator, OutOfOrderComparator, StreamItem};
    use dfv_rtl::Simulator;

    fn table() -> [u8; 16] {
        let mut t = [0u8; 16];
        for (i, v) in t.iter_mut().enumerate() {
            *v = (i as u8) * 7 + 3;
        }
        t
    }

    /// Drives requests and merges both response ports into one stream.
    fn run_requests(reqs: &[(u64, u64)]) -> Vec<(u64, u64, u64)> {
        // (tag, addr) in; (cycle, tag, data) out.
        let mut sim = Simulator::new(rtl(&table())).unwrap();
        let mut out = Vec::new();
        let total = reqs.len() as u64 + SLOW_LATENCY + 2;
        for cycle in 0..total {
            if let Some(&(tag, addr)) = reqs.get(cycle as usize) {
                sim.poke("req_valid", Bv::from_bool(true));
                sim.poke("tag", Bv::from_u64(TAG_W, tag));
                sim.poke("addr", Bv::from_u64(ADDR_W, addr));
            } else {
                sim.poke("req_valid", Bv::from_bool(false));
            }
            sim.step();
            for port in ["resp0", "resp1"] {
                if sim.output(&format!("{port}_valid")).bit(0) {
                    out.push((
                        cycle,
                        sim.output(&format!("{port}_tag")).to_u64(),
                        sim.output(&format!("{port}_data")).to_u64(),
                    ));
                }
            }
        }
        out
    }

    #[test]
    fn latencies_are_1_and_3() {
        let resp = run_requests(&[(1, 2)]);
        assert_eq!(
            resp,
            vec![(FAST_LATENCY - 1, 1, slm_golden(&table(), 2) as u64)]
        );
        let resp = run_requests(&[(2, 10)]);
        assert_eq!(
            resp,
            vec![(SLOW_LATENCY - 1, 2, slm_golden(&table(), 10) as u64)]
        );
    }

    #[test]
    fn fast_overtakes_slow() {
        // Request slow bank first, fast second: responses arrive reversed.
        let resp = run_requests(&[(1, 12), (2, 3)]);
        assert_eq!(resp.len(), 2);
        assert_eq!(resp[0].1, 2, "fast response first: {resp:?}");
        assert_eq!(resp[1].1, 1);
        // Values are still correct.
        assert_eq!(resp[0].2, slm_golden(&table(), 3) as u64);
        assert_eq!(resp[1].2, slm_golden(&table(), 12) as u64);
    }

    #[test]
    fn out_of_order_comparator_aligns_the_streams() {
        let reqs: Vec<(u64, u64)> = vec![(0, 9), (1, 1), (2, 14), (3, 4), (4, 11), (5, 6)];
        let t = table();
        // SLM: in-order zero-delay responses.
        let mut cmp = OutOfOrderComparator::new(10, 8, 4);
        for &(tag, addr) in &reqs {
            cmp.push_expected(StreamItem {
                value: pack_response(tag, slm_golden(&t, addr as u8) as u64),
                time: 0,
            });
        }
        for (cycle, tag, data) in run_requests(&reqs) {
            cmp.push_actual(StreamItem {
                value: pack_response(tag, data),
                time: cycle,
            });
        }
        let report = cmp.finish();
        assert!(report.is_clean(), "{:?}", report.mismatches);
        assert_eq!(report.matched, reqs.len());
    }

    #[test]
    fn slm_rtl_equivalence_with_symbolic_memories() {
        // The SLM's "static array in C" against the RTL's real memories
        // with 1- and 3-cycle latencies — proven equivalent per bank, with
        // the tag pins left fully symbolic (Free).
        let t = table();
        let slm =
            dfv_slmir::elaborate(&dfv_slmir::parse(&slm_source(&t)).unwrap(), "lookup").unwrap();
        let rtl = rtl(&t);
        let fast = dfv_sec::check_equivalence(&slm, &rtl, &equiv_spec_fast()).unwrap();
        assert!(fast.outcome.is_equivalent(), "{:?}", fast.outcome);
        let slow = dfv_sec::check_equivalence(&slm, &rtl, &equiv_spec_slow()).unwrap();
        assert!(slow.outcome.is_equivalent(), "{:?}", slow.outcome);

        // And with a corrupted ROM word, the fast-bank check pins it.
        let mut bad_table = t;
        bad_table[3] ^= 0x10;
        let bad_rtl = rtl2(&bad_table);
        let report = dfv_sec::check_equivalence(&slm, &bad_rtl, &equiv_spec_fast()).unwrap();
        let dfv_sec::EquivOutcome::NotEquivalent(cex) = report.outcome else {
            panic!("corrupted ROM must be caught");
        };
        assert_eq!(
            cex.slm_inputs[0].1.to_u64(),
            3,
            "witness addresses the bad word"
        );
    }

    // Rebuild with a different table (the public `rtl` shadows the name in
    // this scope).
    fn rtl2(table: &[u8; 16]) -> dfv_rtl::Module {
        super::rtl(table)
    }

    #[test]
    fn in_order_comparison_would_fail() {
        // The same streams under an in-order comparator: value mismatches,
        // demonstrating why §3.2 calls for out-of-order-aware compare.
        use dfv_cosim::InOrderComparator;
        let reqs: Vec<(u64, u64)> = vec![(1, 12), (2, 3)];
        let t = table();
        let mut cmp = InOrderComparator::default();
        for &(tag, addr) in &reqs {
            cmp.push_expected(StreamItem {
                value: pack_response(tag, slm_golden(&t, addr as u8) as u64),
                time: 0,
            });
        }
        for (cycle, tag, data) in run_requests(&reqs) {
            cmp.push_actual(StreamItem {
                value: pack_response(tag, data),
                time: cycle,
            });
        }
        assert!(!cmp.finish().is_clean());
    }
}
