//! The Figure-1 ALU: the paper's running example of computational
//! inconsistency.
//!
//! Three SLM variants of `out = a + b + c` over signed 8-bit inputs:
//!
//! * [`slm_int_style`] — C idiom, `int` temporary: 32-bit arithmetic masks
//!   the overflow of an 8-bit RTL temporary (**diverges** from the RTL);
//! * [`slm_bit_accurate`] — explicit `int8` temporary in the RTL's
//!   association order (**matches** the RTL);
//! * [`slm_reassociated`] — explicit `int8` temporary but computing
//!   `(b + c) + a`: non-associativity at 8 bits makes this **diverge**
//!   (the literal Figure 1).
//!
//! The RTL ([`rtl`]) is a two-stage pipeline registering `tmp = a + b` and
//! `c`, then producing `sext(tmp) + sext(c)` — with the temporary width as
//! a parameter so experiment E1 can sweep it.

use dfv_bits::Bv;
use dfv_rtl::{Module, ModuleBuilder};
use dfv_sec::{Binding, EquivSpec};

/// SLM with a C-style `int` temporary (32-bit arithmetic, masking).
pub fn slm_int_style() -> &'static str {
    r#"
    // C-style model: `int` temporaries never overflow for 8-bit inputs,
    // so this model hides the RTL's narrow-adder behaviour (paper Fig 1).
    int<9> alu(int8 a, int8 b, int8 c) {
        int t = a + b;
        return (int<9>)(t + c);
    }
    "#
}

/// SLM with an explicit narrow temporary matching the RTL exactly.
pub fn slm_bit_accurate() -> &'static str {
    r#"
    // Bit-accurate model: the temporary is int8, like the RTL datapath.
    int<9> alu(int8 a, int8 b, int8 c) {
        int8 t = (int8)(a + b);
        return (int<9>)((int)t + c);
    }
    "#
}

/// SLM with a narrow temporary in the *other* association order.
pub fn slm_reassociated() -> &'static str {
    r#"
    // Same widths, different association: (b + c) + a. Non-associativity
    // of finite-precision addition makes this differ from (a + b) + c.
    int<9> alu(int8 a, int8 b, int8 c) {
        int8 t = (int8)(b + c);
        return (int<9>)((int)t + a);
    }
    "#
}

/// The two-stage pipelined RTL with a `temp_width`-bit temporary
/// (`temp_width = 8` reproduces Figure 1; `temp_width >= 9` is the paper's
/// widened-accumulator fix). Inputs are `width`-bit signed.
///
/// # Panics
///
/// Panics if `temp_width < width` or `width < 2`.
pub fn rtl(width: u32, temp_width: u32) -> Module {
    assert!(width >= 2 && temp_width >= width);
    let mut b = ModuleBuilder::new("alu_rtl");
    let a = b.input("a", width);
    let bi = b.input("b", width);
    let c = b.input("c", width);
    // Stage 1: tmp := a + b at temp_width; c delayed alongside.
    let aw = b.sext(a, temp_width);
    let bw = b.sext(bi, temp_width);
    let sum = b.add(aw, bw);
    let tmp_r = b.reg("tmp", temp_width, Bv::zero(temp_width));
    b.connect_reg(tmp_r, sum);
    let c_r = b.reg("c_r", width, Bv::zero(width));
    b.connect_reg(c_r, c);
    // Stage 2: out := sext(tmp) + sext(c) at width + 1.
    let tq = b.reg_q(tmp_r);
    let cq = b.reg_q(c_r);
    let out_w = width + 1;
    let tqe = b.resize_sext(tq, out_w);
    let cqe = b.sext(cq, out_w);
    let out = b.add(tqe, cqe);
    b.output("out", out);
    b.finish().expect("alu rtl is well formed")
}

/// The transaction spec: inputs applied at cycle 0, output compared at
/// cycle 1 (after the pipeline register).
pub fn equiv_spec() -> EquivSpec {
    EquivSpec::new(2)
        .bind("a", 0, Binding::Slm("a".into()))
        .bind("b", 0, Binding::Slm("b".into()))
        .bind("c", 0, Binding::Slm("c".into()))
        .compare("return", "out", 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_slmir::{elaborate, parse};

    fn check(src: &str, temp_width: u32) -> bool {
        let slm = elaborate(&parse(src).unwrap(), "alu").unwrap();
        let rtl = rtl(8, temp_width);
        dfv_sec::check_equivalence(&slm, &rtl, &equiv_spec())
            .unwrap()
            .outcome
            .is_equivalent()
    }

    #[test]
    fn bit_accurate_slm_matches_narrow_rtl() {
        assert!(check(slm_bit_accurate(), 8));
    }

    #[test]
    fn int_style_slm_diverges_from_narrow_rtl() {
        // The paper's central point: the int-based C model masks the
        // 8-bit overflow, so SEC finds a counterexample.
        assert!(!check(slm_int_style(), 8));
    }

    #[test]
    fn widened_temp_fixes_int_style() {
        // With a 9-bit temporary the RTL no longer overflows and the
        // int-style model agrees (9 bits suffice for a + b).
        assert!(check(slm_int_style(), 9));
    }

    #[test]
    fn reassociated_slm_diverges_regardless_of_rtl_temp() {
        // The reassociated SLM's *own* 8-bit temporary overflows, so it
        // disagrees with the RTL whether the RTL temp is narrow or wide.
        assert!(!check(slm_reassociated(), 8));
        assert!(!check(slm_reassociated(), 9));
    }

    #[test]
    fn counterexample_is_fig1_shaped() {
        let slm = elaborate(&parse(slm_reassociated()).unwrap(), "alu").unwrap();
        let rtl = rtl(8, 8);
        let report = dfv_sec::check_equivalence(&slm, &rtl, &equiv_spec()).unwrap();
        let dfv_sec::EquivOutcome::NotEquivalent(cex) = report.outcome else {
            panic!("expected counterexample");
        };
        // One of the two orders must overflow at 8 bits on this witness.
        let get = |n: &str| {
            cex.slm_inputs
                .iter()
                .find(|(name, _)| name == n)
                .unwrap()
                .1
                .to_i64()
        };
        let (a, b, c) = (get("a"), get("b"), get("c"));
        let ab_overflows = !(-128..=127).contains(&(a + b));
        let bc_overflows = !(-128..=127).contains(&(b + c));
        assert!(ab_overflows || bc_overflows, "witness {a} {b} {c}");
    }
}
