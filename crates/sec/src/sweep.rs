//! SAT sweeping: simulation-guided fraiging of the miter during encoding.
//!
//! The optimizing front-end of the equivalence checker (enabled via
//! [`crate::CheckOptions::sweep`]) runs in three stages:
//!
//! 1. **Word-level rewriting** — both modules are canonicalized by
//!    `dfv_rtl::optimize` (structural hashing / GVN, constant folding,
//!    identity rules) before any literal is allocated, so structurally
//!    different but syntactically convertible logic (`a*b` vs `b*a`)
//!    becomes literally identical and collapses through the bit-blaster's
//!    gate caches.
//! 2. **Simulation-guided candidate detection** (this module) — every
//!    node bit of the miter is fingerprinted under `rounds × 64` random
//!    stimulus patterns using the 64-lane [`LaneSim`]: a node's
//!    lane-transposed limbs *are* 64-pattern signatures, so one batched
//!    run refines candidate equivalence classes 64 patterns at a time
//!    with no per-lane extraction. Bits whose signatures still collide
//!    after every round become merge candidates; everything else is
//!    provably distinguishable and never reaches the solver.
//! 3. **SAT sweeping proper** — during miter encoding, each candidate
//!    bit is proved equal to its class representative with a small
//!    budgeted incremental `solve_budgeted(&[xor], …)` call against the
//!    clauses emitted so far; proven bits are *replaced* by the
//!    representative literal before any consumer encodes, so downstream
//!    cones collapse and the final difference check sees a fraigged
//!    miter.
//!
//! # Soundness
//!
//! A merge happens only after `CNF ∧ (a ≠ b)` is UNSAT, where CNF is the
//! clause set at proof time: the gate definitions of both literals plus
//! the environment-constraint assertions. Clauses are only ever *added*
//! afterwards, so the entailment `CNF ⊨ a = b` persists to the final
//! solve — substituting `b := a` preserves the satisfiability of the
//! difference assertion in both directions, and (because constraints are
//! part of CNF) "equal under constraints" is exactly the equivalence the
//! verdict is relative to. Refuted or budget-exhausted candidates are
//! simply left unmerged; the sweep degrades to the unswept encoding, it
//! never changes a verdict. The `prop_sweep` suite asserts this parity
//! over random module pairs; the claim is also gated in CI.

use std::collections::HashMap;

use dfv_bits::{Bv, SplitMix64};
use dfv_rtl::{LaneSim, Module};
use dfv_sat::{Budget, Lit, SolveResult};

use crate::bitblast::BitBlaster;
use crate::spec::{Binding, EquivSpec, InitState, SecError};

/// Configuration of the sweeping front-end, carried inside
/// [`crate::CheckOptions`]. Disabled by default: sweeping changes no
/// verdict, but it does change the CNF, so opting in is explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Master switch. When false the checker encodes the raw miter.
    pub enabled: bool,
    /// Signature-refinement rounds; each round distinguishes candidates
    /// under 64 fresh random patterns.
    pub rounds: u32,
    /// Conflict budget for each candidate proof. Conflict-only (no
    /// deadline), so sweep decisions — and every derived counter — are
    /// bit-for-bit reproducible across runs and machines.
    pub proof_conflicts: u64,
    /// Cap on the number of candidate proofs attempted per check.
    pub max_proofs: usize,
    /// Seed for the signature stimulus.
    pub seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            enabled: false,
            rounds: 4,
            proof_conflicts: 200,
            max_proofs: 4096,
            seed: 0x5EE9,
        }
    }
}

impl SweepOptions {
    /// The default configuration with sweeping switched on.
    pub fn on() -> Self {
        SweepOptions {
            enabled: true,
            ..SweepOptions::default()
        }
    }
}

/// What the sweep did to one miter, reported in
/// [`crate::EquivReport::sweep`] and mirrored into `sec.sweep.*` obs
/// counters. All counters are deterministic for a fixed input and
/// [`SweepOptions`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Total nodes in both modules before word-level rewriting.
    pub nodes_before: u64,
    /// Total nodes after rewriting (GVN + folding + DCE).
    pub nodes_after: u64,
    /// Candidate equivalence classes that survived signature refinement
    /// (classes with at least two member bits, plus constant classes).
    pub classes: u64,
    /// Candidate bits that reached the prover (a representative literal
    /// existed and differed).
    pub candidates: u64,
    /// Candidates proved equal by a budgeted UNSAT.
    pub proved: u64,
    /// Candidates refuted (SAT) or abandoned (budget exhausted).
    pub refuted: u64,
    /// Literals actually replaced by their representative.
    pub merged_lits: u64,
    /// SAT conflicts spent inside sweep proofs (the overhead side of the
    /// ledger; the final solve's savings are visible in the solver's
    /// cumulative stats).
    pub proof_conflicts: u64,
}

/// Site index of the combinational SLM evaluation.
pub(crate) const SLM_SITE: usize = 0;

/// Site index of RTL cycle `t`.
pub(crate) fn rtl_site(t: u32) -> usize {
    1 + t as usize
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(h: u64, limb: u64) -> u64 {
    (h ^ limb).wrapping_mul(FNV_PRIME)
}

/// How a class obtains its representative literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClassKind {
    /// Signature matched constant 0/1 on every pattern; the
    /// representative is the bit-blaster's false/true literal.
    Const(bool),
    /// Representative is the first member bit reached during encoding.
    Member,
}

/// The sweep engine: signature classes from the analysis phase plus the
/// mutable proof state threaded through the encoding hooks.
pub(crate) struct Sweeper {
    opts: SweepOptions,
    /// `class_of[site][node][bit]` — `u32::MAX` marks a singleton class
    /// (provably distinguishable; never considered).
    class_of: Vec<Vec<Vec<u32>>>,
    kinds: Vec<ClassKind>,
    reprs: Vec<Option<Lit>>,
    proofs_attempted: usize,
    stats: SweepStats,
}

impl Sweeper {
    /// Runs the signature phase: `opts.rounds` batched 64-lane runs of
    /// both (already optimized) modules under binding-consistent random
    /// stimulus, then groups node bits by signature.
    ///
    /// # Errors
    ///
    /// Propagates [`SecError::Rtl`] if a module cannot be lane-simulated
    /// (both were already accepted by `check_module`, so this is
    /// invariant-protected in practice).
    pub(crate) fn analyze(
        slm: &Module,
        rtl: &Module,
        spec: &EquivSpec,
        opts: &SweepOptions,
    ) -> Result<Sweeper, SecError> {
        let k = spec.rtl_cycles;
        let mut sigs: Vec<Vec<Vec<u64>>> = Vec::with_capacity(rtl_site(k));
        sigs.push(per_bit_table(slm));
        for _ in 0..k {
            sigs.push(per_bit_table(rtl));
        }

        let mut slm_sim = LaneSim::new(slm.clone()).map_err(SecError::Rtl)?;
        let mut rtl_sim = LaneSim::new(rtl.clone()).map_err(SecError::Rtl)?;
        let mut binding_at: HashMap<(usize, u32), &Binding> = HashMap::new();
        for (port, cycle, b) in &spec.bindings {
            let idx = rtl.input_index(port).expect("validated");
            binding_at.insert((idx, *cycle), b);
        }
        let mut rng = SplitMix64::new(opts.seed);

        for _ in 0..opts.rounds {
            // One random transaction per lane: SLM inputs drive both the
            // SLM run and every `Binding::Slm`-bound RTL port, exactly
            // mirroring the miter's sharing of input literals.
            let slm_vals: Vec<Vec<Bv>> = slm
                .inputs
                .iter()
                .map(|p| (0..64).map(|_| uniform_bv(&mut rng, p.width)).collect())
                .collect();
            for (idx, p) in slm.inputs.iter().enumerate() {
                for (lane, v) in slm_vals[idx].iter().enumerate() {
                    slm_sim.poke_lane(&p.name, lane, v.clone());
                }
            }
            collect_sigs(&mut slm_sim, slm, &mut sigs[SLM_SITE]);

            rtl_sim.reset();
            if spec.init == InitState::Free {
                // Free-init checks give every register a fresh symbolic
                // word, so signatures must see it as random per lane.
                for r in &rtl.regs {
                    for lane in 0..64 {
                        rtl_sim.set_reg_lane(&r.name, lane, uniform_bv(&mut rng, r.width));
                    }
                }
            }
            for t in 0..k {
                for (i, p) in rtl.inputs.iter().enumerate() {
                    match binding_at.get(&(i, t)) {
                        Some(Binding::Slm(name)) => {
                            let si = slm.input_index(name).expect("validated");
                            for (lane, v) in slm_vals[si].iter().enumerate() {
                                rtl_sim.poke_lane(&p.name, lane, v.clone());
                            }
                        }
                        Some(Binding::SlmSlice { name, hi, lo }) => {
                            let si = slm.input_index(name).expect("validated");
                            for (lane, v) in slm_vals[si].iter().enumerate() {
                                rtl_sim.poke_lane(&p.name, lane, v.slice(*hi, *lo));
                            }
                        }
                        Some(Binding::Const(v)) => rtl_sim.poke_splat(&p.name, v.clone()),
                        Some(Binding::Free) => {
                            for lane in 0..64 {
                                rtl_sim.poke_lane(&p.name, lane, uniform_bv(&mut rng, p.width));
                            }
                        }
                        None => rtl_sim.poke_splat(&p.name, Bv::zero(p.width)),
                    }
                }
                collect_sigs(&mut rtl_sim, rtl, &mut sigs[rtl_site(t)]);
                rtl_sim.step();
            }
        }

        // Class assignment, deterministic in (site, node, bit) order. The
        // constant classes are seeded first so all-0 / all-1 signatures
        // merge toward the bit-blaster's constant literals.
        let sig_false = (0..opts.rounds).fold(FNV_OFFSET, |h, _| fnv_fold(h, 0));
        let sig_true = (0..opts.rounds).fold(FNV_OFFSET, |h, _| fnv_fold(h, u64::MAX));
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for site in &sigs {
            for node in site {
                for &s in node {
                    *counts.entry(s).or_insert(0) += 1;
                }
            }
        }
        let mut class_ids: HashMap<u64, u32> = HashMap::new();
        let mut kinds = vec![ClassKind::Const(false), ClassKind::Const(true)];
        class_ids.insert(sig_false, 0);
        class_ids.insert(sig_true, 1);
        let mut class_of: Vec<Vec<Vec<u32>>> = Vec::with_capacity(sigs.len());
        let mut populated = vec![false; 2];
        for site in &sigs {
            let mut site_classes = Vec::with_capacity(site.len());
            for node in site {
                let mut bits = Vec::with_capacity(node.len());
                for &s in node {
                    let id = match class_ids.get(&s) {
                        Some(&id) => id,
                        None if counts[&s] >= 2 => {
                            let id = kinds.len() as u32;
                            kinds.push(ClassKind::Member);
                            class_ids.insert(s, id);
                            populated.push(false);
                            id
                        }
                        None => u32::MAX,
                    };
                    if id != u32::MAX {
                        populated[id as usize] = true;
                    }
                    bits.push(id);
                }
                site_classes.push(bits);
            }
            class_of.push(site_classes);
        }
        let classes = populated.iter().filter(|&&p| p).count() as u64;
        let reprs = vec![None; kinds.len()];
        Ok(Sweeper {
            opts: *opts,
            class_of,
            kinds,
            reprs,
            proofs_attempted: 0,
            stats: SweepStats {
                classes,
                ..SweepStats::default()
            },
        })
    }

    /// The encoding hook body: inspects one freshly computed node word at
    /// `site`, proves candidate bits against their class representative,
    /// and rewrites proven bits in place.
    pub(crate) fn process_word(
        &mut self,
        bb: &mut BitBlaster<'_>,
        site: usize,
        node: usize,
        word: &mut [Lit],
    ) {
        let budget = Budget::unlimited().with_conflicts(self.opts.proof_conflicts);
        for (bit, lit) in word.iter_mut().enumerate() {
            let c = self.class_of[site][node][bit];
            if c == u32::MAX {
                continue;
            }
            let repr = match self.kinds[c as usize] {
                ClassKind::Const(false) => bb.false_lit(),
                ClassKind::Const(true) => bb.true_lit(),
                ClassKind::Member => match self.reprs[c as usize] {
                    Some(r) => r,
                    None => {
                        self.reprs[c as usize] = Some(*lit);
                        continue;
                    }
                },
            };
            if repr == *lit {
                continue;
            }
            self.stats.candidates += 1;
            if self.proofs_attempted >= self.opts.max_proofs {
                self.stats.refuted += 1;
                continue;
            }
            let diff = bb.xor_gate(*lit, repr);
            if diff == bb.true_lit() {
                // The literals are complements; no proof can merge them.
                self.stats.refuted += 1;
                continue;
            }
            self.proofs_attempted += 1;
            let before = bb.solver().stats().conflicts;
            let res = bb.solver().solve_budgeted(&[diff], &budget);
            self.stats.proof_conflicts += bb.solver().stats().conflicts - before;
            match res {
                SolveResult::Unsat => {
                    self.stats.proved += 1;
                    self.stats.merged_lits += 1;
                    *lit = repr;
                }
                SolveResult::Sat | SolveResult::Unknown(_) => self.stats.refuted += 1,
            }
        }
    }

    pub(crate) fn stats(&self) -> SweepStats {
        self.stats
    }

    pub(crate) fn add_opt_stats(&mut self, before: usize, after: usize) {
        self.stats.nodes_before += before as u64;
        self.stats.nodes_after += after as u64;
    }
}

/// One `u64` accumulator per (node, bit) of `m`, at the FNV offset basis.
fn per_bit_table(m: &Module) -> Vec<Vec<u64>> {
    m.node_widths
        .iter()
        .map(|&w| vec![FNV_OFFSET; w as usize])
        .collect()
}

/// Folds every node's lane-transposed limbs into its per-bit signature
/// accumulators.
fn collect_sigs(sim: &mut LaneSim, m: &Module, sigs: &mut [Vec<u64>]) {
    for id in m.node_ids() {
        let limbs = sim.node_lanes(id);
        let acc = &mut sigs[id.index()];
        for (a, &l) in acc.iter_mut().zip(limbs) {
            *a = fnv_fold(*a, l);
        }
    }
}

/// A uniformly random `Bv` of arbitrary width, 64 bits per chunk.
fn uniform_bv(rng: &mut SplitMix64, width: u32) -> Bv {
    if width <= 64 {
        return Bv::from_u64(width, rng.bits(width));
    }
    let mut v = Bv::from_u64(64, rng.next_u64());
    let mut remaining = width - 64;
    while remaining > 0 {
        let w = remaining.min(64);
        v = Bv::from_u64(w, rng.bits(w)).concat(&v);
        remaining -= w;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_rtl::ModuleBuilder;

    /// Signatures must place equal-function bits in one class and
    /// distinguishable bits in singletons.
    #[test]
    fn signature_classes_group_equal_bits() {
        // y0 = a & b, y1 = b & a (GVN would merge these, but analyze
        // sees whatever module it is given), y2 = a ^ b.
        let mut b = ModuleBuilder::new("slm");
        let a = b.input("a", 8);
        let bi = b.input("b", 8);
        let y0 = b.and(a, bi);
        let y1 = b.and(bi, a);
        let y2 = b.xor(a, bi);
        b.output("y0", y0);
        b.output("y1", y1);
        b.output("y2", y2);
        let slm = b.finish().unwrap();

        // Trivial RTL so a spec can be formed; one pass-through cycle.
        let mut rb = ModuleBuilder::new("rtl");
        let a = rb.input("a", 8);
        rb.output("y", a);
        let rtl = rb.finish().unwrap();
        let spec = EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .compare("y0", "y", 0);

        let sw = Sweeper::analyze(&slm, &rtl, &spec, &SweepOptions::on()).unwrap();
        let and0 = y0;
        let and1 = y1;
        let xor = y2;
        for bit in 0..8 {
            assert_eq!(
                sw.class_of[SLM_SITE][and0.index()][bit],
                sw.class_of[SLM_SITE][and1.index()][bit],
                "bit {bit} of the two AND nodes must share a class"
            );
            assert_ne!(
                sw.class_of[SLM_SITE][and0.index()][bit],
                sw.class_of[SLM_SITE][xor.index()][bit],
                "bit {bit} of AND and XOR must be distinguishable"
            );
        }
        assert!(sw.stats().classes >= 1);
    }

    /// The constant classes match bits that are stuck at 0/1 under all
    /// stimulus.
    #[test]
    fn constant_bits_land_in_constant_classes() {
        let mut b = ModuleBuilder::new("slm");
        let a = b.input("a", 8);
        let zero = b.lit(8, 0);
        let y_and = b.and(a, zero); // always 0
        let ones = b.lit(8, 0xFF);
        let y_or = b.or(a, ones); // always 1
        b.output("z", y_and);
        b.output("o", y_or);
        let slm = b.finish().unwrap();

        let mut rb = ModuleBuilder::new("rtl");
        let a = rb.input("a", 8);
        rb.output("y", a);
        let rtl = rb.finish().unwrap();
        let spec = EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .compare("z", "y", 0);

        let sw = Sweeper::analyze(&slm, &rtl, &spec, &SweepOptions::on()).unwrap();
        for bit in 0..8 {
            assert_eq!(sw.class_of[SLM_SITE][y_and.index()][bit], 0, "stuck-at-0");
            assert_eq!(sw.class_of[SLM_SITE][y_or.index()][bit], 1, "stuck-at-1");
        }
        assert_eq!(sw.kinds[0], ClassKind::Const(false));
        assert_eq!(sw.kinds[1], ClassKind::Const(true));
    }

    /// Signature analysis is deterministic: two runs over the same inputs
    /// produce identical class tables.
    #[test]
    fn analysis_is_deterministic() {
        let mut b = ModuleBuilder::new("slm");
        let a = b.input("a", 16);
        let bi = b.input("b", 16);
        let s = b.add(a, bi);
        let m = b.mul(a, bi);
        let y = b.xor(s, m);
        b.output("y", y);
        let slm = b.finish().unwrap();
        let mut rb = ModuleBuilder::new("rtl");
        let a = rb.input("a", 16);
        rb.output("y", a);
        let rtl = rb.finish().unwrap();
        let spec = EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .compare("y", "y", 0);
        let s1 = Sweeper::analyze(&slm, &rtl, &spec, &SweepOptions::on()).unwrap();
        let s2 = Sweeper::analyze(&slm, &rtl, &spec, &SweepOptions::on()).unwrap();
        assert_eq!(s1.class_of, s2.class_of);
        assert_eq!(s1.stats(), s2.stats());
    }
}
