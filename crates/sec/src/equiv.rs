//! The sequential equivalence checker: miter construction, solving, and
//! validated counterexample extraction.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use dfv_bits::Bv;
use dfv_cosim::{FieldSpec, StimulusGen};
use dfv_obs::{ObsHook, SharedRecorder};
use dfv_rtl::{Module, Simulator};
use dfv_sat::{Budget, ExhaustedReason, Lit, SolveResult, Solver, SolverStats};

use crate::bitblast::{model_word, BitBlaster};
use crate::spec::{Binding, EquivSpec, InitState, SecError};
use crate::sweep::{rtl_site, SweepOptions, SweepStats, Sweeper, SLM_SITE};
use crate::unroll::{eval_comb_symbolic, eval_comb_symbolic_hooked, SymbolicSim};

/// One output disagreement within a counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// SLM output name.
    pub slm_output: String,
    /// RTL output port name.
    pub rtl_output: String,
    /// RTL cycle at which the outputs were compared.
    pub rtl_cycle: u32,
    /// Value the SLM produced.
    pub slm_value: Bv,
    /// Value the RTL produced.
    pub rtl_value: Bv,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {} but {}@cycle{} = {}",
            self.slm_output, self.slm_value, self.rtl_output, self.rtl_cycle, self.rtl_value
        )
    }
}

/// A concrete, *replay-validated* witness that the SLM and RTL disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// SLM input values by name.
    pub slm_inputs: Vec<(String, Bv)>,
    /// RTL input values per cycle (in input-port order, named).
    pub rtl_inputs: Vec<Vec<(String, Bv)>>,
    /// Initial register state (named), for [`InitState::Free`] checks.
    pub initial_regs: Vec<(String, Bv)>,
    /// The disagreeing compare points.
    pub mismatches: Vec<Mismatch>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "counterexample: ")?;
        for (n, v) in &self.slm_inputs {
            write!(f, "{n}={v} ")?;
        }
        write!(f, "=> ")?;
        for m in &self.mismatches {
            write!(f, "[{m}] ")?;
        }
        Ok(())
    }
}

/// What the bounded random-simulation fallback established after a proof
/// budget ran out: not a proof, but quantified negative evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FalsificationSummary {
    /// Constraint-satisfying random transactions replayed without finding a
    /// mismatch.
    pub transactions: u64,
    /// The stimulus seed (rerun with the same seed to reproduce exactly).
    pub seed: u64,
    /// Transaction depth in RTL cycles (the spec's `rtl_cycles`).
    pub rtl_cycles: u32,
}

impl fmt::Display for FalsificationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no counterexample in {} random transactions at depth {} (seed {:#x})",
            self.transactions, self.rtl_cycles, self.seed
        )
    }
}

/// The verdict of an equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivOutcome {
    /// The models agree on every compare point for every input satisfying
    /// the constraints.
    Equivalent,
    /// A validated counterexample was found.
    NotEquivalent(Box<Counterexample>),
    /// The proof budget ran out before the solver reached an answer. When
    /// the check fell back to bounded random simulation (see
    /// [`CheckOptions::fallback_transactions`]), `falsification` quantifies
    /// how much of the input space was sampled without a mismatch.
    Inconclusive {
        /// Which resource ran out.
        reason: ExhaustedReason,
        /// Simulation-fallback evidence, if the fallback ran.
        falsification: Option<FalsificationSummary>,
    },
}

impl EquivOutcome {
    /// Whether the outcome is [`EquivOutcome::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivOutcome::Equivalent)
    }

    /// Whether the outcome is [`EquivOutcome::Inconclusive`].
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, EquivOutcome::Inconclusive { .. })
    }
}

/// Resource limits and degradation policy for one equivalence check.
///
/// The default is an unlimited budget (the solver runs to completion, so
/// the outcome is never [`EquivOutcome::Inconclusive`]) with a 256-
/// transaction simulation fallback should a caller-supplied budget run out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckOptions {
    /// Resource budget for the SAT search.
    pub budget: Budget,
    /// On budget exhaustion, how many constraint-satisfying random
    /// transactions to replay looking for a concrete counterexample.
    /// `0` disables the fallback.
    pub fallback_transactions: u64,
    /// Seed for the fallback stimulus generator.
    pub fallback_seed: u64,
    /// The SAT-sweeping front-end (word-level rewriting, signature
    /// classes, budgeted merge proofs). Off by default; verdict-neutral
    /// when on.
    pub sweep: SweepOptions,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            budget: Budget::unlimited(),
            fallback_transactions: 256,
            fallback_seed: 0xDF5,
            sweep: SweepOptions::default(),
        }
    }
}

impl CheckOptions {
    /// Options with the given budget and the default fallback.
    pub fn with_budget(budget: Budget) -> Self {
        CheckOptions {
            budget,
            ..CheckOptions::default()
        }
    }

    /// The default options with the sweeping front-end enabled.
    pub fn swept() -> Self {
        CheckOptions {
            sweep: SweepOptions::on(),
            ..CheckOptions::default()
        }
    }
}

/// Result of an equivalence check with solver statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivReport {
    /// The verdict.
    pub outcome: EquivOutcome,
    /// CNF variables allocated.
    pub cnf_vars: usize,
    /// CNF clauses generated.
    pub cnf_clauses: usize,
    /// SAT search statistics.
    pub solver_stats: SolverStats,
    /// What the sweeping front-end did, when it was enabled.
    pub sweep: Option<SweepStats>,
    /// Wall-clock time of the whole check.
    pub duration: Duration,
}

/// Checks transaction-level equivalence between a combinational SLM module
/// and a sequential (flat) RTL module under `spec`.
///
/// On a SAT answer, the counterexample is **replayed concretely** on both
/// models before being returned; an inconsistency between the SAT model and
/// the replay would indicate a bit-blasting soundness bug and panics.
///
/// # Errors
///
/// Returns [`SecError`] for invalid specs, non-flat RTL, or oversized
/// memories.
///
/// # Example
///
/// ```
/// use dfv_bits::Bv;
/// use dfv_rtl::ModuleBuilder;
/// use dfv_sec::{check_equivalence, Binding, EquivSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // SLM: y = a + b (9 bits, no overflow).
/// let mut sb = ModuleBuilder::new("slm_add");
/// let a = sb.input("a", 8);
/// let b = sb.input("b", 8);
/// let (aw, bw) = (sb.zext(a, 9), sb.zext(b, 9));
/// let y = sb.add(aw, bw);
/// sb.output("y", y);
/// let slm = sb.finish()?;
///
/// // RTL: one-cycle registered version of the same adder.
/// let mut rb = ModuleBuilder::new("rtl_add");
/// let a = rb.input("a", 8);
/// let b = rb.input("b", 8);
/// let (aw, bw) = (rb.zext(a, 9), rb.zext(b, 9));
/// let sum = rb.add(aw, bw);
/// let r = rb.reg("r", 9, Bv::zero(9));
/// rb.connect_reg(r, sum);
/// let q = rb.reg_q(r);
/// rb.output("y", q);
/// let rtl = rb.finish()?;
///
/// let spec = EquivSpec::new(2)
///     .bind("a", 0, Binding::Slm("a".into()))
///     .bind("b", 0, Binding::Slm("b".into()))
///     .compare("y", "y", 1);
/// let report = check_equivalence(&slm, &rtl, &spec)?;
/// assert!(report.outcome.is_equivalent());
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence(
    slm: &Module,
    rtl: &Module,
    spec: &EquivSpec,
) -> Result<EquivReport, SecError> {
    check_equivalence_with(slm, rtl, spec, &CheckOptions::default())
}

/// Like [`check_equivalence`], but under a resource [`Budget`] with graceful
/// degradation: if the budget runs out before the solver answers, the check
/// falls back to bounded constrained-random simulation (the `dfv-cosim`
/// stimulus machinery) and returns either a *genuine* replay-validated
/// counterexample found by simulation, or
/// [`EquivOutcome::Inconclusive`] carrying a [`FalsificationSummary`] —
/// "no counterexample in N random transactions at depth k" — so a campaign
/// always learns something from the time it spent.
///
/// # Errors
///
/// As [`check_equivalence`].
pub fn check_equivalence_with(
    slm: &Module,
    rtl: &Module,
    spec: &EquivSpec,
    opts: &CheckOptions,
) -> Result<EquivReport, SecError> {
    check_equivalence_inner(slm, rtl, spec, opts, &ObsHook::none())
}

/// Like [`check_equivalence_with`], but streams instrumentation into
/// `rec`: the whole check runs under a `sec.equiv` span, the miter's
/// unroll size lands in the `sec.cnf_vars` / `sec.cnf_clauses` counters,
/// the verdict is recorded as a `sec.outcome` event, and the same
/// recorder is forwarded into the SAT solver so `sat.*` counters
/// accumulate alongside.
///
/// # Errors
///
/// As [`check_equivalence`].
pub fn check_equivalence_observed(
    slm: &Module,
    rtl: &Module,
    spec: &EquivSpec,
    opts: &CheckOptions,
    rec: SharedRecorder,
) -> Result<EquivReport, SecError> {
    check_equivalence_inner(slm, rtl, spec, opts, &ObsHook::attached(rec))
}

fn check_equivalence_inner(
    slm: &Module,
    rtl: &Module,
    spec: &EquivSpec,
    opts: &CheckOptions,
    obs: &ObsHook,
) -> Result<EquivReport, SecError> {
    let start = Instant::now();
    let mut ctx = build_miter(slm, rtl, spec, &opts.sweep)?;
    obs.begin_span("sec.equiv");
    if let Some(rec) = obs.recorder() {
        ctx.solver.set_recorder(rec);
    }
    // Assert that *some* compare point differs: one clause over the diffs.
    let diffs = ctx.diffs.clone();
    ctx.solver.add_clause(&diffs);
    let cnf_vars = ctx.solver.num_vars();
    let cnf_clauses = ctx.solver.num_clauses();
    obs.add("sec.cnf_vars", cnf_vars as u64);
    obs.add("sec.cnf_clauses", cnf_clauses as u64);
    if let Some(s) = &ctx.sweep {
        obs.add("sec.sweep.classes", s.classes);
        obs.add("sec.sweep.candidates", s.candidates);
        obs.add("sec.sweep.proved", s.proved);
        obs.add("sec.sweep.refuted", s.refuted);
        obs.add("sec.sweep.merged_lits", s.merged_lits);
        obs.add("sec.sweep.proof_conflicts", s.proof_conflicts);
        obs.add("sec.sweep.nodes_removed", s.nodes_before - s.nodes_after);
    }
    let outcome = match ctx.solver.solve_budgeted(&[], &opts.budget) {
        SolveResult::Unsat => EquivOutcome::Equivalent,
        SolveResult::Sat => EquivOutcome::NotEquivalent(Box::new(extract_and_replay(
            &ctx.solver,
            slm,
            rtl,
            spec,
            &ctx.slm_words,
            &ctx.free_words,
            &ctx.initial_reg_words,
        ))),
        SolveResult::Unknown(reason) => {
            if opts.fallback_transactions == 0 {
                EquivOutcome::Inconclusive {
                    reason,
                    falsification: None,
                }
            } else {
                match simulate_falsify(
                    slm,
                    rtl,
                    spec,
                    opts.fallback_transactions,
                    opts.fallback_seed,
                ) {
                    Falsification::Found(cex) => EquivOutcome::NotEquivalent(cex),
                    Falsification::NoneFound(summary) => EquivOutcome::Inconclusive {
                        reason,
                        falsification: Some(summary),
                    },
                }
            }
        }
    };
    obs.event("sec.outcome", || match &outcome {
        EquivOutcome::Equivalent => "equivalent".to_string(),
        EquivOutcome::NotEquivalent(cex) => {
            format!("not_equivalent ({} mismatches)", cex.mismatches.len())
        }
        EquivOutcome::Inconclusive {
            reason,
            falsification,
        } => match falsification {
            Some(f) => format!(
                "inconclusive ({reason:?}); no cex in {} simulated transactions",
                f.transactions
            ),
            None => format!("inconclusive ({reason:?})"),
        },
    });
    obs.end_span("sec.equiv");
    Ok(EquivReport {
        outcome,
        cnf_vars,
        cnf_clauses,
        solver_stats: ctx.solver.stats(),
        sweep: ctx.sweep,
        duration: start.elapsed(),
    })
}

/// The verdict for a single compare point of a per-output check.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputVerdict {
    /// The compare point this verdict is for.
    pub compare: crate::ComparePoint,
    /// Equivalent, or a replay-validated counterexample for this output.
    pub outcome: EquivOutcome,
    /// Solve time for this output (shared learning makes later outputs
    /// cheaper).
    pub duration: Duration,
}

/// Result of [`check_equivalence_per_output`].
#[derive(Debug, Clone, PartialEq)]
pub struct PerOutputReport {
    /// One verdict per compare point, in spec order.
    pub verdicts: Vec<OutputVerdict>,
    /// CNF variables allocated (shared across all outputs).
    pub cnf_vars: usize,
    /// What the sweeping front-end did, when it was enabled.
    pub sweep: Option<SweepStats>,
    /// Total wall-clock time.
    pub duration: Duration,
}

impl PerOutputReport {
    /// Whether every output was proven equivalent.
    pub fn all_equivalent(&self) -> bool {
        self.verdicts.iter().all(|v| v.outcome.is_equivalent())
    }
}

/// Like [`check_equivalence`], but checks each compare point *separately*
/// under SAT assumptions on one shared CNF — so the solver's learned clauses
/// carry over between outputs and a divergence is localized to the specific
/// output (and cycle) that disagrees, rather than one global verdict.
///
/// This is the intra-session face of the paper's §4.1 incremental SEC;
/// `dfv-core`'s campaign cache is the cross-run face.
///
/// # Errors
///
/// As [`check_equivalence`].
pub fn check_equivalence_per_output(
    slm: &Module,
    rtl: &Module,
    spec: &EquivSpec,
) -> Result<PerOutputReport, SecError> {
    check_equivalence_per_output_with(slm, rtl, spec, &CheckOptions::default())
}

/// Like [`check_equivalence_per_output`], but each per-output solve runs
/// under `opts.budget`. The budget's conflict/propagation caps apply to
/// each output separately; an absolute `deadline` naturally bounds the
/// whole sweep. An exhausted output gets an
/// [`EquivOutcome::Inconclusive`] verdict (without the simulation fallback
/// — use [`check_equivalence_with`] for that) and the sweep moves on, so
/// one hard output cannot starve the rest of their budget.
///
/// # Errors
///
/// As [`check_equivalence`].
pub fn check_equivalence_per_output_with(
    slm: &Module,
    rtl: &Module,
    spec: &EquivSpec,
    opts: &CheckOptions,
) -> Result<PerOutputReport, SecError> {
    let start = Instant::now();
    let mut ctx = build_miter(slm, rtl, spec, &opts.sweep)?;
    let cnf_vars = ctx.solver.num_vars();
    let mut verdicts = Vec::with_capacity(spec.compares.len());
    for (cp, &diff) in spec.compares.iter().zip(&ctx.diffs) {
        let t0 = Instant::now();
        let outcome = match ctx.solver.solve_budgeted(&[diff], &opts.budget) {
            SolveResult::Unsat => EquivOutcome::Equivalent,
            SolveResult::Sat => EquivOutcome::NotEquivalent(Box::new(extract_and_replay(
                &ctx.solver,
                slm,
                rtl,
                spec,
                &ctx.slm_words,
                &ctx.free_words,
                &ctx.initial_reg_words,
            ))),
            SolveResult::Unknown(reason) => EquivOutcome::Inconclusive {
                reason,
                falsification: None,
            },
        };
        verdicts.push(OutputVerdict {
            compare: cp.clone(),
            outcome,
            duration: t0.elapsed(),
        });
    }
    Ok(PerOutputReport {
        verdicts,
        cnf_vars,
        sweep: ctx.sweep,
        duration: start.elapsed(),
    })
}

/// Everything shared between the one-shot and per-output checkers: the
/// solver holding the encoded miter, one difference literal per compare
/// point (unasserted), and the words needed for counterexample extraction.
struct MiterCtx {
    solver: Solver,
    diffs: Vec<Lit>,
    slm_words: HashMap<String, Vec<Lit>>,
    free_words: HashMap<(usize, u32), Vec<Lit>>,
    initial_reg_words: Vec<Vec<Lit>>,
    sweep: Option<SweepStats>,
}

/// Encodes the miter. With sweeping enabled, both modules are first
/// canonicalized by `dfv_rtl::optimize` and the *optimized* modules are
/// encoded, with the [`Sweeper`]'s per-node hook proving and merging
/// candidate-equal bits as the encoding proceeds (deterministic order:
/// SLM nodes, then RTL cycles 0..k). The optimizer preserves ports,
/// registers, and memories by name and order, so counterexample
/// extraction and concrete replay keep using the caller's original
/// modules.
fn build_miter(
    slm: &Module,
    rtl: &Module,
    spec: &EquivSpec,
    sweep: &SweepOptions,
) -> Result<MiterCtx, SecError> {
    spec.validate(slm, rtl)?;
    dfv_rtl::check_module(slm)?;
    dfv_rtl::check_module(rtl)?;

    // Sweeping stages 1 (word-level rewriting) and 2 (signature classes).
    let mut sweeper = None;
    let optimized = if sweep.enabled {
        let (slm_o, _, _) = dfv_rtl::optimize(slm);
        let (rtl_o, _, _) = dfv_rtl::optimize(rtl);
        let mut sw = Sweeper::analyze(&slm_o, &rtl_o, spec, sweep)?;
        sw.add_opt_stats(
            slm.nodes.len() + rtl.nodes.len(),
            slm_o.nodes.len() + rtl_o.nodes.len(),
        );
        sweeper = Some(sw);
        Some((slm_o, rtl_o))
    } else {
        None
    };
    let (slm, rtl) = match &optimized {
        Some((s, r)) => (s, r),
        None => (slm, rtl),
    };

    let mut solver = Solver::new();
    let mut bb = BitBlaster::new(&mut solver);

    // Symbolic SLM inputs.
    let mut slm_words: HashMap<String, Vec<Lit>> = HashMap::new();
    for p in &slm.inputs {
        let w = bb.fresh_word(p.width);
        slm_words.insert(p.name.clone(), w);
    }
    let slm_input_vec: Vec<Vec<Lit>> = slm
        .inputs
        .iter()
        .map(|p| slm_words[&p.name].clone())
        .collect();

    // Environment constraints. Encoded (and asserted) before any sweep
    // proof runs, so merges are sound relative to the constrained input
    // space — exactly the space the verdict quantifies over.
    for c in &spec.constraints {
        let ins: Vec<Vec<Lit>> = c
            .inputs
            .iter()
            .map(|p| slm_words[&p.name].clone())
            .collect();
        let cyc = eval_comb_symbolic(&mut bb, c, &ins);
        let ok = cyc.output(c, &c.outputs[0].name);
        bb.assert_lit(ok[0]);
    }

    // SLM evaluation.
    let slm_cycle = match sweeper.as_mut() {
        Some(sw) => eval_comb_symbolic_hooked(&mut bb, slm, &slm_input_vec, &mut |bb, n, w| {
            sw.process_word(bb, SLM_SITE, n, w)
        }),
        None => eval_comb_symbolic(&mut bb, slm, &slm_input_vec),
    };

    // RTL unrolling.
    let mut binding_at: HashMap<(usize, u32), &Binding> = HashMap::new();
    for (port, cycle, b) in &spec.bindings {
        let idx = rtl.input_index(port).expect("validated");
        binding_at.insert((idx, *cycle), b);
    }
    let mut sym = SymbolicSim::new(&mut bb, rtl, spec.init)?;
    let initial_reg_words: Vec<Vec<Lit>> = sym.reg_state().to_vec();
    // Free-binding words, recorded for counterexample extraction.
    let mut free_words: HashMap<(usize, u32), Vec<Lit>> = HashMap::new();
    let mut rtl_cycles = Vec::with_capacity(spec.rtl_cycles as usize);
    for t in 0..spec.rtl_cycles {
        let inputs: Vec<Vec<Lit>> = rtl
            .inputs
            .iter()
            .enumerate()
            .map(|(i, p)| match binding_at.get(&(i, t)) {
                Some(Binding::Slm(name)) => slm_words[name].clone(),
                Some(Binding::SlmSlice { name, hi, lo }) => {
                    slm_words[name][*lo as usize..=*hi as usize].to_vec()
                }
                Some(Binding::Const(v)) => bb.constant(v),
                Some(Binding::Free) => {
                    let w = bb.fresh_word(p.width);
                    free_words.insert((i, t), w.clone());
                    w
                }
                None => bb.constant(&Bv::zero(p.width)),
            })
            .collect();
        rtl_cycles.push(match sweeper.as_mut() {
            Some(sw) => sym.step_hooked(&mut bb, &inputs, &mut |bb, n, w| {
                sw.process_word(bb, rtl_site(t), n, w)
            }),
            None => sym.step(&mut bb, &inputs),
        });
    }

    // One (unasserted) difference literal per compare point.
    let mut diffs = Vec::with_capacity(spec.compares.len());
    for cp in &spec.compares {
        let mut s = slm_cycle.output(slm, &cp.slm_output);
        if let Some((hi, lo)) = cp.slm_slice {
            s = s[lo as usize..=hi as usize].to_vec();
        }
        let r = rtl_cycles[cp.rtl_cycle as usize].output(rtl, &cp.rtl_output);
        let eq = bb.eq_word(&s, &r);
        diffs.push(!eq);
    }
    drop(bb);
    Ok(MiterCtx {
        solver,
        diffs,
        slm_words,
        free_words,
        initial_reg_words,
        sweep: sweeper.map(|s| s.stats()),
    })
}

/// Builds the concrete per-cycle RTL input vectors for given SLM input
/// values, asking `free_value` for each [`Binding::Free`] port/cycle.
///
/// The `expect("validated")` / map-indexing here is invariant-protected:
/// `spec.validate` (run by `build_miter` before any caller reaches this)
/// guarantees every bound port exists on the RTL and every `Binding::Slm`
/// name is an SLM input.
fn concretize_rtl_inputs(
    rtl: &Module,
    spec: &EquivSpec,
    slm_map: &HashMap<&str, &Bv>,
    mut free_value: impl FnMut(usize, u32, u32) -> Bv,
) -> Vec<Vec<(String, Bv)>> {
    let mut binding_at: HashMap<(usize, u32), &Binding> = HashMap::new();
    for (port, cycle, b) in &spec.bindings {
        binding_at.insert((rtl.input_index(port).expect("validated"), *cycle), b);
    }
    (0..spec.rtl_cycles)
        .map(|t| {
            rtl.inputs
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let v = match binding_at.get(&(i, t)) {
                        Some(Binding::Slm(name)) => slm_map[name.as_str()].clone(),
                        Some(Binding::SlmSlice { name, hi, lo }) => {
                            slm_map[name.as_str()].slice(*hi, *lo)
                        }
                        Some(Binding::Const(v)) => v.clone(),
                        Some(Binding::Free) => free_value(i, t, p.width),
                        None => Bv::zero(p.width),
                    };
                    (p.name.clone(), v)
                })
                .collect()
        })
        .collect()
}

/// Concretely replays one transaction on both simulators and collects the
/// compare-point mismatches (empty = the models agreed on this input).
///
/// `Simulator::new` only fails on malformed modules; both modules were
/// already accepted by `check_module` in `build_miter`, so the `expect`s
/// are invariant-protected.
fn replay_mismatches(
    slm: &Module,
    rtl: &Module,
    spec: &EquivSpec,
    slm_inputs: &[(String, Bv)],
    rtl_inputs: &[Vec<(String, Bv)>],
    initial_regs: &[(String, Bv)],
) -> Vec<Mismatch> {
    // Replay the SLM.
    let mut slm_sim = Simulator::new(slm.clone()).expect("validated slm");
    let slm_in_refs: Vec<(&str, Bv)> = slm_inputs
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    let slm_outs = slm_sim.eval_comb(&slm_in_refs);

    // Replay the RTL.
    let mut rtl_sim = Simulator::new(rtl.clone()).expect("validated rtl");
    if spec.init == InitState::Free {
        for (name, v) in initial_regs {
            rtl_sim.set_reg(name, v.clone());
        }
    }
    let mut sampled: HashMap<(String, u32), Bv> = HashMap::new();
    for (t, cycle_inputs) in rtl_inputs.iter().enumerate() {
        for (name, v) in cycle_inputs {
            rtl_sim.poke(name, v.clone());
        }
        for cp in &spec.compares {
            if cp.rtl_cycle == t as u32 {
                let v = rtl_sim.output(&cp.rtl_output);
                sampled.insert((cp.rtl_output.clone(), cp.rtl_cycle), v);
            }
        }
        rtl_sim.step();
    }

    let mut mismatches = Vec::new();
    for cp in &spec.compares {
        let mut sv = slm_outs[&cp.slm_output].clone();
        if let Some((hi, lo)) = cp.slm_slice {
            sv = sv.slice(hi, lo);
        }
        let rv = sampled[&(cp.rtl_output.clone(), cp.rtl_cycle)].clone();
        if sv != rv {
            mismatches.push(Mismatch {
                slm_output: cp.slm_output.clone(),
                rtl_output: cp.rtl_output.clone(),
                rtl_cycle: cp.rtl_cycle,
                slm_value: sv,
                rtl_value: rv,
            });
        }
    }
    mismatches
}

/// Reads the SAT model, replays it concretely on both models, and verifies
/// that the replay reproduces a mismatch.
fn extract_and_replay(
    solver: &Solver,
    slm: &Module,
    rtl: &Module,
    spec: &EquivSpec,
    slm_words: &HashMap<String, Vec<Lit>>,
    free_words: &HashMap<(usize, u32), Vec<Lit>>,
    initial_reg_words: &[Vec<Lit>],
) -> Counterexample {
    let slm_inputs: Vec<(String, Bv)> = slm
        .inputs
        .iter()
        .map(|p| (p.name.clone(), model_word(solver, &slm_words[&p.name])))
        .collect();
    let slm_map: HashMap<&str, &Bv> = slm_inputs.iter().map(|(n, v)| (n.as_str(), v)).collect();
    let rtl_inputs = concretize_rtl_inputs(rtl, spec, &slm_map, |i, t, _| {
        model_word(solver, &free_words[&(i, t)])
    });
    let initial_regs: Vec<(String, Bv)> = rtl
        .regs
        .iter()
        .zip(initial_reg_words)
        .map(|(r, w)| (r.name.clone(), model_word(solver, w)))
        .collect();

    let mismatches = replay_mismatches(slm, rtl, spec, &slm_inputs, &rtl_inputs, &initial_regs);
    // Not invariant-protected so much as soundness-checked: a SAT model
    // that fails to replay means the bit-blasted encoding diverged from the
    // simulators, which must never be reported as a "counterexample".
    assert!(
        !mismatches.is_empty(),
        "SAT model did not replay to a concrete mismatch: bit-blasting soundness bug"
    );
    Counterexample {
        slm_inputs,
        rtl_inputs,
        initial_regs,
        mismatches,
    }
}

/// The result of the bounded random-simulation fallback.
enum Falsification {
    /// Simulation found a real, replay-validated mismatch.
    Found(Box<Counterexample>),
    /// All replayed transactions agreed.
    NoneFound(FalsificationSummary),
}

/// Replays up to `transactions` constraint-satisfying random transactions
/// on both models, looking for a concrete mismatch — the degradation path
/// when the proof budget runs out. Draws that violate an environment
/// constraint are discarded (bounded at 16 draws per accepted transaction,
/// so adversarially tight constraints degrade coverage, never hang).
fn simulate_falsify(
    slm: &Module,
    rtl: &Module,
    spec: &EquivSpec,
    transactions: u64,
    seed: u64,
) -> Falsification {
    // One stimulus field per SLM input, per free RTL binding, and (for
    // free-init checks) per register. The prefixes keep the namespaces
    // apart; port names cannot contain spaces.
    let mut gen = StimulusGen::new(seed);
    for p in &slm.inputs {
        gen = gen.field(
            &format!("in {}", p.name),
            FieldSpec::Uniform { width: p.width },
        );
    }
    for (port, cycle, b) in &spec.bindings {
        if matches!(b, Binding::Free) {
            let idx = rtl.input_index(port).expect("validated");
            gen = gen.field(
                &format!("free {idx} {cycle}"),
                FieldSpec::Uniform {
                    width: rtl.inputs[idx].width,
                },
            );
        }
    }
    if spec.init == InitState::Free {
        for r in &rtl.regs {
            gen = gen.field(
                &format!("reg {}", r.name),
                FieldSpec::Uniform { width: r.width },
            );
        }
    }
    // Constraint modules are validated combinational by `spec.validate`.
    let mut constraint_sims: Vec<Simulator> = spec
        .constraints
        .iter()
        .map(|c| Simulator::new(c.clone()).expect("validated constraint"))
        .collect();

    let mut replayed = 0u64;
    let max_draws = transactions.saturating_mul(16);
    let mut draws = 0u64;
    while replayed < transactions && draws < max_draws {
        draws += 1;
        let txn = gen.next_transaction();
        let slm_inputs: Vec<(String, Bv)> = slm
            .inputs
            .iter()
            .map(|p| (p.name.clone(), txn[&format!("in {}", p.name)].clone()))
            .collect();
        let slm_map: HashMap<&str, &Bv> = slm_inputs.iter().map(|(n, v)| (n.as_str(), v)).collect();

        // Reject draws that violate an environment constraint.
        let ok = constraint_sims
            .iter_mut()
            .zip(&spec.constraints)
            .all(|(sim, c)| {
                let ins: Vec<(&str, Bv)> = c
                    .inputs
                    .iter()
                    .map(|p| (p.name.as_str(), (*slm_map[p.name.as_str()]).clone()))
                    .collect();
                sim.eval_comb(&ins)[&c.outputs[0].name].bit(0)
            });
        if !ok {
            continue;
        }
        replayed += 1;

        let rtl_inputs = concretize_rtl_inputs(rtl, spec, &slm_map, |i, t, _| {
            txn[&format!("free {i} {t}")].clone()
        });
        let initial_regs: Vec<(String, Bv)> = if spec.init == InitState::Free {
            rtl.regs
                .iter()
                .map(|r| (r.name.clone(), txn[&format!("reg {}", r.name)].clone()))
                .collect()
        } else {
            Vec::new()
        };
        let mismatches = replay_mismatches(slm, rtl, spec, &slm_inputs, &rtl_inputs, &initial_regs);
        if !mismatches.is_empty() {
            return Falsification::Found(Box::new(Counterexample {
                slm_inputs,
                rtl_inputs,
                initial_regs,
                mismatches,
            }));
        }
    }
    Falsification::NoneFound(FalsificationSummary {
        transactions: replayed,
        seed,
        rtl_cycles: spec.rtl_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_rtl::ModuleBuilder;

    /// SLM for Fig 1: out = sext(b + c) + sext(a), computed with an 8-bit
    /// temporary — the "correct" ordering per the golden model.
    fn fig1_slm(order_bc: bool) -> Module {
        let name = if order_bc { "slm_bc" } else { "slm_ab" };
        let mut b = ModuleBuilder::new(name);
        let a = b.input("a", 8);
        let bi = b.input("b", 8);
        let c = b.input("c", 8);
        let (x, y, z) = if order_bc { (bi, c, a) } else { (a, bi, c) };
        let tmp = b.add(x, y);
        let tw = b.sext(tmp, 9);
        let zw = b.sext(z, 9);
        let out = b.add(tw, zw);
        b.output("out", out);
        b.finish().unwrap()
    }

    /// Registered RTL computing (a + b) + c with an 8-bit tmp over 2 cycles.
    fn fig1_rtl() -> Module {
        let mut b = ModuleBuilder::new("rtl_ab");
        let a = b.input("a", 8);
        let bi = b.input("b", 8);
        let c = b.input("c", 8);
        let tmp_r = b.reg("tmp", 8, Bv::zero(8));
        let c_r = b.reg("c_r", 8, Bv::zero(8));
        let sum = b.add(a, bi);
        b.connect_reg(tmp_r, sum);
        b.connect_reg(c_r, c);
        let tq = b.reg_q(tmp_r);
        let cq = b.reg_q(c_r);
        let tw = b.sext(tq, 9);
        let cw = b.sext(cq, 9);
        let out = b.add(tw, cw);
        b.output("out", out);
        b.finish().unwrap()
    }

    fn fig1_spec() -> EquivSpec {
        EquivSpec::new(2)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("b", 0, Binding::Slm("b".into()))
            .bind("c", 0, Binding::Slm("c".into()))
            .compare("out", "out", 1)
    }

    #[test]
    fn instrumented_check_runs_on_a_worker_thread() {
        // The whole proof stack (miter build, bit-blast, budgeted CDCL,
        // recorder handle) is Send: an observed check can be dispatched to
        // a scheduler worker and stream into a recorder owned elsewhere.
        use dfv_obs::MemoryRecorder;
        let rec = MemoryRecorder::shared();
        let handle: dfv_obs::SharedRecorder = rec.clone();
        let report = std::thread::spawn(move || {
            check_equivalence_observed(
                &fig1_slm(false),
                &fig1_rtl(),
                &fig1_spec(),
                &CheckOptions::default(),
                handle,
            )
        })
        .join()
        .unwrap()
        .unwrap();
        assert!(report.outcome.is_equivalent());
        let m = rec.lock().unwrap();
        assert_eq!(m.events_of("sec.outcome"), vec!["equivalent"]);
    }

    #[test]
    fn observed_equivalence_records_unroll_size_and_outcome() {
        use dfv_obs::MemoryRecorder;
        let rec = MemoryRecorder::shared();
        let report = check_equivalence_observed(
            &fig1_slm(false),
            &fig1_rtl(),
            &fig1_spec(),
            &CheckOptions::default(),
            rec.clone(),
        )
        .unwrap();
        assert!(report.outcome.is_equivalent());
        let m = rec.lock().unwrap();
        assert_eq!(m.counter("sec.cnf_vars"), report.cnf_vars as u64);
        assert_eq!(m.counter("sec.cnf_clauses"), report.cnf_clauses as u64);
        assert_eq!(m.events_of("sec.outcome"), vec!["equivalent"]);
        // The forwarded recorder also sees the solver itself: any counter
        // deltas it records are bounded by the solver's cumulative stats
        // (this fixture's miter can even simplify to unsat while clauses
        // are *added*, in which case the solve call records nothing).
        assert!(m.counter("sat.propagations") <= report.solver_stats.propagations);

        let rec = MemoryRecorder::shared();
        let report = check_equivalence_observed(
            &fig1_slm(true),
            &fig1_rtl(),
            &fig1_spec(),
            &CheckOptions::default(),
            rec.clone(),
        )
        .unwrap();
        assert!(!report.outcome.is_equivalent());
        let m = rec.lock().unwrap();
        let events = m.events_of("sec.outcome");
        assert_eq!(events.len(), 1);
        assert!(events[0].starts_with("not_equivalent"), "{}", events[0]);
    }

    #[test]
    fn fig1_same_order_is_equivalent() {
        let report = check_equivalence(&fig1_slm(false), &fig1_rtl(), &fig1_spec()).unwrap();
        assert!(report.outcome.is_equivalent(), "{:?}", report.outcome);
        assert!(report.cnf_vars > 0);
    }

    #[test]
    fn fig1_reassociated_order_is_caught() {
        // The paper's Figure 1: with an 8-bit temporary, (b+c)+a differs
        // from (a+b)+c. The checker must produce a concrete witness.
        let report = check_equivalence(&fig1_slm(true), &fig1_rtl(), &fig1_spec()).unwrap();
        match report.outcome {
            EquivOutcome::NotEquivalent(cex) => {
                assert_eq!(cex.mismatches.len(), 1);
                assert_eq!(cex.slm_inputs.len(), 3);
                // Replay validation already ran inside the checker; check
                // the witness exhibits an overflow in one of the temps.
                let get = |n: &str| {
                    cex.slm_inputs
                        .iter()
                        .find(|(name, _)| name == n)
                        .unwrap()
                        .1
                        .clone()
                };
                let (a, b, c) = (get("a"), get("b"), get("c"));
                let l = a.wrapping_add(&b).sext(9).wrapping_add(&c.sext(9));
                let r = b.wrapping_add(&c).sext(9).wrapping_add(&a.sext(9));
                assert_ne!(l, r);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn fig1_widened_temp_fixes_reassociation() {
        // With a 9-bit temporary (the paper's fix), both orders agree.
        let mut b = ModuleBuilder::new("slm_wide");
        let a = b.input("a", 8);
        let bi = b.input("b", 8);
        let c = b.input("c", 8);
        let bw = b.sext(bi, 10);
        let cw = b.sext(c, 10);
        let aw = b.sext(a, 10);
        let t = b.add(bw, cw);
        let out10 = b.add(t, aw);
        let out = b.trunc(out10, 9);
        b.output("out", out);
        let slm = b.finish().unwrap();

        let mut rb = ModuleBuilder::new("rtl_wide");
        let a = rb.input("a", 8);
        let bi = rb.input("b", 8);
        let c = rb.input("c", 8);
        let aw = rb.sext(a, 10);
        let bw = rb.sext(bi, 10);
        let cw = rb.sext(c, 10);
        let s1 = rb.add(aw, bw);
        let tmp_r = rb.reg("tmp", 10, Bv::zero(10));
        rb.connect_reg(tmp_r, s1);
        let c_r = rb.reg("c_r", 10, Bv::zero(10));
        rb.connect_reg(c_r, cw);
        let tq = rb.reg_q(tmp_r);
        let cq = rb.reg_q(c_r);
        let out10 = rb.add(tq, cq);
        let out = rb.trunc(out10, 9);
        rb.output("out", out);
        let rtl = rb.finish().unwrap();

        let report = check_equivalence(&slm, &rtl, &fig1_spec()).unwrap();
        assert!(report.outcome.is_equivalent(), "{:?}", report.outcome);
    }

    #[test]
    fn constraint_masks_divergence() {
        // SLM and RTL disagree only when a == 0xFF (RTL has a bug there);
        // constraining a != 0xFF makes them equivalent (paper §3.1.2's
        // input-space constraining, applied to an integer corner case).
        let mut sb = ModuleBuilder::new("slm");
        let a = sb.input("a", 8);
        let one = sb.lit(8, 1);
        let y = sb.add(a, one);
        sb.output("y", y);
        let slm = sb.finish().unwrap();

        let mut rb = ModuleBuilder::new("rtl");
        let a = rb.input("a", 8);
        let one = rb.lit(8, 1);
        let sum = rb.add(a, one);
        let ff = rb.lit(8, 0xFF);
        let is_ff = rb.eq(a, ff);
        let zero = rb.lit(8, 0x42); // wrong wraparound behaviour
        let y = rb.mux(is_ff, zero, sum);
        let r = rb.reg("r", 8, Bv::zero(8));
        rb.connect_reg(r, y);
        let q = rb.reg_q(r);
        rb.output("y", q);
        let rtl = rb.finish().unwrap();

        let spec = EquivSpec::new(2)
            .bind("a", 0, Binding::Slm("a".into()))
            .compare("y", "y", 1);
        let report = check_equivalence(&slm, &rtl, &spec).unwrap();
        match &report.outcome {
            EquivOutcome::NotEquivalent(cex) => {
                assert_eq!(cex.slm_inputs[0].1.to_u64(), 0xFF);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }

        // Now constrain a != 0xFF.
        let mut cb = ModuleBuilder::new("no_ff");
        let a = cb.input("a", 8);
        let ff = cb.lit(8, 0xFF);
        let ok = cb.ne(a, ff);
        cb.output("ok", ok);
        let constraint = cb.finish().unwrap();
        let spec = spec.constrain(constraint);
        let report = check_equivalence(&slm, &rtl, &spec).unwrap();
        assert!(report.outcome.is_equivalent());
    }

    #[test]
    fn free_binding_checks_all_environments() {
        // RTL output depends on a "mode" pin the SLM doesn't model: with a
        // Free binding the checker must find the bad mode value.
        let mut sb = ModuleBuilder::new("slm");
        let a = sb.input("a", 8);
        sb.output("y", a);
        let slm = sb.finish().unwrap();

        let mut rb = ModuleBuilder::new("rtl");
        let a = rb.input("a", 8);
        let mode = rb.input("mode", 1);
        let na = rb.not(a);
        let y = rb.mux(mode, na, a);
        rb.output("y", y);
        let rtl = rb.finish().unwrap();

        let spec = EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("mode", 0, Binding::Free)
            .compare("y", "y", 0);
        let report = check_equivalence(&slm, &rtl, &spec).unwrap();
        assert!(!report.outcome.is_equivalent());

        // Tying the mode off makes them equivalent.
        let spec = EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("mode", 0, Binding::Const(Bv::zero(1)))
            .compare("y", "y", 0);
        let report = check_equivalence(&slm, &rtl, &spec).unwrap();
        assert!(report.outcome.is_equivalent());
    }

    /// A deliberately hard miter: two structurally different 16×16→32
    /// multipliers (`a*b` vs `b*a`). Proving commutativity of a bit-blasted
    /// multiplier is notoriously expensive for CDCL, so tiny budgets
    /// reliably exhaust — while the models are genuinely equivalent, so the
    /// simulation fallback finds no counterexample.
    fn hard_pair() -> (Module, Module, EquivSpec) {
        let mut sb = ModuleBuilder::new("slm_mul");
        let a = sb.input("a", 16);
        let b = sb.input("b", 16);
        let (aw, bw) = (sb.zext(a, 32), sb.zext(b, 32));
        let y = sb.mul(aw, bw);
        sb.output("y", y);
        let slm = sb.finish().unwrap();

        let mut rb = ModuleBuilder::new("rtl_mul");
        let a = rb.input("a", 16);
        let b = rb.input("b", 16);
        let (aw, bw) = (rb.zext(a, 32), rb.zext(b, 32));
        let y = rb.mul(bw, aw);
        rb.output("y", y);
        let rtl = rb.finish().unwrap();

        let spec = EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("b", 0, Binding::Slm("b".into()))
            .compare("y", "y", 0);
        (slm, rtl, spec)
    }

    #[test]
    fn sweep_collapses_multiplier_commutativity() {
        // Unswept, proving a*b == b*a for 16-bit operands is out of reach
        // for CDCL (the budgeted tests below rely on that). The sweeping
        // front-end's commutative GVN canonicalizes both multipliers to
        // the same operand order, the shared input literals make the two
        // cones literally identical through the gate caches, and the
        // difference folds to constant false — Equivalent in milliseconds
        // with (near) zero conflicts.
        let (slm, rtl, spec) = hard_pair();
        let report = check_equivalence_with(&slm, &rtl, &spec, &CheckOptions::swept()).unwrap();
        assert!(report.outcome.is_equivalent(), "{:?}", report.outcome);
        let sweep = report.sweep.expect("sweep ran");
        assert!(sweep.nodes_after <= sweep.nodes_before);
        assert!(
            report.solver_stats.conflicts < 100,
            "canonicalized miter must be trivial, got {} conflicts",
            report.solver_stats.conflicts
        );
    }

    #[test]
    fn sweep_preserves_verdicts_on_fig1() {
        // Same verdict with and without the front-end, on both the
        // equivalent and the inequivalent orderings; the counterexample
        // must land on the same compare point and replay concretely
        // (extract_and_replay already asserts the replay).
        for order_bc in [false, true] {
            let slm = fig1_slm(order_bc);
            let rtl = fig1_rtl();
            let off = check_equivalence(&slm, &rtl, &fig1_spec()).unwrap();
            let on =
                check_equivalence_with(&slm, &rtl, &fig1_spec(), &CheckOptions::swept()).unwrap();
            assert_eq!(off.outcome.is_equivalent(), on.outcome.is_equivalent());
            assert!(on.sweep.is_some());
            assert!(off.sweep.is_none());
            if let (EquivOutcome::NotEquivalent(a), EquivOutcome::NotEquivalent(b)) =
                (&off.outcome, &on.outcome)
            {
                assert_eq!(a.mismatches[0].slm_output, b.mismatches[0].slm_output);
                assert_eq!(a.mismatches[0].rtl_cycle, b.mismatches[0].rtl_cycle);
            }
        }
    }

    #[test]
    fn sweep_respects_constraints_and_free_bindings() {
        // A Free-bound mode pin flips the output; sweeping must still
        // find the bad mode (signatures randomize free bindings, proofs
        // run under the same constraint clauses).
        let mut sb = ModuleBuilder::new("slm");
        let a = sb.input("a", 8);
        sb.output("y", a);
        let slm = sb.finish().unwrap();

        let mut rb = ModuleBuilder::new("rtl");
        let a = rb.input("a", 8);
        let mode = rb.input("mode", 1);
        let na = rb.not(a);
        let y = rb.mux(mode, na, a);
        rb.output("y", y);
        let rtl = rb.finish().unwrap();

        let spec = EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("mode", 0, Binding::Free)
            .compare("y", "y", 0);
        let report = check_equivalence_with(&slm, &rtl, &spec, &CheckOptions::swept()).unwrap();
        assert!(!report.outcome.is_equivalent());

        let spec = EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("mode", 0, Binding::Const(Bv::zero(1)))
            .compare("y", "y", 0);
        let report = check_equivalence_with(&slm, &rtl, &spec, &CheckOptions::swept()).unwrap();
        assert!(report.outcome.is_equivalent());
    }

    #[test]
    fn tiny_budget_yields_inconclusive_with_falsification() {
        let (slm, rtl, spec) = hard_pair();
        let opts = CheckOptions {
            budget: Budget::unlimited().with_conflicts(100),
            fallback_transactions: 64,
            fallback_seed: 7,
            ..CheckOptions::default()
        };
        let started = Instant::now();
        let report = check_equivalence_with(&slm, &rtl, &spec, &opts).unwrap();
        match report.outcome {
            EquivOutcome::Inconclusive {
                reason,
                falsification: Some(f),
            } => {
                assert_eq!(reason, ExhaustedReason::Conflicts);
                assert_eq!(f.transactions, 64);
                assert_eq!(f.seed, 7);
                assert_eq!(f.rtl_cycles, 1);
                assert!(f.to_string().contains("64 random transactions"));
            }
            other => panic!("expected inconclusive with fallback, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "budgeted check must return in bounded time"
        );
    }

    #[test]
    fn deadline_budget_yields_inconclusive() {
        let (slm, rtl, spec) = hard_pair();
        let opts = CheckOptions {
            budget: Budget::unlimited().with_timeout(Duration::from_millis(1)),
            fallback_transactions: 0,
            fallback_seed: 0,
            ..CheckOptions::default()
        };
        let report = check_equivalence_with(&slm, &rtl, &spec, &opts).unwrap();
        assert_eq!(
            report.outcome,
            EquivOutcome::Inconclusive {
                reason: ExhaustedReason::Deadline,
                falsification: None,
            }
        );
    }

    #[test]
    fn fallback_simulation_finds_real_bugs() {
        // y = a vs y = !a differ everywhere, so even with a zero-conflict
        // proof budget the random fallback must produce a *validated*
        // counterexample, not an Inconclusive.
        let mut sb = ModuleBuilder::new("slm");
        let a = sb.input("a", 8);
        sb.output("y", a);
        let slm = sb.finish().unwrap();

        let mut rb = ModuleBuilder::new("rtl");
        let a = rb.input("a", 8);
        let y = rb.not(a);
        rb.output("y", y);
        let rtl = rb.finish().unwrap();

        let spec = EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .compare("y", "y", 0);
        let opts = CheckOptions {
            budget: Budget::unlimited().with_conflicts(0),
            fallback_transactions: 32,
            fallback_seed: 1,
            ..CheckOptions::default()
        };
        let report = check_equivalence_with(&slm, &rtl, &spec, &opts).unwrap();
        match report.outcome {
            EquivOutcome::NotEquivalent(cex) => {
                assert_eq!(cex.mismatches.len(), 1);
                let (_, av) = &cex.slm_inputs[0];
                assert_eq!(cex.mismatches[0].slm_value, *av);
            }
            other => panic!("expected simulation-found counterexample, got {other:?}"),
        }
    }

    #[test]
    fn fallback_respects_constraints() {
        // The models differ only at a == 0; a constraint excludes that
        // value, so the fallback must never report the constrained-away
        // mismatch.
        let mut sb = ModuleBuilder::new("slm");
        let a = sb.input("a", 2);
        sb.output("y", a);
        let slm = sb.finish().unwrap();

        let mut rb = ModuleBuilder::new("rtl");
        let a = rb.input("a", 2);
        let zero = rb.lit(2, 0);
        let is_zero = rb.eq(a, zero);
        let three = rb.lit(2, 3);
        let y = rb.mux(is_zero, three, a);
        rb.output("y", y);
        let rtl = rb.finish().unwrap();

        let mut cb = ModuleBuilder::new("nonzero");
        let a = cb.input("a", 2);
        let zero = cb.lit(2, 0);
        let ok = cb.ne(a, zero);
        cb.output("ok", ok);
        let constraint = cb.finish().unwrap();

        let spec = EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .compare("y", "y", 0)
            .constrain(constraint);
        let opts = CheckOptions {
            budget: Budget::unlimited().with_conflicts(0),
            fallback_transactions: 200,
            fallback_seed: 3,
            ..CheckOptions::default()
        };
        let report = check_equivalence_with(&slm, &rtl, &spec, &opts).unwrap();
        match report.outcome {
            EquivOutcome::Inconclusive {
                falsification: Some(f),
                ..
            } => assert!(f.transactions > 0, "some draws must satisfy a != 0"),
            other => panic!("expected inconclusive, got {other:?}"),
        }
    }

    #[test]
    fn per_output_budget_localizes_exhaustion() {
        // One easy output (pass-through) and one hard output (multiplier
        // commutativity): under a tiny budget the easy one still proves,
        // only the hard one is inconclusive.
        let mut sb = ModuleBuilder::new("slm");
        let a = sb.input("a", 16);
        let b = sb.input("b", 16);
        let (aw, bw) = (sb.zext(a, 32), sb.zext(b, 32));
        let p = sb.mul(aw, bw);
        sb.output("p", p);
        sb.output("pass", a);
        let slm = sb.finish().unwrap();

        let mut rb = ModuleBuilder::new("rtl");
        let a = rb.input("a", 16);
        let b = rb.input("b", 16);
        let (aw, bw) = (rb.zext(a, 32), rb.zext(b, 32));
        let p = rb.mul(bw, aw);
        rb.output("p", p);
        rb.output("pass", a);
        let rtl = rb.finish().unwrap();

        let spec = EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("b", 0, Binding::Slm("b".into()))
            .compare("pass", "pass", 0)
            .compare("p", "p", 0);
        let opts = CheckOptions::with_budget(Budget::unlimited().with_conflicts(50));
        let report = check_equivalence_per_output_with(&slm, &rtl, &spec, &opts).unwrap();
        assert_eq!(report.verdicts.len(), 2);
        assert!(report.verdicts[0].outcome.is_equivalent());
        assert!(report.verdicts[1].outcome.is_inconclusive());
        assert!(!report.all_equivalent());
    }

    #[test]
    fn unlimited_budget_never_inconclusive() {
        let report = check_equivalence_with(
            &fig1_slm(false),
            &fig1_rtl(),
            &fig1_spec(),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(report.outcome.is_equivalent());
    }

    #[test]
    fn spec_validation_errors() {
        let slm = fig1_slm(false);
        let rtl = fig1_rtl();
        let bad =
            EquivSpec::new(2)
                .compare("out", "out", 1)
                .bind("nope", 0, Binding::Slm("a".into()));
        assert!(matches!(
            check_equivalence(&slm, &rtl, &bad),
            Err(SecError::Spec(_))
        ));
        let bad2 = EquivSpec::new(2); // no compares
        assert!(matches!(
            check_equivalence(&slm, &rtl, &bad2),
            Err(SecError::Spec(_))
        ));
        let bad3 = fig1_spec().compare("out", "out", 7); // cycle out of range
        assert!(matches!(
            check_equivalence(&slm, &rtl, &bad3),
            Err(SecError::Spec(_))
        ));
    }
}
