//! Sequential equivalence checking (SEC) between system-level models and
//! RTL, plus bounded model checking — the from-scratch replacement for the
//! commercial SEC tooling the paper (DAC 2007, §2) builds its methodology
//! on.
//!
//! The flow: a *combinational* SLM module (produced from conditioned SLM-C
//! source by `dfv-slmir`'s elaborator) is compared against a sequential RTL
//! module over one *transaction* — `k` RTL cycles with an explicit input
//! mapping and output sample points ([`EquivSpec`]). Both sides are
//! symbolically evaluated into SAT literals (`dfv-sat`), a miter asserts
//! some compare point differs, and:
//!
//! * **UNSAT** proves the models equivalent for *all* inputs satisfying the
//!   constraints — the paper's "transfer the high level of confidence in
//!   the functional correctness of the SLM to the RTL blocks";
//! * **SAT** yields a counterexample, which the checker *replays
//!   concretely* on both simulators before returning it, so every reported
//!   divergence is a real, reproducible one.
//!
//! See [`check_equivalence`] for an end-to-end example and
//! [`check_property`] for bounded model checking of safety invariants.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitblast;
mod bmc;
mod equiv;
mod spec;
mod sweep;
mod unroll;

pub use bitblast::{model_word, BitBlaster};
pub use bmc::{
    check_property, check_property_budgeted, check_property_observed, BmcOutcome, BmcReport,
    PropertyTrace,
};
pub use equiv::{
    check_equivalence, check_equivalence_observed, check_equivalence_per_output,
    check_equivalence_per_output_with, check_equivalence_with, CheckOptions, Counterexample,
    EquivOutcome, EquivReport, FalsificationSummary, Mismatch, OutputVerdict, PerOutputReport,
};
pub use spec::{Binding, ComparePoint, EquivSpec, InitState, SecError};
pub use sweep::{SweepOptions, SweepStats};
pub use unroll::{
    eval_comb_symbolic, eval_comb_symbolic_hooked, SymbolicCycle, SymbolicSim, MEM_BLAST_LIMIT,
};

// Re-exported so budgeted callers don't need a direct `dfv-sat` dependency.
pub use dfv_sat::{Budget, ExhaustedReason};
