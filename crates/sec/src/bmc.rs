//! Bounded model checking of safety properties on the RTL IR.
//!
//! A property is a 1-bit output port that must be 1 on every cycle. BMC
//! unrolls the design `k` cycles from reset with free symbolic inputs and
//! searches for a violating trace — the block-level "did I break an
//! invariant" check that complements transaction equivalence.

use std::time::{Duration, Instant};

use dfv_bits::Bv;
use dfv_obs::{ObsHook, SharedRecorder};
use dfv_rtl::{Module, Simulator};
use dfv_sat::{Budget, ExhaustedReason, Lit, SolveResult, Solver};

use crate::bitblast::{model_word, BitBlaster};
use crate::spec::{InitState, SecError};
use crate::unroll::SymbolicSim;

/// A violating trace found by [`check_property`].
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyTrace {
    /// Inputs per cycle (named, in port order).
    pub inputs: Vec<Vec<(String, Bv)>>,
    /// The first cycle at which the property output was 0.
    pub violation_cycle: u32,
    /// The property output that failed.
    pub property: String,
}

/// The result of a bounded model check.
#[derive(Debug, Clone, PartialEq)]
pub enum BmcOutcome {
    /// No violation within the bound.
    HoldsUpTo(u32),
    /// A replay-validated violating trace.
    Violated(Box<PropertyTrace>),
    /// The budget ran out partway through the unrolling (only produced by
    /// [`check_property_budgeted`]). The property *is* proven for the first
    /// `holds_up_to` cycles — partial depth is still evidence.
    Inconclusive {
        /// Depth up to which the property is proven to hold.
        holds_up_to: u32,
        /// Which resource ran out.
        reason: ExhaustedReason,
    },
}

/// Result of [`check_property`] with statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct BmcReport {
    /// The verdict.
    pub outcome: BmcOutcome,
    /// CNF variables allocated.
    pub cnf_vars: usize,
    /// Wall-clock time.
    pub duration: Duration,
}

/// Bounded-model-checks that the 1-bit output `property` of `module` is 1
/// on every one of the first `bound` cycles from reset, for all inputs.
///
/// # Errors
///
/// Returns [`SecError`] if the output is missing or not 1 bit wide, the
/// module is not flat, or a memory is too large.
pub fn check_property(module: &Module, property: &str, bound: u32) -> Result<BmcReport, SecError> {
    let start = Instant::now();
    validate_property(module, property, bound)?;

    let mut solver = Solver::new();
    let mut bb = BitBlaster::new(&mut solver);
    let mut sym = SymbolicSim::new(&mut bb, module, InitState::Reset)?;
    let mut input_words: Vec<Vec<Vec<Lit>>> = Vec::new();
    let mut violated_at: Vec<Lit> = Vec::new();
    for _ in 0..bound {
        let inputs: Vec<Vec<Lit>> = module
            .inputs
            .iter()
            .map(|p| bb.fresh_word(p.width))
            .collect();
        let cyc = sym.step(&mut bb, &inputs);
        let prop = cyc.output(module, property);
        violated_at.push(!prop[0]);
        input_words.push(inputs);
    }
    let mut any = bb.false_lit();
    for &v in &violated_at {
        any = bb.or_gate(any, v);
    }
    bb.assert_lit(any);
    drop(bb);

    let cnf_vars = solver.num_vars();
    let outcome = match solver.solve() {
        SolveResult::Unsat => BmcOutcome::HoldsUpTo(bound),
        SolveResult::Sat => BmcOutcome::Violated(Box::new(extract_trace(
            &solver,
            module,
            property,
            &input_words,
        ))),
        // `solve()` is unbudgeted and can never exhaust.
        SolveResult::Unknown(_) => unreachable!("unbudgeted solve returned Unknown"),
    };
    Ok(BmcReport {
        outcome,
        cnf_vars,
        duration: start.elapsed(),
    })
}

/// Like [`check_property`], but solves *incrementally, depth by depth*
/// under a resource [`Budget`]: each depth gets one budgeted solve (learnt
/// clauses carry over), and when the budget runs out the report says how
/// deep the property *was* proven —
/// [`BmcOutcome::Inconclusive`]`{ holds_up_to, .. }` — instead of
/// discarding the whole run. The budget's conflict/propagation caps apply
/// per depth; its wall-clock limits bound the *whole unrolling* (a relative
/// `timeout` is converted to an absolute deadline at entry — otherwise each
/// of `bound` depths would get its own fresh timeout), so a 1 ms deadline
/// returns in bounded time regardless of `bound`.
///
/// A side benefit of per-depth solving: the returned trace always violates
/// at the *shallowest* reachable depth.
///
/// # Errors
///
/// As [`check_property`].
pub fn check_property_budgeted(
    module: &Module,
    property: &str,
    bound: u32,
    budget: &Budget,
) -> Result<BmcReport, SecError> {
    check_property_budgeted_inner(module, property, bound, budget, &ObsHook::none())
}

/// Like [`check_property_budgeted`], but streams progress into `rec`:
/// the whole unrolling runs under a `sec.bmc` span, each depth emits a
/// `sec.depth` event (depth, CNF size so far, per-depth verdict) and
/// bumps the `sec.depths` counter, the final CNF size lands in
/// `sec.cnf_vars`, and the verdict is recorded as a `sec.outcome` event.
/// The same recorder is forwarded into the underlying SAT solver, so
/// `sat.*` counters accumulate alongside.
///
/// # Errors
///
/// As [`check_property`].
pub fn check_property_observed(
    module: &Module,
    property: &str,
    bound: u32,
    budget: &Budget,
    rec: SharedRecorder,
) -> Result<BmcReport, SecError> {
    check_property_budgeted_inner(module, property, bound, budget, &ObsHook::attached(rec))
}

fn check_property_budgeted_inner(
    module: &Module,
    property: &str,
    bound: u32,
    budget: &Budget,
    obs: &ObsHook,
) -> Result<BmcReport, SecError> {
    let start = Instant::now();
    validate_property(module, property, bound)?;
    let mut budget = *budget;
    if let Some(t) = budget.timeout.take() {
        let d = start + t;
        budget.deadline = Some(budget.deadline.map_or(d, |x| x.min(d)));
    }

    obs.begin_span("sec.bmc");
    let mut solver = Solver::new();
    if let Some(rec) = obs.recorder() {
        solver.set_recorder(rec);
    }
    let mut bb = BitBlaster::new(&mut solver);
    let mut sym = match SymbolicSim::new(&mut bb, module, InitState::Reset) {
        Ok(s) => s,
        Err(e) => {
            drop(bb);
            obs.end_span("sec.bmc");
            return Err(e);
        }
    };
    let mut input_words: Vec<Vec<Vec<Lit>>> = Vec::new();
    let mut outcome = None;
    let mut holds_up_to = 0u32;
    for depth in 0..bound {
        let inputs: Vec<Vec<Lit>> = module
            .inputs
            .iter()
            .map(|p| bb.fresh_word(p.width))
            .collect();
        let cyc = sym.step(&mut bb, &inputs);
        let prop = cyc.output(module, property);
        let violated = !prop[0];
        input_words.push(inputs);
        let result = bb.solver().solve_budgeted(&[violated], &budget);
        obs.add("sec.depths", 1);
        let vars_now = bb.solver().num_vars();
        obs.event("sec.depth", || {
            let verdict = match &result {
                SolveResult::Unsat => "holds",
                SolveResult::Sat => "violated",
                SolveResult::Unknown(_) => "exhausted",
            };
            format!("depth={depth} cnf_vars={vars_now} {verdict}")
        });
        match result {
            SolveResult::Unsat => holds_up_to += 1,
            SolveResult::Sat => {
                outcome = Some(BmcOutcome::Violated(Box::new(extract_trace(
                    bb.solver(),
                    module,
                    property,
                    &input_words,
                ))));
                break;
            }
            SolveResult::Unknown(reason) => {
                outcome = Some(BmcOutcome::Inconclusive {
                    holds_up_to,
                    reason,
                });
                break;
            }
        }
    }
    drop(bb);
    let outcome = outcome.unwrap_or(BmcOutcome::HoldsUpTo(bound));
    let cnf_vars = solver.num_vars();
    obs.add("sec.cnf_vars", cnf_vars as u64);
    obs.event("sec.outcome", || match &outcome {
        BmcOutcome::HoldsUpTo(k) => format!("holds_up_to {k}"),
        BmcOutcome::Violated(t) => format!("violated at cycle {}", t.violation_cycle),
        BmcOutcome::Inconclusive {
            holds_up_to,
            reason,
        } => format!("inconclusive ({reason:?}) after depth {holds_up_to}"),
    });
    obs.end_span("sec.bmc");
    Ok(BmcReport {
        outcome,
        cnf_vars,
        duration: start.elapsed(),
    })
}

fn validate_property(module: &Module, property: &str, bound: u32) -> Result<(), SecError> {
    dfv_rtl::check_module(module)?;
    let pidx = module
        .output_index(property)
        .ok_or_else(|| SecError::Spec(format!("no output {property:?}")))?;
    if module.outputs[pidx].width != 1 {
        return Err(SecError::Spec(format!(
            "property {property:?} must be 1 bit"
        )));
    }
    if bound == 0 {
        return Err(SecError::Spec("bound must be at least 1".into()));
    }
    Ok(())
}

/// Reads the SAT model for the unrolled cycles in `input_words`, replays
/// it through the compiled bytecode engine, and validates that the replay
/// hits a violation — with the full-reevaluation oracle run in lockstep
/// and every output asserted identical each cycle, so a counterexample
/// can never be an artifact of the compiled engine.
fn extract_trace(
    solver: &Solver,
    module: &Module,
    property: &str,
    input_words: &[Vec<Vec<Lit>>],
) -> PropertyTrace {
    let inputs: Vec<Vec<(String, Bv)>> = input_words
        .iter()
        .map(|cycle| {
            module
                .inputs
                .iter()
                .zip(cycle)
                .map(|(p, w)| (p.name.clone(), model_word(solver, w)))
                .collect()
        })
        .collect();
    // Replay to find (and validate) the first violation. The constructors
    // cannot fail: the module already passed `check_module`.
    let mut sim = Simulator::new_vm(module.clone()).expect("checked");
    let mut oracle = Simulator::new_reference(module.clone()).expect("checked");
    let mut violation_cycle = None;
    for (t, cycle_inputs) in inputs.iter().enumerate() {
        for (name, v) in cycle_inputs {
            sim.poke(name, v.clone());
            oracle.poke(name, v.clone());
        }
        for p in &module.outputs {
            assert_eq!(
                sim.output(&p.name),
                oracle.output(&p.name),
                "bytecode replay diverged from the oracle on output {:?} at cycle {t}",
                p.name
            );
        }
        if !sim.output(property).bit(0) {
            violation_cycle = Some(t as u32);
            break;
        }
        sim.step();
        oracle.step();
    }
    let violation_cycle = violation_cycle
        .expect("SAT model did not replay to a violation: bit-blasting soundness bug");
    PropertyTrace {
        inputs,
        violation_cycle,
        property: property.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_rtl::ModuleBuilder;

    /// A saturating counter that must never exceed LIMIT... unless the
    /// implementation forgot the clamp on one path.
    fn counter(clamped: bool) -> Module {
        let mut b = ModuleBuilder::new("ctr");
        let up = b.input("up", 1);
        let r = b.reg("count", 4, Bv::zero(4));
        let q = b.reg_q(r);
        let one = b.lit(4, 1);
        let inc = b.add(q, one);
        let limit = b.lit(4, 10);
        let at_limit = b.eq(q, limit);
        let next_inc = if clamped {
            b.mux(at_limit, q, inc)
        } else {
            inc // bug: wraps past the limit
        };
        let next = b.mux(up, next_inc, q);
        b.connect_reg(r, next);
        let ok = b.ule(q, limit);
        b.output("count", q);
        b.output("ok", ok);
        b.finish().unwrap()
    }

    #[test]
    fn clamped_counter_holds() {
        let report = check_property(&counter(true), "ok", 16).unwrap();
        assert_eq!(report.outcome, BmcOutcome::HoldsUpTo(16));
    }

    #[test]
    fn unclamped_counter_violates_at_depth_11() {
        let report = check_property(&counter(false), "ok", 16).unwrap();
        match report.outcome {
            BmcOutcome::Violated(trace) => {
                // The counter needs at least 11 increments to pass 10 (the
                // solver may return a longer trace that idles first).
                assert!(trace.violation_cycle >= 11);
                assert_eq!(trace.property, "ok");
            }
            other => panic!("expected violation, got {other:?}"),
        }
        // The exact frontier: depth 12 reaches the bug, depth 11 does not
        // (the property is sampled before the 11th increment commits).
        let at12 = check_property(&counter(false), "ok", 12).unwrap();
        assert!(matches!(at12.outcome, BmcOutcome::Violated(_)));
        let at11 = check_property(&counter(false), "ok", 11).unwrap();
        assert_eq!(at11.outcome, BmcOutcome::HoldsUpTo(11));
    }

    #[test]
    fn shallow_bound_misses_deep_bug() {
        // BMC is bounded: the same bug is invisible at depth 5 — which is
        // why equivalence checking over full transactions matters.
        let report = check_property(&counter(false), "ok", 5).unwrap();
        assert_eq!(report.outcome, BmcOutcome::HoldsUpTo(5));
    }

    #[test]
    fn property_errors() {
        assert!(check_property(&counter(true), "nope", 4).is_err());
        assert!(check_property(&counter(true), "count", 4).is_err());
        assert!(check_property(&counter(true), "ok", 0).is_err());
        assert!(check_property_budgeted(&counter(true), "nope", 4, &Budget::unlimited()).is_err());
    }

    #[test]
    fn budgeted_bmc_matches_unbudgeted_when_unlimited() {
        let r = check_property_budgeted(&counter(true), "ok", 16, &Budget::unlimited()).unwrap();
        assert_eq!(r.outcome, BmcOutcome::HoldsUpTo(16));
        let r = check_property_budgeted(&counter(false), "ok", 16, &Budget::unlimited()).unwrap();
        match r.outcome {
            // Per-depth solving always finds the *shallowest* violation.
            BmcOutcome::Violated(trace) => assert_eq!(trace.violation_cycle, 11),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn zero_conflict_budget_is_inconclusive_at_depth_zero() {
        let budget = Budget::unlimited().with_conflicts(0);
        let r = check_property_budgeted(&counter(true), "ok", 16, &budget).unwrap();
        assert_eq!(
            r.outcome,
            BmcOutcome::Inconclusive {
                holds_up_to: 0,
                reason: ExhaustedReason::Conflicts,
            }
        );
    }

    #[test]
    fn observed_bmc_records_depths_and_outcome() {
        use dfv_obs::MemoryRecorder;
        let rec = MemoryRecorder::shared();
        let r = check_property_observed(&counter(true), "ok", 8, &Budget::unlimited(), rec.clone())
            .unwrap();
        assert_eq!(r.outcome, BmcOutcome::HoldsUpTo(8));
        let m = rec.lock().unwrap();
        assert_eq!(m.counter("sec.depths"), 8);
        assert_eq!(m.counter("sec.cnf_vars"), r.cnf_vars as u64);
        assert_eq!(m.events_of("sec.depth").len(), 8);
        assert_eq!(m.events_of("sec.outcome"), vec!["holds_up_to 8"]);
        // The forwarded recorder also sees the solver's own counters.
        assert!(m.counter("sat.propagations") > 0);
    }

    #[test]
    fn deadline_reports_partial_depth_in_bounded_time() {
        // A huge bound with a millisecond deadline: the check must stop
        // quickly and report the depth it *did* prove.
        let started = Instant::now();
        let budget = Budget::unlimited().with_timeout(Duration::from_millis(5));
        let r = check_property_budgeted(&counter(true), "ok", 1_000_000, &budget).unwrap();
        match r.outcome {
            BmcOutcome::Inconclusive {
                holds_up_to,
                reason,
            } => {
                assert_eq!(reason, ExhaustedReason::Deadline);
                assert!(holds_up_to < 1_000_000);
            }
            other => panic!("expected inconclusive, got {other:?}"),
        }
        assert!(started.elapsed() < Duration::from_secs(30));
    }
}
