//! Transaction specifications: how one SLM computation maps onto `k` RTL
//! cycles.
//!
//! Sequential equivalence checking "requires the specification of how the
//! inputs map between the SLM and RTL and specification of when to check the
//! outputs" (paper §2). An [`EquivSpec`] is exactly that: per-(port, cycle)
//! input [`Binding`]s, output compare points, environment constraints, and
//! the initial-state convention.

use std::error::Error;
use std::fmt;

use dfv_bits::Bv;
use dfv_rtl::Module;

/// Where an RTL input port gets its value on a particular cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// The whole SLM input of this name.
    Slm(String),
    /// A bit slice `name[hi:lo]` of an SLM input — the serialization
    /// mapping for the paper's parallel-SLM / serial-RTL interfaces
    /// (§3.2: "the SLM ... may read in the entire image as a single array
    /// of pixels while the RTL reads it as a stream").
    SlmSlice {
        /// SLM input name.
        name: String,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// A constant tie-off (control signals, mode pins).
    Const(Bv),
    /// A free symbolic value: the checker proves equivalence for *any*
    /// value here (e.g. don't-care inputs, stall lines allowed to wiggle).
    Free,
}

/// One output compare point of an [`EquivSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComparePoint {
    /// SLM output port name.
    pub slm_output: String,
    /// Optional `[hi:lo]` slice of the SLM output to compare (whole output
    /// when `None`).
    pub slm_slice: Option<(u32, u32)>,
    /// RTL output port name.
    pub rtl_output: String,
    /// RTL cycle at which the RTL output is sampled.
    pub rtl_cycle: u32,
}

/// How the RTL's state starts the transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitState {
    /// Registers at their reset values, memories at their initial contents
    /// — transaction-from-reset checking.
    #[default]
    Reset,
    /// Fully symbolic start state: proves the transaction equivalent from
    /// *every* state (much stronger; fails for designs that rely on reset).
    Free,
}

/// A transaction-level equivalence specification between a combinational
/// SLM model and a sequential RTL module.
#[derive(Debug, Clone, Default)]
pub struct EquivSpec {
    /// Number of RTL cycles in one transaction.
    pub rtl_cycles: u32,
    /// Input bindings: `(rtl_port, cycle, binding)`. Unbound (port, cycle)
    /// pairs default to constant zero.
    pub bindings: Vec<(String, u32, Binding)>,
    /// Output compare points.
    pub compares: Vec<ComparePoint>,
    /// Environment constraints: combinational 1-bit-output modules over a
    /// subset of the SLM inputs; each must evaluate to 1. This is the
    /// paper's mechanism for excluding e.g. float corner cases (§3.1.2).
    pub constraints: Vec<Module>,
    /// Initial-state convention.
    pub init: InitState,
}

impl EquivSpec {
    /// A spec skeleton for a `k`-cycle transaction.
    pub fn new(rtl_cycles: u32) -> Self {
        EquivSpec {
            rtl_cycles,
            ..EquivSpec::default()
        }
    }

    /// Binds an RTL input on one cycle.
    pub fn bind(mut self, rtl_port: &str, cycle: u32, binding: Binding) -> Self {
        self.bindings.push((rtl_port.into(), cycle, binding));
        self
    }

    /// Binds an RTL input identically on every cycle of the transaction.
    pub fn bind_all_cycles(mut self, rtl_port: &str, binding: Binding) -> Self {
        for c in 0..self.rtl_cycles {
            self.bindings.push((rtl_port.into(), c, binding.clone()));
        }
        self
    }

    /// Adds an output compare point: the whole SLM output against an RTL
    /// output port sampled during cycle `rtl_cycle` (combinational value
    /// after `rtl_cycle` clock edges have committed).
    pub fn compare(mut self, slm_output: &str, rtl_output: &str, rtl_cycle: u32) -> Self {
        self.compares.push(ComparePoint {
            slm_output: slm_output.into(),
            slm_slice: None,
            rtl_output: rtl_output.into(),
            rtl_cycle,
        });
        self
    }

    /// Adds a *sliced* compare point: `slm_output[hi:lo]` against an RTL
    /// output port at `rtl_cycle`. This is the deserialization mapping for
    /// the paper's parallel-SLM / serial-RTL interfaces: each beat of the
    /// RTL output stream is compared against the corresponding slice of
    /// the SLM's packed array output.
    pub fn compare_slice(
        mut self,
        slm_output: &str,
        hi: u32,
        lo: u32,
        rtl_output: &str,
        rtl_cycle: u32,
    ) -> Self {
        self.compares.push(ComparePoint {
            slm_output: slm_output.into(),
            slm_slice: Some((hi, lo)),
            rtl_output: rtl_output.into(),
            rtl_cycle,
        });
        self
    }

    /// Adds an environment constraint module.
    pub fn constrain(mut self, module: Module) -> Self {
        self.constraints.push(module);
        self
    }

    /// Uses a fully symbolic initial state.
    pub fn from_any_state(mut self) -> Self {
        self.init = InitState::Free;
        self
    }

    /// Validates the spec against concrete SLM and RTL modules.
    ///
    /// # Errors
    ///
    /// Returns [`SecError::Spec`] describing the first inconsistency
    /// (unknown port, width mismatch, out-of-range cycle, non-combinational
    /// SLM or constraint).
    pub fn validate(&self, slm: &Module, rtl: &Module) -> Result<(), SecError> {
        let err = |m: String| Err(SecError::Spec(m));
        if self.rtl_cycles == 0 {
            return err("transaction must span at least one RTL cycle".into());
        }
        if !slm.is_combinational() {
            return err(format!(
                "SLM module {:?} must be combinational (elaborate it first)",
                slm.name
            ));
        }
        if self.compares.is_empty() {
            return err("no output compare points".into());
        }
        for (port, cycle, binding) in &self.bindings {
            let Some(idx) = rtl.input_index(port) else {
                return err(format!("RTL has no input port {port:?}"));
            };
            let want = rtl.inputs[idx].width;
            if *cycle >= self.rtl_cycles {
                return err(format!(
                    "binding for {port:?} at cycle {cycle} out of range"
                ));
            }
            let got = match binding {
                Binding::Slm(name) => match slm.input_index(name) {
                    Some(i) => slm.inputs[i].width,
                    None => return err(format!("SLM has no input {name:?}")),
                },
                Binding::SlmSlice { name, hi, lo } => match slm.input_index(name) {
                    Some(i) => {
                        let w = slm.inputs[i].width;
                        if hi < lo || *hi >= w {
                            return err(format!(
                                "slice [{hi}:{lo}] out of range for SLM input {name:?}"
                            ));
                        }
                        hi - lo + 1
                    }
                    None => return err(format!("SLM has no input {name:?}")),
                },
                Binding::Const(v) => v.width(),
                Binding::Free => want,
            };
            if got != want {
                return err(format!(
                    "binding for RTL port {port:?} has width {got}, port is {want}"
                ));
            }
        }
        for cp in &self.compares {
            let Some(si) = slm.output_index(&cp.slm_output) else {
                return err(format!("SLM has no output {:?}", cp.slm_output));
            };
            let Some(ri) = rtl.output_index(&cp.rtl_output) else {
                return err(format!("RTL has no output {:?}", cp.rtl_output));
            };
            let slm_width = match cp.slm_slice {
                None => slm.outputs[si].width,
                Some((hi, lo)) => {
                    if hi < lo || hi >= slm.outputs[si].width {
                        return err(format!(
                            "compare slice [{hi}:{lo}] out of range for {:?}",
                            cp.slm_output
                        ));
                    }
                    hi - lo + 1
                }
            };
            if slm_width != rtl.outputs[ri].width {
                return err(format!(
                    "compare {:?} vs {:?}: widths {} vs {}",
                    cp.slm_output, cp.rtl_output, slm_width, rtl.outputs[ri].width
                ));
            }
            if cp.rtl_cycle >= self.rtl_cycles {
                return err(format!("compare at cycle {} out of range", cp.rtl_cycle));
            }
        }
        for c in &self.constraints {
            if !c.is_combinational() {
                return err(format!(
                    "constraint module {:?} must be combinational",
                    c.name
                ));
            }
            if c.outputs.len() != 1 || c.outputs[0].width != 1 {
                return err(format!(
                    "constraint module {:?} must have a single 1-bit output",
                    c.name
                ));
            }
            for p in &c.inputs {
                match slm.input_index(&p.name) {
                    Some(i) if slm.inputs[i].width == p.width => {}
                    _ => {
                        return err(format!(
                            "constraint input {:?} does not match an SLM input",
                            p.name
                        ))
                    }
                }
            }
        }
        Ok(())
    }
}

/// Errors from the equivalence checker and bounded model checker.
#[derive(Debug, Clone, PartialEq)]
pub enum SecError {
    /// The spec is inconsistent with the given modules.
    Spec(String),
    /// A structural problem in a module (propagated from `dfv-rtl`).
    Rtl(dfv_rtl::RtlError),
    /// A memory is too large to bit-blast.
    MemTooLarge {
        /// Memory name.
        mem: String,
        /// Its depth in words.
        depth: usize,
        /// The supported limit.
        limit: usize,
    },
}

impl fmt::Display for SecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecError::Spec(m) => write!(f, "invalid equivalence spec: {m}"),
            SecError::Rtl(e) => write!(f, "rtl error: {e}"),
            SecError::MemTooLarge { mem, depth, limit } => write!(
                f,
                "memory {mem:?} has {depth} words, beyond the {limit}-word bit-blasting \
                 limit; constrain the transaction or shrink the memory"
            ),
        }
    }
}

impl Error for SecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SecError::Rtl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dfv_rtl::RtlError> for SecError {
    fn from(e: dfv_rtl::RtlError) -> Self {
        SecError::Rtl(e)
    }
}
