//! Bit-blasting: word-level IR operators to CNF via Tseitin encoding.
//!
//! Every word-level value becomes a vector of SAT literals (LSB first).
//! Gate encoders allocate fresh variables and add the defining clauses to
//! the underlying [`Solver`].

use dfv_bits::Bv;
use dfv_rtl::ir::{BinOp, UnOp};
use dfv_sat::{Lit, Solver};

/// A bit-blasting context over a [`Solver`].
///
/// Holds the constant-true literal and provides word-level operator
/// encoders used by the unroller and the miter builder.
#[derive(Debug)]
pub struct BitBlaster<'a> {
    solver: &'a mut Solver,
    true_lit: Lit,
    /// Structural hashing (hash-consing) of AND/XOR gates: transaction
    /// unrolling re-encodes mostly-identical combinational cones every
    /// cycle, and consing collapses the shared structure — the same trick
    /// AIG-based equivalence checkers rely on.
    and_cache: std::collections::HashMap<(Lit, Lit), Lit>,
    xor_cache: std::collections::HashMap<(Lit, Lit), Lit>,
}

impl<'a> BitBlaster<'a> {
    /// Creates a context, allocating the constant-true variable.
    pub fn new(solver: &'a mut Solver) -> Self {
        let t = solver.new_var().positive();
        solver.add_clause(&[t]);
        BitBlaster {
            solver,
            true_lit: t,
            and_cache: std::collections::HashMap::new(),
            xor_cache: std::collections::HashMap::new(),
        }
    }

    /// The always-true literal.
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// The always-false literal.
    pub fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    /// The underlying solver.
    pub fn solver(&mut self) -> &mut Solver {
        self.solver
    }

    /// A vector of fresh unconstrained literals (a symbolic word).
    pub fn fresh_word(&mut self, width: u32) -> Vec<Lit> {
        (0..width)
            .map(|_| self.solver.new_var().positive())
            .collect()
    }

    /// Encodes a constant.
    pub fn constant(&mut self, value: &Bv) -> Vec<Lit> {
        value
            .iter_bits()
            .map(|b| if b { self.true_lit } else { !self.true_lit })
            .collect()
    }

    /// Asserts a single literal.
    pub fn assert_lit(&mut self, l: Lit) {
        self.solver.add_clause(&[l]);
    }

    /// Tseitin AND gate: returns `o` with `o <-> a & b`.
    pub fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant folding.
        if a == self.false_lit() || b == self.false_lit() {
            return self.false_lit();
        }
        if a == self.true_lit {
            return b;
        }
        if b == self.true_lit {
            return a;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.false_lit();
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&o) = self.and_cache.get(&key) {
            return o;
        }
        let o = self.solver.new_var().positive();
        self.solver.add_clause(&[!a, !b, o]);
        self.solver.add_clause(&[a, !o]);
        self.solver.add_clause(&[b, !o]);
        self.and_cache.insert(key, o);
        o
    }

    /// OR gate.
    pub fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and_gate(!a, !b)
    }

    /// Tseitin XOR gate.
    pub fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.false_lit() {
            return b;
        }
        if b == self.false_lit() {
            return a;
        }
        if a == self.true_lit {
            return !b;
        }
        if b == self.true_lit {
            return !a;
        }
        if a == b {
            return self.false_lit();
        }
        if a == !b {
            return self.true_lit;
        }
        // Normalize: canonical order, and fold double negation so
        // xor(!a, b) shares structure with !xor(a, b).
        let (mut x, mut y, mut invert) = if a <= b { (a, b, false) } else { (b, a, false) };
        if x.is_negated() {
            x = !x;
            invert = !invert;
        }
        if y.is_negated() {
            y = !y;
            invert = !invert;
        }
        let (x, y) = if x <= y { (x, y) } else { (y, x) };
        if let Some(&o) = self.xor_cache.get(&(x, y)) {
            return if invert { !o } else { o };
        }
        let o = self.solver.new_var().positive();
        self.solver.add_clause(&[!x, !y, !o]);
        self.solver.add_clause(&[x, y, !o]);
        self.solver.add_clause(&[!x, y, o]);
        self.solver.add_clause(&[x, !y, o]);
        self.xor_cache.insert((x, y), o);
        if invert {
            !o
        } else {
            o
        }
    }

    /// Mux gate: `if s { t } else { f }`.
    pub fn mux_gate(&mut self, s: Lit, t: Lit, f: Lit) -> Lit {
        if s == self.true_lit {
            return t;
        }
        if s == self.false_lit() {
            return f;
        }
        if t == f {
            return t;
        }
        // Constant arms collapse to a single gate (or the select
        // itself), so a mux with a known branch never pays the full
        // three-gate encoding.
        if t == self.true_lit {
            // s ? 1 : f  =  s | f
            return self.or_gate(s, f);
        }
        if t == self.false_lit() {
            // s ? 0 : f  =  !s & f
            return self.and_gate(!s, f);
        }
        if f == self.true_lit {
            // s ? t : 1  =  !s | t
            return self.or_gate(!s, t);
        }
        if f == self.false_lit() {
            // s ? t : 0  =  s & t
            return self.and_gate(s, t);
        }
        if t == !f {
            // s ? t : !t  =  xnor(s, t)
            return !self.xor_gate(s, t);
        }
        let a = self.and_gate(s, t);
        let b = self.and_gate(!s, f);
        self.or_gate(a, b)
    }

    /// Full adder; returns (sum, carry-out).
    pub fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.xor_gate(a, b);
        let sum = self.xor_gate(axb, cin);
        let c1 = self.and_gate(a, b);
        let c2 = self.and_gate(axb, cin);
        let cout = self.or_gate(c1, c2);
        (sum, cout)
    }

    /// Word mux.
    pub fn mux_word(&mut self, s: Lit, t: &[Lit], f: &[Lit]) -> Vec<Lit> {
        debug_assert_eq!(t.len(), f.len());
        t.iter()
            .zip(f)
            .map(|(&ti, &fi)| self.mux_gate(s, ti, fi))
            .collect()
    }

    /// Ripple-carry addition with carry-in; result truncated to the operand
    /// width.
    pub fn add_word(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b) {
            let (s, c) = self.full_adder(ai, bi, carry);
            out.push(s);
            carry = c;
        }
        out
    }

    /// `a - b` (two's complement).
    pub fn sub_word(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        self.add_word(a, &nb, self.true_lit)
    }

    /// Two's-complement negation.
    pub fn neg_word(&mut self, a: &[Lit]) -> Vec<Lit> {
        let zero = vec![self.false_lit(); a.len()];
        self.sub_word(&zero, a)
    }

    /// Unsigned `a < b`: the borrow out of `a - b`.
    pub fn ult_word(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        // Compute a - b and take the complement of the final carry.
        let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        let mut carry = self.true_lit;
        for (&ai, &nbi) in a.iter().zip(&nb) {
            let (_, c) = self.full_adder(ai, nbi, carry);
            carry = c;
        }
        !carry
    }

    /// Signed `a < b`.
    pub fn slt_word(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let w = a.len();
        debug_assert!(w >= 1);
        let (sa, sb) = (a[w - 1], b[w - 1]);
        let ult = self.ult_word(a, b);
        // Different signs: a < b iff a negative. Same signs: unsigned compare.
        let diff = self.xor_gate(sa, sb);
        self.mux_gate(diff, sa, ult)
    }

    /// Word equality.
    pub fn eq_word(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = self.true_lit;
        for (&ai, &bi) in a.iter().zip(b) {
            let x = self.xor_gate(ai, bi);
            acc = self.and_gate(acc, !x);
        }
        acc
    }

    /// Whether every literal of a word is the constant true or false.
    fn is_const_word(&self, w: &[Lit]) -> bool {
        w.iter().all(|&l| l == self.true_lit || l == !self.true_lit)
    }

    /// Shift-and-add multiplication, truncated to the operand width.
    ///
    /// When one operand is constant it is used as the multiplier, so only
    /// its *set* bits contribute partial products — this keeps a
    /// constant-coefficient multiply structurally identical no matter which
    /// side of `*` the constant appeared on, which in turn lets the
    /// hash-conser collapse SLM and RTL cones that differ only in operand
    /// order.
    pub fn mul_word(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let (a, b) = if self.is_const_word(a) && !self.is_const_word(b) {
            (b, a) // multiplication is commutative; put the constant second
        } else {
            (a, b)
        };
        let w = a.len();
        let mut acc = vec![self.false_lit(); w];
        for (i, &bi) in b.iter().enumerate() {
            if bi == !self.true_lit {
                continue; // zero partial product
            }
            // Partial product: (a << i) & bi, truncated to w bits.
            let mut pp = vec![self.false_lit(); w];
            for j in 0..(w - i) {
                pp[i + j] = self.and_gate(a[j], bi);
            }
            acc = self.add_word(&acc, &pp, self.false_lit());
        }
        acc
    }

    /// Unsigned restoring division; returns (quotient, remainder) with the
    /// hardware divide-by-zero convention (all-ones quotient, dividend
    /// remainder).
    pub fn udivrem_word(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        debug_assert_eq!(a.len(), b.len());
        let w = a.len();
        let mut rem = vec![self.false_lit(); w];
        let mut quo = vec![self.false_lit(); w];
        for i in (0..w).rev() {
            // rem = (rem << 1) | a[i]
            let mut shifted = vec![a[i]];
            shifted.extend_from_slice(&rem[..w - 1]);
            rem = shifted;
            // If rem >= b: rem -= b, quo[i] = 1.
            let lt = self.ult_word(&rem, b);
            let ge = !lt;
            let sub = self.sub_word(&rem, b);
            rem = self.mux_word(ge, &sub, &rem);
            quo[i] = ge;
        }
        // Divide-by-zero convention.
        let zero = vec![self.false_lit(); w];
        let b_is_zero = self.eq_word(b, &zero);
        let ones = vec![self.true_lit; w];
        let quo = self.mux_word(b_is_zero, &ones, &quo);
        let rem = self.mux_word(b_is_zero, a, &rem);
        (quo, rem)
    }

    /// Signed division/remainder via magnitudes, matching
    /// [`dfv_bits::Bv::sdiv`] / [`dfv_bits::Bv::srem`].
    pub fn sdivrem_word(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let (sa, sb) = (a[w - 1], b[w - 1]);
        let na = self.neg_word(a);
        let nb = self.neg_word(b);
        let ma = self.mux_word(sa, &na, a);
        let mb = self.mux_word(sb, &nb, b);
        let (uq, ur) = self.udivrem_word(&ma, &mb);
        let qneg = self.xor_gate(sa, sb);
        let nuq = self.neg_word(&uq);
        let nur = self.neg_word(&ur);
        let quo = self.mux_word(qneg, &nuq, &uq);
        let rem = self.mux_word(sa, &nur, &ur);
        // Divide-by-zero convention overrides the sign handling.
        let zero = vec![self.false_lit(); w];
        let b_is_zero = self.eq_word(b, &zero);
        let ones = vec![self.true_lit; w];
        let quo = self.mux_word(b_is_zero, &ones, &quo);
        let rem = self.mux_word(b_is_zero, a, &rem);
        (quo, rem)
    }

    /// Barrel shifter for dynamic amounts. `arith` selects the fill bit for
    /// right shifts (sign bit); `left` chooses direction. Amounts `>= w`
    /// produce all-fill (zero, or all-sign for arithmetic right shifts),
    /// matching [`dfv_bits::Bv::shl_bv`] and friends.
    fn barrel_shift(&mut self, a: &[Lit], amount: &[Lit], left: bool, arith: bool) -> Vec<Lit> {
        let w = a.len();
        let fill = if arith && !left {
            a[w - 1]
        } else {
            self.false_lit()
        };
        let mut cur: Vec<Lit> = a.to_vec();
        for (bit, &amt) in amount.iter().enumerate() {
            if bit >= 63 || (1u64 << bit) >= w as u64 {
                break; // distances >= w are covered by the saturation below
            }
            let dist = 1usize << bit;
            let shifted: Vec<Lit> = (0..w)
                .map(|i| {
                    if left {
                        if i >= dist {
                            cur[i - dist]
                        } else {
                            self.false_lit()
                        }
                    } else if i + dist < w {
                        cur[i + dist]
                    } else {
                        fill
                    }
                })
                .collect();
            cur = self.mux_word(amt, &shifted, &cur);
        }
        // Saturate when amount >= w. Compare at a width that can hold both.
        let w_bits = (u64::BITS - (w as u64).leading_zeros()) as usize;
        let cmp_w = amount.len().max(w_bits);
        let mut amt_ext: Vec<Lit> = amount.to_vec();
        amt_ext.resize(cmp_w, self.false_lit());
        let w_const = self.constant(&Bv::from_u64(cmp_w as u32, w as u64));
        let in_range = self.ult_word(&amt_ext, &w_const);
        let sat = vec![fill; w];
        self.mux_word(!in_range, &sat, &cur)
    }

    /// Encodes a unary word operator.
    pub fn un_op(&mut self, op: UnOp, a: &[Lit]) -> Vec<Lit> {
        match op {
            UnOp::Not => a.iter().map(|&l| !l).collect(),
            UnOp::Neg => self.neg_word(a),
            UnOp::RedAnd => {
                let mut acc = self.true_lit;
                for &l in a {
                    acc = self.and_gate(acc, l);
                }
                vec![acc]
            }
            UnOp::RedOr => {
                let mut acc = self.false_lit();
                for &l in a {
                    acc = self.or_gate(acc, l);
                }
                vec![acc]
            }
            UnOp::RedXor => {
                let mut acc = self.false_lit();
                for &l in a {
                    acc = self.xor_gate(acc, l);
                }
                vec![acc]
            }
        }
    }

    /// Encodes a binary word operator with the IR's width rules.
    pub fn bin_op(&mut self, op: BinOp, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        match op {
            BinOp::Add => self.add_word(a, b, self.false_lit()),
            BinOp::Sub => self.sub_word(a, b),
            BinOp::Mul => self.mul_word(a, b),
            BinOp::UDiv => self.udivrem_word(a, b).0,
            BinOp::URem => self.udivrem_word(a, b).1,
            BinOp::SDiv => self.sdivrem_word(a, b).0,
            BinOp::SRem => self.sdivrem_word(a, b).1,
            BinOp::And => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.and_gate(x, y))
                .collect(),
            BinOp::Or => a.iter().zip(b).map(|(&x, &y)| self.or_gate(x, y)).collect(),
            BinOp::Xor => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.xor_gate(x, y))
                .collect(),
            BinOp::Shl => self.barrel_shift(a, b, true, false),
            BinOp::LShr => self.barrel_shift(a, b, false, false),
            BinOp::AShr => self.barrel_shift(a, b, false, true),
            BinOp::Eq => vec![self.eq_word(a, b)],
            BinOp::Ne => {
                let e = self.eq_word(a, b);
                vec![!e]
            }
            BinOp::ULt => vec![self.ult_word(a, b)],
            BinOp::ULe => {
                let gt = self.ult_word(b, a);
                vec![!gt]
            }
            BinOp::SLt => vec![self.slt_word(a, b)],
            BinOp::SLe => {
                let gt = self.slt_word(b, a);
                vec![!gt]
            }
        }
    }
}

/// Reads a word back from a solved [`Solver`]'s model as a [`Bv`].
///
/// Literals the model leaves unconstrained read as 0.
///
/// # Panics
///
/// Panics if `word` is empty.
pub fn model_word(solver: &Solver, word: &[Lit]) -> Bv {
    let bits: Vec<bool> = word
        .iter()
        .map(|&l| solver.lit_value(l).unwrap_or(false))
        .collect();
    Bv::from_bits_lsb(&bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_sat::SolveResult;

    /// Checks an operator encoding against concrete evaluation for all
    /// pairs of 4-bit values — exhaustive ground truth.
    fn exhaustive_binop(op: BinOp) {
        let w = 4u32;
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let mut solver = Solver::new();
                let mut bb = BitBlaster::new(&mut solver);
                let a = bb.constant(&Bv::from_u64(w, av));
                let b = bb.constant(&Bv::from_u64(w, bv));
                let out = bb.bin_op(op, &a, &b);
                drop(bb);
                assert_eq!(solver.solve(), SolveResult::Sat);
                let got = model_word(&solver, &out);
                let expect = dfv_rtl::eval_bin(op, &Bv::from_u64(w, av), &Bv::from_u64(w, bv));
                assert_eq!(got, expect, "{op:?} {av} {bv}");
            }
        }
    }

    #[test]
    fn add_sub_exhaustive() {
        exhaustive_binop(BinOp::Add);
        exhaustive_binop(BinOp::Sub);
    }

    #[test]
    fn mul_exhaustive() {
        exhaustive_binop(BinOp::Mul);
    }

    #[test]
    fn div_rem_exhaustive() {
        exhaustive_binop(BinOp::UDiv);
        exhaustive_binop(BinOp::URem);
        exhaustive_binop(BinOp::SDiv);
        exhaustive_binop(BinOp::SRem);
    }

    #[test]
    fn compare_exhaustive() {
        exhaustive_binop(BinOp::Eq);
        exhaustive_binop(BinOp::Ne);
        exhaustive_binop(BinOp::ULt);
        exhaustive_binop(BinOp::ULe);
        exhaustive_binop(BinOp::SLt);
        exhaustive_binop(BinOp::SLe);
    }

    #[test]
    fn shifts_exhaustive() {
        exhaustive_binop(BinOp::Shl);
        exhaustive_binop(BinOp::LShr);
        exhaustive_binop(BinOp::AShr);
    }

    #[test]
    fn logic_exhaustive() {
        exhaustive_binop(BinOp::And);
        exhaustive_binop(BinOp::Or);
        exhaustive_binop(BinOp::Xor);
    }

    #[test]
    fn symbolic_addition_is_commutative() {
        // Prove forall a, b: a + b == b + a at 8 bits (UNSAT of inequality).
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new(&mut solver);
        let a = bb.fresh_word(8);
        let b = bb.fresh_word(8);
        let ab = bb.add_word(&a, &b, bb.false_lit());
        let ba = bb.add_word(&b, &a, bb.false_lit());
        let eq = bb.eq_word(&ab, &ba);
        bb.assert_lit(!eq);
        drop(bb);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn symbolic_fig1_counterexample_exists() {
        // The paper's Fig 1: (a+b)+c != (b+c)+a at 8-bit intermediates,
        // when the final sum is taken at 9 bits. SAT must find a witness.
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new(&mut solver);
        let a = bb.fresh_word(8);
        let b = bb.fresh_word(8);
        let c = bb.fresh_word(8);
        let sext = |w: &[Lit]| -> Vec<Lit> {
            let mut v = w.to_vec();
            v.push(w[7]);
            v
        };
        let t1 = bb.add_word(&a, &b, bb.false_lit());
        let t1w = sext(&t1);
        let cw = sext(&c);
        let lhs = bb.add_word(&t1w, &cw, bb.false_lit());
        let t2 = bb.add_word(&b, &c, bb.false_lit());
        let t2w = sext(&t2);
        let aw = sext(&a);
        let rhs = bb.add_word(&t2w, &aw, bb.false_lit());
        let eq = bb.eq_word(&lhs, &rhs);
        bb.assert_lit(!eq);
        drop(bb);
        assert_eq!(solver.solve(), SolveResult::Sat);
        // The witness must really violate associativity when replayed.
        let (av, bv, cv) = (
            model_word(&solver, &a),
            model_word(&solver, &b),
            model_word(&solver, &c),
        );
        let l = av.wrapping_add(&bv).sext(9).wrapping_add(&cv.sext(9));
        let r = bv.wrapping_add(&cv).sext(9).wrapping_add(&av.sext(9));
        assert_ne!(l, r, "model {av} {bv} {cv} is not a counterexample");
    }

    #[test]
    fn constant_operand_gates_fold_without_clauses() {
        // Every gate with a known true/false operand must return the
        // folded literal and emit no clauses at all.
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new(&mut solver);
        let a = bb.fresh_word(1)[0];
        let f = bb.fresh_word(1)[0];
        let tt = bb.true_lit();
        let ff = bb.false_lit();
        let before = bb.solver().num_clauses();
        assert_eq!(bb.and_gate(a, ff), ff);
        assert_eq!(bb.and_gate(tt, a), a);
        assert_eq!(bb.or_gate(a, ff), a);
        assert_eq!(bb.or_gate(a, tt), tt);
        assert_eq!(bb.or_gate(ff, a), a);
        assert_eq!(bb.xor_gate(a, ff), a);
        assert_eq!(bb.xor_gate(a, tt), !a);
        assert_eq!(bb.mux_gate(a, tt, ff), a);
        assert_eq!(bb.mux_gate(a, ff, tt), !a);
        assert_eq!(bb.mux_gate(tt, a, f), a);
        assert_eq!(bb.mux_gate(ff, a, f), f);
        assert_eq!(bb.mux_gate(a, f, f), f);
        assert_eq!(
            bb.solver().num_clauses(),
            before,
            "constant folds must not emit clauses"
        );
        // Constant-arm muxes collapse to a single gate, not three.
        let one_gate = bb.mux_gate(a, tt, f); // a | f
        let after_or = bb.solver().num_clauses();
        assert_eq!(one_gate, bb.or_gate(a, f), "hash-conses with plain or");
        assert_eq!(bb.solver().num_clauses(), after_or);
    }

    #[test]
    fn folded_mux_matches_reference_semantics() {
        // Truth-table check of every mux fold against `if s { t } else
        // { f }`, with inputs pinned by unit clauses so the folded
        // literal's model value is forced.
        for bits in 0..8u32 {
            let (sv, tv, fv) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let expect = if sv { tv } else { fv };
            // Five shapes: both arms free, t const, f const, t == !f,
            // and both arms const.
            for shape in 0..5 {
                let mut solver = Solver::new();
                let mut bb = BitBlaster::new(&mut solver);
                let s = bb.fresh_word(1)[0];
                let x = bb.fresh_word(1)[0];
                let konst = |bb: &mut BitBlaster, v: bool| {
                    if v {
                        bb.true_lit()
                    } else {
                        bb.false_lit()
                    }
                };
                let (t, f) = match shape {
                    0 => (x, bb.fresh_word(1)[0]),
                    1 => (konst(&mut bb, tv), x),
                    2 => (x, konst(&mut bb, fv)),
                    3 => (x, !x),
                    _ => (konst(&mut bb, tv), konst(&mut bb, fv)),
                };
                if shape == 3 && tv == fv {
                    continue; // t == !f cannot represent tv == fv
                }
                let o = bb.mux_gate(s, t, f);
                bb.assert_lit(if sv { s } else { !s });
                for (lit, v) in [(t, tv), (f, fv)] {
                    if lit != bb.true_lit() && lit != bb.false_lit() {
                        bb.assert_lit(if v { lit } else { !lit });
                    }
                }
                drop(bb);
                assert_eq!(
                    solver.solve(),
                    SolveResult::Sat,
                    "shape {shape} bits {bits}"
                );
                assert_eq!(
                    solver.lit_value(o),
                    Some(expect),
                    "shape {shape} s={sv} t={tv} f={fv}"
                );
            }
        }
    }
}
