//! Symbolic simulation: executing a flat module over SAT literals.
//!
//! [`SymbolicSim`] mirrors `dfv_rtl::Simulator` cycle for cycle, but every
//! word is a vector of literals, so one symbolic run covers *all* concrete
//! runs. Unrolling a transaction is just stepping the symbolic simulator
//! `k` times.

use dfv_bits::Bv;
use dfv_rtl::ir::{Module, Node};
use dfv_sat::Lit;

use crate::bitblast::BitBlaster;
use crate::spec::{InitState, SecError};

/// The largest memory depth the bit-blaster will expand word-by-word.
pub const MEM_BLAST_LIMIT: usize = 256;

/// Symbolic (literal-vector) state of a flat module.
#[derive(Debug)]
pub struct SymbolicSim<'m> {
    module: &'m Module,
    regs: Vec<Vec<Lit>>,
    mems: Vec<Vec<Vec<Lit>>>,
    mem_read_regs: Vec<Vec<Vec<Lit>>>,
}

/// The per-cycle result of a symbolic step: every node's literal vector.
#[derive(Debug, Clone)]
pub struct SymbolicCycle {
    /// Node values, indexed by node id.
    pub nodes: Vec<Vec<Lit>>,
}

impl SymbolicCycle {
    /// The word for a named output port.
    ///
    /// # Panics
    ///
    /// Panics if the module has no such output (validated specs never hit
    /// this).
    pub fn output(&self, module: &Module, name: &str) -> Vec<Lit> {
        let idx = module
            .output_index(name)
            .unwrap_or_else(|| panic!("no output port {name:?}"));
        self.nodes[module.output_drivers[idx].index()].clone()
    }
}

impl<'m> SymbolicSim<'m> {
    /// Creates symbolic state for `module` with the given initial-state
    /// convention.
    ///
    /// # Errors
    ///
    /// Returns [`SecError`] if the module is not flat or a memory exceeds
    /// [`MEM_BLAST_LIMIT`].
    pub fn new(
        bb: &mut BitBlaster<'_>,
        module: &'m Module,
        init: InitState,
    ) -> Result<Self, SecError> {
        if !module.instances.is_empty() {
            return Err(SecError::Rtl(dfv_rtl::RtlError::NotFlat {
                module: module.name.clone(),
            }));
        }
        for m in &module.mems {
            if m.depth > MEM_BLAST_LIMIT {
                return Err(SecError::MemTooLarge {
                    mem: m.name.clone(),
                    depth: m.depth,
                    limit: MEM_BLAST_LIMIT,
                });
            }
        }
        let regs = module
            .regs
            .iter()
            .map(|r| match init {
                InitState::Reset => bb.constant(&r.init),
                InitState::Free => bb.fresh_word(r.width),
            })
            .collect();
        let mems = module
            .mems
            .iter()
            .map(|m| {
                (0..m.depth)
                    .map(|i| {
                        let word = m
                            .init
                            .get(i)
                            .cloned()
                            .unwrap_or_else(|| Bv::zero(m.data_width));
                        match init {
                            InitState::Reset => bb.constant(&word),
                            InitState::Free => bb.fresh_word(m.data_width),
                        }
                    })
                    .collect()
            })
            .collect();
        let mem_read_regs = module
            .mems
            .iter()
            .map(|m| {
                m.read_ports
                    .iter()
                    .map(|_| match init {
                        InitState::Reset => bb.constant(&Bv::zero(m.data_width)),
                        InitState::Free => bb.fresh_word(m.data_width),
                    })
                    .collect()
            })
            .collect();
        Ok(SymbolicSim {
            module,
            regs,
            mems,
            mem_read_regs,
        })
    }

    /// The module being simulated.
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Current symbolic register state (for induction-style checks).
    pub fn reg_state(&self) -> &[Vec<Lit>] {
        &self.regs
    }

    /// Evaluates one cycle's combinational logic from the given input words
    /// (in input-port order) and then commits the clock edge.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the module's input ports in count
    /// or width — the caller (the checker) constructs them from a validated
    /// spec.
    pub fn step(&mut self, bb: &mut BitBlaster<'_>, inputs: &[Vec<Lit>]) -> SymbolicCycle {
        self.step_hooked(bb, inputs, &mut |_, _, _| {})
    }

    /// Like [`SymbolicSim::step`], but invokes `hook` on every node's word
    /// *after* it is computed and *before* any consumer (downstream node,
    /// register next, memory port) reads it. The hook may rewrite the word
    /// in place — this is how the SAT sweeper substitutes proven-equal
    /// representative literals so the rest of the encoding collapses
    /// through the bit-blaster's gate caches. The hook's `usize` argument
    /// is the node index within the module.
    ///
    /// # Panics
    ///
    /// As [`SymbolicSim::step`]; additionally if the hook changes a word's
    /// width.
    pub fn step_hooked(
        &mut self,
        bb: &mut BitBlaster<'_>,
        inputs: &[Vec<Lit>],
        hook: &mut dyn FnMut(&mut BitBlaster<'_>, usize, &mut Vec<Lit>),
    ) -> SymbolicCycle {
        let m = self.module;
        assert_eq!(inputs.len(), m.inputs.len(), "input count mismatch");
        let mut nodes: Vec<Vec<Lit>> = Vec::with_capacity(m.nodes.len());
        for (i, node) in m.nodes.iter().enumerate() {
            let w = m.node_widths[i];
            let mut v: Vec<Lit> = match node {
                Node::Input(idx) => {
                    assert_eq!(inputs[*idx].len(), w as usize, "input width mismatch");
                    inputs[*idx].clone()
                }
                Node::Const(c) => bb.constant(c),
                Node::RegQ(r) => self.regs[r.index()].clone(),
                Node::MemReadData(mm, p) => self.mem_read_regs[mm.index()][*p].clone(),
                Node::InstOut(..) => unreachable!("module is flat"),
                Node::Un(op, a) => bb.un_op(*op, &nodes[a.index()]),
                Node::Bin(op, a, b) => bb.bin_op(*op, &nodes[a.index()], &nodes[b.index()]),
                Node::Mux { sel, t, f } => {
                    let s = nodes[sel.index()][0];
                    bb.mux_word(s, &nodes[t.index()], &nodes[f.index()])
                }
                Node::Slice { src, hi, lo } => {
                    nodes[src.index()][*lo as usize..=*hi as usize].to_vec()
                }
                Node::Concat(hi, lo) => {
                    let mut v = nodes[lo.index()].clone();
                    v.extend_from_slice(&nodes[hi.index()]);
                    v
                }
                Node::Zext(a, tw) => {
                    let mut v = nodes[a.index()].clone();
                    v.resize(*tw as usize, bb.false_lit());
                    v
                }
                Node::Sext(a, tw) => {
                    let mut v = nodes[a.index()].clone();
                    let sign = *v.last().expect("nonzero width");
                    v.resize(*tw as usize, sign);
                    v
                }
            };
            debug_assert_eq!(v.len(), w as usize);
            hook(bb, i, &mut v);
            assert_eq!(v.len(), w as usize, "hook must preserve word width");
            nodes.push(v);
        }
        // Clock edge: registers.
        let mut new_regs = Vec::with_capacity(self.regs.len());
        for (ri, reg) in m.regs.iter().enumerate() {
            let next = nodes[reg.next.expect("checked module").index()].clone();
            let v = match reg.en {
                None => next,
                Some(en) => {
                    let e = nodes[en.index()][0];
                    bb.mux_word(e, &next, &self.regs[ri])
                }
            };
            new_regs.push(v);
        }
        // Clock edge: memories (read-first).
        for (mi, mem) in m.mems.iter().enumerate() {
            let eff_addr = |bb: &mut BitBlaster<'_>, addr: &[Lit]| -> Vec<Lit> {
                if mem.depth == (1usize << mem.addr_width.min(63)) {
                    addr.to_vec()
                } else {
                    // Non-power-of-two depth wraps modulo depth, matching
                    // the concrete simulator.
                    let d = bb.constant(&Bv::from_u64(mem.addr_width, mem.depth as u64));
                    bb.bin_op(dfv_rtl::ir::BinOp::URem, addr, &d)
                }
            };
            // Sample read ports against pre-write contents.
            for (pi, rp) in mem.read_ports.iter().enumerate() {
                let addr = eff_addr(bb, &nodes[rp.addr.index()]);
                let mut acc = bb.constant(&Bv::zero(mem.data_width));
                for (wi, word) in self.mems[mi].iter().enumerate() {
                    let idx = bb.constant(&Bv::from_u64(mem.addr_width, wi as u64));
                    let hit = bb.eq_word(&addr, &idx);
                    acc = bb.mux_word(hit, word, &acc);
                }
                self.mem_read_regs[mi][pi] = acc;
            }
            // Apply writes.
            for wp in &mem.write_ports {
                let en = nodes[wp.en.index()][0];
                let addr = eff_addr(bb, &nodes[wp.addr.index()]);
                let data = nodes[wp.data.index()].clone();
                for wi in 0..mem.depth {
                    let idx = bb.constant(&Bv::from_u64(mem.addr_width, wi as u64));
                    let hit = bb.eq_word(&addr, &idx);
                    let strobe = bb.and_gate(en, hit);
                    self.mems[mi][wi] = bb.mux_word(strobe, &data, &self.mems[mi][wi]);
                }
            }
        }
        self.regs = new_regs;
        SymbolicCycle { nodes }
    }
}

/// Evaluates a *combinational* module symbolically (no state, one shot).
///
/// # Panics
///
/// Panics if the module has state or instances, or inputs mismatch; callers
/// validate with [`crate::EquivSpec::validate`] first.
pub fn eval_comb_symbolic(
    bb: &mut BitBlaster<'_>,
    module: &Module,
    inputs: &[Vec<Lit>],
) -> SymbolicCycle {
    eval_comb_symbolic_hooked(bb, module, inputs, &mut |_, _, _| {})
}

/// [`eval_comb_symbolic`] with a per-node rewrite hook (see
/// [`SymbolicSim::step_hooked`]).
///
/// # Panics
///
/// As [`eval_comb_symbolic`].
pub fn eval_comb_symbolic_hooked(
    bb: &mut BitBlaster<'_>,
    module: &Module,
    inputs: &[Vec<Lit>],
    hook: &mut dyn FnMut(&mut BitBlaster<'_>, usize, &mut Vec<Lit>),
) -> SymbolicCycle {
    assert!(module.is_combinational(), "module must be combinational");
    let mut sim = SymbolicSim::new(bb, module, InitState::Reset).expect("comb module");
    sim.step_hooked(bb, inputs, hook)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitblast::model_word;
    use dfv_rtl::{ModuleBuilder, Simulator};
    use dfv_sat::{SolveResult, Solver};

    /// A two-stage accumulator pipeline used across the tests.
    fn pipeline() -> Module {
        let mut b = ModuleBuilder::new("pipe");
        let x = b.input("x", 8);
        let s1 = b.reg("s1", 8, Bv::zero(8));
        let s2 = b.reg("s2", 8, Bv::zero(8));
        let q1 = b.reg_q(s1);
        let q2 = b.reg_q(s2);
        let one = b.lit(8, 1);
        let inc = b.add(x, one);
        b.connect_reg(s1, inc);
        let dbl = b.add(q1, q1);
        b.connect_reg(s2, dbl);
        b.output("y", q2);
        b.finish().unwrap()
    }

    #[test]
    fn symbolic_constant_run_matches_concrete() {
        let m = pipeline();
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new(&mut solver);
        let mut sym = SymbolicSim::new(&mut bb, &m, InitState::Reset).unwrap();
        let x = bb.constant(&Bv::from_u64(8, 5));
        let mut outs = Vec::new();
        for _ in 0..4 {
            let cyc = sym.step(&mut bb, std::slice::from_ref(&x));
            outs.push(cyc.output(&m, "y"));
        }
        drop(bb);
        assert_eq!(solver.solve(), SolveResult::Sat);
        let mut sim = Simulator::new(m.clone()).unwrap();
        for word in outs {
            let expect = sim.output("y");
            sim.step_with(&[("x", Bv::from_u64(8, 5))]);
            assert_eq!(model_word(&solver, &word), expect);
        }
    }

    #[test]
    fn symbolic_memory_matches_concrete() {
        let mut b = ModuleBuilder::new("memmod");
        let we = b.input("we", 1);
        let addr = b.input("addr", 3);
        let data = b.input("data", 8);
        let mem = b.mem("m", 3, 8, 6); // deliberately non-power-of-two depth
        b.mem_write(mem, we, addr, data);
        let rd = b.mem_read(mem, addr);
        b.output("q", rd);
        let m = b.finish().unwrap();

        let stim: Vec<(u64, u64, u64)> = vec![
            (1, 2, 0xAA),
            (1, 7, 0xBB), // addr 7 wraps to 1 (depth 6)
            (0, 2, 0x00),
            (1, 1, 0xCC),
            (0, 1, 0x00),
            (0, 7, 0x00),
        ];

        let mut solver = Solver::new();
        let mut bb = BitBlaster::new(&mut solver);
        let mut sym = SymbolicSim::new(&mut bb, &m, InitState::Reset).unwrap();
        let mut words = Vec::new();
        for &(we_v, a_v, d_v) in &stim {
            let ins = vec![
                bb.constant(&Bv::from_u64(1, we_v)),
                bb.constant(&Bv::from_u64(3, a_v)),
                bb.constant(&Bv::from_u64(8, d_v)),
            ];
            let cyc = sym.step(&mut bb, &ins);
            words.push(cyc.output(&m, "q"));
        }
        drop(bb);
        assert_eq!(solver.solve(), SolveResult::Sat);

        let mut sim = Simulator::new(m.clone()).unwrap();
        for (i, &(we_v, a_v, d_v)) in stim.iter().enumerate() {
            let expect = {
                sim.poke("we", Bv::from_u64(1, we_v));
                sim.poke("addr", Bv::from_u64(3, a_v));
                sim.poke("data", Bv::from_u64(8, d_v));
                let o = sim.output("q");
                sim.step();
                o
            };
            assert_eq!(model_word(&solver, &words[i]), expect, "cycle {i}");
        }
    }

    #[test]
    fn oversized_memory_rejected() {
        let mut b = ModuleBuilder::new("big");
        let addr = b.input("addr", 12);
        let mem = b.mem("huge", 12, 8, 4096);
        let rd = b.mem_read(mem, addr);
        b.output("q", rd);
        let m = b.finish().unwrap();
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new(&mut solver);
        match SymbolicSim::new(&mut bb, &m, InitState::Reset) {
            Err(SecError::MemTooLarge { depth, .. }) => assert_eq!(depth, 4096),
            other => panic!("expected MemTooLarge, got {other:?}"),
        }
    }
}
