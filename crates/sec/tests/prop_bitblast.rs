//! Soundness fuzz: on random expression DAGs, the bit-blaster must agree
//! with the concrete cycle simulator — the two independent implementations
//! of the IR semantics.
// Gated: property-based tests depend on the external `proptest` crate,
// which offline builds cannot fetch. Enable with `--features proptest-tests`
// in an environment that can resolve crates.io dependencies.
#![cfg(feature = "proptest-tests")]

use dfv_bits::Bv;
use dfv_rtl::{ModuleBuilder, Simulator};
use dfv_sat::{SolveResult, Solver};
use dfv_sec::{model_word, Binding, BitBlaster, EquivSpec};
use proptest::prelude::*;

/// A recipe for one random combinational module.
#[derive(Debug, Clone)]
struct Recipe {
    input_widths: Vec<u32>,
    ops: Vec<(u8, usize, usize)>, // (op selector, operand indices)
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        proptest::collection::vec(1u32..12, 2..4),
        proptest::collection::vec((0u8..22, any::<usize>(), any::<usize>()), 3..25),
    )
        .prop_map(|(input_widths, ops)| Recipe { input_widths, ops })
}

/// Like [`recipe`], but excluding multiply/divide/remainder (selectors
/// 2..=6): proving two independently bit-blasted multiplier or divider
/// circuits equal is exponentially hard for CDCL (the known weakness that
/// makes commercial SEC tools use word-level reasoning), so the *symbolic*
/// self-equivalence fuzz sticks to the operators SAT handles well. The
/// multiplier/divider encodings themselves are exhaustively validated on
/// concrete values in `bitblast::tests`.
fn cheap_recipe() -> impl Strategy<Value = Recipe> {
    recipe().prop_map(|mut r| {
        for op in &mut r.ops {
            if (op.0 % 22) >= 2 && (op.0 % 22) <= 6 {
                op.0 = 0; // replace with add
            }
        }
        r
    })
}

/// Builds the module and returns it; node list grows as ops apply to
/// earlier nodes (wrapping indices).
fn build(r: &Recipe) -> dfv_rtl::Module {
    let mut b = ModuleBuilder::new("fuzz");
    let mut nodes = Vec::new();
    for (i, w) in r.input_widths.iter().enumerate() {
        nodes.push(b.input(format!("i{i}"), *w));
    }
    for (sel, xi, yi) in &r.ops {
        let x = nodes[xi % nodes.len()];
        let y = nodes[yi % nodes.len()];
        // Arithmetic/logic ops need equal widths: resize y to x's width.
        let n = match sel % 22 {
            0 => {
                let y = resize(&mut b, y, x);
                b.add(x, y)
            }
            1 => {
                let y = resize(&mut b, y, x);
                b.sub(x, y)
            }
            2 => {
                let y = resize(&mut b, y, x);
                b.mul(x, y)
            }
            3 => {
                let y = resize(&mut b, y, x);
                b.udiv(x, y)
            }
            4 => {
                let y = resize(&mut b, y, x);
                b.urem(x, y)
            }
            5 => {
                let y = resize(&mut b, y, x);
                b.sdiv(x, y)
            }
            6 => {
                let y = resize(&mut b, y, x);
                b.srem(x, y)
            }
            7 => {
                let y = resize(&mut b, y, x);
                b.and(x, y)
            }
            8 => {
                let y = resize(&mut b, y, x);
                b.or(x, y)
            }
            9 => {
                let y = resize(&mut b, y, x);
                b.xor(x, y)
            }
            10 => b.shl(x, y),
            11 => b.lshr(x, y),
            12 => b.ashr(x, y),
            13 => {
                let y = resize(&mut b, y, x);
                b.eq(x, y)
            }
            14 => {
                let y = resize(&mut b, y, x);
                b.ult(x, y)
            }
            15 => {
                let y = resize(&mut b, y, x);
                b.slt(x, y)
            }
            16 => b.not(x),
            17 => b.neg(x),
            18 => b.red_xor(x),
            19 => {
                let w = b.node_width(x);
                b.sext(x, w + 3)
            }
            20 => b.concat(x, y),
            21 => {
                let w = b.node_width(x);
                let hi = (w - 1).min(w / 2 + 1);
                b.slice(x, hi, hi / 2)
            }
            _ => unreachable!(),
        };
        // Keep widths bounded so division circuits stay tractable.
        let n = if b.node_width(n) > 24 {
            b.trunc(n, 24)
        } else {
            n
        };
        nodes.push(n);
    }
    b.output("out", *nodes.last().expect("nonempty"));
    b.finish().expect("fuzz module is structurally valid")
}

/// Resizes `y` to `x`'s width so binary operators type-check.
fn resize(b: &mut ModuleBuilder, y: dfv_rtl::NodeId, x: dfv_rtl::NodeId) -> dfv_rtl::NodeId {
    let w = b.node_width(x);
    b.resize_zext(y, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bitblast_matches_simulator(r in recipe(), seeds in proptest::collection::vec(any::<u64>(), 4)) {
        let module = build(&r);
        // Concrete inputs.
        let inputs: Vec<(String, Bv)> = module
            .inputs
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), Bv::from_u64(p.width, seeds[i % seeds.len()])))
            .collect();
        // Concrete evaluation.
        let mut sim = Simulator::new(module.clone()).unwrap();
        let refs: Vec<(&str, Bv)> = inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        let expect = sim.eval_comb(&refs)["out"].clone();
        // Symbolic evaluation with the same constants.
        let mut solver = Solver::new();
        let mut bb = BitBlaster::new(&mut solver);
        let words: Vec<Vec<dfv_sat::Lit>> = inputs.iter().map(|(_, v)| bb.constant(v)).collect();
        let cyc = dfv_sec::eval_comb_symbolic(&mut bb, &module, &words);
        let out = cyc.output(&module, "out");
        drop(bb);
        prop_assert_eq!(solver.solve(), SolveResult::Sat);
        let got = model_word(&solver, &out);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn self_equivalence_holds(r in cheap_recipe()) {
        // Every module is transaction-equivalent to itself in one cycle.
        let module = build(&r);
        let mut spec = EquivSpec::new(1).compare("out", "out", 0);
        for p in &module.inputs {
            spec = spec.bind(&p.name, 0, Binding::Slm(p.name.clone()));
        }
        let report = dfv_sec::check_equivalence(&module, &module, &spec).unwrap();
        prop_assert!(report.outcome.is_equivalent());
    }
}
