//! Seeded property suite: the SAT-sweeping front-end must be
//! *verdict-neutral*. For random combinational module pairs — exact
//! copies, commutatively-shuffled variants, and near-miss mutants — a
//! sweep-on check must reach the same [`EquivOutcome`] as the sweep-off
//! check, and when both sides falsify, their counterexamples must land on
//! the same mismatch locations (the checker has already replayed each one
//! concretely before returning it, so location parity is mismatch parity).
//!
//! Uses the repo's own `SplitMix64` instead of `proptest` so the suite
//! runs in offline CI unconditionally; the seeds below are fixed, making
//! every run byte-for-byte reproducible.

use dfv_bits::SplitMix64;
use dfv_rtl::{Module, ModuleBuilder, NodeId};
use dfv_sec::{
    check_equivalence_with, Binding, CheckOptions, EquivOutcome, EquivSpec, SweepOptions,
};

/// One random combinational DAG, described as data so the same program
/// can be rebuilt verbatim, commutatively shuffled, or mutated.
#[derive(Clone)]
struct Program {
    input_widths: Vec<u32>,
    /// (op selector, operand index, operand index)
    ops: Vec<(u8, usize, usize)>,
}

const NUM_OPS: u8 = 14;

fn random_program(rng: &mut SplitMix64) -> Program {
    let n_inputs = 2 + (rng.next_u64() % 3) as usize;
    let input_widths = (0..n_inputs)
        .map(|_| 1 + (rng.next_u64() % 8) as u32)
        .collect();
    let n_ops = 4 + (rng.next_u64() % 12) as usize;
    let ops = (0..n_ops)
        .map(|_| {
            (
                (rng.next_u64() % NUM_OPS as u64) as u8,
                rng.next_u64() as usize,
                rng.next_u64() as usize,
            )
        })
        .collect();
    Program { input_widths, ops }
}

/// Builds the program. `swap_commutative[i]` flips the operand order of
/// op `i` when that op commutes — a semantics-preserving shuffle the
/// sweep's commutative canonicalization is expected to see through.
fn build(p: &Program, name: &str, swap_commutative: &[bool]) -> Module {
    let mut b = ModuleBuilder::new(name);
    let mut nodes: Vec<NodeId> = Vec::new();
    for (i, w) in p.input_widths.iter().enumerate() {
        nodes.push(b.input(format!("i{i}"), *w));
    }
    for (i, (sel, xi, yi)) in p.ops.iter().enumerate() {
        let mut x = nodes[xi % nodes.len()];
        let y0 = nodes[yi % nodes.len()];
        let w = b.node_width(x);
        let mut y = b.resize_zext(y0, w);
        // Swap *after* the resize: both operands are now the same width,
        // so for a commutative op the swap is semantics-preserving even
        // though the operand cones differ structurally.
        let commutes = matches!(sel % NUM_OPS, 0 | 2 | 3 | 4 | 7 | 12);
        if commutes && swap_commutative.get(i).copied().unwrap_or(false) {
            std::mem::swap(&mut x, &mut y);
        }
        let n = match sel % NUM_OPS {
            0 => b.add(x, y),
            1 => b.sub(x, y),
            2 => b.xor(x, y),
            3 => b.and(x, y),
            4 => b.or(x, y),
            5 => b.not(x),
            6 => b.neg(x),
            7 => b.eq(x, y),
            8 => b.ult(x, y),
            9 => {
                let s = b.red_or(y);
                let nx = b.not(x);
                b.mux(s, x, nx)
            }
            10 => b.concat(x, y),
            11 => b.sext(x, b.node_width(x) + 2),
            // Multiply kept narrow: the whole point of the suite is to run
            // the *unswept* path too, and wide independent multipliers are
            // exponentially hard for CDCL.
            12 => {
                let xt = b.trunc_or_keep(x, 5);
                let wt = b.node_width(xt);
                let yt = b.resize_zext(y, wt);
                b.mul(xt, yt)
            }
            13 => {
                let wx = b.node_width(x).max(4);
                let amt = b.lit(wx, (xi % 4) as u64);
                let xw = b.resize_zext(x, wx);
                b.shl(xw, amt)
            }
            _ => unreachable!(),
        };
        let n = if b.node_width(n) > 20 {
            b.trunc(n, 20)
        } else {
            n
        };
        nodes.push(n);
    }
    let y = *nodes.last().unwrap();
    b.output("y", y);
    let mid = nodes[nodes.len() / 2];
    b.output("z", mid);
    b.finish().unwrap()
}

/// Near-miss mutant: one op selector is nudged to a neighboring op with
/// the same arity and width behavior, so the DAG shape survives but the
/// function (usually) changes.
fn mutate(p: &Program, rng: &mut SplitMix64) -> Program {
    let mut m = p.clone();
    let i = (rng.next_u64() as usize) % m.ops.len();
    let (sel, x, y) = m.ops[i];
    let new = match sel % NUM_OPS {
        0 => 1, // add -> sub
        1 => 2, // sub -> xor
        2 => 4, // xor -> or
        3 => 4, // and -> or
        4 => 3, // or -> and
        7 => 8, // eq -> ult
        _ => 2, // anything else -> xor
    };
    m.ops[i] = (new, x, y);
    m
}

trait TruncOrKeep {
    fn trunc_or_keep(&mut self, n: NodeId, w: u32) -> NodeId;
}

impl TruncOrKeep for ModuleBuilder {
    fn trunc_or_keep(&mut self, n: NodeId, w: u32) -> NodeId {
        if self.node_width(n) > w {
            self.trunc(n, w)
        } else {
            n
        }
    }
}

/// Single-transaction spec: every RTL input is bound to the SLM input of
/// the same name, both outputs compared at cycle 0.
fn spec_for(p: &Program) -> EquivSpec {
    let mut s = EquivSpec::new(1);
    for i in 0..p.input_widths.len() {
        s = s.bind(&format!("i{i}"), 0, Binding::Slm(format!("i{i}")));
    }
    s.compare("y", "y", 0).compare("z", "z", 0)
}

/// Sorted mismatch *locations* of a falsifying outcome. Values are
/// deliberately excluded: sweeping changes which satisfying assignment
/// the solver finds, but never where the models disagree is witnessed.
fn mismatch_locations(o: &EquivOutcome) -> Option<Vec<(String, String, u32)>> {
    match o {
        EquivOutcome::NotEquivalent(cex) => {
            let mut locs: Vec<_> = cex
                .mismatches
                .iter()
                .map(|m| (m.slm_output.clone(), m.rtl_output.clone(), m.rtl_cycle))
                .collect();
            locs.sort();
            Some(locs)
        }
        _ => None,
    }
}

fn check_pair(slm: &Module, rtl: &Module, spec: &EquivSpec) -> (EquivOutcome, EquivOutcome) {
    let off = check_equivalence_with(slm, rtl, spec, &CheckOptions::default())
        .expect("sweep-off check failed to run");
    let on = check_equivalence_with(slm, rtl, spec, &CheckOptions::swept())
        .expect("sweep-on check failed to run");
    (off.outcome, on.outcome)
}

/// Asserts strict verdict parity under unlimited budgets: same outcome
/// variant, and on falsification the same mismatch locations.
fn assert_parity(off: &EquivOutcome, on: &EquivOutcome, what: &str) {
    match (off, on) {
        (EquivOutcome::Equivalent, EquivOutcome::Equivalent) => {}
        (EquivOutcome::NotEquivalent(_), EquivOutcome::NotEquivalent(_)) => {
            assert_eq!(
                mismatch_locations(off),
                mismatch_locations(on),
                "{what}: counterexamples disagree on mismatch locations"
            );
        }
        _ => panic!("{what}: sweep changed the verdict: off={off:?} on={on:?}"),
    }
}

#[test]
fn sweep_is_verdict_neutral_on_equivalent_shuffles() {
    let mut rng = SplitMix64::new(0x5EED_A11C_E001);
    for case in 0..24u64 {
        let p = random_program(&mut rng);
        let swaps: Vec<bool> = (0..p.ops.len()).map(|_| rng.next_bool()).collect();
        let slm = build(&p, "slm", &[]);
        let rtl = build(&p, "rtl", &swaps);
        let spec = spec_for(&p);
        let (off, on) = check_pair(&slm, &rtl, &spec);
        assert!(
            matches!(off, EquivOutcome::Equivalent),
            "case {case}: shuffled copy must be equivalent sweep-off"
        );
        assert_parity(&off, &on, &format!("shuffle case {case}"));
    }
}

#[test]
fn sweep_is_verdict_neutral_on_near_miss_mutants() {
    let mut rng = SplitMix64::new(0x5EED_B0B0_0002);
    let mut falsified = 0u32;
    for case in 0..24u64 {
        let p = random_program(&mut rng);
        let m = mutate(&p, &mut rng);
        let slm = build(&p, "slm", &[]);
        let rtl = build(&m, "rtl", &[]);
        let spec = spec_for(&p);
        let (off, on) = check_pair(&slm, &rtl, &spec);
        if matches!(off, EquivOutcome::NotEquivalent(_)) {
            falsified += 1;
        }
        assert_parity(&off, &on, &format!("mutant case {case}"));
    }
    // The mutator must actually bite on a healthy fraction of cases —
    // otherwise the suite is silently testing only the Equivalent path.
    assert!(falsified >= 8, "only {falsified}/24 mutants falsified");
}

#[test]
fn budgeted_sweep_never_contradicts() {
    // Under a starved budget either side may degrade to Inconclusive
    // (sweeping can even *rescue* a proof the raw miter can't afford —
    // that asymmetry is allowed). The one forbidden outcome is a
    // contradiction: Equivalent on one side, NotEquivalent on the other.
    let mut rng = SplitMix64::new(0x5EED_CAFE_0003);
    for case in 0..16u64 {
        let p = random_program(&mut rng);
        let m = mutate(&p, &mut rng);
        let slm = build(&p, "slm", &[]);
        let rtl = build(&m, "rtl", &[]);
        let spec = spec_for(&p);
        let mut opts = CheckOptions::with_budget(dfv_sec::Budget::unlimited().with_conflicts(3));
        opts.fallback_transactions = 0;
        let off = check_equivalence_with(&slm, &rtl, &spec, &opts).unwrap();
        opts.sweep = SweepOptions::on();
        let on = check_equivalence_with(&slm, &rtl, &spec, &opts).unwrap();
        let contradiction = matches!(
            (&off.outcome, &on.outcome),
            (EquivOutcome::Equivalent, EquivOutcome::NotEquivalent(_))
                | (EquivOutcome::NotEquivalent(_), EquivOutcome::Equivalent)
        );
        assert!(
            !contradiction,
            "case {case}: contradictory verdicts off={:?} on={:?}",
            off.outcome, on.outcome
        );
    }
}
