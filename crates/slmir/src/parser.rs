//! Recursive-descent parser for SLM-C.

use std::fmt;

use crate::ast::*;
use crate::token::{lex, LexError, Span, Tok, Token};

/// A parse error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the problem is.
    pub span: Span,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: parse error: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            span: e.span,
            message: e.message,
        }
    }
}

/// Parses a complete SLM-C program.
///
/// # Errors
///
/// Returns [`ParseError`] with the location of the first problem.
///
/// # Example
///
/// ```
/// let src = r#"
///     uint8 inc(uint8 x) {
///         return x + 1;
///     }
/// "#;
/// let prog = dfv_slmir::parse(src)?;
/// assert_eq!(prog.funcs.len(), 1);
/// assert_eq!(prog.funcs[0].name, "inc");
/// # Ok::<(), dfv_slmir::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_expr_id: 0,
    };
    let mut prog = Program::default();
    while !p.at_eof() {
        prog.funcs.push(p.func()?);
    }
    Ok(prog)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_expr_id: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at_eof(&self) -> bool {
        self.peek().tok == Tok::Eof
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            span: self.peek().span,
            message: message.into(),
        })
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(&self.peek().tok, Tok::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<Span, ParseError> {
        let span = self.peek().span;
        if self.eat_punct(p) {
            Ok(span)
        } else {
            self.err(format!(
                "expected {p:?}, found {}",
                describe(&self.peek().tok)
            ))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Tok::Ident(s) = &self.peek().tok {
            if s == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        let span = self.peek().span;
        match self.peek().tok.clone() {
            Tok::Ident(s) if !is_keyword(&s) => {
                self.bump();
                Ok((s, span))
            }
            other => self.err(format!("expected identifier, found {}", describe(&other))),
        }
    }

    fn expect_int(&mut self) -> Result<u64, ParseError> {
        match self.peek().tok.clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            other => self.err(format!("expected integer, found {}", describe(&other))),
        }
    }

    fn expr_id(&mut self) -> u32 {
        let id = self.next_expr_id;
        self.next_expr_id += 1;
        id
    }

    fn mk(&mut self, span: Span, kind: ExprKind) -> Expr {
        Expr {
            id: self.expr_id(),
            span,
            kind,
        }
    }

    /// Tries to parse a scalar type name at the current position.
    fn peek_scalar_ty(&self) -> Option<(ScalarTy, usize)> {
        let Tok::Ident(name) = &self.peek().tok else {
            return None;
        };
        let base = match name.as_str() {
            "bool" => Some((ScalarTy::BOOL, 1)),
            "int" => Some((ScalarTy::INT, 1)),
            "unsigned" | "uint" => Some((
                ScalarTy {
                    width: 32,
                    signed: false,
                },
                1,
            )),
            "int8" => Some((
                ScalarTy {
                    width: 8,
                    signed: true,
                },
                1,
            )),
            "int16" => Some((
                ScalarTy {
                    width: 16,
                    signed: true,
                },
                1,
            )),
            "int32" => Some((
                ScalarTy {
                    width: 32,
                    signed: true,
                },
                1,
            )),
            "int64" => Some((
                ScalarTy {
                    width: 64,
                    signed: true,
                },
                1,
            )),
            "uint8" => Some((
                ScalarTy {
                    width: 8,
                    signed: false,
                },
                1,
            )),
            "uint16" => Some((
                ScalarTy {
                    width: 16,
                    signed: false,
                },
                1,
            )),
            "uint32" => Some((
                ScalarTy {
                    width: 32,
                    signed: false,
                },
                1,
            )),
            "uint64" => Some((
                ScalarTy {
                    width: 64,
                    signed: false,
                },
                1,
            )),
            _ => None,
        }?;
        // Optional <N> width parameter on int/uint.
        let next_is = |off: usize, p: &str| matches!(self.tokens.get(self.pos + off).map(|t| &t.tok), Some(Tok::Punct(q)) if *q == p);
        if (name == "int" || name == "uint") && next_is(1, "<") {
            if let Some(Token {
                tok: Tok::Int(w), ..
            }) = self.tokens.get(self.pos + 2)
            {
                if next_is(3, ">") {
                    return Some((
                        ScalarTy {
                            width: *w as u32,
                            signed: name == "int",
                        },
                        4,
                    ));
                }
            }
            return None;
        }
        Some(base)
    }

    fn scalar_ty(&mut self) -> Result<ScalarTy, ParseError> {
        match self.peek_scalar_ty() {
            Some((ty, n)) => {
                if ty.width == 0 || ty.width > 128 {
                    return self.err(format!("unsupported width {} (1..=128)", ty.width));
                }
                for _ in 0..n {
                    self.bump();
                }
                Ok(ty)
            }
            None => self.err(format!(
                "expected type, found {}",
                describe(&self.peek().tok)
            )),
        }
    }

    fn func(&mut self) -> Result<Func, ParseError> {
        let span = self.peek().span;
        let ret = if self.eat_kw("void") {
            Ty::Void
        } else {
            let s = self.scalar_ty()?;
            if self.eat_punct("*") {
                Ty::Ptr(s)
            } else {
                Ty::Scalar(s)
            }
        };
        let (name, _) = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let is_out = self.eat_kw("out");
                let s = self.scalar_ty()?;
                if self.eat_punct("*") {
                    let (pname, _) = self.expect_ident()?;
                    params.push(Param {
                        name: pname,
                        ty: Ty::Ptr(s),
                        is_out,
                    });
                } else {
                    let (pname, _) = self.expect_ident()?;
                    let ty = if self.eat_punct("[") {
                        let n = self.expect_int()? as usize;
                        self.expect_punct("]")?;
                        Ty::Array(s, n)
                    } else {
                        Ty::Scalar(s)
                    };
                    params.push(Param {
                        name: pname,
                        ty,
                        is_out,
                    });
                }
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Func {
            name,
            span,
            params,
            ret,
            body,
        })
    }

    /// A `{ ... }` block or a single statement (for `if`/`for`/`while`
    /// bodies without braces).
    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.is_punct("{") {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek().span;
        // Declarations start with a type name.
        if self.peek_scalar_ty().is_some() {
            let s = self.scalar_ty()?;
            if self.eat_punct("*") {
                let (name, _) = self.expect_ident()?;
                let init = if self.eat_punct("=") {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                return Ok(Stmt {
                    span,
                    kind: StmtKind::Decl {
                        name,
                        ty: Ty::Ptr(s),
                        init,
                    },
                });
            }
            let (name, _) = self.expect_ident()?;
            if self.eat_punct("[") {
                let n = self.expect_int()? as usize;
                self.expect_punct("]")?;
                self.expect_punct(";")?;
                return Ok(Stmt {
                    span,
                    kind: StmtKind::Decl {
                        name,
                        ty: Ty::Array(s, n),
                        init: None,
                    },
                });
            }
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            return Ok(Stmt {
                span,
                kind: StmtKind::Decl {
                    name,
                    ty: Ty::Scalar(s),
                    init,
                },
            });
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_body = self.stmt_or_block()?;
            let else_body = if self.eat_kw("else") {
                self.stmt_or_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt {
                span,
                kind: StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                },
            });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            // for (int i = e; cond; i = step) — the loop declares its var.
            if self.peek_scalar_ty().is_some() {
                let _ = self.scalar_ty()?;
            }
            let (var, _) = self.expect_ident()?;
            self.expect_punct("=")?;
            let init = self.expr()?;
            self.expect_punct(";")?;
            let cond = self.expr()?;
            self.expect_punct(";")?;
            let step = self.for_step(&var)?;
            self.expect_punct(")")?;
            let body = self.stmt_or_block()?;
            return Ok(Stmt {
                span,
                kind: StmtKind::For {
                    var,
                    init,
                    cond,
                    step,
                    body,
                },
            });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.stmt_or_block()?;
            return Ok(Stmt {
                span,
                kind: StmtKind::While { cond, body },
            });
        }
        if self.eat_kw("return") {
            let value = if self.eat_punct(";") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(e)
            };
            return Ok(Stmt {
                span,
                kind: StmtKind::Return(value),
            });
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt {
                span,
                kind: StmtKind::Break,
            });
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt {
                span,
                kind: StmtKind::Continue,
            });
        }
        if self.is_punct("{") {
            let body = self.block()?;
            return Ok(Stmt {
                span,
                kind: StmtKind::Block(body),
            });
        }
        // Assignment or expression statement.
        if self.is_punct("*") {
            self.bump();
            let (name, _) = self.expect_ident()?;
            self.expect_punct("=")?;
            let rhs = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt {
                span,
                kind: StmtKind::Assign {
                    lhs: LValue::Deref(name),
                    rhs,
                },
            });
        }
        // ident (= | [i] = | ++/--/op= | call)
        let (name, nspan) = self.expect_ident()?;
        if self.eat_punct("(") {
            let args = self.call_args()?;
            self.expect_punct(";")?;
            let call = self.mk(nspan, ExprKind::Call { callee: name, args });
            return Ok(Stmt {
                span,
                kind: StmtKind::Expr(call),
            });
        }
        if self.eat_punct("[") {
            let index = self.expr()?;
            self.expect_punct("]")?;
            let lhs = LValue::Index { base: name, index };
            let rhs = self.compound_rhs(&lhs)?;
            self.expect_punct(";")?;
            return Ok(Stmt {
                span,
                kind: StmtKind::Assign { lhs, rhs },
            });
        }
        let lhs = LValue::Var(name);
        let rhs = self.compound_rhs(&lhs)?;
        self.expect_punct(";")?;
        Ok(Stmt {
            span,
            kind: StmtKind::Assign { lhs, rhs },
        })
    }

    /// Parses `= e`, `op= e`, `++`, or `--` and desugars to a plain rhs.
    fn compound_rhs(&mut self, lhs: &LValue) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        let current = |p: &mut Parser| -> Expr {
            match lhs {
                LValue::Var(n) => p.mk(span, ExprKind::Var(n.clone())),
                LValue::Index { base, index } => p.mk(
                    span,
                    ExprKind::Index {
                        base: base.clone(),
                        index: Box::new(index.clone()),
                    },
                ),
                LValue::Deref(n) => {
                    let v = p.mk(span, ExprKind::Var(n.clone()));
                    p.mk(span, ExprKind::Deref(Box::new(v)))
                }
            }
        };
        for (punct, op) in [
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
            ("%=", BinOp::Rem),
            ("&=", BinOp::And),
            ("|=", BinOp::Or),
            ("^=", BinOp::Xor),
            ("<<=", BinOp::Shl),
            (">>=", BinOp::Shr),
        ] {
            if self.eat_punct(punct) {
                let rhs = self.expr()?;
                let cur = current(self);
                return Ok(self.mk(span, ExprKind::Bin(op, Box::new(cur), Box::new(rhs))));
            }
        }
        if self.eat_punct("++") {
            let cur = current(self);
            let one = self.mk(span, ExprKind::Int(1));
            return Ok(self.mk(
                span,
                ExprKind::Bin(BinOp::Add, Box::new(cur), Box::new(one)),
            ));
        }
        if self.eat_punct("--") {
            let cur = current(self);
            let one = self.mk(span, ExprKind::Int(1));
            return Ok(self.mk(
                span,
                ExprKind::Bin(BinOp::Sub, Box::new(cur), Box::new(one)),
            ));
        }
        self.expect_punct("=")?;
        self.expr()
    }

    /// The step of a `for`: `i = expr`, `i += e`, `i++`, `i--`.
    fn for_step(&mut self, var: &str) -> Result<Expr, ParseError> {
        let (name, span) = self.expect_ident()?;
        if name != var {
            return Err(ParseError {
                span,
                message: format!("for-step must update the loop variable {var:?}"),
            });
        }
        self.compound_rhs(&LValue::Var(name))
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.eat_punct(")") {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat_punct(")") {
                return Ok(args);
            }
            self.expect_punct(",")?;
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let span = cond.span;
            let t = self.expr()?;
            self.expect_punct(":")?;
            let f = self.expr()?;
            return Ok(self.mk(
                span,
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    t: Box::new(t),
                    f: Box::new(f),
                },
            ));
        }
        Ok(cond)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span;
            lhs = self.mk(span, ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        let Tok::Punct(p) = &self.peek().tok else {
            return None;
        };
        Some(match *p {
            "||" => (BinOp::LOr, 1),
            "&&" => (BinOp::LAnd, 2),
            "|" => (BinOp::Or, 3),
            "^" => (BinOp::Xor, 4),
            "&" => (BinOp::And, 5),
            "==" => (BinOp::Eq, 6),
            "!=" => (BinOp::Ne, 6),
            "<" => (BinOp::Lt, 7),
            "<=" => (BinOp::Le, 7),
            ">" => (BinOp::Gt, 7),
            ">=" => (BinOp::Ge, 7),
            "<<" => (BinOp::Shl, 8),
            ">>" => (BinOp::Shr, 8),
            "+" => (BinOp::Add, 9),
            "-" => (BinOp::Sub, 9),
            "*" => (BinOp::Mul, 10),
            "/" => (BinOp::Div, 10),
            "%" => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        if self.eat_punct("-") {
            let e = self.unary()?;
            return Ok(self.mk(span, ExprKind::Un(UnOp::Neg, Box::new(e))));
        }
        if self.eat_punct("~") {
            let e = self.unary()?;
            return Ok(self.mk(span, ExprKind::Un(UnOp::Not, Box::new(e))));
        }
        if self.eat_punct("!") {
            let e = self.unary()?;
            return Ok(self.mk(span, ExprKind::Un(UnOp::LNot, Box::new(e))));
        }
        if self.eat_punct("&") {
            let (name, _) = self.expect_ident()?;
            return Ok(self.mk(span, ExprKind::AddrOf(name)));
        }
        if self.eat_punct("*") {
            let e = self.unary()?;
            return Ok(self.mk(span, ExprKind::Deref(Box::new(e))));
        }
        // Cast: '(' type ')' unary
        if self.is_punct("(") {
            let save = self.pos;
            self.bump();
            if self.peek_scalar_ty().is_some() {
                let ty = self.scalar_ty()?;
                if self.eat_punct(")") {
                    let e = self.unary()?;
                    return Ok(self.mk(span, ExprKind::Cast(ty, Box::new(e))));
                }
            }
            self.pos = save;
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        if let Tok::Int(v) = self.peek().tok {
            self.bump();
            return Ok(self.mk(span, ExprKind::Int(v)));
        }
        if self.eat_kw("true") {
            return Ok(self.mk(span, ExprKind::Int(1)));
        }
        if self.eat_kw("false") {
            return Ok(self.mk(span, ExprKind::Int(0)));
        }
        if self.eat_kw("malloc") {
            // malloc<ty>(count) — element type defaults to uint<32>.
            let elem = if self.eat_punct("<") {
                let t = self.scalar_ty()?;
                self.expect_punct(">")?;
                t
            } else {
                ScalarTy::INT
            };
            self.expect_punct("(")?;
            let count = self.expr()?;
            self.expect_punct(")")?;
            return Ok(self.mk(
                span,
                ExprKind::Malloc {
                    elem,
                    count: Box::new(count),
                },
            ));
        }
        let (name, _) = self.expect_ident()?;
        if self.eat_punct("(") {
            let args = self.call_args()?;
            return Ok(self.mk(span, ExprKind::Call { callee: name, args }));
        }
        if self.eat_punct("[") {
            let index = self.expr()?;
            self.expect_punct("]")?;
            return Ok(self.mk(
                span,
                ExprKind::Index {
                    base: name,
                    index: Box::new(index),
                },
            ));
        }
        Ok(self.mk(span, ExprKind::Var(name)))
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "for"
            | "while"
            | "return"
            | "break"
            | "continue"
            | "void"
            | "out"
            | "malloc"
            | "true"
            | "false"
            | "int"
            | "uint"
            | "unsigned"
            | "bool"
            | "int8"
            | "int16"
            | "int32"
            | "int64"
            | "uint8"
            | "uint16"
            | "uint32"
            | "uint64"
    )
}

fn describe(t: &Tok) -> String {
    match t {
        Tok::Ident(s) => format!("identifier {s:?}"),
        Tok::Int(v) => format!("integer {v}"),
        Tok::Punct(p) => format!("{p:?}"),
        Tok::Eof => "end of input".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_function() {
        let p = parse("uint8 inc(uint8 x) { return x + 1; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.name, "inc");
        assert_eq!(
            f.ret,
            Ty::Scalar(ScalarTy {
                width: 8,
                signed: false
            })
        );
        assert_eq!(f.params.len(), 1);
        assert!(matches!(f.body[0].kind, StmtKind::Return(Some(_))));
    }

    #[test]
    fn parses_generic_widths() {
        let p = parse("int<9> f(uint<3> a) { return (int<9>) a; }").unwrap();
        assert_eq!(
            p.funcs[0].ret,
            Ty::Scalar(ScalarTy {
                width: 9,
                signed: true
            })
        );
        assert_eq!(
            p.funcs[0].params[0].ty,
            Ty::Scalar(ScalarTy {
                width: 3,
                signed: false
            })
        );
    }

    #[test]
    fn parses_arrays_and_out_params() {
        let p = parse("void f(uint8 img[16], out uint8 res[16]) { res[0] = img[0]; }").unwrap();
        let f = &p.funcs[0];
        assert_eq!(
            f.params[0].ty,
            Ty::Array(
                ScalarTy {
                    width: 8,
                    signed: false
                },
                16
            )
        );
        assert!(!f.params[0].is_out);
        assert!(f.params[1].is_out);
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            int sum(int n) {
                int acc = 0;
                for (int i = 0; i < 10; i++) {
                    if (i == n) break;
                    acc += i;
                }
                while (acc > 100) { acc -= 3; }
                return acc;
            }
        "#;
        let p = parse(src).unwrap();
        let f = &p.funcs[0];
        assert_eq!(f.body.len(), 4);
        assert!(matches!(f.body[1].kind, StmtKind::For { .. }));
        assert!(matches!(f.body[2].kind, StmtKind::While { .. }));
    }

    #[test]
    fn parses_pointers_and_malloc() {
        let src = r#"
            int f() {
                int x = 5;
                int *p = &x;
                *p = 7;
                int *q = malloc(4);
                return *p + *q;
            }
        "#;
        let p = parse(src).unwrap();
        assert!(matches!(
            p.funcs[0].body[1].kind,
            StmtKind::Decl { ty: Ty::Ptr(_), .. }
        ));
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse("int f(int a, int b, int c) { return a + b * c; }").unwrap();
        let StmtKind::Return(Some(e)) = &p.funcs[0].body[0].kind else {
            panic!()
        };
        let ExprKind::Bin(BinOp::Add, _, rhs) = &e.kind else {
            panic!("expected + at top: {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn ternary_and_logical() {
        let p = parse("int f(int a) { return a > 0 && a < 10 ? a : 0 - a; }").unwrap();
        let StmtKind::Return(Some(e)) = &p.funcs[0].body[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn errors_have_locations() {
        let e = parse("uint8 f(uint8 x) { return x + ; }").unwrap_err();
        assert_eq!(e.span.line, 1);
        assert!(e.message.contains("expected"));
        assert!(parse("uint8 f( { }").is_err());
        assert!(parse("uint8 f() { int x = 1 }").is_err()); // missing ;
        assert!(parse("uint<0> f() { return 0; }").is_err()); // zero width
    }

    #[test]
    fn for_step_must_touch_loop_var() {
        assert!(parse("int f(int j) { for (int i = 0; i < 4; j++) { } return 0; }").is_err());
    }

    #[test]
    fn compound_assignment_desugars() {
        let p = parse("int f(int a) { a <<= 2; return a; }").unwrap();
        let StmtKind::Assign { rhs, .. } = &p.funcs[0].body[0].kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Shl, _, _)));
    }
}
