//! Lexer for SLM-C, the workspace's C-like system-level modelling language.

use std::fmt;

/// A source location (1-based line and column) used in diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (value, and whether it was written in hex).
    Int(u64),
    /// Punctuation / operators.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

/// A lexing error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Where the bad input starts.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: lex error: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    // Longest first so maximal munch works.
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "++", "--", "->", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
    "=", "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
];

/// Tokenizes SLM-C source. `//` and `/* */` comments are skipped.
///
/// # Errors
///
/// Returns [`LexError`] on unrecognized characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let advance = |i: &mut usize, line: &mut u32, col: &mut u32, n: usize, bytes: &[u8]| {
        for _ in 0..n {
            if bytes[*i] == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        }
    };
    'outer: while i < bytes.len() {
        let span = Span { line, col };
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            advance(&mut i, &mut line, &mut col, 1, bytes);
            continue;
        }
        if c == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    advance(&mut i, &mut line, &mut col, 1, bytes);
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                advance(&mut i, &mut line, &mut col, 2, bytes);
                while i + 1 < bytes.len() {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        advance(&mut i, &mut line, &mut col, 2, bytes);
                        continue 'outer;
                    }
                    advance(&mut i, &mut line, &mut col, 1, bytes);
                }
                return Err(LexError {
                    span,
                    message: "unterminated block comment".into(),
                });
            }
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            out.push(Token {
                tok: Tok::Ident(src[start..i].to_string()),
                span,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let hex = c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x';
            if hex {
                advance(&mut i, &mut line, &mut col, 2, bytes);
            }
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                advance(&mut i, &mut line, &mut col, 1, bytes);
            }
            let text = &src[start..i];
            let digits = if hex { &text[2..] } else { text };
            let value = u64::from_str_radix(&digits.replace('_', ""), if hex { 16 } else { 10 })
                .map_err(|_| LexError {
                    span,
                    message: format!("invalid integer literal {text:?}"),
                })?;
            out.push(Token {
                tok: Tok::Int(value),
                span,
            });
            continue;
        }
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                advance(&mut i, &mut line, &mut col, p.len(), bytes);
                out.push(Token {
                    tok: Tok::Punct(p),
                    span,
                });
                continue 'outer;
            }
        }
        return Err(LexError {
            span,
            message: format!("unexpected character {:?}", c as char),
        });
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        assert_eq!(
            toks("x1 = 0xFF + 42;"),
            vec![
                Tok::Ident("x1".into()),
                Tok::Punct("="),
                Tok::Int(255),
                Tok::Punct("+"),
                Tok::Int(42),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn maximal_munch() {
        assert_eq!(
            toks("a<<=b<<c<=d<e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Ident("c".into()),
                Tok::Punct("<="),
                Tok::Ident("d".into()),
                Tok::Punct("<"),
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // line\n /* block\n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn spans_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].span, Span { line: 1, col: 1 });
        assert_eq!(ts[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn errors_located() {
        let e = lex("a @ b").unwrap_err();
        assert_eq!(e.span, Span { line: 1, col: 3 });
        assert!(e.to_string().contains('@'));
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn underscored_and_hex_literals() {
        assert_eq!(toks("1_000"), vec![Tok::Int(1000), Tok::Eof]);
        assert_eq!(toks("0xdead_beef"), vec![Tok::Int(0xDEAD_BEEF), Tok::Eof]);
        assert!(lex("0xZZ").is_err());
    }
}
