//! The design-for-verification lint: the paper's §4.3 coding guidelines as
//! machine-checked rules.
//!
//! | rule | paper guideline | severity |
//! |------|-----------------|----------|
//! | DFV001 | "use statically sized arrays rather than pointers that are assigned memory allocated dynamically using new or malloc" | error |
//! | DFV002 | "explicit use of memories rather than using pointer aliasing" | error |
//! | DFV003 | "using static loop bounds with conditional exits" — data-dependent `for` bound | error |
//! | DFV004 | unbounded `while` loop (no static bound at all) | error |
//! | DFV005 | recursion — no static call structure | error |
//! | DFV006 | "single point of entry" — functions unreachable from the top | warning |
//! | DFV007 | `out` parameter not assigned on every path (latch-like behaviour in hardware) | warning |
//!
//! *Error*-severity findings are exactly the constructs
//! [`crate::elaborate`] rejects; a program with no error findings is
//! statically analyzable, i.e. usable for sequential equivalence checking
//! and behavioural synthesis.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::ast::*;
use crate::token::Span;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintRule {
    /// Dynamic allocation.
    Dfv001,
    /// Pointer aliasing.
    Dfv002,
    /// Data-dependent `for` bound.
    Dfv003,
    /// Unbounded `while`.
    Dfv004,
    /// Recursion.
    Dfv005,
    /// Unreachable function.
    Dfv006,
    /// Out parameter not assigned on every path.
    Dfv007,
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintRule::Dfv001 => "DFV001",
            LintRule::Dfv002 => "DFV002",
            LintRule::Dfv003 => "DFV003",
            LintRule::Dfv004 => "DFV004",
            LintRule::Dfv005 => "DFV005",
            LintRule::Dfv006 => "DFV006",
            LintRule::Dfv007 => "DFV007",
        };
        f.write_str(s)
    }
}

/// Finding severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; elaboration still succeeds.
    Warning,
    /// Blocks static elaboration.
    Error,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct LintFinding {
    /// The violated rule.
    pub rule: LintRule,
    /// Severity.
    pub severity: Severity,
    /// Function the finding is in (empty for program-level findings).
    pub func: String,
    /// Location.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// The paper's suggested rewrite.
    pub suggestion: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}] in {:?}: {} (fix: {})",
            self.span,
            match self.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            },
            self.rule,
            self.func,
            self.message,
            self.suggestion
        )
    }
}

/// Runs all design-for-verification lints on `prog`, treating `entry` as
/// the single point of entry for reachability (DFV006).
///
/// # Example
///
/// ```
/// use dfv_slmir::{lint, parse, LintRule};
///
/// let prog = parse("int f(int n) { int *p = malloc(8); return n; }").unwrap();
/// let findings = lint(&prog, Some("f"));
/// assert!(findings.iter().any(|f| f.rule == LintRule::Dfv001));
/// ```
pub fn lint(prog: &Program, entry: Option<&str>) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for f in &prog.funcs {
        let mut ctx = FuncLint {
            func: f,
            out: &mut out,
        };
        ctx.check_signature();
        ctx.stmts(&f.body);
        ctx.check_out_assignment();
    }
    check_recursion(prog, &mut out);
    if let Some(entry) = entry {
        check_reachability(prog, entry, &mut out);
    }
    out.sort_by_key(|f| (f.span.line, f.span.col));
    out
}

/// Whether the program has no error-severity findings (and is therefore
/// accepted by the elaborator).
pub fn is_conditioned(prog: &Program, entry: &str) -> bool {
    lint(prog, Some(entry))
        .iter()
        .all(|f| f.severity != Severity::Error)
}

struct FuncLint<'a> {
    func: &'a Func,
    out: &'a mut Vec<LintFinding>,
}

impl<'a> FuncLint<'a> {
    fn emit(
        &mut self,
        rule: LintRule,
        severity: Severity,
        span: Span,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) {
        self.out.push(LintFinding {
            rule,
            severity,
            func: self.func.name.clone(),
            span,
            message: message.into(),
            suggestion: suggestion.into(),
        });
    }

    fn check_signature(&mut self) {
        let span = self.func.span;
        if matches!(self.func.ret, Ty::Ptr(_)) {
            self.emit(
                LintRule::Dfv002,
                Severity::Error,
                span,
                "function returns a pointer",
                "return a scalar or use an out array parameter",
            );
        }
        let ptr_params: Vec<String> = self
            .func
            .params
            .iter()
            .filter(|p| matches!(p.ty, Ty::Ptr(_)))
            .map(|p| p.name.clone())
            .collect();
        for name in ptr_params {
            self.emit(
                LintRule::Dfv002,
                Severity::Error,
                span,
                format!("parameter {name:?} is a pointer"),
                "pass a statically sized array instead",
            );
        }
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                if matches!(ty, Ty::Ptr(_)) {
                    self.emit(
                        LintRule::Dfv002,
                        Severity::Error,
                        s.span,
                        format!("{name:?} is declared as a pointer"),
                        "use a statically sized array (explicit memory) instead of pointer aliasing",
                    );
                }
                if let Some(e) = init {
                    self.expr(e);
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                if let LValue::Deref(n) = lhs {
                    self.emit(
                        LintRule::Dfv002,
                        Severity::Error,
                        s.span,
                        format!("store through pointer {n:?}"),
                        "write to an explicit array element instead",
                    );
                }
                if let LValue::Index { index, .. } = lhs {
                    self.expr(index);
                }
                self.expr(rhs);
            }
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.expr(cond);
                self.stmts(then_body);
                self.stmts(else_body);
            }
            StmtKind::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                self.expr(init);
                self.expr(step);
                // DFV003: the bound must involve only the loop variable and
                // literals.
                let mut frees = HashSet::new();
                free_vars(cond, &mut frees);
                frees.remove(var.as_str());
                if !frees.is_empty() {
                    let mut names: Vec<String> = frees.into_iter().collect();
                    names.sort_unstable();
                    self.emit(
                        LintRule::Dfv003,
                        Severity::Error,
                        s.span,
                        format!(
                            "loop bound depends on runtime value(s) {}",
                            names.join(", ")
                        ),
                        "loop to the static maximum and exit early: \
                         `for (i = 0; i < MAX; i++) { if (i >= n) break; ... }`",
                    );
                }
                self.stmts(body);
            }
            StmtKind::While { cond, body } => {
                self.expr(cond);
                self.emit(
                    LintRule::Dfv004,
                    Severity::Error,
                    s.span,
                    "while loop has no static bound",
                    "rewrite as a for loop with a static bound and a conditional exit",
                );
                self.stmts(body);
            }
            StmtKind::Return(Some(e)) => self.expr(e),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(body) => self.stmts(body),
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Malloc { .. } => {
                self.emit(
                    LintRule::Dfv001,
                    Severity::Error,
                    e.span,
                    "dynamic allocation with malloc",
                    "use a statically sized array; the hardware structure must be \
                     statically determinable",
                );
            }
            ExprKind::AddrOf(n) => {
                self.emit(
                    LintRule::Dfv002,
                    Severity::Error,
                    e.span,
                    format!("address of {n:?} taken"),
                    "use an explicit memory (array) rather than aliasing",
                );
            }
            ExprKind::Deref(inner) => {
                self.emit(
                    LintRule::Dfv002,
                    Severity::Error,
                    e.span,
                    "pointer dereference",
                    "read an explicit array element instead",
                );
                self.expr(inner);
            }
            ExprKind::Un(_, a) => self.expr(a),
            ExprKind::Bin(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Ternary { cond, t, f } => {
                self.expr(cond);
                self.expr(t);
                self.expr(f);
            }
            ExprKind::Cast(_, a) => self.expr(a),
            ExprKind::Index { index, .. } => self.expr(index),
            ExprKind::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Int(_) | ExprKind::Var(_) => {}
        }
    }

    /// DFV007: every `out` parameter must be assigned on every control path
    /// (loops may run zero times, so assignments inside them do not count).
    fn check_out_assignment(&mut self) {
        let out_names: Vec<String> = self
            .func
            .params
            .iter()
            .filter(|p| p.is_out)
            .map(|p| p.name.clone())
            .collect();
        for name in out_names {
            if !must_assign(&self.func.body, &name) {
                self.emit(
                    LintRule::Dfv007,
                    Severity::Warning,
                    self.func.span,
                    format!("out parameter {name:?} may be left unassigned on some path"),
                    "assign a default value unconditionally before any branches",
                );
            }
        }
    }
}

/// Whether every path through `body` assigns `name` (conservative).
fn must_assign(body: &[Stmt], name: &str) -> bool {
    for s in body {
        match &s.kind {
            StmtKind::Assign { lhs, .. } => match lhs {
                LValue::Var(n) if n == name => return true,
                LValue::Index { base, .. } if base == name => return true,
                _ => {}
            },
            StmtKind::If {
                then_body,
                else_body,
                ..
            } if must_assign(then_body, name) && must_assign(else_body, name) => {
                return true;
            }
            StmtKind::Block(b) if must_assign(b, name) => {
                return true;
            }
            // Calls could assign via their own out params; treat a call
            // passing `name` as an argument as a definite assignment.
            StmtKind::Expr(e) => {
                if let ExprKind::Call { args, .. } = &e.kind {
                    if args
                        .iter()
                        .any(|a| matches!(&a.kind, ExprKind::Var(n) if n == name))
                    {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}

fn free_vars(e: &Expr, out: &mut HashSet<String>) {
    match &e.kind {
        ExprKind::Var(n) => {
            out.insert(n.clone());
        }
        ExprKind::Index { base, index } => {
            out.insert(base.clone());
            free_vars(index, out);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                free_vars(a, out);
            }
        }
        ExprKind::Un(_, a) | ExprKind::Cast(_, a) | ExprKind::Deref(a) => free_vars(a, out),
        ExprKind::Bin(_, a, b) => {
            free_vars(a, out);
            free_vars(b, out);
        }
        ExprKind::Ternary { cond, t, f } => {
            free_vars(cond, out);
            free_vars(t, out);
            free_vars(f, out);
        }
        ExprKind::AddrOf(n) => {
            out.insert(n.clone());
        }
        ExprKind::Malloc { count, .. } => free_vars(count, out),
        ExprKind::Int(_) => {}
    }
}

fn calls_in(body: &[Stmt], out: &mut HashSet<String>) {
    fn in_expr(e: &Expr, out: &mut HashSet<String>) {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                out.insert(callee.clone());
                for a in args {
                    in_expr(a, out);
                }
            }
            ExprKind::Un(_, a) | ExprKind::Cast(_, a) | ExprKind::Deref(a) => in_expr(a, out),
            ExprKind::Bin(_, a, b) => {
                in_expr(a, out);
                in_expr(b, out);
            }
            ExprKind::Ternary { cond, t, f } => {
                in_expr(cond, out);
                in_expr(t, out);
                in_expr(f, out);
            }
            ExprKind::Index { index, .. } => in_expr(index, out),
            ExprKind::Malloc { count, .. } => in_expr(count, out),
            _ => {}
        }
    }
    for s in body {
        match &s.kind {
            StmtKind::Decl { init: Some(e), .. }
            | StmtKind::Expr(e)
            | StmtKind::Return(Some(e)) => in_expr(e, out),
            StmtKind::Assign { lhs, rhs } => {
                if let LValue::Index { index, .. } = lhs {
                    in_expr(index, out);
                }
                in_expr(rhs, out);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                in_expr(cond, out);
                calls_in(then_body, out);
                calls_in(else_body, out);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                in_expr(init, out);
                in_expr(cond, out);
                in_expr(step, out);
                calls_in(body, out);
            }
            StmtKind::While { cond, body } => {
                in_expr(cond, out);
                calls_in(body, out);
            }
            StmtKind::Block(body) => calls_in(body, out),
            _ => {}
        }
    }
}

/// Builds the call graph: function name -> called function names.
pub fn call_graph(prog: &Program) -> HashMap<String, HashSet<String>> {
    prog.funcs
        .iter()
        .map(|f| {
            let mut callees = HashSet::new();
            calls_in(&f.body, &mut callees);
            (f.name.clone(), callees)
        })
        .collect()
}

fn check_recursion(prog: &Program, out: &mut Vec<LintFinding>) {
    let graph = call_graph(prog);
    // DFS cycle detection per function.
    for f in &prog.funcs {
        let mut stack = vec![f.name.clone()];
        let mut visited = HashSet::new();
        let mut on_cycle = false;
        while let Some(n) = stack.pop() {
            if let Some(callees) = graph.get(&n) {
                for c in callees {
                    if c == &f.name {
                        on_cycle = true;
                    }
                    if visited.insert(c.clone()) {
                        stack.push(c.clone());
                    }
                }
            }
            if on_cycle {
                break;
            }
        }
        if on_cycle {
            out.push(LintFinding {
                rule: LintRule::Dfv005,
                severity: Severity::Error,
                func: f.name.clone(),
                span: f.span,
                message: format!("{:?} is (transitively) recursive", f.name),
                suggestion: "restructure into loops with static bounds so the hardware \
                             structure is statically determinable"
                    .into(),
            });
        }
    }
}

fn check_reachability(prog: &Program, entry: &str, out: &mut Vec<LintFinding>) {
    let graph = call_graph(prog);
    let mut reachable: HashSet<&str> = HashSet::new();
    let mut stack = vec![entry];
    while let Some(n) = stack.pop() {
        if !reachable.insert(n) {
            continue;
        }
        if let Some(callees) = graph.get(n) {
            for c in callees {
                stack.push(c.as_str());
            }
        }
    }
    for f in &prog.funcs {
        if !reachable.contains(f.name.as_str()) {
            out.push(LintFinding {
                rule: LintRule::Dfv006,
                severity: Severity::Warning,
                func: f.name.clone(),
                span: f.span,
                message: format!("{:?} is unreachable from entry {entry:?}", f.name),
                suggestion: "keep a single well-defined top-level entry point; remove or \
                             merge dead model code"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn rules(src: &str, entry: Option<&str>) -> Vec<LintRule> {
        lint(&parse(src).unwrap(), entry)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        let src = r#"
            uint8 helper(uint8 x) { return x * 3; }
            uint8 top(uint8 a) {
                uint8 acc = 0;
                for (int i = 0; i < 4; i++) {
                    if (acc > 100) break;
                    acc += helper(a);
                }
                return acc;
            }
        "#;
        assert!(rules(src, Some("top")).is_empty());
        assert!(is_conditioned(&parse(src).unwrap(), "top"));
    }

    #[test]
    fn dfv001_malloc() {
        let src = "int f() { int *p = malloc(4); return 0; }";
        let r = rules(src, Some("f"));
        assert!(r.contains(&LintRule::Dfv001));
        assert!(r.contains(&LintRule::Dfv002)); // the pointer decl too
    }

    #[test]
    fn dfv002_aliasing() {
        let src = "int f() { int x = 1; int *p = &x; *p = 2; return x + *p; }";
        let findings = lint(&parse(src).unwrap(), Some("f"));
        let aliasing: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == LintRule::Dfv002)
            .collect();
        assert!(aliasing.len() >= 3); // decl, addr-of, store, load
        assert!(aliasing.iter().all(|f| f.severity == Severity::Error));
    }

    #[test]
    fn dfv003_data_dependent_bound() {
        let src =
            "int f(int n) { int acc = 0; for (int i = 0; i < n; i++) { acc += i; } return acc; }";
        let findings = lint(&parse(src).unwrap(), Some("f"));
        let f3 = findings
            .iter()
            .find(|f| f.rule == LintRule::Dfv003)
            .unwrap();
        assert!(f3.message.contains('n'));
        assert!(f3.suggestion.contains("break"));
        // The paper's rewrite is clean:
        let fixed = "int f(int n) { int acc = 0; for (int i = 0; i < 16; i++) { if (i >= n) break; acc += i; } return acc; }";
        assert!(rules(fixed, Some("f")).is_empty());
    }

    #[test]
    fn dfv004_while() {
        let src = "int f(int n) { while (n > 0) { n -= 1; } return n; }";
        assert!(rules(src, Some("f")).contains(&LintRule::Dfv004));
    }

    #[test]
    fn dfv005_recursion() {
        let direct = "int f(int n) { return n == 0 ? 1 : n * f(n - 1); }";
        assert!(rules(direct, Some("f")).contains(&LintRule::Dfv005));
        let mutual = r#"
            int g(int n) { return h(n); }
            int h(int n) { return g(n); }
        "#;
        let r = rules(mutual, Some("g"));
        assert_eq!(r.iter().filter(|r| **r == LintRule::Dfv005).count(), 2);
    }

    #[test]
    fn dfv006_dead_function() {
        let src = r#"
            int top(int a) { return a; }
            int unused(int a) { return a * 2; }
        "#;
        let findings = lint(&parse(src).unwrap(), Some("top"));
        let f6 = findings
            .iter()
            .find(|f| f.rule == LintRule::Dfv006)
            .unwrap();
        assert_eq!(f6.func, "unused");
        assert_eq!(f6.severity, Severity::Warning);
    }

    #[test]
    fn dfv007_unassigned_out() {
        let src = "void f(uint8 x, out uint8 y) { if (x > 3) { y = 1; } }";
        let r = rules(src, Some("f"));
        assert!(r.contains(&LintRule::Dfv007));
        let ok = "void f(uint8 x, out uint8 y) { y = 0; if (x > 3) { y = 1; } }";
        assert!(!rules(ok, Some("f")).contains(&LintRule::Dfv007));
        let both = "void f(uint8 x, out uint8 y) { if (x > 3) { y = 1; } else { y = 2; } }";
        assert!(!rules(both, Some("f")).contains(&LintRule::Dfv007));
    }

    #[test]
    fn findings_render_readably() {
        let src = "int f() { int *p = malloc(4); return 0; }";
        let findings = lint(&parse(src).unwrap(), Some("f"));
        let text = findings[0].to_string();
        assert!(text.contains("DFV"));
        assert!(text.contains("fix:"));
    }
}
