//! SLM-C: a C-like system-level modelling language with an interpreter, a
//! design-for-verification lint, and a static elaborator to hardware.
//!
//! This crate is the workspace's stand-in for the C/C++/SystemC system-level
//! models of the paper ("Design for Verification in System-level Models and
//! RTL", DAC 2007). It implements the paper's §4.3 flow end to end:
//!
//! 1. [`parse`] SLM-C source (a C subset with bit-accurate `int<N>`/`uint<N>`
//!    types — plus the *unconditioned* constructs the paper warns about:
//!    pointers, `malloc`, data-dependent loop bounds, `while`);
//! 2. type-check with [`sema::check`] (C-style integer promotion, so
//!    `int`-based models mask narrow-RTL overflows exactly as §3.1.1
//!    describes);
//! 3. execute fast with the [`interp`] interpreter — the untimed SLM;
//! 4. [`lint`] against the DFV001–DFV007 design-for-verification rules;
//! 5. [`elaborate`] conditioned programs into a combinational `dfv-rtl`
//!    module ("inferring a hardware-like model statically from the
//!    source"), ready for sequential equivalence checking by `dfv-sec`.
//!
//! # Example
//!
//! ```
//! use dfv_slmir::{elaborate, lint, parse, Severity};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//!     uint8 saturating_add(uint8 a, uint8 b) {
//!         uint16 wide = (uint16) a + (uint16) b;
//!         if (wide > 255) { return 255; }
//!         return (uint8) wide;
//!     }
//! "#;
//! let prog = parse(src)?;
//! assert!(lint(&prog, Some("saturating_add"))
//!     .iter()
//!     .all(|f| f.severity != Severity::Error));
//! let hw = elaborate(&prog, "saturating_add")?;
//! assert!(hw.is_combinational());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
mod compile;
mod elaborate;
pub mod interp;
mod lint;
mod parser;
pub mod sema;
mod token;

pub use ast::{Program, ScalarTy, Ty};
pub use elaborate::{elaborate, elaborate_with, ElabError, ElabOptions};
pub use interp::{Interp, RunResult, Value};
pub use lint::{call_graph, is_conditioned, lint, LintFinding, LintRule, Severity};
pub use parser::{parse, ParseError};
pub use token::Span;
