//! Abstract syntax for SLM-C.
//!
//! The grammar deliberately *includes* the constructs the paper's §4.3 tells
//! SLM authors to avoid — pointers, `malloc`, data-dependent loop bounds —
//! so that the lint pass ([`crate::lint`]) has something to diagnose and the
//! elaborator ([`crate::elaborate`]) can reject them with the paper's
//! suggested rewrites.

use std::fmt;

use crate::token::Span;

/// A scalar value type: a signed or unsigned bit vector of known width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScalarTy {
    /// Width in bits (1..=128).
    pub width: u32,
    /// Two's-complement signedness.
    pub signed: bool,
}

impl ScalarTy {
    /// `bool` is `uint<1>`.
    pub const BOOL: ScalarTy = ScalarTy {
        width: 1,
        signed: false,
    };
    /// `int` is `int<32>`.
    pub const INT: ScalarTy = ScalarTy {
        width: 32,
        signed: true,
    };
}

impl fmt::Display for ScalarTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}<{}>",
            if self.signed { "int" } else { "uint" },
            self.width
        )
    }
}

/// A full type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// No value (function returns only).
    Void,
    /// A scalar.
    Scalar(ScalarTy),
    /// A statically sized array of scalars.
    Array(ScalarTy, usize),
    /// A pointer to a scalar — lintable, not synthesizable.
    Ptr(ScalarTy),
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Void => write!(f, "void"),
            Ty::Scalar(s) => write!(f, "{s}"),
            Ty::Array(s, n) => write!(f, "{s}[{n}]"),
            Ty::Ptr(s) => write!(f, "{s}*"),
        }
    }
}

/// Binary operators (C semantics, bit-accurate widths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic when the left operand is signed)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (strict — both sides evaluated; SLM-C has no side effects in
    /// expressions)
    LAnd,
    /// `||`
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `~`
    Not,
    /// `!`
    LNot,
}

/// An expression, with a unique id for type-annotation side tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique within the program.
    pub id: u32,
    /// Location.
    pub span: Span,
    /// The node itself.
    pub kind: ExprKind,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(u64),
    /// Variable reference.
    Var(String),
    /// Array element `base[index]`.
    Index {
        /// Array variable name.
        base: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Ternary `cond ? t : f`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Then value.
        t: Box<Expr>,
        /// Else value.
        f: Box<Expr>,
    },
    /// Cast `(ty) expr`.
    Cast(ScalarTy, Box<Expr>),
    /// Address-of `&var` (produces a pointer; lint DFV002).
    AddrOf(String),
    /// Dereference `*ptr`.
    Deref(Box<Expr>),
    /// `malloc(n)` intrinsic (lint DFV001).
    Malloc {
        /// Element type.
        elem: ScalarTy,
        /// Element-count expression.
        count: Box<Expr>,
    },
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar or pointer variable.
    Var(String),
    /// An array element.
    Index {
        /// Array variable name.
        base: String,
        /// Index expression.
        index: Expr,
    },
    /// A pointer dereference.
    Deref(String),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Location.
    pub span: Span,
    /// The node itself.
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// A local declaration.
    Decl {
        /// Variable name.
        name: String,
        /// Its type.
        ty: Ty,
        /// Optional initializer (scalars only).
        init: Option<Expr>,
    },
    /// An assignment.
    Assign {
        /// Target.
        lhs: LValue,
        /// Value.
        rhs: Expr,
    },
    /// An expression evaluated for effect (a call).
    Expr(Expr),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
    },
    /// C-style `for`.
    For {
        /// Loop variable (declared by the loop, `int` typed).
        var: String,
        /// Initial value.
        init: Expr,
        /// Condition (evaluated before each iteration).
        cond: Expr,
        /// Step (assigned to `var` after each iteration).
        step: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `while`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return` with optional value.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// A nested block.
    Block(Vec<Stmt>),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Name.
    pub name: String,
    /// Type (scalars and arrays; pointers are legal but lint).
    pub ty: Ty,
    /// Whether this is an `out` parameter (written by the function,
    /// surfaced as an output of the elaborated hardware model).
    pub is_out: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Name.
    pub name: String,
    /// Location of the signature.
    pub span: Span,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Ty,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A parsed SLM-C program (a set of functions).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Functions in source order.
    pub funcs: Vec<Func>,
}

impl Program {
    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }
}
