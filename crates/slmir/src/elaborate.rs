//! Static elaboration: conditioned SLM-C → a combinational hardware model.
//!
//! This is the tool capability the paper's §4.3 conditions models *for*:
//! "the SLM must be written such that a hardware-like model can be inferred
//! statically from the source by the tool". Given a program that passes the
//! error-severity lints (no pointers, no dynamic allocation, static loop
//! bounds), [`elaborate`] inlines all calls, fully unrolls all loops,
//! converts control flow to predicated multiplexers, and lowers arrays to
//! register-file-style mux trees — producing a purely combinational
//! [`Module`] in the shared `dfv-rtl` IR, ready for sequential equivalence
//! checking against hand-written RTL.
//!
//! Semantics match the interpreter ([`crate::interp`]) exactly (property
//! tested): C-style integer promotion, wrap-on-overflow, array indices
//! wrapping modulo the array length.

use std::collections::HashMap;

use dfv_bits::Bv;
use dfv_rtl::{Module, ModuleBuilder, NodeId};

use crate::ast::*;
use crate::interp::{eval_binop, Value};
use crate::sema::{self, int_promote, literal_ty, promote};
use crate::token::Span;
use std::fmt;

/// An elaboration error with location. Messages reference the DFV lint rule
/// that predicts them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// Where elaboration failed.
    pub span: Span,
    /// Description.
    pub message: String,
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: elaboration error: {}", self.span, self.message)
    }
}

impl std::error::Error for ElabError {}

/// Elaboration limits.
#[derive(Debug, Clone, Copy)]
pub struct ElabOptions {
    /// Maximum iterations unrolled per loop.
    pub max_unroll: u32,
    /// Maximum call-inlining depth.
    pub max_call_depth: u32,
}

impl Default for ElabOptions {
    fn default() -> Self {
        ElabOptions {
            max_unroll: 4096,
            max_call_depth: 64,
        }
    }
}

/// Elaborates `entry` (and everything it calls) into a combinational
/// module named after the entry function.
///
/// Interface mapping:
///
/// * non-`out` scalar parameter → input port of the scalar's width;
/// * non-`out` array parameter `t x[n]` → one wide input port of width
///   `n * t.width` (element 0 in the least significant bits) — the paper's
///   "parallel interface" (§3.2);
/// * `out` parameters → output ports (arrays packed the same way);
/// * a non-void return value → output port `"return"`.
///
/// # Errors
///
/// Returns [`ElabError`] for type errors, unconditioned constructs
/// (pointers, `malloc`, data-dependent bounds, `while`, recursion — see
/// [`crate::lint`]), or blown unroll/depth limits.
///
/// # Example
///
/// ```
/// use dfv_slmir::{elaborate, parse};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prog = parse("uint8 top(uint8 a, uint8 b) { return a ^ b; }")?;
/// let module = elaborate(&prog, "top")?;
/// assert_eq!(module.inputs.len(), 2);
/// assert_eq!(module.outputs[0].name, "return");
/// assert!(module.is_combinational());
/// # Ok(())
/// # }
/// ```
pub fn elaborate(prog: &Program, entry: &str) -> Result<Module, ElabError> {
    elaborate_with(prog, entry, &ElabOptions::default())
}

/// [`elaborate`] with explicit limits.
///
/// # Errors
///
/// As [`elaborate`].
pub fn elaborate_with(
    prog: &Program,
    entry: &str,
    opts: &ElabOptions,
) -> Result<Module, ElabError> {
    sema::check(prog).map_err(|e| ElabError {
        span: e.span,
        message: e.message,
    })?;
    let f = prog.func(entry).ok_or_else(|| ElabError {
        span: Span::default(),
        message: format!("no function named {entry:?}"),
    })?;
    let mut el = Elab {
        prog,
        b: ModuleBuilder::new(entry),
        opts,
        call_stack: vec![entry.to_string()],
    };
    let tru = el.b.constant(Bv::from_bool(true));

    let mut frame = el.new_frame(f);
    // Bind parameters to module ports.
    for p in &f.params {
        match (&p.ty, p.is_out) {
            (Ty::Scalar(s), false) => {
                let n = el.b.input(&p.name, s.width);
                frame.declare(&p.name, Slot::Scalar { node: n, ty: *s });
            }
            (Ty::Array(s, len), false) => {
                let port = el.b.input(&p.name, s.width * *len as u32);
                let elems = (0..*len)
                    .map(|i| {
                        let lo = i as u32 * s.width;
                        el.b.slice(port, lo + s.width - 1, lo)
                    })
                    .collect();
                frame.declare(&p.name, Slot::Array { elems, ty: *s });
            }
            (Ty::Scalar(s), true) => {
                let z = el.b.constant(Bv::zero(s.width));
                frame.declare(&p.name, Slot::Scalar { node: z, ty: *s });
            }
            (Ty::Array(s, len), true) => {
                let z = el.b.constant(Bv::zero(s.width));
                frame.declare(
                    &p.name,
                    Slot::Array {
                        elems: vec![z; *len],
                        ty: *s,
                    },
                );
            }
            (Ty::Ptr(_), _) => {
                return Err(ElabError {
                    span: f.span,
                    message: format!(
                        "parameter {:?} is a pointer; not synthesizable (DFV002)",
                        p.name
                    ),
                })
            }
            (Ty::Void, _) => unreachable!("void parameters cannot parse"),
        }
    }
    el.stmts(&mut frame, &f.body, tru, &mut None)?;

    // Outputs: return value, then out params in order.
    let mut have_output = false;
    if let Some(v) = frame.ret_val {
        el.b.output("return", v);
        have_output = true;
    }
    for p in &f.params {
        if !p.is_out {
            continue;
        }
        match frame.slot(&p.name).expect("declared above").clone() {
            Slot::Scalar { node, .. } => el.b.output(&p.name, node),
            Slot::Array { elems, .. } => {
                let mut acc = elems[0];
                for &e in &elems[1..] {
                    acc = el.b.concat(e, acc);
                }
                el.b.output(&p.name, acc);
            }
        }
        have_output = true;
    }
    if !have_output {
        return Err(ElabError {
            span: f.span,
            message: "entry function produces no outputs (void, no out parameters)".into(),
        });
    }
    el.b.finish().map_err(|e| ElabError {
        span: f.span,
        message: format!("internal: generated module failed checks: {e}"),
    })
}

#[derive(Debug, Clone)]
enum Slot {
    Scalar { node: NodeId, ty: ScalarTy },
    Array { elems: Vec<NodeId>, ty: ScalarTy },
}

#[derive(Debug)]
struct Frame {
    scopes: Vec<HashMap<String, Slot>>,
    /// Constant values of in-flight loop variables, for bound evaluation.
    consts: HashMap<String, Value>,
    ret_ty: Option<ScalarTy>,
    ret_val: Option<NodeId>,
    returned: NodeId,
}

impl Frame {
    fn declare(&mut self, name: &str, slot: Slot) {
        self.scopes
            .last_mut()
            .expect("scope stack nonempty")
            .insert(name.to_string(), slot);
    }

    fn slot(&self, name: &str) -> Option<&Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn slot_mut(&mut self, name: &str) -> Option<&mut Slot> {
        self.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }
}

/// Loop-control predicates for the innermost loop.
struct LoopCtx {
    broke: NodeId,
    continued: NodeId,
}

struct Elab<'p> {
    prog: &'p Program,
    b: ModuleBuilder,
    opts: &'p ElabOptions,
    call_stack: Vec<String>,
}

impl<'p> Elab<'p> {
    fn err<T>(&self, span: Span, message: impl Into<String>) -> Result<T, ElabError> {
        Err(ElabError {
            span,
            message: message.into(),
        })
    }

    fn new_frame(&mut self, f: &Func) -> Frame {
        let ret_ty = match f.ret {
            Ty::Scalar(s) => Some(s),
            _ => None,
        };
        let returned = self.b.constant(Bv::from_bool(false));
        let ret_val = ret_ty.map(|s| self.b.constant(Bv::zero(s.width)));
        Frame {
            scopes: vec![HashMap::new()],
            consts: HashMap::new(),
            ret_ty,
            ret_val,
            returned,
        }
    }

    /// Resizes `node` (of type `from`) to width `to.width`, extending per
    /// the source signedness — mirroring [`crate::interp::resize`].
    fn resize_node(&mut self, node: NodeId, from: ScalarTy, to: ScalarTy) -> NodeId {
        if from.width == to.width {
            node
        } else if from.width > to.width {
            self.b.trunc(node, to.width)
        } else if from.signed {
            self.b.sext(node, to.width)
        } else {
            self.b.zext(node, to.width)
        }
    }

    /// 1-bit truthiness of a scalar.
    fn boolify(&mut self, node: NodeId) -> NodeId {
        if self.b.node_width(node) == 1 {
            node
        } else {
            self.b.red_or(node)
        }
    }

    /// The effective guard: `guard & !returned [& !broke & !continued]`.
    fn effective_guard(&mut self, fr: &Frame, guard: NodeId, loop_ctx: &Option<LoopCtx>) -> NodeId {
        let nr = self.b.not(fr.returned);
        let mut g = self.b.and(guard, nr);
        if let Some(lc) = loop_ctx {
            let nb = self.b.not(lc.broke);
            g = self.b.and(g, nb);
            let nc = self.b.not(lc.continued);
            g = self.b.and(g, nc);
        }
        g
    }

    /// Constant evaluation over literals, loop variables, and pure
    /// operators — used for loop bounds (the "static" in static analysis).
    fn const_eval(&self, fr: &Frame, e: &Expr) -> Option<Value> {
        match &e.kind {
            ExprKind::Int(v) => {
                let t = literal_ty(*v);
                Some(Value::Scalar(Bv::from_u64(t.width, *v), t.signed))
            }
            ExprKind::Var(n) => fr.consts.get(n).cloned(),
            ExprKind::Un(op, a) => {
                let Value::Scalar(b, s) = self.const_eval(fr, a)? else {
                    return None;
                };
                Some(match op {
                    UnOp::Neg => Value::Scalar(b.wrapping_neg(), s),
                    UnOp::Not => Value::Scalar(b.not(), s),
                    UnOp::LNot => Value::Scalar(Bv::from_bool(b.is_zero()), false),
                })
            }
            ExprKind::Bin(op, a, b) => {
                let Value::Scalar(av, asig) = self.const_eval(fr, a)? else {
                    return None;
                };
                let Value::Scalar(bv, bsig) = self.const_eval(fr, b)? else {
                    return None;
                };
                Some(eval_binop(
                    *op,
                    &av,
                    ScalarTy {
                        width: av.width(),
                        signed: asig,
                    },
                    &bv,
                    ScalarTy {
                        width: bv.width(),
                        signed: bsig,
                    },
                ))
            }
            ExprKind::Ternary { cond, t, f } => {
                let Value::Scalar(c, _) = self.const_eval(fr, cond)? else {
                    return None;
                };
                if !c.is_zero() {
                    self.const_eval(fr, t)
                } else {
                    self.const_eval(fr, f)
                }
            }
            ExprKind::Cast(ty, a) => {
                let Value::Scalar(b, s) = self.const_eval(fr, a)? else {
                    return None;
                };
                Some(Value::Scalar(crate::interp::resize(&b, s, *ty), ty.signed))
            }
            _ => None,
        }
    }

    /// If `index` is statically constant, its value modulo `len`.
    fn const_index(&self, fr: &Frame, index: &Expr, len: usize) -> Option<usize> {
        match self.const_eval(fr, index)? {
            Value::Scalar(b, _) => Some((b.to_u64() as usize) % len.max(1)),
            _ => None,
        }
    }

    /// Builds the effective (wrapped) index node for an array of `len`
    /// elements.
    fn index_node(
        &mut self,
        fr: &mut Frame,
        index: &Expr,
        len: usize,
        guard: NodeId,
        loop_ctx: &mut Option<LoopCtx>,
    ) -> Result<NodeId, ElabError> {
        let (idx, it) = self.expr(fr, index, guard, loop_ctx)?;
        // Width able to address all elements. The raw index *bits* are what
        // wrap (matching the interpreter's `to_u64() % len`), so widening is
        // always a zero-extension regardless of the index's signedness.
        let need = (usize::BITS - (len.max(2) - 1).leading_zeros()).max(1);
        let idxw = if it.width < need {
            self.b.zext(idx, need)
        } else {
            idx
        };
        let w = self.b.node_width(idxw);
        if len.is_power_of_two() {
            let bits = len.trailing_zeros().max(1);
            return Ok(if w > bits {
                self.b.trunc(idxw, bits)
            } else {
                idxw
            });
        }
        let len_c = self.b.lit(w, len as u64);
        Ok(self.b.urem(idxw, len_c))
    }

    fn stmts(
        &mut self,
        fr: &mut Frame,
        body: &[Stmt],
        guard: NodeId,
        loop_ctx: &mut Option<LoopCtx>,
    ) -> Result<(), ElabError> {
        fr.scopes.push(HashMap::new());
        let mut result = Ok(());
        for s in body {
            result = self.stmt(fr, s, guard, loop_ctx);
            if result.is_err() {
                break;
            }
        }
        fr.scopes.pop();
        result
    }

    fn stmt(
        &mut self,
        fr: &mut Frame,
        s: &Stmt,
        guard: NodeId,
        loop_ctx: &mut Option<LoopCtx>,
    ) -> Result<(), ElabError> {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                let slot = match ty {
                    Ty::Scalar(sc) => {
                        let node = match init {
                            Some(e) => {
                                let (n, t) = self.expr(fr, e, guard, loop_ctx)?;
                                self.resize_node(n, t, *sc)
                            }
                            None => self.b.constant(Bv::zero(sc.width)),
                        };
                        Slot::Scalar { node, ty: *sc }
                    }
                    Ty::Array(sc, len) => {
                        let z = self.b.constant(Bv::zero(sc.width));
                        Slot::Array {
                            elems: vec![z; *len],
                            ty: *sc,
                        }
                    }
                    Ty::Ptr(_) => {
                        return self.err(
                            s.span,
                            format!("{name:?} is a pointer; not synthesizable (DFV002)"),
                        )
                    }
                    Ty::Void => unreachable!(),
                };
                fr.declare(name, slot);
                Ok(())
            }
            StmtKind::Assign { lhs, rhs } => {
                let g = self.effective_guard(fr, guard, loop_ctx);
                let (rv, rt) = self.expr(fr, rhs, guard, loop_ctx)?;
                match lhs {
                    LValue::Var(n) => {
                        if fr.consts.contains_key(n) {
                            return self.err(
                                s.span,
                                format!(
                                    "loop variable {n:?} is assigned inside the loop body; \
                                     the loop cannot be statically unrolled (DFV003)"
                                ),
                            );
                        }
                        let Some(slot) = fr.slot(n).cloned() else {
                            return self.err(s.span, format!("undeclared variable {n:?}"));
                        };
                        let Slot::Scalar { node: old, ty } = slot else {
                            return self.err(s.span, format!("cannot assign whole array {n:?}"));
                        };
                        let nv = self.resize_node(rv, rt, ty);
                        let muxed = self.b.mux(g, nv, old);
                        *fr.slot_mut(n).expect("exists") = Slot::Scalar { node: muxed, ty };
                        Ok(())
                    }
                    LValue::Index { base, index } => {
                        let Some(slot) = fr.slot(base).cloned() else {
                            return self.err(s.span, format!("undeclared variable {base:?}"));
                        };
                        let Slot::Array { elems, ty } = slot else {
                            return self.err(s.span, format!("{base:?} is not an array"));
                        };
                        let nv = self.resize_node(rv, rt, ty);
                        let new_elems = match self.const_index(fr, index, elems.len()) {
                            Some(i) => {
                                let mut es = elems;
                                es[i] = self.b.mux(g, nv, es[i]);
                                es
                            }
                            None => {
                                let idx =
                                    self.index_node(fr, index, elems.len(), guard, loop_ctx)?;
                                let iw = self.b.node_width(idx);
                                let mut es = Vec::with_capacity(elems.len());
                                for (i, &old) in elems.iter().enumerate() {
                                    let iv = self.b.lit(iw, i as u64);
                                    let hit = self.b.eq(idx, iv);
                                    let strobe = self.b.and(g, hit);
                                    es.push(self.b.mux(strobe, nv, old));
                                }
                                es
                            }
                        };
                        *fr.slot_mut(base).expect("exists") = Slot::Array {
                            elems: new_elems,
                            ty,
                        };
                        Ok(())
                    }
                    LValue::Deref(n) => self.err(
                        s.span,
                        format!("store through pointer {n:?}; not synthesizable (DFV002)"),
                    ),
                }
            }
            StmtKind::Expr(e) => {
                self.expr(fr, e, guard, loop_ctx)?;
                Ok(())
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                // Statically decidable conditions avoid useless mux trees
                // (and allow guard-independent loop bounds inside).
                if let Some(Value::Scalar(c, _)) = self.const_eval(fr, cond) {
                    return if !c.is_zero() {
                        self.stmts(fr, then_body, guard, loop_ctx)
                    } else {
                        self.stmts(fr, else_body, guard, loop_ctx)
                    };
                }
                let (c, _) = self.expr(fr, cond, guard, loop_ctx)?;
                let cb = self.boolify(c);
                let g_then = self.b.and(guard, cb);
                let ncb = self.b.not(cb);
                let g_else = self.b.and(guard, ncb);
                self.stmts(fr, then_body, g_then, loop_ctx)?;
                self.stmts(fr, else_body, g_else, loop_ctx)
            }
            StmtKind::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let Some(mut v) = self.const_eval(fr, init) else {
                    return self.err(
                        init.span,
                        "loop initial value is not a static constant (DFV003)",
                    );
                };
                // Normalize the loop variable to `int`.
                if let Value::Scalar(b, s) = &v {
                    v = Value::Scalar(crate::interp::resize(b, *s, ScalarTy::INT), true);
                }
                let had_outer = fr.consts.contains_key(var);
                let mut broke = self.b.constant(Bv::from_bool(false));
                let mut iterations = 0u32;
                let result = loop {
                    fr.consts.insert(var.clone(), v.clone());
                    let Some(Value::Scalar(c, _)) = self.const_eval(fr, cond) else {
                        break self.err(
                            cond.span,
                            "loop bound is not static (DFV003); rewrite with a static \
                             maximum and a conditional exit (`if (...) break;`)",
                        );
                    };
                    if c.is_zero() {
                        break Ok(());
                    }
                    iterations += 1;
                    if iterations > self.opts.max_unroll {
                        break self.err(
                            s.span,
                            format!(
                                "loop exceeds the unroll limit of {} iterations",
                                self.opts.max_unroll
                            ),
                        );
                    }
                    // The break predicate persists across iterations; the
                    // continue predicate is fresh per iteration. `returned`
                    // is handled by effective_guard.
                    let cont = self.b.constant(Bv::from_bool(false));
                    let mut inner = Some(LoopCtx {
                        broke,
                        continued: cont,
                    });
                    // Bind the loop variable as a constant in a new scope.
                    fr.scopes.push(HashMap::new());
                    let Value::Scalar(vb, _) = v.clone() else {
                        unreachable!("loop vars are scalar")
                    };
                    let vn = self.b.constant(vb);
                    fr.declare(
                        var,
                        Slot::Scalar {
                            node: vn,
                            ty: ScalarTy::INT,
                        },
                    );
                    let body_result = self.stmts(fr, body, guard, &mut inner);
                    fr.scopes.pop();
                    broke = inner.expect("still set").broke;
                    if let Err(e) = body_result {
                        break Err(e);
                    }
                    // Advance the loop variable statically.
                    fr.consts.insert(var.clone(), v.clone());
                    let Some(nv) = self.const_eval(fr, step) else {
                        break self.err(step.span, "loop step is not static (DFV003)");
                    };
                    let Value::Scalar(nb, ns) = nv else {
                        break self.err(step.span, "loop step must be scalar");
                    };
                    v = Value::Scalar(crate::interp::resize(&nb, ns, ScalarTy::INT), true);
                };
                if !had_outer {
                    fr.consts.remove(var);
                }
                result
            }
            StmtKind::While { cond, .. } => {
                // A while with a statically false condition is dead code.
                if let Some(Value::Scalar(c, _)) = self.const_eval(fr, cond) {
                    if c.is_zero() {
                        return Ok(());
                    }
                }
                self.err(
                    s.span,
                    "while loops have no static bound (DFV004); rewrite as a for loop \
                     with a static bound and a conditional exit",
                )
            }
            StmtKind::Return(value) => {
                let g = self.effective_guard(fr, guard, loop_ctx);
                if let (Some(e), Some(rt)) = (value, fr.ret_ty) {
                    let (vn, vt) = self.expr(fr, e, guard, loop_ctx)?;
                    let vn = self.resize_node(vn, vt, rt);
                    let old = fr.ret_val.expect("initialized for scalar returns");
                    fr.ret_val = Some(self.b.mux(g, vn, old));
                }
                fr.returned = self.b.or(fr.returned, g);
                Ok(())
            }
            StmtKind::Break => {
                let g = self.effective_guard(fr, guard, loop_ctx);
                match loop_ctx {
                    Some(lc) => {
                        lc.broke = self.b.or(lc.broke, g);
                        Ok(())
                    }
                    None => self.err(s.span, "break outside a loop"),
                }
            }
            StmtKind::Continue => {
                let g = self.effective_guard(fr, guard, loop_ctx);
                match loop_ctx {
                    Some(lc) => {
                        lc.continued = self.b.or(lc.continued, g);
                        Ok(())
                    }
                    None => self.err(s.span, "continue outside a loop"),
                }
            }
            StmtKind::Block(body) => self.stmts(fr, body, guard, loop_ctx),
        }
    }

    fn expr(
        &mut self,
        fr: &mut Frame,
        e: &Expr,
        guard: NodeId,
        loop_ctx: &mut Option<LoopCtx>,
    ) -> Result<(NodeId, ScalarTy), ElabError> {
        match &e.kind {
            ExprKind::Int(v) => {
                let t = literal_ty(*v);
                Ok((self.b.constant(Bv::from_u64(t.width, *v)), t))
            }
            ExprKind::Var(n) => match fr.slot(n) {
                Some(Slot::Scalar { node, ty }) => Ok((*node, *ty)),
                Some(Slot::Array { .. }) => {
                    self.err(e.span, format!("array {n:?} used as a scalar"))
                }
                None => self.err(e.span, format!("undeclared variable {n:?}")),
            },
            ExprKind::Index { base, index } => {
                let Some(slot) = fr.slot(base).cloned() else {
                    return self.err(e.span, format!("undeclared variable {base:?}"));
                };
                let Slot::Array { elems, ty } = slot else {
                    return self.err(
                        e.span,
                        format!("{base:?} is not an array (pointer indexing is DFV002)"),
                    );
                };
                match self.const_index(fr, index, elems.len()) {
                    Some(i) => Ok((elems[i], ty)),
                    None => {
                        let idx = self.index_node(fr, index, elems.len(), guard, loop_ctx)?;
                        let iw = self.b.node_width(idx);
                        let mut acc = self.b.constant(Bv::zero(ty.width));
                        for (i, &el) in elems.iter().enumerate() {
                            let iv = self.b.lit(iw, i as u64);
                            let hit = self.b.eq(idx, iv);
                            acc = self.b.mux(hit, el, acc);
                        }
                        Ok((acc, ty))
                    }
                }
            }
            ExprKind::Call { callee, args } => {
                self.inline_call(fr, e.span, callee, args, guard, loop_ctx)
            }
            ExprKind::Un(op, a) => {
                let (an, at) = self.expr(fr, a, guard, loop_ctx)?;
                Ok(match op {
                    UnOp::Neg => (self.b.neg(an), at),
                    UnOp::Not => (self.b.not(an), at),
                    UnOp::LNot => {
                        let b = self.boolify(an);
                        (self.b.not(b), ScalarTy::BOOL)
                    }
                })
            }
            ExprKind::Bin(op, a, b) => {
                let (an, at) = self.expr(fr, a, guard, loop_ctx)?;
                let (bn, bt) = self.expr(fr, b, guard, loop_ctx)?;
                self.bin_node(*op, an, at, bn, bt)
            }
            ExprKind::Ternary { cond, t, f } => {
                let (cn, _) = self.expr(fr, cond, guard, loop_ctx)?;
                let cb = self.boolify(cn);
                let (tn, tt) = self.expr(fr, t, guard, loop_ctx)?;
                let (fn_, ft) = self.expr(fr, f, guard, loop_ctx)?;
                let rt = promote(tt, ft);
                let tn = self.resize_node(tn, tt, rt);
                let fn_ = self.resize_node(fn_, ft, rt);
                Ok((self.b.mux(cb, tn, fn_), rt))
            }
            ExprKind::Cast(ty, a) => {
                let (an, at) = self.expr(fr, a, guard, loop_ctx)?;
                Ok((self.resize_node(an, at, *ty), *ty))
            }
            ExprKind::AddrOf(_) | ExprKind::Deref(_) => self.err(
                e.span,
                "pointer aliasing is not synthesizable (DFV002); use explicit arrays",
            ),
            ExprKind::Malloc { .. } => self.err(
                e.span,
                "dynamic allocation is not synthesizable (DFV001); use a static array",
            ),
        }
    }

    /// Elaborates one binary operation with SLM-C (C-like) promotion.
    fn bin_node(
        &mut self,
        op: BinOp,
        an: NodeId,
        at: ScalarTy,
        bn: NodeId,
        bt: ScalarTy,
    ) -> Result<(NodeId, ScalarTy), ElabError> {
        use BinOp::*;
        let p = promote(at, bt);
        match op {
            Add | Sub | Mul | Div | Rem | And | Or | Xor => {
                let a = self.resize_node(an, at, p);
                let b = self.resize_node(bn, bt, p);
                let n = match (op, p.signed) {
                    (Add, _) => self.b.add(a, b),
                    (Sub, _) => self.b.sub(a, b),
                    (Mul, _) => self.b.mul(a, b),
                    (Div, false) => self.b.udiv(a, b),
                    (Div, true) => self.b.sdiv(a, b),
                    (Rem, false) => self.b.urem(a, b),
                    (Rem, true) => self.b.srem(a, b),
                    (And, _) => self.b.and(a, b),
                    (Or, _) => self.b.or(a, b),
                    (Xor, _) => self.b.xor(a, b),
                    _ => unreachable!(),
                };
                Ok((n, p))
            }
            Shl | Shr => {
                let lt = int_promote(at);
                let a = self.resize_node(an, at, lt);
                let n = match (op, lt.signed) {
                    (Shl, _) => self.b.shl(a, bn),
                    (Shr, true) => self.b.ashr(a, bn),
                    (Shr, false) => self.b.lshr(a, bn),
                    _ => unreachable!(),
                };
                Ok((n, lt))
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                let a = self.resize_node(an, at, p);
                let b = self.resize_node(bn, bt, p);
                let n = match (op, p.signed) {
                    (Eq, _) => self.b.eq(a, b),
                    (Ne, _) => self.b.ne(a, b),
                    (Lt, false) => self.b.ult(a, b),
                    (Lt, true) => self.b.slt(a, b),
                    (Le, false) => self.b.ule(a, b),
                    (Le, true) => self.b.sle(a, b),
                    (Gt, false) => self.b.ult(b, a),
                    (Gt, true) => self.b.slt(b, a),
                    (Ge, false) => self.b.ule(b, a),
                    (Ge, true) => self.b.sle(b, a),
                    _ => unreachable!(),
                };
                Ok((n, ScalarTy::BOOL))
            }
            LAnd => {
                let a = self.boolify(an);
                let b = self.boolify(bn);
                Ok((self.b.and(a, b), ScalarTy::BOOL))
            }
            LOr => {
                let a = self.boolify(an);
                let b = self.boolify(bn);
                Ok((self.b.or(a, b), ScalarTy::BOOL))
            }
        }
    }

    fn inline_call(
        &mut self,
        fr: &mut Frame,
        span: Span,
        callee: &str,
        args: &[Expr],
        guard: NodeId,
        loop_ctx: &mut Option<LoopCtx>,
    ) -> Result<(NodeId, ScalarTy), ElabError> {
        if self.call_stack.iter().any(|n| n == callee) {
            return self.err(
                span,
                format!("recursive call to {callee:?}; not synthesizable (DFV005)"),
            );
        }
        if self.call_stack.len() as u32 >= self.opts.max_call_depth {
            return self.err(span, "call inlining depth limit exceeded");
        }
        let g = Self::err_to_elab(self.prog.func(callee), span, callee)?.clone();
        // Evaluate arguments in the caller's frame.
        enum ArgVal {
            Scalar(NodeId, ScalarTy),
            Array(Vec<NodeId>, ScalarTy),
        }
        let mut vals = Vec::with_capacity(args.len());
        for (p, a) in g.params.iter().zip(args) {
            let v = match &p.ty {
                Ty::Array(..) => {
                    let ExprKind::Var(n) = &a.kind else {
                        return self.err(a.span, "array arguments must be plain variables");
                    };
                    let Some(Slot::Array { elems, ty }) = fr.slot(n).cloned() else {
                        return self.err(a.span, format!("{n:?} is not an array"));
                    };
                    ArgVal::Array(elems, ty)
                }
                Ty::Scalar(s) => {
                    if p.is_out {
                        // Out params start from the callee's perspective at
                        // the caller's current value.
                        let ExprKind::Var(n) = &a.kind else {
                            return self.err(a.span, "out arguments must be plain variables");
                        };
                        let Some(Slot::Scalar { node, ty }) = fr.slot(n).cloned() else {
                            return self.err(a.span, format!("{n:?} is not a scalar"));
                        };
                        let node = self.resize_node(node, ty, *s);
                        ArgVal::Scalar(node, *s)
                    } else {
                        let (n, t) = self.expr(fr, a, guard, loop_ctx)?;
                        ArgVal::Scalar(self.resize_node(n, t, *s), *s)
                    }
                }
                Ty::Ptr(_) => {
                    return self.err(a.span, "pointer parameters are not synthesizable (DFV002)")
                }
                Ty::Void => unreachable!(),
            };
            vals.push(v);
        }
        // Build the callee frame; its statements are guarded by the
        // caller's effective guard at the call site.
        let call_guard = self.effective_guard(fr, guard, loop_ctx);
        self.call_stack.push(callee.to_string());
        let mut inner = self.new_frame(&g);
        for (p, v) in g.params.iter().zip(vals) {
            match v {
                ArgVal::Scalar(node, ty) => inner.declare(&p.name, Slot::Scalar { node, ty }),
                ArgVal::Array(elems, ty) => inner.declare(&p.name, Slot::Array { elems, ty }),
            }
        }
        let body_result = self.stmts(&mut inner, &g.body, call_guard, &mut None);
        self.call_stack.pop();
        body_result?;
        // Copy out parameters back (their values are already correctly
        // muxed against the call guard, since the callee started from the
        // caller's values and wrote under the call guard).
        for (p, a) in g.params.iter().zip(args) {
            if !p.is_out {
                continue;
            }
            let ExprKind::Var(n) = &a.kind else {
                unreachable!("checked above")
            };
            let new_slot = inner.slot(&p.name).expect("declared").clone();
            match new_slot {
                Slot::Scalar {
                    node,
                    ty: callee_ty,
                } => {
                    let Some(Slot::Scalar { ty: caller_ty, .. }) = fr.slot(n).cloned() else {
                        return self.err(a.span, "out argument shape mismatch");
                    };
                    let resized = self.resize_node(node, callee_ty, caller_ty);
                    *fr.slot_mut(n).expect("exists") = Slot::Scalar {
                        node: resized,
                        ty: caller_ty,
                    };
                }
                Slot::Array { elems, ty } => {
                    let Some(Slot::Array { .. }) = fr.slot(n) else {
                        return self.err(a.span, "out argument shape mismatch");
                    };
                    *fr.slot_mut(n).expect("exists") = Slot::Array { elems, ty };
                }
            }
        }
        match (inner.ret_val, inner.ret_ty) {
            (Some(v), Some(t)) => Ok((v, t)),
            _ => {
                // Void call: produce a dummy zero (only reachable in
                // statement position, where the value is discarded).
                Ok((self.b.constant(Bv::zero(1)), ScalarTy::BOOL))
            }
        }
    }

    fn err_to_elab<'f>(
        f: Option<&'f Func>,
        span: Span,
        callee: &str,
    ) -> Result<&'f Func, ElabError> {
        f.ok_or_else(|| ElabError {
            span,
            message: format!("unknown function {callee:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use dfv_rtl::Simulator;

    fn elab(src: &str, entry: &str) -> Module {
        elaborate(&parse(src).unwrap(), entry).unwrap()
    }

    fn run_comb(m: &Module, inputs: &[(&str, Bv)]) -> Bv {
        let mut sim = Simulator::new(m.clone()).unwrap();
        sim.eval_comb(inputs)["return"].clone()
    }

    #[test]
    fn straightline_arithmetic() {
        let m = elab("uint8 f(uint8 a, uint8 b) { return a * 2 + b; }", "f");
        assert!(m.is_combinational());
        let r = run_comb(&m, &[("a", Bv::from_u64(8, 10)), ("b", Bv::from_u64(8, 5))]);
        assert_eq!(r.to_u64(), 25);
    }

    #[test]
    fn if_becomes_mux() {
        let src = r#"
            uint8 f(uint8 a) {
                uint8 r = 0;
                if (a > 10) { r = 1; } else { r = 2; }
                return r;
            }
        "#;
        let m = elab(src, "f");
        assert_eq!(run_comb(&m, &[("a", Bv::from_u64(8, 20))]).to_u64(), 1);
        assert_eq!(run_comb(&m, &[("a", Bv::from_u64(8, 5))]).to_u64(), 2);
    }

    #[test]
    fn early_return_predication() {
        let src = r#"
            uint8 f(uint8 a) {
                if (a == 0) { return 99; }
                return a;
            }
        "#;
        let m = elab(src, "f");
        assert_eq!(run_comb(&m, &[("a", Bv::zero(8))]).to_u64(), 99);
        assert_eq!(run_comb(&m, &[("a", Bv::from_u64(8, 7))]).to_u64(), 7);
    }

    #[test]
    fn loop_unrolls_with_break() {
        // The paper's conditioned idiom: static bound + conditional exit.
        let src = r#"
            uint32 f(uint8 n) {
                uint32 acc = 0;
                for (int i = 0; i < 8; i++) {
                    if (i >= n) break;
                    acc += i;
                }
                return acc;
            }
        "#;
        let m = elab(src, "f");
        // n=4: 0+1+2+3 = 6; n=20 (beyond bound): 0..7 = 28.
        assert_eq!(run_comb(&m, &[("n", Bv::from_u64(8, 4))]).to_u64(), 6);
        assert_eq!(run_comb(&m, &[("n", Bv::from_u64(8, 20))]).to_u64(), 28);
        assert_eq!(run_comb(&m, &[("n", Bv::zero(8))]).to_u64(), 0);
    }

    #[test]
    fn continue_skips_iteration() {
        let src = r#"
            uint32 f() {
                uint32 acc = 0;
                for (int i = 0; i < 10; i++) {
                    if (i % 2 == 0) continue;
                    acc += i;
                }
                return acc;
            }
        "#;
        let m = elab(src, "f");
        assert_eq!(run_comb(&m, &[]).to_u64(), 25);
    }

    #[test]
    fn arrays_with_dynamic_index() {
        let src = r#"
            uint8 f(uint8 xs[4], uint8 i) {
                uint8 copy[4];
                for (int k = 0; k < 4; k++) { copy[k] = xs[k]; }
                copy[i] = 0xFF;
                return copy[i];
            }
        "#;
        let m = elab(src, "f");
        assert_eq!(m.inputs[0].width, 32); // packed array port
        let xs = Bv::from_u64(32, 0x04030201);
        let r = run_comb(&m, &[("xs", xs.clone()), ("i", Bv::from_u64(8, 2))]);
        assert_eq!(r.to_u64(), 0xFF);
        // Index wraps modulo the length like the interpreter.
        let r2 = run_comb(&m, &[("xs", xs), ("i", Bv::from_u64(8, 6))]);
        assert_eq!(r2.to_u64(), 0xFF);
    }

    #[test]
    fn function_inlining_and_out_params() {
        let src = r#"
            void split(uint16 v, out uint8 hi, out uint8 lo) {
                hi = (uint8)(v >> 8);
                lo = (uint8) v;
            }
            uint16 top(uint16 v) {
                uint8 h = 0;
                uint8 l = 0;
                split(v, h, l);
                return ((uint16) h << 8) | (uint16) l;
            }
        "#;
        let m = elab(src, "top");
        let r = run_comb(&m, &[("v", Bv::from_u64(16, 0xBEEF))]);
        assert_eq!(r.to_u64(), 0xBEEF);
    }

    #[test]
    fn out_array_becomes_output_port() {
        let src = r#"
            void double_all(uint8 xs[3], out uint8 ys[3]) {
                for (int i = 0; i < 3; i++) { ys[i] = xs[i] * 2; }
            }
        "#;
        let m = elab(src, "double_all");
        assert_eq!(m.outputs.len(), 1);
        assert_eq!(m.outputs[0].name, "ys");
        assert_eq!(m.outputs[0].width, 24);
        let mut sim = Simulator::new(m).unwrap();
        let outs = sim.eval_comb(&[("xs", Bv::from_u64(24, 0x03_02_01))]);
        assert_eq!(outs["ys"].to_u64(), 0x06_04_02);
    }

    #[test]
    fn rejects_unconditioned_constructs() {
        let ptr = "int f() { int x = 1; int *p = &x; return *p; }";
        let e = elaborate(&parse(ptr).unwrap(), "f").unwrap_err();
        assert!(e.message.contains("DFV002"));

        let mal = "int f() { int *p = malloc(4); return 0; }";
        let e = elaborate(&parse(mal).unwrap(), "f").unwrap_err();
        assert!(e.message.contains("DFV002") || e.message.contains("DFV001"));

        let dyn_bound =
            "int f(int n) { int a = 0; for (int i = 0; i < n; i++) { a += i; } return a; }";
        let e = elaborate(&parse(dyn_bound).unwrap(), "f").unwrap_err();
        assert!(e.message.contains("DFV003"));

        let wl = "int f(int n) { while (n > 0) { n -= 1; } return n; }";
        let e = elaborate(&parse(wl).unwrap(), "f").unwrap_err();
        assert!(e.message.contains("DFV004"));

        let rec = "int f(int n) { return n == 0 ? 1 : f(n - 1); }";
        let e = elaborate(&parse(rec).unwrap(), "f").unwrap_err();
        assert!(e.message.contains("DFV005"));
    }

    #[test]
    fn unroll_limit_enforced() {
        let src = "int f() { int a = 0; for (int i = 0; i < 100000; i++) { a += 1; } return a; }";
        let e = elaborate(&parse(src).unwrap(), "f").unwrap_err();
        assert!(e.message.contains("unroll limit"));
    }

    #[test]
    fn loop_var_assignment_rejected() {
        let src = "int f() { int a = 0; for (int i = 0; i < 4; i++) { i = 0; } return a; }";
        let e = elaborate(&parse(src).unwrap(), "f").unwrap_err();
        assert!(e.message.contains("statically unrolled"));
    }

    #[test]
    fn nested_loops_with_dependent_bounds() {
        let src = r#"
            uint32 f() {
                uint32 acc = 0;
                for (int i = 0; i < 4; i++) {
                    for (int j = 0; j <= i; j++) {
                        acc += 1;
                    }
                }
                return acc;
            }
        "#;
        let m = elab(src, "f");
        assert_eq!(run_comb(&m, &[]).to_u64(), 1 + 2 + 3 + 4);
    }

    #[test]
    fn return_inside_loop() {
        let src = r#"
            uint8 find(uint8 xs[4], uint8 needle) {
                for (int i = 0; i < 4; i++) {
                    if (xs[i] == needle) { return (uint8) i; }
                }
                return 0xFF;
            }
        "#;
        let m = elab(src, "find");
        let xs = Bv::from_u64(32, 0x40_30_20_10);
        let hit = run_comb(&m, &[("xs", xs.clone()), ("needle", Bv::from_u64(8, 0x30))]);
        assert_eq!(hit.to_u64(), 2);
        let miss = run_comb(&m, &[("xs", xs), ("needle", Bv::from_u64(8, 0x99))]);
        assert_eq!(miss.to_u64(), 0xFF);
    }
}
