//! Straight-line segment compiler: SLM-C statement runs → `dfv-vm` bytecode.
//!
//! The interpreter in [`crate::interp`] walks the AST one node at a time;
//! that is the *oracle*. This module finds maximal runs of branch-free,
//! scalar-only statements inside each block and lowers them once into flat
//! register bytecode ([`dfv_vm::Program`]). At run time the interpreter
//! replaces the whole run with one `Program::run` call plus a handful of
//! load/store transfers — byte-identical results and an *identical* `steps`
//! count, because every segment records exactly how many interpreter ticks
//! the statements it replaces would have charged.
//!
//! What compiles: `Decl`/`Assign`/`Expr`/`Return` statements over scalar
//! variables of width ≤ 64, with `Int`/`Var`/`Un`/`Bin`/`Cast` expressions.
//! Everything else — control flow, arrays, pointers, calls, `?:` (which
//! evaluates only the taken side, so its tick count is data-dependent) —
//! ends the segment and stays on the oracle path.
//!
//! Segments are keyed by the *span* of their first statement, which survives
//! the `Func` clone the interpreter performs on every call, so callees get
//! compiled execution too. Any span that occurs more than once in the
//! program is poisoned (mapped to `None`) so a key can never identify the
//! wrong statement.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use dfv_vm::{Instr, Program as VmProgram};

use crate::ast::*;
use crate::sema::{int_promote, literal_ty, promote};

/// Segment table key: the (line, col) of a segment's first statement.
pub(crate) type SpanKey = (u32, u32);

/// Compiled segments by first-statement span. `None` marks a poisoned key
/// (span not unique program-wide — never matched at run time).
pub(crate) type SegTable = HashMap<SpanKey, Option<Rc<Segment>>>;

/// What a compiled `return` produces when the segment finishes.
#[derive(Debug)]
pub(crate) enum RetAction {
    /// `return;` — a void return.
    Void,
    /// `return e;` — the value lives in `slot` at type `src`; the caller
    /// resizes it to `out` per source signedness (the interpreter's
    /// `Return` rule). `src == out` when the function's return type is not
    /// a narrow scalar.
    Value {
        /// Arena slot holding the (masked) return value.
        slot: u32,
        /// Type the value was computed at.
        src: ScalarTy,
        /// Type the interpreter would resize it to.
        out: ScalarTy,
    },
}

/// One compiled straight-line statement run.
#[derive(Debug)]
pub(crate) struct Segment {
    /// The bytecode for the whole run.
    pub prog: VmProgram,
    /// Exactly how many interpreter ticks the replaced statements charge.
    pub ticks: u64,
    /// How many statements of the enclosing block this segment covers.
    pub n_stmts: usize,
    /// Environment reads at entry: (name, arena slot, expected cell type).
    pub loads: Vec<(String, u32, ScalarTy)>,
    /// Environment writes at exit, in first-assignment order.
    pub stores: Vec<(String, u32, ScalarTy)>,
    /// Cells to push at exit, in declaration order (store-index parity
    /// with the oracle requires pushing them exactly like `exec_stmt`).
    pub decls: Vec<(String, u32, ScalarTy)>,
    /// Set iff the segment ends in a `return`.
    pub ret: Option<RetAction>,
}

/// Compiles every eligible statement run in `prog` into a segment table.
pub(crate) fn compile(prog: &Program) -> SegTable {
    let mut span_count: HashMap<SpanKey, u32> = HashMap::new();
    for f in &prog.funcs {
        count_spans(&f.body, &mut span_count);
    }
    let mut segs = SegTable::new();
    for (k, c) in &span_count {
        if *c > 1 {
            segs.insert(*k, None);
        }
    }
    for f in &prog.funcs {
        let opaque = opaque_names(f);
        let mut scopes: Vec<HashMap<String, ScalarTy>> = vec![HashMap::new()];
        for p in &f.params {
            if let Ty::Scalar(sc) = p.ty {
                scopes[0].insert(p.name.clone(), sc);
            }
        }
        walk_block(f, &f.body, &mut scopes, &opaque, &mut segs);
    }
    segs
}

fn count_spans(body: &[Stmt], out: &mut HashMap<SpanKey, u32>) {
    for s in body {
        *out.entry((s.span.line, s.span.col)).or_insert(0) += 1;
        match &s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                count_spans(then_body, out);
                count_spans(else_body, out);
            }
            StmtKind::For { body, .. } | StmtKind::While { body, .. } | StmtKind::Block(body) => {
                count_spans(body, out)
            }
            _ => {}
        }
    }
}

/// Names the interpreter may treat as pointer/array in `f`.
///
/// `is_ptr_ty`/`cell_is_array` in the interpreter resolve a name by a
/// whole-function pre-order scan (first matching declaration wins), not by
/// scope — so a name with *any* non-scalar declaration anywhere in the
/// function is off-limits to compilation, even where a scalar declaration
/// of the same name is in scope.
fn opaque_names(f: &Func) -> HashSet<String> {
    fn scan(body: &[Stmt], out: &mut HashSet<String>) {
        for s in body {
            match &s.kind {
                StmtKind::Decl { name, ty, .. } if !matches!(ty, Ty::Scalar(_)) => {
                    out.insert(name.clone());
                }
                StmtKind::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    scan(then_body, out);
                    scan(else_body, out);
                }
                StmtKind::For { body, .. }
                | StmtKind::While { body, .. }
                | StmtKind::Block(body) => scan(body, out),
                _ => {}
            }
        }
    }
    let mut out = HashSet::new();
    for p in &f.params {
        if !matches!(p.ty, Ty::Scalar(_)) {
            out.insert(p.name.clone());
        }
    }
    scan(&f.body, &mut out);
    out
}

fn walk_block(
    f: &Func,
    body: &[Stmt],
    scopes: &mut Vec<HashMap<String, ScalarTy>>,
    opaque: &HashSet<String>,
    segs: &mut SegTable,
) {
    let mut i = 0;
    while i < body.len() {
        let mut b = SegBuilder::default();
        let mut j = i;
        while j < body.len() && b.ret.is_none() {
            let ck = b.checkpoint();
            if b.try_stmt(f, &body[j], scopes, opaque) {
                j += 1;
            } else {
                b.rollback(ck);
                break;
            }
        }
        // A single cheap statement is not worth the load/store round trip.
        if j > i && (j - i >= 2 || b.ticks >= 4) {
            let key = (body[i].span.line, body[i].span.col);
            segs.entry(key)
                .or_insert_with(|| Some(Rc::new(b.finish(j - i))));
            // Declarations inside the segment stay visible to later
            // statements of this block.
            for s in &body[i..j] {
                apply_decl_scope(s, scopes);
            }
            i = j;
            continue;
        }
        // Statement i is interpreted; track its scope effect and recurse
        // into nested blocks so their runs compile too.
        let s = &body[i];
        match &s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                scopes.push(HashMap::new());
                walk_block(f, then_body, scopes, opaque, segs);
                scopes.pop();
                scopes.push(HashMap::new());
                walk_block(f, else_body, scopes, opaque, segs);
                scopes.pop();
            }
            StmtKind::For { var, body, .. } => {
                let mut frame = HashMap::new();
                frame.insert(var.clone(), ScalarTy::INT);
                scopes.push(frame);
                walk_block(f, body, scopes, opaque, segs);
                scopes.pop();
            }
            StmtKind::While { body, .. } => {
                scopes.push(HashMap::new());
                walk_block(f, body, scopes, opaque, segs);
                scopes.pop();
            }
            StmtKind::Block(body) => {
                scopes.push(HashMap::new());
                walk_block(f, body, scopes, opaque, segs);
                scopes.pop();
            }
            _ => apply_decl_scope(s, scopes),
        }
        i += 1;
    }
}

fn apply_decl_scope(s: &Stmt, scopes: &mut [HashMap<String, ScalarTy>]) {
    if let StmtKind::Decl {
        name,
        ty: Ty::Scalar(sc),
        ..
    } = &s.kind
    {
        scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(name.clone(), *sc);
    }
}

fn ok_width(sc: ScalarTy) -> bool {
    sc.width <= 64
}

fn mask64(w: u32) -> u64 {
    debug_assert!((1..=64).contains(&w));
    u64::MAX >> (64 - w)
}

#[derive(Clone)]
struct Binding {
    slot: u32,
    ty: ScalarTy,
    /// Whether the binding aliases an environment cell (vs. an in-segment
    /// declaration) — only external bindings write back at exit.
    external: bool,
}

#[derive(Default)]
struct SegBuilder {
    instrs: Vec<Instr>,
    n_slots: u32,
    ticks: u64,
    loads: Vec<(String, u32, ScalarTy)>,
    stores: Vec<(String, u32, ScalarTy)>,
    decls: Vec<(String, u32, ScalarTy)>,
    bindings: HashMap<String, Binding>,
    ret: Option<RetAction>,
}

struct Checkpoint {
    instrs: usize,
    n_slots: u32,
    ticks: u64,
    loads: usize,
    stores: usize,
    decls: usize,
    bindings: HashMap<String, Binding>,
}

impl SegBuilder {
    fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            instrs: self.instrs.len(),
            n_slots: self.n_slots,
            ticks: self.ticks,
            loads: self.loads.len(),
            stores: self.stores.len(),
            decls: self.decls.len(),
            bindings: self.bindings.clone(),
        }
    }

    fn rollback(&mut self, ck: Checkpoint) {
        self.instrs.truncate(ck.instrs);
        self.n_slots = ck.n_slots;
        self.ticks = ck.ticks;
        self.loads.truncate(ck.loads);
        self.stores.truncate(ck.stores);
        self.decls.truncate(ck.decls);
        self.bindings = ck.bindings;
        self.ret = None;
    }

    fn finish(self, n_stmts: usize) -> Segment {
        let prog = VmProgram::new(self.instrs, self.n_slots as usize)
            .expect("segment lowering emitted invalid bytecode");
        Segment {
            prog,
            ticks: self.ticks,
            n_stmts,
            loads: self.loads,
            stores: self.stores,
            decls: self.decls,
            ret: self.ret,
        }
    }

    fn alloc(&mut self) -> u32 {
        let s = self.n_slots;
        self.n_slots += 1;
        s
    }

    /// Attempts to append one statement; returns false (caller rolls back)
    /// if it cannot be compiled exactly.
    fn try_stmt(
        &mut self,
        f: &Func,
        s: &Stmt,
        scopes: &[HashMap<String, ScalarTy>],
        opaque: &HashSet<String>,
    ) -> bool {
        self.ticks += 1; // exec_stmt ticks once per statement
        match &s.kind {
            StmtKind::Decl {
                name,
                ty: Ty::Scalar(sc),
                init,
            } => {
                if !ok_width(*sc) || opaque.contains(name) {
                    return false;
                }
                let slot = self.alloc();
                match init {
                    Some(e) => {
                        let Some((es, et)) = self.expr(e, scopes, opaque) else {
                            return false;
                        };
                        self.store_resized(es, et, slot, *sc);
                    }
                    None => self.instrs.push(Instr::Const1 { dst: slot, imm: 0 }),
                }
                self.decls.push((name.clone(), slot, *sc));
                self.bindings.insert(
                    name.clone(),
                    Binding {
                        slot,
                        ty: *sc,
                        external: false,
                    },
                );
                true
            }
            StmtKind::Assign {
                lhs: LValue::Var(n),
                rhs,
            } => {
                if opaque.contains(n) {
                    return false;
                }
                let Some((rs, rt)) = self.expr(rhs, scopes, opaque) else {
                    return false;
                };
                let (slot, ty, external) = match self.bindings.get(n) {
                    Some(b) => (b.slot, b.ty, b.external),
                    None => {
                        let Some(ty) = resolve_scope(scopes, n).filter(|t| ok_width(*t)) else {
                            return false;
                        };
                        let slot = self.alloc();
                        self.bindings.insert(
                            n.clone(),
                            Binding {
                                slot,
                                ty,
                                external: true,
                            },
                        );
                        (slot, ty, true)
                    }
                };
                self.store_resized(rs, rt, slot, ty);
                if external && !self.stores.iter().any(|(sn, _, _)| sn == n) {
                    self.stores.push((n.clone(), slot, ty));
                }
                true
            }
            StmtKind::Expr(e) => self.expr(e, scopes, opaque).is_some(),
            StmtKind::Return(v) => {
                match v {
                    None => self.ret = Some(RetAction::Void),
                    Some(e) => {
                        let Some((es, et)) = self.expr(e, scopes, opaque) else {
                            return false;
                        };
                        let out = match f.ret {
                            Ty::Scalar(sc) => sc,
                            _ => et,
                        };
                        self.ret = Some(RetAction::Value {
                            slot: es,
                            src: et,
                            out,
                        });
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Compiles a pure expression; returns its slot and type, or `None` if
    /// any node is outside the compilable subset. Charges one tick per
    /// node, exactly like `Interp::eval`.
    fn expr(
        &mut self,
        e: &Expr,
        scopes: &[HashMap<String, ScalarTy>],
        opaque: &HashSet<String>,
    ) -> Option<(u32, ScalarTy)> {
        self.ticks += 1;
        match &e.kind {
            ExprKind::Int(v) => {
                let t = literal_ty(*v);
                let dst = self.alloc();
                self.instrs.push(Instr::Const1 {
                    dst,
                    imm: *v & mask64(t.width),
                });
                Some((dst, t))
            }
            ExprKind::Var(n) => {
                if let Some(b) = self.bindings.get(n) {
                    return Some((b.slot, b.ty));
                }
                if opaque.contains(n) {
                    return None;
                }
                let ty = resolve_scope(scopes, n).filter(|t| ok_width(*t))?;
                let slot = self.alloc();
                self.loads.push((n.clone(), slot, ty));
                self.bindings.insert(
                    n.clone(),
                    Binding {
                        slot,
                        ty,
                        external: true,
                    },
                );
                Some((slot, ty))
            }
            ExprKind::Un(op, a) => {
                let (as_, at) = self.expr(a, scopes, opaque)?;
                let dst = self.alloc();
                let (ins, ty) = match op {
                    UnOp::Neg => (
                        Instr::Neg1 {
                            dst,
                            a: as_,
                            w: at.width as u8,
                        },
                        at,
                    ),
                    UnOp::Not => (
                        Instr::Not1 {
                            dst,
                            a: as_,
                            w: at.width as u8,
                        },
                        at,
                    ),
                    UnOp::LNot => (Instr::EqZ1 { dst, a: as_ }, ScalarTy::BOOL),
                };
                self.instrs.push(ins);
                Some((dst, ty))
            }
            ExprKind::Bin(op, a, b) => {
                let (as_, at) = self.expr(a, scopes, opaque)?;
                let (bs, bt) = self.expr(b, scopes, opaque)?;
                self.binop(*op, as_, at, bs, bt)
            }
            ExprKind::Cast(ty, a) => {
                if !ok_width(*ty) {
                    return None;
                }
                let (as_, at) = self.expr(a, scopes, opaque)?;
                let slot = self.resize_to(as_, at, *ty);
                Some((slot, *ty))
            }
            _ => None,
        }
    }

    /// Lowers one binary operator with the exact promotion rules of
    /// `interp::eval_binop`.
    fn binop(
        &mut self,
        op: BinOp,
        as_: u32,
        at: ScalarTy,
        bs: u32,
        bt: ScalarTy,
    ) -> Option<(u32, ScalarTy)> {
        use BinOp::*;
        match op {
            Add | Sub | Mul | Div | Rem | And | Or | Xor => {
                let p = promote(at, bt);
                if !ok_width(p) {
                    return None;
                }
                let (w, pw) = (p.width as u8, p.width as u8);
                let a = self.resize_to(as_, at, p);
                let b = self.resize_to(bs, bt, p);
                let dst = self.alloc();
                let ins = match op {
                    Add => Instr::Add1 { dst, a, b, w },
                    Sub => Instr::Sub1 { dst, a, b, w },
                    Mul => Instr::Mul1 { dst, a, b, w },
                    Div if p.signed => Instr::SDiv1 {
                        dst,
                        a,
                        b,
                        aw: pw,
                        bw: pw,
                    },
                    Div => Instr::UDiv1 { dst, a, b, w },
                    Rem if p.signed => Instr::SRem1 {
                        dst,
                        a,
                        b,
                        aw: pw,
                        bw: pw,
                    },
                    Rem => Instr::URem1 { dst, a, b },
                    And => Instr::And1 { dst, a, b },
                    Or => Instr::Or1 { dst, a, b },
                    Xor => Instr::Xor1 { dst, a, b },
                    _ => unreachable!(),
                };
                self.instrs.push(ins);
                Some((dst, p))
            }
            Shl | Shr => {
                // Only the left side promotes; the raw right value is the
                // shift amount (`eval_binop` passes it unresized).
                let lt = int_promote(at);
                if !ok_width(lt) {
                    return None;
                }
                let w = lt.width as u8;
                let a = self.resize_to(as_, at, lt);
                let dst = self.alloc();
                let ins = match (op, lt.signed) {
                    (Shl, _) => Instr::Shl1 { dst, a, b: bs, w },
                    (Shr, true) => Instr::AShr1 { dst, a, b: bs, w },
                    (Shr, false) => Instr::LShr1 { dst, a, b: bs, w },
                    _ => unreachable!(),
                };
                self.instrs.push(ins);
                Some((dst, lt))
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                let p = promote(at, bt);
                if !ok_width(p) {
                    return None;
                }
                let pw = p.width as u8;
                let a = self.resize_to(as_, at, p);
                let b = self.resize_to(bs, bt, p);
                let dst = self.alloc();
                let ins = match (op, p.signed) {
                    (Eq, _) => Instr::Eq1 { dst, a, b },
                    (Ne, _) => Instr::Ne1 { dst, a, b },
                    (Lt, false) => Instr::Ult1 { dst, a, b },
                    (Le, false) => Instr::Ule1 { dst, a, b },
                    // a > b  ==  b < a;  a >= b  ==  b <= a
                    (Gt, false) => Instr::Ult1 { dst, a: b, b: a },
                    (Ge, false) => Instr::Ule1 { dst, a: b, b: a },
                    (Lt, true) => Instr::Slt1 {
                        dst,
                        a,
                        b,
                        aw: pw,
                        bw: pw,
                    },
                    (Le, true) => Instr::Sle1 {
                        dst,
                        a,
                        b,
                        aw: pw,
                        bw: pw,
                    },
                    (Gt, true) => Instr::Slt1 {
                        dst,
                        a: b,
                        b: a,
                        aw: pw,
                        bw: pw,
                    },
                    (Ge, true) => Instr::Sle1 {
                        dst,
                        a: b,
                        b: a,
                        aw: pw,
                        bw: pw,
                    },
                    _ => unreachable!(),
                };
                self.instrs.push(ins);
                Some((dst, ScalarTy::BOOL))
            }
            LAnd | LOr => {
                // Eager on the *unpromoted* operands, like the interpreter:
                // !(a==0 | b==0) for &&, !(a==0 & b==0) for ||.
                let za = self.alloc();
                self.instrs.push(Instr::EqZ1 { dst: za, a: as_ });
                let zb = self.alloc();
                self.instrs.push(Instr::EqZ1 { dst: zb, a: bs });
                let both = self.alloc();
                self.instrs.push(if op == LAnd {
                    Instr::Or1 {
                        dst: both,
                        a: za,
                        b: zb,
                    }
                } else {
                    Instr::And1 {
                        dst: both,
                        a: za,
                        b: zb,
                    }
                });
                let dst = self.alloc();
                self.instrs.push(Instr::XorC1 {
                    dst,
                    a: both,
                    imm: 1,
                });
                Some((dst, ScalarTy::BOOL))
            }
        }
    }

    /// Emits the value in `slot` resized from `from` to `to` (per *source*
    /// signedness, the SLM-C conversion rule), reusing the slot when the
    /// masked bits are already the answer.
    fn resize_to(&mut self, slot: u32, from: ScalarTy, to: ScalarTy) -> u32 {
        if to.width == from.width || (to.width > from.width && !from.signed) {
            return slot; // identity / zext of an already-masked value
        }
        let dst = self.alloc();
        self.resize_into(slot, from, dst, to);
        dst
    }

    /// Like `resize_to` but into a fixed destination slot (variable slots
    /// must stay stable so later reads and exit stores see the value).
    fn store_resized(&mut self, src: u32, from: ScalarTy, dst: u32, to: ScalarTy) {
        if src == dst && (to.width == from.width || (to.width > from.width && !from.signed)) {
            return;
        }
        self.resize_into(src, from, dst, to);
    }

    fn resize_into(&mut self, src: u32, from: ScalarTy, dst: u32, to: ScalarTy) {
        let ins = if to.width < from.width {
            Instr::Slice1 {
                dst,
                a: src,
                sh: 0,
                w: to.width as u8,
            }
        } else if to.width > from.width && from.signed {
            Instr::Sext1 {
                dst,
                a: src,
                aw: from.width as u8,
                ow: to.width as u8,
            }
        } else {
            Instr::Copy1 { dst, a: src }
        };
        self.instrs.push(ins);
    }
}

fn resolve_scope(scopes: &[HashMap<String, ScalarTy>], n: &str) -> Option<ScalarTy> {
    scopes.iter().rev().find_map(|f| f.get(n).copied())
}
