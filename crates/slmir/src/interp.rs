//! The SLM-C interpreter — the *executable* system-level model.
//!
//! This is the fast path the paper's methodology leans on: the SLM "simulates
//! several orders of magnitude faster" than RTL because it is an untimed,
//! single-threaded program with no clocks or events. The interpreter executes
//! bit-accurately over [`Bv`] values, so its results agree exactly with the
//! elaborated hardware model and the RTL (when the RTL is correct).
//!
//! Array indices wrap modulo the array length — matching the elaborated
//! hardware's mux-tree semantics, so interpretation and elaboration can never
//! silently disagree on out-of-range accesses.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use dfv_bits::Bv;

use crate::ast::*;
use crate::compile::{RetAction, SegTable, Segment};
use crate::sema::{binop_result, literal_ty, promote};
use crate::token::Span;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar with its signedness.
    Scalar(Bv, bool),
    /// An array of same-width scalars.
    Array(Vec<Bv>, ScalarTy),
    /// A pointer into the interpreter's store.
    Ptr(PtrVal),
    /// No value.
    Void,
}

impl Value {
    /// Convenience constructor from a `u64`.
    pub fn from_u64(ty: ScalarTy, v: u64) -> Value {
        Value::Scalar(Bv::from_u64(ty.width, v), ty.signed)
    }

    /// Convenience constructor from an `i64`.
    pub fn from_i64(ty: ScalarTy, v: i64) -> Value {
        Value::Scalar(Bv::from_i64(ty.width, v), ty.signed)
    }

    /// The scalar [`Bv`], if this is a scalar.
    pub fn as_bv(&self) -> Option<&Bv> {
        match self {
            Value::Scalar(b, _) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Scalar(b, true) => write!(f, "{}", b.to_i64()),
            Value::Scalar(b, false) => write!(f, "{b}"),
            Value::Array(ws, _) => {
                write!(f, "[")?;
                for (i, w) in ws.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{w}")?;
                }
                write!(f, "]")
            }
            Value::Ptr(p) => write!(f, "ptr({}+{})", p.cell, p.offset),
            Value::Void => write!(f, "void"),
        }
    }
}

/// A pointer value: a store cell plus an element offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtrVal {
    cell: usize,
    offset: usize,
}

/// A runtime error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Where execution failed.
    pub span: Span,
    /// Description.
    pub message: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: runtime error: {}", self.span, self.message)
    }
}

impl std::error::Error for EvalError {}

/// The result of running an entry function.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The return value.
    pub ret: Value,
    /// Final values of `out` parameters, in declaration order.
    pub outs: Vec<(String, Value)>,
    /// Number of statements executed (the speed metric for experiment E2).
    pub steps: u64,
}

#[derive(Debug, Clone)]
struct Cell {
    words: Vec<Bv>,
    ty: ScalarTy,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// Interpreter state for one program.
#[derive(Debug)]
pub struct Interp<'p> {
    prog: &'p Program,
    store: Vec<Cell>,
    fuel: u64,
    steps: u64,
    call_depth: u32,
    max_call_depth: u32,
    /// Compiled straight-line segments by first-statement span; empty
    /// unless constructed with [`Interp::new_compiled`].
    segs: SegTable,
    /// Reusable register arena for segment execution.
    seg_arena: Vec<u64>,
    /// Reusable wide-op scratch for segment execution.
    seg_scratch: Vec<u64>,
}

/// Default statement budget before an execution is declared runaway.
pub const DEFAULT_FUEL: u64 = 50_000_000;

/// Default call-nesting budget before an execution is declared runaway.
/// Recursion is rejected by lint DFV005, but the interpreter also accepts
/// unlinted programs, so it must bound its own (native) stack use.
pub const DEFAULT_MAX_CALL_DEPTH: u32 = 64;

impl<'p> Interp<'p> {
    /// Creates an interpreter for `prog` with the default fuel.
    pub fn new(prog: &'p Program) -> Self {
        Interp {
            prog,
            store: Vec::new(),
            fuel: DEFAULT_FUEL,
            steps: 0,
            call_depth: 0,
            max_call_depth: DEFAULT_MAX_CALL_DEPTH,
            segs: SegTable::new(),
            seg_arena: Vec::new(),
            seg_scratch: Vec::new(),
        }
    }

    /// Creates an interpreter that pre-compiles straight-line statement
    /// runs to `dfv-vm` bytecode and executes them as single blocks.
    ///
    /// Results are bit-identical to [`Interp::new`] — same return value,
    /// same `out` parameters, same [`RunResult::steps`], same errors at the
    /// same spans. Compiled segments cover branch-free scalar statements;
    /// everything else (control flow, arrays, pointers, calls) falls back
    /// to AST interpretation, which stays the semantic oracle.
    pub fn new_compiled(prog: &'p Program) -> Self {
        let mut i = Interp::new(prog);
        i.segs = crate::compile::compile(prog);
        i
    }

    /// How many statement runs were compiled to bytecode (0 for
    /// [`Interp::new`]). Exposed so tests can assert the compiled path is
    /// actually exercised.
    pub fn compiled_segments(&self) -> usize {
        self.segs.values().filter(|s| s.is_some()).count()
    }

    /// Overrides the statement budget (for tests of runaway loops).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Overrides the call-nesting budget.
    pub fn with_max_call_depth(mut self, depth: u32) -> Self {
        self.max_call_depth = depth;
        self
    }

    /// Runs `entry` with the given argument values.
    ///
    /// Scalar arguments are resized to the parameter type; array arguments
    /// must match exactly. `out` parameters receive zero-initialized storage
    /// and their final values are returned in [`RunResult::outs`].
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on a runtime failure (unknown entry, argument
    /// mismatch, fuel exhaustion, null dereference, ...).
    pub fn run(&mut self, entry: &str, args: &[Value]) -> Result<RunResult, EvalError> {
        let nowhere = Span::default();
        let f = self.prog.func(entry).ok_or_else(|| EvalError {
            span: nowhere,
            message: format!("no function named {entry:?}"),
        })?;
        // `out` params may be omitted from the argument list entirely.
        let required: Vec<&Param> = f.params.iter().filter(|p| !p.is_out).collect();
        if args.len() != required.len() && args.len() != f.params.len() {
            return Err(EvalError {
                span: f.span,
                message: format!(
                    "{entry:?} takes {} arguments ({} with outs), {} given",
                    required.len(),
                    f.params.len(),
                    args.len()
                ),
            });
        }
        self.store.clear();
        self.steps = 0;
        self.call_depth = 0;
        let mut env: HashMap<String, usize> = HashMap::new();
        let mut arg_iter = args.iter();
        for p in &f.params {
            let v = if p.is_out && args.len() == required.len() {
                // Zero-initialize omitted out params. Sema rejects
                // pointer-typed outs, but `run` also accepts programs that
                // never went through sema, so report rather than panic.
                match p.ty {
                    Ty::Scalar(s) => Value::Scalar(Bv::zero(s.width), s.signed),
                    Ty::Array(s, n) => Value::Array(vec![Bv::zero(s.width); n], s),
                    _ => {
                        return Err(EvalError {
                            span: f.span,
                            message: format!(
                                "out parameter {:?} has unsupported type {} (run sema first)",
                                p.name, p.ty
                            ),
                        })
                    }
                }
            } else {
                arg_iter.next().cloned().ok_or_else(|| EvalError {
                    span: f.span,
                    message: "missing argument".into(),
                })?
            };
            let cell = self.bind_param(f, p, v)?;
            env.insert(p.name.clone(), cell);
        }
        let flow = self.exec_block(f, &f.body, &mut env)?;
        let ret = match flow {
            Flow::Return(v) => v,
            _ => Value::Void,
        };
        let outs = f
            .params
            .iter()
            .filter(|p| p.is_out)
            .map(|p| {
                let cell = &self.store[env[&p.name]];
                let v = match p.ty {
                    Ty::Scalar(s) => Value::Scalar(cell.words[0].clone(), s.signed),
                    Ty::Array(s, _) => Value::Array(cell.words.clone(), s),
                    // Invariant: `bind_param` (and the omitted-out zero-init
                    // above) reject every other param type before the body
                    // runs, so no other type reaches the outs collection.
                    _ => unreachable!("non-scalar/array params are rejected at binding"),
                };
                (p.name.clone(), v)
            })
            .collect();
        Ok(RunResult {
            ret,
            outs,
            steps: self.steps,
        })
    }

    fn bind_param(&mut self, f: &Func, p: &Param, v: Value) -> Result<usize, EvalError> {
        let cell = match (&p.ty, v) {
            (Ty::Scalar(s), Value::Scalar(b, signed)) => Cell {
                words: vec![resize(&b, signed, *s)],
                ty: *s,
            },
            (Ty::Array(s, n), Value::Array(ws, wt)) => {
                if ws.len() != *n || wt != *s {
                    return Err(EvalError {
                        span: f.span,
                        message: format!(
                            "array argument for {:?} has wrong shape (got {}x{}, want {}x{})",
                            p.name,
                            ws.len(),
                            wt,
                            n,
                            s
                        ),
                    });
                }
                Cell { words: ws, ty: *s }
            }
            (ty, v) => {
                return Err(EvalError {
                    span: f.span,
                    message: format!("argument for {:?}: expected {ty}, got {v}", p.name),
                })
            }
        };
        self.store.push(cell);
        Ok(self.store.len() - 1)
    }

    fn tick(&mut self, span: Span) -> Result<(), EvalError> {
        self.steps += 1;
        if self.steps > self.fuel {
            return Err(EvalError {
                span,
                message: "fuel exhausted (runaway loop? see lint DFV006)".into(),
            });
        }
        Ok(())
    }

    fn exec_block(
        &mut self,
        f: &Func,
        body: &[Stmt],
        env: &mut HashMap<String, usize>,
    ) -> Result<Flow, EvalError> {
        // Block scoping: names declared inside are removed after (restore
        // the shadowed binding if there was one).
        let mut shadowed: Vec<(String, Option<usize>)> = Vec::new();
        let mut flow = Flow::Normal;
        let mut i = 0;
        while i < body.len() {
            let s = &body[i];
            if !self.segs.is_empty() {
                if let Some(Some(seg)) = self.segs.get(&(s.span.line, s.span.col)) {
                    let seg = Rc::clone(seg);
                    // Under-fueled executions fall back to the oracle so
                    // the fuel error lands on the exact statement.
                    if self.steps + seg.ticks <= self.fuel {
                        if let Some(fl) = self.run_segment(&seg, env, &mut shadowed) {
                            match fl {
                                Flow::Normal => {
                                    i += seg.n_stmts;
                                    continue;
                                }
                                other => {
                                    flow = other;
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            match self.exec_stmt(f, s, env, &mut shadowed)? {
                Flow::Normal => {}
                other => {
                    flow = other;
                    break;
                }
            }
            i += 1;
        }
        for (name, old) in shadowed.into_iter().rev() {
            match old {
                Some(c) => env.insert(name, c),
                None => env.remove(&name),
            };
        }
        Ok(flow)
    }

    /// Executes one compiled segment, or returns `None` (no state touched)
    /// if the runtime environment does not match the shapes the segment was
    /// compiled against — the caller then interprets the statements.
    ///
    /// Compiled segments cannot fail: every opcode is total and fuel was
    /// prechecked, so this replaces `seg.n_stmts` statements exactly.
    fn run_segment(
        &mut self,
        seg: &Segment,
        env: &mut HashMap<String, usize>,
        shadowed: &mut Vec<(String, Option<usize>)>,
    ) -> Option<Flow> {
        for (name, _, ty) in seg.loads.iter().chain(seg.stores.iter()) {
            let cell = &self.store[*env.get(name)?];
            if cell.words.len() != 1 || cell.ty != *ty {
                return None;
            }
        }
        self.seg_arena.clear();
        self.seg_arena.resize(seg.prog.arena_len(), 0);
        for (name, slot, _) in &seg.loads {
            self.seg_arena[*slot as usize] = self.store[env[name]].words[0].to_u64();
        }
        seg.prog.run(&mut self.seg_arena, &mut self.seg_scratch);
        self.steps += seg.ticks;
        for (name, slot, ty) in &seg.stores {
            let idx = env[name];
            self.store[idx].words[0] = Bv::from_u64(ty.width, self.seg_arena[*slot as usize]);
        }
        // Declarations push cells exactly like `exec_stmt` so store indices
        // (and therefore pointer encodings) stay oracle-identical.
        for (name, slot, ty) in &seg.decls {
            self.store.push(Cell {
                words: vec![Bv::from_u64(ty.width, self.seg_arena[*slot as usize])],
                ty: *ty,
            });
            let idx = self.store.len() - 1;
            shadowed.push((name.clone(), env.insert(name.clone(), idx)));
        }
        Some(match &seg.ret {
            None => Flow::Normal,
            Some(RetAction::Void) => Flow::Return(Value::Void),
            Some(RetAction::Value { slot, src, out }) => {
                let b = Bv::from_u64(src.width, self.seg_arena[*slot as usize]);
                Flow::Return(Value::Scalar(resize(&b, src.signed, *out), out.signed))
            }
        })
    }

    fn exec_stmt(
        &mut self,
        f: &Func,
        s: &Stmt,
        env: &mut HashMap<String, usize>,
        shadowed: &mut Vec<(String, Option<usize>)>,
    ) -> Result<Flow, EvalError> {
        self.tick(s.span)?;
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                let cell = match ty {
                    Ty::Scalar(sc) => {
                        let w = match init {
                            Some(e) => {
                                let (b, signed) = self.scalar(f, e, env)?;
                                resize(&b, signed, *sc)
                            }
                            None => Bv::zero(sc.width),
                        };
                        Cell {
                            words: vec![w],
                            ty: *sc,
                        }
                    }
                    Ty::Array(sc, n) => Cell {
                        words: vec![Bv::zero(sc.width); *n],
                        ty: *sc,
                    },
                    Ty::Ptr(sc) => {
                        // Pointers are stored as a 64-bit encoded (cell,
                        // offset) pair in a side value; model them as a
                        // one-word cell holding the encoding.
                        let enc = match init {
                            Some(e) => match self.eval(f, e, env)? {
                                Value::Ptr(p) => encode_ptr(p),
                                other => {
                                    return Err(EvalError {
                                        span: e.span,
                                        message: format!("expected pointer, got {other}"),
                                    })
                                }
                            },
                            None => Bv::zero(64),
                        };
                        Cell {
                            words: vec![enc],
                            ty: ScalarTy {
                                width: sc.width,
                                signed: sc.signed,
                            },
                        }
                    }
                    // Invariant: the parser only produces `Ty::Void` for
                    // function return types (see `Parser::func`); declaration
                    // statements are always scalar, pointer, or array typed.
                    Ty::Void => unreachable!("parser never produces void declarations"),
                };
                self.store.push(cell);
                let idx = self.store.len() - 1;
                shadowed.push((name.clone(), env.insert(name.clone(), idx)));
                Ok(Flow::Normal)
            }
            StmtKind::Assign { lhs, rhs } => {
                match lhs {
                    LValue::Var(n) => {
                        let cell_idx = lookup(env, n, s.span)?;
                        if is_ptr_ty(self.prog, f, n) {
                            let v = self.eval(f, rhs, env)?;
                            let Value::Ptr(p) = v else {
                                return Err(EvalError {
                                    span: rhs.span,
                                    message: format!("expected pointer, got {v}"),
                                });
                            };
                            self.store[cell_idx].words[0] = encode_ptr(p);
                        } else {
                            let (b, signed) = self.scalar(f, rhs, env)?;
                            let ty = self.store[cell_idx].ty;
                            self.store[cell_idx].words[0] = resize(&b, signed, ty);
                        }
                    }
                    LValue::Index { base, index } => {
                        let (iv, _) = self.scalar(f, index, env)?;
                        let (b, signed) = self.scalar(f, rhs, env)?;
                        let cell_idx = lookup(env, base, s.span)?;
                        if is_ptr_ty(self.prog, f, base) {
                            // Write through the pointer: p[i] aliases the
                            // pointee, not the pointer cell.
                            let p = decode_ptr(&self.store[cell_idx].words[0], s.span)?;
                            let target = self.store.get(p.cell).ok_or_else(|| dangling(s.span))?.ty;
                            let w = resize(&b, signed, target);
                            let words = &mut self
                                .store
                                .get_mut(p.cell)
                                .ok_or_else(|| dangling(s.span))?
                                .words;
                            let i = p.offset + iv.to_u64() as usize;
                            if i >= words.len() {
                                return Err(dangling(s.span));
                            }
                            words[i] = w;
                        } else {
                            let len = self.store[cell_idx].words.len();
                            let ty = self.store[cell_idx].ty;
                            let i = (iv.to_u64() as usize) % len.max(1);
                            self.store[cell_idx].words[i] = resize(&b, signed, ty);
                        }
                    }
                    LValue::Deref(n) => {
                        let (b, signed) = self.scalar(f, rhs, env)?;
                        let cell_idx = lookup(env, n, s.span)?;
                        let p = decode_ptr(&self.store[cell_idx].words[0], s.span)?;
                        let target = self.store.get(p.cell).ok_or_else(|| dangling(s.span))?.ty;
                        let w = resize(&b, signed, target);
                        let words = &mut self
                            .store
                            .get_mut(p.cell)
                            .ok_or_else(|| dangling(s.span))?
                            .words;
                        if p.offset >= words.len() {
                            return Err(dangling(s.span));
                        }
                        words[p.offset] = w;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(f, e, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let (c, _) = self.scalar(f, cond, env)?;
                if !c.is_zero() {
                    self.exec_block(f, then_body, env)
                } else {
                    self.exec_block(f, else_body, env)
                }
            }
            StmtKind::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let (iv, signed) = self.scalar(f, init, env)?;
                self.store.push(Cell {
                    words: vec![resize(&iv, signed, ScalarTy::INT)],
                    ty: ScalarTy::INT,
                });
                let idx = self.store.len() - 1;
                let old = env.insert(var.clone(), idx);
                let mut result = Flow::Normal;
                loop {
                    self.tick(s.span)?;
                    let (c, _) = self.scalar(f, cond, env)?;
                    if c.is_zero() {
                        break;
                    }
                    match self.exec_block(f, body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => {
                            result = r;
                            break;
                        }
                    }
                    let (sv, ssigned) = self.scalar(f, step, env)?;
                    self.store[idx].words[0] = resize(&sv, ssigned, ScalarTy::INT);
                }
                match old {
                    Some(c) => env.insert(var.clone(), c),
                    None => env.remove(var),
                };
                Ok(result)
            }
            StmtKind::While { cond, body } => loop {
                self.tick(s.span)?;
                let (c, _) = self.scalar(f, cond, env)?;
                if c.is_zero() {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(f, body, env)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => return Ok(Flow::Normal),
                    r @ Flow::Return(_) => return Ok(r),
                }
            },
            StmtKind::Return(v) => {
                let val = match (v, &f.ret) {
                    (None, _) => Value::Void,
                    (Some(e), Ty::Scalar(sc)) => {
                        let (b, signed) = self.scalar(f, e, env)?;
                        Value::Scalar(resize(&b, signed, *sc), sc.signed)
                    }
                    (Some(e), _) => self.eval(f, e, env)?,
                };
                Ok(Flow::Return(val))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Block(body) => self.exec_block(f, body, env),
        }
    }

    /// Evaluates an expression to a scalar (Bv, signedness).
    fn scalar(
        &mut self,
        f: &Func,
        e: &Expr,
        env: &mut HashMap<String, usize>,
    ) -> Result<(Bv, bool), EvalError> {
        match self.eval(f, e, env)? {
            Value::Scalar(b, s) => Ok((b, s)),
            other => Err(EvalError {
                span: e.span,
                message: format!("expected scalar, got {other}"),
            }),
        }
    }

    fn eval(
        &mut self,
        f: &Func,
        e: &Expr,
        env: &mut HashMap<String, usize>,
    ) -> Result<Value, EvalError> {
        self.tick(e.span)?;
        match &e.kind {
            ExprKind::Int(v) => {
                let t = literal_ty(*v);
                Ok(Value::Scalar(Bv::from_u64(t.width, *v), t.signed))
            }
            ExprKind::Var(n) => {
                let idx = lookup(env, n, e.span)?;
                let cell = &self.store[idx];
                if is_ptr_ty(self.prog, f, n) {
                    Ok(Value::Ptr(decode_ptr(&cell.words[0], e.span)?))
                } else if cell_is_array(self.prog, f, n) {
                    Ok(Value::Array(cell.words.clone(), cell.ty))
                } else {
                    Ok(Value::Scalar(cell.words[0].clone(), cell.ty.signed))
                }
            }
            ExprKind::Index { base, index } => {
                let (iv, _) = self.scalar(f, index, env)?;
                let idx = lookup(env, base, e.span)?;
                if is_ptr_ty(self.prog, f, base) {
                    let p = decode_ptr(&self.store[idx].words[0].clone(), e.span)?;
                    let cell = self.store.get(p.cell).ok_or_else(|| dangling(e.span))?;
                    let i = p.offset + iv.to_u64() as usize;
                    let w = cell.words.get(i).ok_or_else(|| dangling(e.span))?;
                    return Ok(Value::Scalar(w.clone(), cell.ty.signed));
                }
                let cell = &self.store[idx];
                let len = cell.words.len().max(1);
                let i = (iv.to_u64() as usize) % len;
                Ok(Value::Scalar(cell.words[i].clone(), cell.ty.signed))
            }
            ExprKind::Call { callee, args } => self.call(f, e.span, callee, args, env),
            ExprKind::Un(op, a) => {
                let (b, signed) = self.scalar(f, a, env)?;
                Ok(match op {
                    UnOp::Neg => Value::Scalar(b.wrapping_neg(), signed),
                    UnOp::Not => Value::Scalar(b.not(), signed),
                    UnOp::LNot => Value::Scalar(Bv::from_bool(b.is_zero()), false),
                })
            }
            ExprKind::Bin(op, a, b) => {
                let (av, asig) = self.scalar(f, a, env)?;
                let (bv, bsig) = self.scalar(f, b, env)?;
                Ok(eval_binop(
                    *op,
                    &av,
                    ScalarTy {
                        width: av.width(),
                        signed: asig,
                    },
                    &bv,
                    ScalarTy {
                        width: bv.width(),
                        signed: bsig,
                    },
                ))
            }
            ExprKind::Ternary { cond, t, f: fe } => {
                let (c, _) = self.scalar(f, cond, env)?;
                // Both sides are pure in SLM-C, so evaluate only the taken
                // side for speed.
                if !c.is_zero() {
                    self.eval(f, t, env)
                } else {
                    self.eval(f, fe, env)
                }
            }
            ExprKind::Cast(ty, a) => {
                let (b, signed) = self.scalar(f, a, env)?;
                Ok(Value::Scalar(resize(&b, signed, *ty), ty.signed))
            }
            ExprKind::AddrOf(n) => {
                let idx = lookup(env, n, e.span)?;
                Ok(Value::Ptr(PtrVal {
                    cell: idx,
                    offset: 0,
                }))
            }
            ExprKind::Deref(p) => {
                let v = self.eval(f, p, env)?;
                let Value::Ptr(pv) = v else {
                    return Err(EvalError {
                        span: e.span,
                        message: format!("cannot dereference {v}"),
                    });
                };
                let cell = self.store.get(pv.cell).ok_or_else(|| dangling(e.span))?;
                let w = cell.words.get(pv.offset).ok_or_else(|| dangling(e.span))?;
                Ok(Value::Scalar(w.clone(), cell.ty.signed))
            }
            ExprKind::Malloc { elem, count } => {
                let (n, _) = self.scalar(f, count, env)?;
                let n = n.to_u64() as usize;
                self.store.push(Cell {
                    words: vec![Bv::zero(elem.width); n.max(1)],
                    ty: *elem,
                });
                Ok(Value::Ptr(PtrVal {
                    cell: self.store.len() - 1,
                    offset: 0,
                }))
            }
        }
    }

    fn call(
        &mut self,
        caller: &Func,
        span: Span,
        callee: &str,
        args: &[Expr],
        env: &mut HashMap<String, usize>,
    ) -> Result<Value, EvalError> {
        if self.call_depth >= self.max_call_depth {
            return Err(EvalError {
                span,
                message: format!(
                    "call depth exceeds {} (runaway recursion? see lint DFV005)",
                    self.max_call_depth
                ),
            });
        }
        let g = self
            .prog
            .func(callee)
            .ok_or_else(|| EvalError {
                span,
                message: format!("unknown function {callee:?}"),
            })?
            .clone();
        let mut new_env: HashMap<String, usize> = HashMap::new();
        let mut out_links: Vec<(String, usize)> = Vec::new();
        for (p, a) in g.params.iter().zip(args) {
            let v = self.eval(caller, a, env)?;
            let cell = self.bind_param(&g, p, v)?;
            if p.is_out {
                // Remember the caller's variable so we can copy back.
                let ExprKind::Var(n) = &a.kind else {
                    return Err(EvalError {
                        span: a.span,
                        message: "out arguments must be plain variables".into(),
                    });
                };
                out_links.push((n.clone(), cell));
            }
            new_env.insert(p.name.clone(), cell);
        }
        self.call_depth += 1;
        let flow = self.exec_block(&g, &g.body, &mut new_env);
        self.call_depth -= 1;
        let flow = flow?;
        // Copy out parameters back to the caller, converting each word to
        // the caller variable's type (widths may differ through implicit
        // scalar conversion).
        for (caller_var, callee_cell) in out_links {
            let src_ty = self.store[callee_cell].ty;
            let words = self.store[callee_cell].words.clone();
            let dst = lookup(env, &caller_var, span)?;
            let dst_ty = self.store[dst].ty;
            self.store[dst].words = words
                .iter()
                .map(|w| resize(w, src_ty.signed, dst_ty))
                .collect();
        }
        Ok(match flow {
            Flow::Return(v) => v,
            _ => Value::Void,
        })
    }
}

fn lookup(env: &HashMap<String, usize>, n: &str, span: Span) -> Result<usize, EvalError> {
    env.get(n).copied().ok_or_else(|| EvalError {
        span,
        message: format!("undeclared variable {n:?}"),
    })
}

fn dangling(span: Span) -> EvalError {
    EvalError {
        span,
        message: "dangling or null pointer access".into(),
    }
}

fn encode_ptr(p: PtrVal) -> Bv {
    Bv::from_u64(
        64,
        ((p.cell as u64) << 24) | (p.offset as u64 & 0xFF_FFFF) | (1 << 63),
    )
}

fn decode_ptr(b: &Bv, span: Span) -> Result<PtrVal, EvalError> {
    let raw = b.to_u64();
    if raw & (1 << 63) == 0 {
        return Err(EvalError {
            span,
            message: "dereference of uninitialized pointer".into(),
        });
    }
    Ok(PtrVal {
        cell: ((raw >> 24) & 0xFFFF_FFFF) as usize,
        offset: (raw & 0xFF_FFFF) as usize,
    })
}

/// Whether `n` is pointer-typed in `f` (syntactic: declared as pointer).
/// The interpreter only needs this for variables, whose declarations are in
/// scope; sema has already validated everything.
fn is_ptr_ty(prog: &Program, f: &Func, n: &str) -> bool {
    fn in_stmts(stmts: &[Stmt], n: &str) -> Option<bool> {
        for s in stmts {
            match &s.kind {
                StmtKind::Decl { name, ty, .. } if name == n => {
                    return Some(matches!(ty, Ty::Ptr(_)))
                }
                StmtKind::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    if let Some(b) = in_stmts(then_body, n).or_else(|| in_stmts(else_body, n)) {
                        return Some(b);
                    }
                }
                StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                    if let Some(b) = in_stmts(body, n) {
                        return Some(b);
                    }
                }
                StmtKind::Block(body) => {
                    if let Some(b) = in_stmts(body, n) {
                        return Some(b);
                    }
                }
                _ => {}
            }
        }
        None
    }
    let _ = prog;
    if let Some(p) = f.params.iter().find(|p| p.name == n) {
        return matches!(p.ty, Ty::Ptr(_));
    }
    in_stmts(&f.body, n).unwrap_or(false)
}

fn cell_is_array(prog: &Program, f: &Func, n: &str) -> bool {
    fn in_stmts(stmts: &[Stmt], n: &str) -> Option<bool> {
        for s in stmts {
            match &s.kind {
                StmtKind::Decl { name, ty, .. } if name == n => {
                    return Some(matches!(ty, Ty::Array(..)))
                }
                StmtKind::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    if let Some(b) = in_stmts(then_body, n).or_else(|| in_stmts(else_body, n)) {
                        return Some(b);
                    }
                }
                StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                    if let Some(b) = in_stmts(body, n) {
                        return Some(b);
                    }
                }
                StmtKind::Block(body) => {
                    if let Some(b) = in_stmts(body, n) {
                        return Some(b);
                    }
                }
                _ => {}
            }
        }
        None
    }
    let _ = prog;
    if let Some(p) = f.params.iter().find(|p| p.name == n) {
        return matches!(p.ty, Ty::Array(..));
    }
    in_stmts(&f.body, n).unwrap_or(false)
}

/// Resizes a scalar to a target type, extending per the *source* signedness
/// (the SLM-C conversion rule).
pub fn resize(b: &Bv, src_signed: bool, target: ScalarTy) -> Bv {
    if src_signed {
        b.resize_sext(target.width)
    } else {
        b.resize_zext(target.width)
    }
}

/// Evaluates a binary operator with SLM-C promotion, shared between the
/// interpreter and tests.
pub fn eval_binop(op: BinOp, a: &Bv, at: ScalarTy, b: &Bv, bt: ScalarTy) -> Value {
    use BinOp::*;
    let rt = binop_result(op, at, bt);
    let p = promote(at, bt);
    let ap = resize(a, at.signed, p);
    let bp = resize(b, bt.signed, p);
    match op {
        Add => Value::Scalar(ap.wrapping_add(&bp), rt.signed),
        Sub => Value::Scalar(ap.wrapping_sub(&bp), rt.signed),
        Mul => Value::Scalar(ap.wrapping_mul(&bp), rt.signed),
        Div => Value::Scalar(
            if p.signed { ap.sdiv(&bp) } else { ap.udiv(&bp) },
            rt.signed,
        ),
        Rem => Value::Scalar(
            if p.signed { ap.srem(&bp) } else { ap.urem(&bp) },
            rt.signed,
        ),
        And => Value::Scalar(ap.and(&bp), rt.signed),
        Or => Value::Scalar(ap.or(&bp), rt.signed),
        Xor => Value::Scalar(ap.xor(&bp), rt.signed),
        Shl => {
            let lt = crate::sema::int_promote(at);
            let ap = resize(a, at.signed, lt);
            Value::Scalar(ap.shl_bv(b), lt.signed)
        }
        Shr => {
            let lt = crate::sema::int_promote(at);
            let ap = resize(a, at.signed, lt);
            Value::Scalar(
                if lt.signed {
                    ap.ashr_bv(b)
                } else {
                    ap.lshr_bv(b)
                },
                lt.signed,
            )
        }
        Eq => Value::Scalar(Bv::from_bool(ap == bp), false),
        Ne => Value::Scalar(Bv::from_bool(ap != bp), false),
        Lt => Value::Scalar(
            Bv::from_bool(if p.signed { ap.slt(&bp) } else { ap.ult(&bp) }),
            false,
        ),
        Le => Value::Scalar(
            Bv::from_bool(if p.signed { !bp.slt(&ap) } else { !bp.ult(&ap) }),
            false,
        ),
        Gt => Value::Scalar(
            Bv::from_bool(if p.signed { bp.slt(&ap) } else { bp.ult(&ap) }),
            false,
        ),
        Ge => Value::Scalar(
            Bv::from_bool(if p.signed { !ap.slt(&bp) } else { !ap.ult(&bp) }),
            false,
        ),
        LAnd => Value::Scalar(Bv::from_bool(!a.is_zero() && !b.is_zero()), false),
        LOr => Value::Scalar(Bv::from_bool(!a.is_zero() || !b.is_zero()), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run1(src: &str, entry: &str, args: &[Value]) -> Value {
        let prog = parse(src).unwrap();
        crate::sema::check(&prog).unwrap();
        Interp::new(&prog).run(entry, args).unwrap().ret
    }

    fn u8v(v: u64) -> Value {
        Value::from_u64(
            ScalarTy {
                width: 8,
                signed: false,
            },
            v,
        )
    }

    #[test]
    fn basic_arithmetic() {
        let src = "uint8 f(uint8 a, uint8 b) { return a * 2 + b; }";
        assert_eq!(run1(src, "f", &[u8v(10), u8v(5)]), u8v(25));
    }

    #[test]
    fn fig1_masked_by_wide_ints() {
        // The paper's Fig 1 written with `int` temporaries: no overflow,
        // both orders agree — the SLM masks the bug.
        let src = r#"
            int lhs(int8 a, int8 b, int8 c) { int t = a + b; return t + c; }
            int rhs(int8 a, int8 b, int8 c) { int t = b + c; return t + a; }
        "#;
        let args = [
            Value::from_i64(
                ScalarTy {
                    width: 8,
                    signed: true,
                },
                127,
            ),
            Value::from_i64(
                ScalarTy {
                    width: 8,
                    signed: true,
                },
                127,
            ),
            Value::from_i64(
                ScalarTy {
                    width: 8,
                    signed: true,
                },
                -1,
            ),
        ];
        let l = run1(src, "lhs", &args);
        let r = run1(src, "rhs", &args);
        assert_eq!(l, r);
        assert_eq!(l.as_bv().unwrap().to_i64(), 253);
    }

    #[test]
    fn fig1_exposed_by_narrow_temp() {
        // With an 8-bit temporary the same computation diverges.
        let src = r#"
            int lhs(int8 a, int8 b, int8 c) { int8 t = a + b; return t + c; }
            int rhs(int8 a, int8 b, int8 c) { int8 t = b + c; return t + a; }
        "#;
        let args = [
            Value::from_i64(
                ScalarTy {
                    width: 8,
                    signed: true,
                },
                127,
            ),
            Value::from_i64(
                ScalarTy {
                    width: 8,
                    signed: true,
                },
                127,
            ),
            Value::from_i64(
                ScalarTy {
                    width: 8,
                    signed: true,
                },
                -1,
            ),
        ];
        let l = run1(src, "lhs", &args);
        let r = run1(src, "rhs", &args);
        assert_ne!(l, r);
        assert_eq!(l.as_bv().unwrap().to_i64(), -3);
        assert_eq!(r.as_bv().unwrap().to_i64(), 253);
    }

    #[test]
    fn loops_and_arrays() {
        let src = r#"
            uint32 sum(uint8 xs[8]) {
                uint32 acc = 0;
                for (int i = 0; i < 8; i++) {
                    acc += xs[i];
                }
                return acc;
            }
        "#;
        let xs = Value::Array(
            (1..=8).map(|i| Bv::from_u64(8, i)).collect(),
            ScalarTy {
                width: 8,
                signed: false,
            },
        );
        let r = run1(src, "sum", &[xs]);
        assert_eq!(r.as_bv().unwrap().to_u64(), 36);
    }

    #[test]
    fn break_and_continue() {
        let src = r#"
            int f() {
                int acc = 0;
                for (int i = 0; i < 100; i++) {
                    if (i % 2 == 0) continue;
                    if (i > 10) break;
                    acc += i;
                }
                return acc;
            }
        "#;
        // 1 + 3 + 5 + 7 + 9 = 25
        assert_eq!(run1(src, "f", &[]).as_bv().unwrap().to_i64(), 25);
    }

    #[test]
    fn function_calls_and_out_params() {
        let src = r#"
            void split(uint16 v, out uint8 hi, out uint8 lo) {
                hi = (uint8)(v >> 8);
                lo = (uint8) v;
            }
            uint16 top(uint16 v) {
                uint8 h = 0;
                uint8 l = 0;
                split(v, h, l);
                return ((uint16) h << 8) | (uint16) l;
            }
        "#;
        let v = Value::from_u64(
            ScalarTy {
                width: 16,
                signed: false,
            },
            0xABCD,
        );
        assert_eq!(run1(src, "top", std::slice::from_ref(&v)), v);
    }

    #[test]
    fn out_params_surface_in_run_result() {
        let src = "void f(uint8 x, out uint8 y) { y = x + 1; }";
        let prog = parse(src).unwrap();
        let r = Interp::new(&prog).run("f", &[u8v(9)]).unwrap();
        assert_eq!(r.outs.len(), 1);
        assert_eq!(r.outs[0].0, "y");
        assert_eq!(r.outs[0].1, u8v(10));
    }

    #[test]
    fn pointers_and_malloc() {
        let src = r#"
            int f() {
                int x = 5;
                int *p = &x;
                *p = 7;
                int *q = malloc(4);
                q[2] = 0; // default zero anyway
                *q = 35;
                return *p + *q;
            }
        "#;
        assert_eq!(run1(src, "f", &[]).as_bv().unwrap().to_i64(), 42);
    }

    #[test]
    fn uninitialized_pointer_faults() {
        let src = "int f() { int *p; return *p; }";
        let prog = parse(src).unwrap();
        let e = Interp::new(&prog).run("f", &[]).unwrap_err();
        assert!(e.message.contains("uninitialized pointer"));
    }

    #[test]
    fn call_depth_stops_runaway_recursion() {
        // Recursion is a DFV005 lint error, but the interpreter also runs
        // unlinted programs: it must fail cleanly, not blow the native stack.
        let src = "int f(int n) { return f(n + 1); }";
        let prog = parse(src).unwrap();
        let e = Interp::new(&prog)
            .run("f", &[Value::from_i64(ScalarTy::INT, 0)])
            .unwrap_err();
        assert!(e.message.contains("call depth"), "{}", e.message);

        // Legitimate nested (non-recursive) calls still work under a
        // tightened budget.
        let src = r#"
            int leaf(int x) { return x + 1; }
            int mid(int x) { return leaf(x) + 1; }
            int top(int x) { return mid(x) + 1; }
        "#;
        let prog = parse(src).unwrap();
        let r = Interp::new(&prog)
            .with_max_call_depth(3)
            .run("top", &[Value::from_i64(ScalarTy::INT, 0)])
            .unwrap();
        assert_eq!(r.ret.as_bv().unwrap().to_i64(), 3);
    }

    #[test]
    fn pointer_out_param_is_a_typed_error_without_sema() {
        // Sema rejects pointer-typed out params, but the interpreter also
        // accepts parsed-but-unchecked programs: it must report, not panic.
        let src = "void f(out int* p) { }";
        let prog = parse(src).unwrap();
        let e = Interp::new(&prog).run("f", &[]).unwrap_err();
        assert!(e.message.contains("run sema first"), "{}", e.message);
    }

    #[test]
    fn fuel_stops_runaway_loops() {
        let src = "int f() { int x = 1; while (x) { x = 1; } return x; }";
        let prog = parse(src).unwrap();
        let e = Interp::new(&prog)
            .with_fuel(10_000)
            .run("f", &[])
            .unwrap_err();
        assert!(e.message.contains("fuel"));
    }

    #[test]
    fn index_wraps_like_hardware() {
        let src = r#"
            uint8 f(uint8 xs[4], uint8 i) { return xs[i]; }
        "#;
        let xs = Value::Array(
            (0..4).map(|i| Bv::from_u64(8, 10 + i)).collect(),
            ScalarTy {
                width: 8,
                signed: false,
            },
        );
        // Index 6 wraps to 2.
        let r = run1(src, "f", &[xs, u8v(6)]);
        assert_eq!(r.as_bv().unwrap().to_u64(), 12);
    }

    #[test]
    fn signed_unsigned_comparison_promotion() {
        // int8 vs uint8 promote to int (C's integer promotion), so the
        // comparison behaves mathematically...
        let src = "bool f(int8 a, uint8 b) { return a > b; }";
        let s8 = ScalarTy {
            width: 8,
            signed: true,
        };
        let r = run1(src, "f", &[Value::from_i64(s8, -1), u8v(1)]);
        assert_eq!(r.as_bv().unwrap().to_u64(), 0);
        // ...but at 64 bits unsigned wins and -1 reads as u64::MAX — the
        // classic C trap, faithfully reproduced.
        let src64 = "bool f(int64 a, uint64 b) { return a > b; }";
        let s64 = ScalarTy {
            width: 64,
            signed: true,
        };
        let u64t = ScalarTy {
            width: 64,
            signed: false,
        };
        let r = run1(
            src64,
            "f",
            &[Value::from_i64(s64, -1), Value::from_u64(u64t, 1)],
        );
        assert_eq!(r.as_bv().unwrap().to_u64(), 1);
    }

    /// Runs `entry` through both the AST oracle and the segment-compiled
    /// interpreter and asserts the full [`RunResult`] — return value, out
    /// params, and exact step count — is identical. Returns the compiled
    /// run's segment count so callers can assert coverage.
    fn assert_compiled_parity(src: &str, entry: &str, args: &[Value]) -> usize {
        let prog = parse(src).unwrap();
        crate::sema::check(&prog).unwrap();
        let oracle = Interp::new(&prog).run(entry, args);
        let mut compiled = Interp::new_compiled(&prog);
        let n = compiled.compiled_segments();
        assert_eq!(compiled.run(entry, args), oracle, "compiled vs oracle");
        n
    }

    #[test]
    fn compiled_straight_line_matches_oracle() {
        let src = r#"
            uint16 f(uint8 a, int8 b) {
                int t = a * 3 + b;
                uint16 u = (uint16) t ^ 0x55;
                u = u + (uint16) a;
                return u - 1;
            }
        "#;
        let n = assert_compiled_parity(
            src,
            "f",
            &[
                u8v(200),
                Value::from_i64(
                    ScalarTy {
                        width: 8,
                        signed: true,
                    },
                    -7,
                ),
            ],
        );
        assert!(n > 0, "expected at least one compiled segment");
    }

    #[test]
    fn compiled_segments_inside_loops_match_oracle() {
        // The loop itself is interpreted; its body compiles to one segment
        // that runs every iteration, including a declaration (cell-push
        // parity) and mixed-signedness comparisons feeding arithmetic.
        let src = r#"
            uint32 f(uint8 seed) {
                uint32 acc = 0;
                for (int i = 0; i < 37; i++) {
                    uint32 x = acc * 1103515245 + (uint32) seed;
                    x = x ^ (x >> 7);
                    acc = acc + x % 251;
                }
                return acc;
            }
        "#;
        let n = assert_compiled_parity(src, "f", &[u8v(0x5A)]);
        assert!(n > 0);
    }

    #[test]
    fn compiled_edge_operators_match_oracle() {
        // Division/remainder by zero, shifts past the width, negation at
        // minimum, logical ops on nonzero-but-not-one values: the exact
        // corners where a lowering that is "almost" eval_binop diverges.
        let src = r#"
            int f(int a, int b) {
                int q = a / b;
                int r = a % b;
                int s1 = a << 33;
                int s2 = a >> 31;
                uint8 t = (uint8) a;
                int s3 = (int)(t >> 9);
                int l = (a && b) + (a || b) + !a;
                int n = -a + ~b;
                return q + r + s1 + s2 + s3 + l + n;
            }
        "#;
        for (a, b) in [(7, 0), (-2147483648, -1), (0, 5), (-9, 4), (12345, -678)] {
            let args = [
                Value::from_i64(ScalarTy::INT, a),
                Value::from_i64(ScalarTy::INT, b),
            ];
            assert!(assert_compiled_parity(src, "f", &args) > 0);
        }
    }

    #[test]
    fn compiled_callee_segments_and_outs_match_oracle() {
        // Spans survive the Func clone `call` performs, so segments fire
        // inside callees; out params flow back through the compiled writes.
        let src = r#"
            void mix(uint16 v, out uint16 hi, out uint16 lo) {
                hi = v >> 8;
                lo = v & 255;
            }
            uint16 top(uint16 v) {
                uint16 h = 0;
                uint16 l = 0;
                mix(v * 3, h, l);
                return (h << 8) | l;
            }
        "#;
        let args = [Value::from_u64(
            ScalarTy {
                width: 16,
                signed: false,
            },
            0xBEEF,
        )];
        assert!(assert_compiled_parity(src, "top", &args) > 0);
    }

    #[test]
    fn compiled_shadowing_and_mixed_blocks_match_oracle() {
        // Re-declaration of a name after assigning the outer one inside a
        // single segment, plus pointer statements that force fallback in
        // the same function (store indices must stay aligned for the
        // pointer encoding to keep working).
        let src = r#"
            int f(int x) {
                x = x + 1;
                int y = x * 2;
                int x = y - 3;
                int *p = &x;
                *p = *p + y;
                return x;
            }
        "#;
        for v in [-5, 0, 41] {
            let args = [Value::from_i64(ScalarTy::INT, v)];
            assert!(assert_compiled_parity(src, "f", &args) > 0);
        }
    }

    #[test]
    fn compiled_fuel_exhaustion_matches_oracle_exactly() {
        // The step counts must agree at every prefix, so the fuel error
        // fires after the same statement with the same span. Probe a range
        // of budgets across the compiled/interpreted boundary.
        let src = r#"
            int f() {
                int acc = 0;
                for (int i = 0; i < 8; i++) {
                    int t = i * i + 1;
                    acc = acc + t;
                }
                return acc;
            }
        "#;
        let prog = parse(src).unwrap();
        for fuel in 1..90 {
            let oracle = Interp::new(&prog).with_fuel(fuel).run("f", &[]);
            let compiled = Interp::new_compiled(&prog).with_fuel(fuel).run("f", &[]);
            assert_eq!(compiled, oracle, "fuel={fuel}");
        }
    }

    #[test]
    fn compiled_interp_reports_segments() {
        let src = "int f() { int a = 1; int b = 2; return a + b; }";
        let prog = parse(src).unwrap();
        assert_eq!(Interp::new(&prog).compiled_segments(), 0);
        assert!(Interp::new_compiled(&prog).compiled_segments() > 0);
    }

    #[test]
    fn shift_semantics() {
        let src = "int8 f(int8 a) { return a >> 1; }";
        let r = run1(
            src,
            "f",
            &[Value::from_i64(
                ScalarTy {
                    width: 8,
                    signed: true,
                },
                -8,
            )],
        );
        assert_eq!(r.as_bv().unwrap().to_i64(), -4); // arithmetic shift
        let src2 = "uint8 g(uint8 a) { return a >> 1; }";
        let r2 = run1(src2, "g", &[u8v(0x80)]);
        assert_eq!(r2.as_bv().unwrap().to_u64(), 0x40);
    }
}
