//! Semantic analysis: scoped name resolution and bit-accurate typing.
//!
//! SLM-C follows **C's usual arithmetic conversions** deliberately:
//! operands narrower than 32 bits are first promoted to `int` (or to
//! `uint<32>` if their values would not fit, which cannot happen below 32
//! bits), then the wider type wins, with unsigned winning ties. This is the
//! very behaviour the paper's §3.1.1 warns about — `int`-based C models
//! silently compute at 32 bits and *mask* the overflow bugs of narrow RTL
//! datapaths (Figure 1). Keeping the C semantics here lets the workspace
//! reproduce that masking, and the lint/elaboration flow then pushes models
//! toward explicit widths.

use std::collections::HashMap;
use std::fmt;

use crate::ast::*;
use crate::token::Span;

/// A semantic error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// Where the problem is.
    pub span: Span,
    /// Description.
    pub message: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: type error: {}", self.span, self.message)
    }
}

impl std::error::Error for SemaError {}

/// The result of type checking: every expression's type, by expression id.
#[derive(Debug, Clone, Default)]
pub struct TypeMap {
    types: HashMap<u32, Ty>,
}

impl TypeMap {
    /// The type of an expression.
    ///
    /// # Panics
    ///
    /// Panics if the expression was not part of the checked program.
    pub fn ty(&self, e: &Expr) -> Ty {
        self.types[&e.id]
    }

    /// The scalar type of an expression.
    ///
    /// # Panics
    ///
    /// Panics if the expression is not scalar-typed (the checker
    /// guarantees scalar contexts).
    pub fn scalar(&self, e: &Expr) -> ScalarTy {
        match self.ty(e) {
            Ty::Scalar(s) => s,
            other => panic!("expression at {} is {other}, not scalar", e.span),
        }
    }
}

/// C's *integer promotion*: types narrower than `int` promote to `int`
/// (every value of a sub-32-bit type fits in a 32-bit signed integer).
pub fn int_promote(t: ScalarTy) -> ScalarTy {
    if t.width < 32 {
        ScalarTy::INT
    } else {
        t
    }
}

/// C's *usual arithmetic conversions*: integer-promote both operands, then
/// the wider type wins; on equal widths, unsigned wins.
pub fn promote(a: ScalarTy, b: ScalarTy) -> ScalarTy {
    let a = int_promote(a);
    let b = int_promote(b);
    match a.width.cmp(&b.width) {
        std::cmp::Ordering::Greater => a,
        std::cmp::Ordering::Less => b,
        std::cmp::Ordering::Equal => ScalarTy {
            width: a.width,
            signed: a.signed && b.signed,
        },
    }
}

/// The literal type of an integer constant: the narrowest of `int`,
/// `int<64>`, `uint<64>` that holds it.
pub fn literal_ty(v: u64) -> ScalarTy {
    if v <= i32::MAX as u64 {
        ScalarTy::INT
    } else if v <= i64::MAX as u64 {
        ScalarTy {
            width: 64,
            signed: true,
        }
    } else {
        ScalarTy {
            width: 64,
            signed: false,
        }
    }
}

/// The result type of a binary operator on (already promoted) scalars.
pub fn binop_result(op: BinOp, lhs: ScalarTy, rhs: ScalarTy) -> ScalarTy {
    match op {
        BinOp::Add
        | BinOp::Sub
        | BinOp::Mul
        | BinOp::Div
        | BinOp::Rem
        | BinOp::And
        | BinOp::Or
        | BinOp::Xor => promote(lhs, rhs),
        BinOp::Shl | BinOp::Shr => int_promote(lhs),
        BinOp::Eq
        | BinOp::Ne
        | BinOp::Lt
        | BinOp::Le
        | BinOp::Gt
        | BinOp::Ge
        | BinOp::LAnd
        | BinOp::LOr => ScalarTy::BOOL,
    }
}

struct Scope {
    vars: Vec<HashMap<String, Ty>>,
}

impl Scope {
    fn new() -> Self {
        Scope {
            vars: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.vars.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.vars.pop();
    }

    fn declare(&mut self, name: &str, ty: Ty) -> bool {
        self.vars
            .last_mut()
            .expect("scope stack nonempty")
            .insert(name.to_string(), ty)
            .is_none()
    }

    fn lookup(&self, name: &str) -> Option<Ty> {
        self.vars.iter().rev().find_map(|m| m.get(name)).copied()
    }
}

struct Checker<'p> {
    prog: &'p Program,
    map: TypeMap,
    scope: Scope,
    current_ret: Ty,
    loop_depth: u32,
}

/// Type-checks a program.
///
/// # Errors
///
/// Returns [`SemaError`] for the first problem found.
pub fn check(prog: &Program) -> Result<TypeMap, SemaError> {
    let mut names = HashMap::new();
    for f in &prog.funcs {
        if names.insert(f.name.as_str(), ()).is_some() {
            return Err(SemaError {
                span: f.span,
                message: format!("duplicate function {:?}", f.name),
            });
        }
    }
    let mut ck = Checker {
        prog,
        map: TypeMap::default(),
        scope: Scope::new(),
        current_ret: Ty::Void,
        loop_depth: 0,
    };
    for f in &prog.funcs {
        ck.scope = Scope::new();
        ck.current_ret = f.ret;
        for p in &f.params {
            if p.is_out && matches!(p.ty, Ty::Ptr(_)) {
                return Err(SemaError {
                    span: f.span,
                    message: format!("out parameter {:?} cannot be a pointer", p.name),
                });
            }
            if !ck.scope.declare(&p.name, p.ty) {
                return Err(SemaError {
                    span: f.span,
                    message: format!("duplicate parameter {:?}", p.name),
                });
            }
        }
        ck.stmts(&f.body)?;
    }
    Ok(ck.map)
}

impl<'p> Checker<'p> {
    fn err<T>(&self, span: Span, message: impl Into<String>) -> Result<T, SemaError> {
        Err(SemaError {
            span,
            message: message.into(),
        })
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), SemaError> {
        self.scope.push();
        for s in body {
            self.stmt(s)?;
        }
        self.scope.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), SemaError> {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                if let Some(e) = init {
                    let it = self.expr(e)?;
                    match (ty, it) {
                        (Ty::Scalar(_), Ty::Scalar(_)) => {} // implicit resize
                        (Ty::Ptr(a), Ty::Ptr(b)) if *a == b => {}
                        _ => return self.err(e.span, format!("cannot initialize {ty} from {it}")),
                    }
                }
                if !self.scope.declare(name, *ty) {
                    return self.err(s.span, format!("redeclaration of {name:?} in this scope"));
                }
                Ok(())
            }
            StmtKind::Assign { lhs, rhs } => {
                let rt = self.expr(rhs)?;
                let lt = self.lvalue_ty(s.span, lhs)?;
                match (lt, rt) {
                    (Ty::Scalar(_), Ty::Scalar(_)) => Ok(()),
                    (Ty::Ptr(a), Ty::Ptr(b)) if a == b => Ok(()),
                    _ => self.err(s.span, format!("cannot assign {rt} to {lt}")),
                }
            }
            StmtKind::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.scalar_expr(cond)?;
                self.stmts(then_body)?;
                self.stmts(else_body)
            }
            StmtKind::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                self.scope.push();
                self.scalar_expr(init)?;
                self.scope.declare(var, Ty::Scalar(ScalarTy::INT));
                self.scalar_expr(cond)?;
                self.scalar_expr(step)?;
                self.loop_depth += 1;
                let r = self.stmts(body);
                self.loop_depth -= 1;
                self.scope.pop();
                r
            }
            StmtKind::While { cond, body } => {
                self.scalar_expr(cond)?;
                self.loop_depth += 1;
                let r = self.stmts(body);
                self.loop_depth -= 1;
                r
            }
            StmtKind::Return(value) => match (self.current_ret, value) {
                (Ty::Void, None) => Ok(()),
                (Ty::Void, Some(e)) => self.err(e.span, "void function returns a value"),
                (_, None) => self.err(s.span, "missing return value"),
                (Ty::Scalar(_), Some(e)) => {
                    self.scalar_expr(e)?;
                    Ok(())
                }
                (Ty::Ptr(want), Some(e)) => {
                    let t = self.expr(e)?;
                    if t == Ty::Ptr(want) {
                        Ok(())
                    } else {
                        self.err(e.span, format!("cannot return {t} as {}", Ty::Ptr(want)))
                    }
                }
                (Ty::Array(..), Some(_)) => self.err(s.span, "functions cannot return arrays"),
            },
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return self.err(s.span, "break/continue outside a loop");
                }
                Ok(())
            }
            StmtKind::Block(body) => self.stmts(body),
        }
    }

    fn lvalue_ty(&mut self, span: Span, lv: &LValue) -> Result<Ty, SemaError> {
        match lv {
            LValue::Var(n) => self
                .scope
                .lookup(n)
                .ok_or(())
                .or_else(|_| self.err(span, format!("undeclared variable {n:?}"))),
            LValue::Index { base, index } => {
                self.scalar_expr(index)?;
                match self.scope.lookup(base) {
                    Some(Ty::Array(s, _)) => Ok(Ty::Scalar(s)),
                    Some(Ty::Ptr(s)) => Ok(Ty::Scalar(s)),
                    Some(other) => self.err(span, format!("{base:?} is {other}, not indexable")),
                    None => self.err(span, format!("undeclared variable {base:?}")),
                }
            }
            LValue::Deref(n) => match self.scope.lookup(n) {
                Some(Ty::Ptr(s)) => Ok(Ty::Scalar(s)),
                Some(other) => self.err(span, format!("{n:?} is {other}, cannot dereference")),
                None => self.err(span, format!("undeclared variable {n:?}")),
            },
        }
    }

    fn scalar_expr(&mut self, e: &Expr) -> Result<ScalarTy, SemaError> {
        match self.expr(e)? {
            Ty::Scalar(s) => Ok(s),
            other => self.err(e.span, format!("expected a scalar value, found {other}")),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Ty, SemaError> {
        let ty = self.expr_inner(e)?;
        self.map.types.insert(e.id, ty);
        Ok(ty)
    }

    fn expr_inner(&mut self, e: &Expr) -> Result<Ty, SemaError> {
        match &e.kind {
            ExprKind::Int(v) => Ok(Ty::Scalar(literal_ty(*v))),
            ExprKind::Var(n) => self
                .scope
                .lookup(n)
                .ok_or(())
                .or_else(|_| self.err(e.span, format!("undeclared variable {n:?}"))),
            ExprKind::Index { base, index } => {
                self.scalar_expr(index)?;
                match self.scope.lookup(base) {
                    Some(Ty::Array(s, _)) | Some(Ty::Ptr(s)) => Ok(Ty::Scalar(s)),
                    Some(other) => self.err(e.span, format!("{base:?} is {other}, not indexable")),
                    None => self.err(e.span, format!("undeclared variable {base:?}")),
                }
            }
            ExprKind::Call { callee, args } => {
                let Some(f) = self.prog.func(callee) else {
                    return self.err(e.span, format!("unknown function {callee:?}"));
                };
                if f.params.len() != args.len() {
                    return self.err(
                        e.span,
                        format!(
                            "{callee:?} takes {} arguments, {} given",
                            f.params.len(),
                            args.len()
                        ),
                    );
                }
                let ret = f.ret;
                let params = f.params.clone();
                for (p, a) in params.iter().zip(args) {
                    let at = self.expr(a)?;
                    let ok = match (p.ty, at) {
                        (Ty::Scalar(_), Ty::Scalar(_)) => true,
                        (Ty::Array(s, n), Ty::Array(t, m)) => s == t && n == m,
                        (Ty::Ptr(s), Ty::Ptr(t)) => s == t,
                        _ => false,
                    };
                    if !ok {
                        return self.err(
                            a.span,
                            format!("argument for {:?} has type {at}, expected {}", p.name, p.ty),
                        );
                    }
                    if p.is_out && !matches!(a.kind, ExprKind::Var(_)) {
                        return self.err(a.span, "out arguments must be plain variables");
                    }
                }
                Ok(ret)
            }
            ExprKind::Un(op, a) => {
                let at = self.scalar_expr(a)?;
                Ok(Ty::Scalar(match op {
                    UnOp::Neg | UnOp::Not => at,
                    UnOp::LNot => ScalarTy::BOOL,
                }))
            }
            ExprKind::Bin(op, a, b) => {
                let at = self.scalar_expr(a)?;
                let bt = self.scalar_expr(b)?;
                Ok(Ty::Scalar(binop_result(*op, at, bt)))
            }
            ExprKind::Ternary { cond, t, f } => {
                self.scalar_expr(cond)?;
                let tt = self.scalar_expr(t)?;
                let ft = self.scalar_expr(f)?;
                Ok(Ty::Scalar(promote(tt, ft)))
            }
            ExprKind::Cast(ty, a) => {
                self.scalar_expr(a)?;
                Ok(Ty::Scalar(*ty))
            }
            ExprKind::AddrOf(n) => match self.scope.lookup(n) {
                Some(Ty::Scalar(s)) => Ok(Ty::Ptr(s)),
                Some(Ty::Array(s, _)) => Ok(Ty::Ptr(s)),
                Some(other) => self.err(e.span, format!("cannot take address of {other}")),
                None => self.err(e.span, format!("undeclared variable {n:?}")),
            },
            ExprKind::Deref(p) => match self.expr(p)? {
                Ty::Ptr(s) => Ok(Ty::Scalar(s)),
                other => self.err(e.span, format!("cannot dereference {other}")),
            },
            ExprKind::Malloc { elem, count } => {
                self.scalar_expr(count)?;
                Ok(Ty::Ptr(*elem))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<TypeMap, SemaError> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn promotion_rule_is_c_like() {
        let s8 = ScalarTy {
            width: 8,
            signed: true,
        };
        let u16 = ScalarTy {
            width: 16,
            signed: false,
        };
        // Narrow types promote to int first: int8 + uint16 computes as int.
        assert_eq!(promote(s8, u16), ScalarTy::INT);
        // At 64 bits, unsigned wins ties (the classic C trap).
        let s64 = ScalarTy {
            width: 64,
            signed: true,
        };
        let u64t = ScalarTy {
            width: 64,
            signed: false,
        };
        assert!(!promote(s64, u64t).signed);
        // A wider signed type beats a narrower unsigned one.
        let u33 = ScalarTy {
            width: 33,
            signed: false,
        };
        let s40 = ScalarTy {
            width: 40,
            signed: true,
        };
        assert!(promote(u33, s40).signed);
        assert_eq!(promote(u33, s40).width, 40);
    }

    #[test]
    fn accepts_wellformed() {
        let src = r#"
            uint8 helper(uint8 x) { return x * 2; }
            uint<9> top(uint8 a, uint8 b) {
                uint8 t = helper(a);
                return (uint<9>) t + (uint<9>) b;
            }
        "#;
        let map = check_src(src).unwrap();
        let _ = map;
    }

    #[test]
    fn rejects_undeclared() {
        let e = check_src("int f() { return x; }").unwrap_err();
        assert!(e.message.contains("undeclared"));
    }

    #[test]
    fn rejects_bad_call() {
        assert!(check_src("int g(int a) { return a; } int f() { return g(); }").is_err());
        assert!(check_src("int f() { return h(); }").is_err());
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = check_src("int f() { break; return 0; }").unwrap_err();
        assert!(e.message.contains("outside a loop"));
    }

    #[test]
    fn rejects_array_misuse() {
        assert!(check_src("int f(int a) { return a[0]; }").is_err());
        assert!(check_src("void f(uint8 b[4]) { b = 3; }").is_err());
    }

    #[test]
    fn scoping_allows_shadowing_across_blocks() {
        let src = r#"
            int f() {
                int x = 1;
                { int x = 2; }
                return x;
            }
        "#;
        assert!(check_src(src).is_ok());
        assert!(check_src("int f() { int x = 1; int x = 2; return x; }").is_err());
    }

    #[test]
    fn pointer_typing() {
        let src = r#"
            int f() {
                int x = 5;
                int *p = &x;
                *p = 7;
                return *p;
            }
        "#;
        assert!(check_src(src).is_ok());
        assert!(check_src("int f() { int x = 1; uint8 *p = &x; return 0; }").is_err());
    }

    #[test]
    fn typemap_records_expression_types() {
        // uint<9> operands integer-promote to int, so the sum types as int;
        // the return statement then converts back to uint<9>.
        let prog = parse("uint<9> f(uint8 a) { return (uint<9>) a + (uint<9>) a; }").unwrap();
        let map = check(&prog).unwrap();
        let StmtKind::Return(Some(e)) = &prog.funcs[0].body[0].kind else {
            panic!()
        };
        assert_eq!(map.ty(e), Ty::Scalar(ScalarTy::INT));
        // A 33-bit operand is wide enough to escape promotion.
        let prog2 = parse("uint<33> g(uint<33> a) { return a + a; }").unwrap();
        let map2 = check(&prog2).unwrap();
        let StmtKind::Return(Some(e2)) = &prog2.funcs[0].body[0].kind else {
            panic!()
        };
        assert_eq!(
            map2.ty(e2),
            Ty::Scalar(ScalarTy {
                width: 33,
                signed: false
            })
        );
    }

    #[test]
    fn out_params_must_be_vars() {
        let src = r#"
            void g(out uint8 y) { y = 1; }
            int f() { g(3); return 0; }
        "#;
        assert!(check_src(src).is_err());
    }
}
