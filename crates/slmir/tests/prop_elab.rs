//! The elaborated hardware model must agree with the interpreter on every
//! input — the two independent implementations of SLM-C semantics. This is
//! the property that makes the elaborator trustworthy as the SLM side of
//! sequential equivalence checking.
// Gated: property-based tests depend on the external `proptest` crate,
// which offline builds cannot fetch. Enable with `--features proptest-tests`
// in an environment that can resolve crates.io dependencies.
#![cfg(feature = "proptest-tests")]

use dfv_bits::Bv;
use dfv_rtl::Simulator;
use dfv_slmir::{elaborate, parse, Interp, ScalarTy, Ty, Value};
use proptest::prelude::*;

/// Conditioned SLM-C programs exercising distinct language features. Each
/// entry is (source, entry function).
const CORPUS: &[(&str, &str)] = &[
    (
        "uint8 mix(uint8 a, uint8 b) { return (a ^ b) + (a & b) * 2; }",
        "mix",
    ),
    (
        r#"uint<9> addsat(uint8 a, uint8 b) {
            uint<9> s = (uint<9>) a + (uint<9>) b;
            if (s > 300) { return 300; }
            return s;
        }"#,
        "addsat",
    ),
    (
        r#"int8 clamp(int8 x, int8 lo, int8 hi) {
            if (x < lo) { return lo; }
            if (x > hi) { return hi; }
            return x;
        }"#,
        "clamp",
    ),
    (
        r#"uint32 sumn(uint8 n) {
            uint32 acc = 0;
            for (int i = 0; i < 16; i++) {
                if (i >= n) break;
                acc += i * i;
            }
            return acc;
        }"#,
        "sumn",
    ),
    (
        r#"uint8 parity_fold(uint16 v) {
            uint8 p = 0;
            for (int i = 0; i < 16; i++) {
                p ^= (uint8)((v >> i) & 1);
            }
            return p;
        }"#,
        "parity_fold",
    ),
    (
        r#"uint8 helper(uint8 x) { return x * 3 + 1; }
        uint8 chained(uint8 a) { return helper(helper(a)); }"#,
        "chained",
    ),
    (
        r#"void minmax(uint8 xs[4], out uint8 mn, out uint8 mx) {
            mn = xs[0];
            mx = xs[0];
            for (int i = 1; i < 4; i++) {
                if (xs[i] < mn) { mn = xs[i]; }
                if (xs[i] > mx) { mx = xs[i]; }
            }
        }"#,
        "minmax",
    ),
    (
        r#"uint8 table_lookup(uint8 sel, uint8 base) {
            uint8 lut[8];
            for (int i = 0; i < 8; i++) { lut[i] = base + i * 7; }
            return lut[sel];
        }"#,
        "table_lookup",
    ),
    (
        r#"int32 divmod(int8 a, int8 b) {
            int t = a / (b | 1);
            int r = a % (b | 1);
            return t * 256 + r;
        }"#,
        "divmod",
    ),
    (
        r#"uint16 shifts(uint16 v, uint8 s) {
            uint16 l = v << (s & 15);
            uint16 r = v >> (s & 15);
            int16 ar = (int16) v >> (s & 7);
            return l ^ r ^ (uint16) ar;
        }"#,
        "shifts",
    ),
    (
        r#"uint8 ternaries(uint8 a, uint8 b) {
            return a > b ? a - b : (a == b ? 0 : b - a);
        }"#,
        "ternaries",
    ),
    (
        r#"uint32 nested(uint8 a) {
            uint32 acc = 0;
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j <= i; j++) {
                    if ((uint32)(i * 4 + j) == (uint32) a) { continue; }
                    acc += 1;
                }
            }
            return acc;
        }"#,
        "nested",
    ),
];

/// Builds interpreter argument values and simulator pokes for a function's
/// parameters from a seed vector.
fn make_inputs(
    prog: &dfv_slmir::Program,
    entry: &str,
    seeds: &[u64],
) -> (Vec<Value>, Vec<(String, Bv)>) {
    let f = prog.func(entry).expect("entry exists");
    let mut vals = Vec::new();
    let mut pokes = Vec::new();
    let mut k = 0usize;
    let mut next = |w: u32| {
        let s = seeds[k % seeds.len()].rotate_left((k * 13) as u32);
        k += 1;
        Bv::from_u64(w, s)
    };
    for p in &f.params {
        if p.is_out {
            continue;
        }
        match p.ty {
            Ty::Scalar(s) => {
                let b = next(s.width);
                vals.push(Value::Scalar(b.clone(), s.signed));
                pokes.push((p.name.clone(), b));
            }
            Ty::Array(s, n) => {
                let words: Vec<Bv> = (0..n).map(|_| next(s.width)).collect();
                let mut packed = words[0].clone();
                for w in &words[1..] {
                    packed = w.concat(&packed);
                }
                vals.push(Value::Array(words, s));
                pokes.push((p.name.clone(), packed));
            }
            _ => unreachable!("corpus is pointer-free"),
        }
    }
    (vals, pokes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn interpreter_and_hardware_agree(
        case in 0usize..CORPUS.len(),
        seeds in proptest::collection::vec(any::<u64>(), 4)
    ) {
        let (src, entry) = CORPUS[case];
        let prog = parse(src).unwrap();
        let module = elaborate(&prog, entry).unwrap();
        let (vals, pokes) = make_inputs(&prog, entry, &seeds);

        let run = Interp::new(&prog).run(entry, &vals).unwrap();
        let mut sim = Simulator::new(module).unwrap();
        let poke_refs: Vec<(&str, Bv)> =
            pokes.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        let outs = sim.eval_comb(&poke_refs);

        // Return value.
        if let Value::Scalar(expect, _) = &run.ret {
            prop_assert_eq!(
                &outs["return"], expect,
                "{}: return mismatch for seeds {:?}", entry, seeds
            );
        }
        // Out parameters.
        for (name, v) in &run.outs {
            match v {
                Value::Scalar(b, _) => prop_assert_eq!(&outs[name], b),
                Value::Array(ws, _) => {
                    let mut packed = ws[0].clone();
                    for w in &ws[1..] {
                        packed = w.concat(&packed);
                    }
                    prop_assert_eq!(&outs[name], &packed);
                }
                _ => {}
            }
        }
    }
}

/// Deterministic spot-check of a gnarly case: Fig-1 reassociation with
/// explicit narrow temporaries must diverge identically in both engines.
#[test]
fn fig1_divergence_is_identical_in_both_engines() {
    let src = r#"
        int lhs(int8 a, int8 b, int8 c) { int8 t = a + b; return t + c; }
        int rhs(int8 a, int8 b, int8 c) { int8 t = b + c; return t + a; }
    "#;
    let prog = parse(src).unwrap();
    let s8 = ScalarTy {
        width: 8,
        signed: true,
    };
    for (a, b, c) in [
        (127i64, 127, -1),
        (100, 50, -20),
        (-128, -128, 1),
        (1, 2, 3),
    ] {
        let args = [
            Value::from_i64(s8, a),
            Value::from_i64(s8, b),
            Value::from_i64(s8, c),
        ];
        let pokes = [
            ("a", Bv::from_i64(8, a)),
            ("b", Bv::from_i64(8, b)),
            ("c", Bv::from_i64(8, c)),
        ];
        for entry in ["lhs", "rhs"] {
            let interp_out = Interp::new(&prog).run(entry, &args).unwrap().ret;
            let module = elaborate(&prog, entry).unwrap();
            let mut sim = Simulator::new(module).unwrap();
            let hw_out = sim.eval_comb(&pokes)["return"].clone();
            assert_eq!(interp_out.as_bv().unwrap(), &hw_out, "{entry} {a} {b} {c}");
        }
    }
}
