//! VCD (Value Change Dump) export for simulator traces.
//!
//! A thin adapter over the shared writer in [`dfv_obs::vcd`]: the
//! simulator's watched signals become one scope, widths come from the
//! module's *declarations* (via [`Simulator::watch_widths`]) rather
//! than from the first trace sample, the dump opens with the
//! spec-mandated `$dumpvars … $end` initial-value block, and names are
//! sanitized against the full VCD reserved set.

use crate::sim::Simulator;
use dfv_obs::vcd::{render_vcd, VcdScope, VcdSignal};

/// Renders the simulator's recorded trace as a VCD document.
///
/// One VCD time unit per clock cycle. Only watched signals appear; watch
/// them (see [`Simulator::watch_output`]) *before* stepping. An empty
/// trace still yields a well-formed document whose `$var` widths match
/// the watched declarations (initial values dump as `x`).
///
/// # Example
///
/// ```
/// use dfv_bits::Bv;
/// use dfv_rtl::{ModuleBuilder, Simulator, trace_to_vcd};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ModuleBuilder::new("c");
/// let r = b.reg("q", 4, Bv::zero(4));
/// let q = b.reg_q(r);
/// let one = b.lit(4, 1);
/// let n = b.add(q, one);
/// b.connect_reg(r, n);
/// b.output("q", q);
/// let mut sim = Simulator::new(b.finish()?)?;
/// sim.watch_output("q");
/// for _ in 0..4 { sim.step(); }
/// let vcd = trace_to_vcd(&sim, "c");
/// assert!(vcd.contains("$var wire 4 ! q $end"));
/// assert!(vcd.contains("$dumpvars"));
/// # Ok(())
/// # }
/// ```
pub fn trace_to_vcd(sim: &Simulator, scope: &str) -> String {
    let names = sim.watch_names();
    let widths = sim.watch_widths();
    let trace = sim.trace();
    let signals = names
        .into_iter()
        .zip(widths)
        .enumerate()
        .map(|(i, (name, width))| VcdSignal {
            name,
            width,
            samples: trace
                .iter()
                .map(|step| (step.cycle, step.values[i].clone()))
                .collect(),
        })
        .collect();
    render_vcd(&[VcdScope {
        name: scope.to_string(),
        signals,
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use dfv_bits::Bv;
    use dfv_obs::parse_vcd;

    fn enabled_counter_sim() -> Simulator {
        let mut b = ModuleBuilder::new("t");
        let en = b.input("en", 1);
        let r = b.reg("q", 4, Bv::zero(4));
        let q = b.reg_q(r);
        let one = b.lit(4, 1);
        let n = b.add(q, one);
        b.connect_reg(r, n);
        b.reg_enable(r, en);
        b.output("q", q);
        Simulator::new(b.finish().unwrap()).unwrap()
    }

    #[test]
    fn vcd_has_initial_value_block_then_changes_only() {
        let mut sim = enabled_counter_sim();
        sim.watch_output("q");
        sim.poke("en", Bv::from_bool(false));
        sim.step(); // q stays 0
        sim.step();
        sim.poke("en", Bv::from_bool(true));
        sim.step(); // q -> 1 observed at next step's record
        sim.step();
        let vcd = trace_to_vcd(&sim, "t");
        assert!(vcd.starts_with("$date"));
        assert!(vcd.contains("$var wire 4 ! q $end"));
        // Spec §21.7.2: initial values live in a $dumpvars block at t0.
        assert!(vcd.contains("#0\n$dumpvars\nb0000 !\n$end"));
        assert!(vcd.contains("b0001 !"));
        // No redundant dump between cycles 0 and 1 (value unchanged).
        assert!(!vcd.contains("#1\nb0000"));
    }

    #[test]
    fn empty_trace_keeps_declared_widths() {
        let mut sim = enabled_counter_sim();
        sim.watch_output("q");
        sim.watch_reg("q");
        // No steps: the old exporter defaulted every width to 1 here.
        let vcd = trace_to_vcd(&sim, "t");
        assert!(vcd.contains("$var wire 4 ! q $end"));
        assert!(vcd.contains("$var wire 4 \" q $end"));
        let parsed = parse_vcd(&vcd).expect("well-formed");
        assert!(parsed.vars.iter().all(|v| v.width == 4));
        assert_eq!(parsed.dumpvars_len, 2, "x-initials for unsampled signals");
    }

    #[test]
    fn reserved_characters_in_names_round_trip() {
        let mut b = ModuleBuilder::new("t");
        let x = b.input("bus[3]", 8);
        let y = b.input("$tag#2", 8);
        let s = b.add(x, y);
        b.name_node(x, "bus[3]");
        b.output("sum out", s);
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.watch_output("sum out");
        sim.watch_node(x);
        sim.step_with(&[
            ("bus[3]", Bv::from_u64(8, 3)),
            ("$tag#2", Bv::from_u64(8, 4)),
        ]);
        let vcd = trace_to_vcd(&sim, "t");
        let parsed = parse_vcd(&vcd).expect("sanitized names must parse");
        assert!(parsed.var("t", "sum_out").is_some());
        assert!(parsed.var("t", "bus_3_").is_some());
    }
}
