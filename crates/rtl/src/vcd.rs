//! Minimal VCD (Value Change Dump) export for simulator traces.
//!
//! Produces standard-compliant VCD text that waveform viewers (GTKWave &c.)
//! can open, from the watched signals of a [`crate::Simulator`].

use std::fmt::Write as _;

use dfv_bits::Bv;

use crate::sim::{Simulator, TraceStep};

fn id_code(mut idx: usize) -> String {
    // VCD identifier codes: printable ASCII 33..=126, little-endian base 94.
    let mut s = String::new();
    loop {
        s.push((33 + (idx % 94)) as u8 as char);
        idx /= 94;
        if idx == 0 {
            break;
        }
    }
    s
}

fn bv_vcd(v: &Bv) -> String {
    if v.width() == 1 {
        return if v.bit(0) { "1".into() } else { "0".into() };
    }
    format!("b{:b} ", v)
}

/// Renders the simulator's recorded trace as a VCD document.
///
/// One VCD time unit per clock cycle. Only watched signals appear; watch
/// them (see [`Simulator::watch_output`]) *before* stepping.
///
/// # Example
///
/// ```
/// use dfv_bits::Bv;
/// use dfv_rtl::{ModuleBuilder, Simulator, trace_to_vcd};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ModuleBuilder::new("c");
/// let r = b.reg("q", 4, Bv::zero(4));
/// let q = b.reg_q(r);
/// let one = b.lit(4, 1);
/// let n = b.add(q, one);
/// b.connect_reg(r, n);
/// b.output("q", q);
/// let mut sim = Simulator::new(b.finish()?)?;
/// sim.watch_output("q");
/// for _ in 0..4 { sim.step(); }
/// let vcd = trace_to_vcd(&sim, "c");
/// assert!(vcd.contains("$var wire 4 ! q $end"));
/// # Ok(())
/// # }
/// ```
pub fn trace_to_vcd(sim: &Simulator, scope: &str) -> String {
    let names = sim.watch_names();
    let trace = sim.trace();
    let mut out = String::new();
    let _ = writeln!(out, "$date today $end");
    let _ = writeln!(out, "$version dfv-rtl $end");
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module {scope} $end");
    let widths: Vec<u32> = match trace.first() {
        Some(step) => step.values.iter().map(Bv::width).collect(),
        None => Vec::new(),
    };
    for (i, name) in names.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(1);
        let sanitized: String = name
            .chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect();
        let _ = writeln!(out, "$var wire {w} {} {sanitized} $end", id_code(i));
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");
    let mut last: Vec<Option<Bv>> = vec![None; names.len()];
    for TraceStep { cycle, values } in trace {
        let mut changes = String::new();
        for (i, v) in values.iter().enumerate() {
            if last[i].as_ref() != Some(v) {
                let _ = writeln!(changes, "{}{}", bv_vcd(v), id_code(i));
                last[i] = Some(v.clone());
            }
        }
        if !changes.is_empty() {
            let _ = writeln!(out, "#{cycle}");
            out.push_str(&changes);
        }
    }
    let _ = writeln!(out, "#{}", trace.last().map(|t| t.cycle + 1).unwrap_or(0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn vcd_contains_changes_only() {
        let mut b = ModuleBuilder::new("t");
        let en = b.input("en", 1);
        let r = b.reg("q", 4, Bv::zero(4));
        let q = b.reg_q(r);
        let one = b.lit(4, 1);
        let n = b.add(q, one);
        b.connect_reg(r, n);
        b.reg_enable(r, en);
        b.output("q", q);
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        sim.watch_output("q");
        sim.poke("en", Bv::from_bool(false));
        sim.step(); // q stays 0
        sim.step();
        sim.poke("en", Bv::from_bool(true));
        sim.step(); // q -> 1 observed at next step's record
        sim.step();
        let vcd = trace_to_vcd(&sim, "t");
        assert!(vcd.starts_with("$date"));
        assert!(vcd.contains("$var wire 4 ! q $end"));
        // Initial value at #0, then a change when the counter moves.
        assert!(vcd.contains("#0\nb0000 !"));
        assert!(vcd.contains("b0001 !"));
        // No redundant dump between cycles 0 and 1 (value unchanged).
        assert!(!vcd.contains("#1\nb0000"));
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn scalar_signals_use_short_form() {
        assert_eq!(bv_vcd(&Bv::from_bool(true)), "1");
        assert_eq!(bv_vcd(&Bv::from_bool(false)), "0");
        assert_eq!(bv_vcd(&Bv::from_u64(3, 0b101)), "b101 ");
    }
}
