//! Fan-in cone extraction: netlist back-traversal from a divergence
//! point, ranking everything that can influence it by structural
//! distance.
//!
//! This is the RTL half of the divergence localizer: once a comparison
//! names the first mismatching signal, the cone tells the user which
//! inputs, registers, memories, and named nodes feed it — nearest
//! first — so debugging starts at the likeliest suspects instead of
//! the whole design.

use std::collections::VecDeque;

use crate::ir::{Module, Node, NodeId};

/// What kind of design object a cone entry names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConeKind {
    /// An input port.
    Input,
    /// A register (traversal continues through its D input and enable).
    Reg,
    /// A memory (traversal continues through its read/write ports).
    Mem,
    /// A named intermediate node.
    Node,
}

impl std::fmt::Display for ConeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ConeKind::Input => "input",
            ConeKind::Reg => "reg",
            ConeKind::Mem => "mem",
            ConeKind::Node => "node",
        })
    }
}

/// One named object in a fan-in cone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeEntry {
    /// Name of the object (port/register/memory/node name).
    pub name: String,
    /// What the name refers to.
    pub kind: ConeKind,
    /// Structural distance from the start point, in IR edges. Crossing
    /// a register (Q to D) costs one edge like any other, so distance
    /// loosely tracks "how many steps back in logic" a suspect is.
    pub distance: u32,
}

/// Where to start a fan-in traversal.
#[derive(Debug, Clone)]
pub enum ConeStart {
    /// From an output port, by name.
    Output(String),
    /// From a register's Q, by name.
    Reg(String),
    /// From an arbitrary node.
    Node(NodeId),
}

/// Computes the fan-in cone of `start`, ranked by distance (then by
/// name for determinism), truncated to `max_entries`.
///
/// Traversal is over the sequential closure: it crosses register and
/// memory boundaries (a register's cone includes its D and enable
/// logic; a memory read's cone includes the read address and every
/// write port), so the result covers everything that can influence the
/// start point at *any* cycle. Unnamed intermediate nodes are walked
/// through but not reported.
///
/// Returns `None` when `start` names a port/register the module does
/// not have.
pub fn fanin_cone(
    module: &Module,
    start: &ConeStart,
    max_entries: usize,
) -> Option<Vec<ConeEntry>> {
    let start_node = match start {
        ConeStart::Output(name) => module.output_drivers[module.output_index(name)?],
        ConeStart::Reg(name) => {
            let r = module.reg_index(name)?;
            // Start from the register itself: its Q node may not exist,
            // but its fan-in is its D/enable logic.
            let mut state = ConeState::new(module);
            state.visit_reg(r.index(), 0);
            return Some(state.finish(max_entries));
        }
        ConeStart::Node(id) => *id,
    };
    let mut state = ConeState::new(module);
    state.visit_node(start_node, 0);
    Some(state.finish(max_entries))
}

/// The static node-to-node fanout map of a module's combinational DAG, in
/// compressed (CSR) form: for every node, which nodes read its value as an
/// operand. This is the forward counterpart of [`fanin_cone`]'s backward
/// traversal, and what the simulator's dirty-cone scheduler walks to find
/// the nodes a change can reach.
///
/// Sequential edges (a node feeding a register D/enable, a memory port, or
/// an output) are *not* included — those are crossed at the clock edge, not
/// during combinational settling.
#[derive(Debug, Clone)]
pub struct FanoutMap {
    /// `edges[offsets[i]..offsets[i + 1]]` are the consumers of node `i`,
    /// in ascending id order.
    offsets: Vec<u32>,
    edges: Vec<NodeId>,
}

impl FanoutMap {
    /// Builds the fanout map of `module`'s combinational nodes.
    pub fn build(module: &Module) -> Self {
        let n = module.nodes.len();
        let mut counts = vec![0u32; n + 1];
        for node in &module.nodes {
            for_each_operand(node, |op| counts[op.index() + 1] += 1);
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut edges = vec![NodeId(0); offsets[n] as usize];
        let mut next = counts;
        for (i, node) in module.nodes.iter().enumerate() {
            for_each_operand(node, |op| {
                edges[next[op.index()] as usize] = NodeId(i as u32);
                next[op.index()] += 1;
            });
        }
        FanoutMap { offsets, edges }
    }

    /// The nodes that read `node`'s value, in ascending id order.
    pub fn fanouts(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total combinational edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

/// Calls `f` for each combinational operand (node-to-node edge source) of
/// `node`.
fn for_each_operand(node: &Node, mut f: impl FnMut(NodeId)) {
    match node {
        Node::Input(..) | Node::Const(..) | Node::RegQ(..) | Node::MemReadData(..) => {}
        Node::InstOut(..) => {}
        Node::Un(_, a) => f(*a),
        Node::Bin(_, a, b) => {
            f(*a);
            f(*b);
        }
        Node::Mux { sel, t, f: fv } => {
            f(*sel);
            f(*t);
            f(*fv);
        }
        Node::Slice { src, .. } => f(*src),
        Node::Concat(a, b) => {
            f(*a);
            f(*b);
        }
        Node::Zext(a, _) | Node::Sext(a, _) => f(*a),
    }
}

struct ConeState<'a> {
    module: &'a Module,
    node_dist: Vec<Option<u32>>,
    reg_dist: Vec<Option<u32>>,
    mem_dist: Vec<Option<u32>>,
    queue: VecDeque<(Task, u32)>,
    entries: Vec<ConeEntry>,
}

#[derive(Clone, Copy)]
enum Task {
    Node(NodeId),
    Reg(usize),
    Mem(usize),
}

impl<'a> ConeState<'a> {
    fn new(module: &'a Module) -> Self {
        Self {
            module,
            node_dist: vec![None; module.nodes.len()],
            reg_dist: vec![None; module.regs.len()],
            mem_dist: vec![None; module.mems.len()],
            queue: VecDeque::new(),
            entries: Vec::new(),
        }
    }

    fn visit_node(&mut self, id: NodeId, dist: u32) {
        if self.node_dist[id.index()].is_some() {
            return;
        }
        self.node_dist[id.index()] = Some(dist);
        self.queue.push_back((Task::Node(id), dist));
        self.drain();
    }

    fn visit_reg(&mut self, ri: usize, dist: u32) {
        if self.reg_dist[ri].is_some() {
            return;
        }
        self.reg_dist[ri] = Some(dist);
        self.queue.push_back((Task::Reg(ri), dist));
        self.drain();
    }

    fn drain(&mut self) {
        while let Some((task, dist)) = self.queue.pop_front() {
            match task {
                Task::Node(id) => self.expand_node(id, dist),
                Task::Reg(ri) => self.expand_reg(ri, dist),
                Task::Mem(mi) => self.expand_mem(mi, dist),
            }
        }
    }

    fn enqueue_node(&mut self, id: NodeId, dist: u32) {
        if self.node_dist[id.index()].is_none() {
            self.node_dist[id.index()] = Some(dist);
            self.queue.push_back((Task::Node(id), dist));
        }
    }

    fn enqueue_reg(&mut self, ri: usize, dist: u32) {
        if self.reg_dist[ri].is_none() {
            self.reg_dist[ri] = Some(dist);
            self.queue.push_back((Task::Reg(ri), dist));
        }
    }

    fn enqueue_mem(&mut self, mi: usize, dist: u32) {
        if self.mem_dist[mi].is_none() {
            self.mem_dist[mi] = Some(dist);
            self.queue.push_back((Task::Mem(mi), dist));
        }
    }

    fn expand_node(&mut self, id: NodeId, dist: u32) {
        if let Some(name) = self.module.node_names.get(&(id.index() as u32)) {
            self.entries.push(ConeEntry {
                name: name.clone(),
                kind: ConeKind::Node,
                distance: dist,
            });
        }
        match &self.module.nodes[id.index()] {
            Node::Input(idx) => {
                self.entries.push(ConeEntry {
                    name: self.module.inputs[*idx].name.clone(),
                    kind: ConeKind::Input,
                    distance: dist,
                });
            }
            Node::Const(_) => {}
            Node::RegQ(r) => self.enqueue_reg(r.index(), dist),
            Node::MemReadData(m, p) => {
                let port = *p;
                let mi = m.index();
                // The registered read data depends on the read address...
                let addr = self.module.mems[mi].read_ports[port].addr;
                self.enqueue_node(addr, dist + 1);
                // ...and on the stored contents.
                self.enqueue_mem(mi, dist);
            }
            Node::InstOut(..) => {
                // Cones are extracted from flat (simulatable) modules;
                // instance outputs never appear there.
            }
            Node::Un(_, a) => self.enqueue_node(*a, dist + 1),
            Node::Bin(_, a, b) => {
                self.enqueue_node(*a, dist + 1);
                self.enqueue_node(*b, dist + 1);
            }
            Node::Mux { sel, t, f } => {
                self.enqueue_node(*sel, dist + 1);
                self.enqueue_node(*t, dist + 1);
                self.enqueue_node(*f, dist + 1);
            }
            Node::Slice { src, .. } => self.enqueue_node(*src, dist + 1),
            Node::Concat(a, b) => {
                self.enqueue_node(*a, dist + 1);
                self.enqueue_node(*b, dist + 1);
            }
            Node::Zext(a, _) | Node::Sext(a, _) => self.enqueue_node(*a, dist + 1),
        }
    }

    fn expand_reg(&mut self, ri: usize, dist: u32) {
        let reg = &self.module.regs[ri];
        self.entries.push(ConeEntry {
            name: reg.name.clone(),
            kind: ConeKind::Reg,
            distance: dist,
        });
        if let Some(next) = reg.next {
            self.enqueue_node(next, dist + 1);
        }
        if let Some(en) = reg.en {
            self.enqueue_node(en, dist + 1);
        }
    }

    fn expand_mem(&mut self, mi: usize, dist: u32) {
        let mem = &self.module.mems[mi];
        self.entries.push(ConeEntry {
            name: mem.name.clone(),
            kind: ConeKind::Mem,
            distance: dist,
        });
        let ports: Vec<NodeId> = mem
            .write_ports
            .iter()
            .flat_map(|wp| [wp.en, wp.addr, wp.data])
            .collect();
        for n in ports {
            self.enqueue_node(n, dist + 1);
        }
    }

    fn finish(mut self, max_entries: usize) -> Vec<ConeEntry> {
        self.entries
            .sort_by(|a, b| (a.distance, &a.name, a.kind).cmp(&(b.distance, &b.name, b.kind)));
        self.entries.dedup();
        self.entries.truncate(max_entries);
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use dfv_bits::Bv;

    /// y = reg(a + b), with an enable from `en` and a constant folded in.
    fn sample_module() -> Module {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let en = b.input("en", 1);
        let sum = b.add(a, bb);
        b.name_node(sum, "sum");
        let r = b.reg("acc", 8, Bv::zero(8));
        b.connect_reg(r, sum);
        b.reg_enable(r, en);
        let q = b.reg_q(r);
        let one = b.lit(8, 1);
        let y = b.add(q, one);
        b.output("y", y);
        b.finish().unwrap()
    }

    #[test]
    fn cone_from_output_ranks_by_distance() {
        let m = sample_module();
        let cone = fanin_cone(&m, &ConeStart::Output("y".into()), 16).unwrap();
        let names: Vec<(&str, u32)> = cone.iter().map(|e| (e.name.as_str(), e.distance)).collect();
        // acc is one edge from y's driver; its D/enable logic follows.
        assert_eq!(names[0], ("acc", 1));
        assert!(cone.iter().any(|e| e.name == "sum" && e.distance == 2));
        assert!(cone
            .iter()
            .any(|e| e.name == "a" && e.kind == ConeKind::Input && e.distance == 3));
        assert!(cone.iter().any(|e| e.name == "en" && e.distance == 2));
        // Constants are not suspects.
        assert!(cone
            .iter()
            .all(|e| e.kind != ConeKind::Node || e.name == "sum"));
    }

    #[test]
    fn cone_from_reg_covers_its_update_logic() {
        let m = sample_module();
        let cone = fanin_cone(&m, &ConeStart::Reg("acc".into()), 16).unwrap();
        assert_eq!(cone[0].name, "acc");
        assert_eq!(cone[0].distance, 0);
        assert!(cone.iter().any(|e| e.name == "b" && e.distance == 2));
    }

    #[test]
    fn cone_crosses_memories_to_write_ports() {
        let mut b = ModuleBuilder::new("memmod");
        let we = b.input("we", 1);
        let waddr = b.input("waddr", 4);
        let wdata = b.input("wdata", 8);
        let raddr = b.input("raddr", 4);
        let mem = b.mem("m", 4, 8, 16);
        b.mem_write(mem, we, waddr, wdata);
        let rdata = b.mem_read(mem, raddr);
        b.output("rdata", rdata);
        let m = b.finish().unwrap();
        let cone = fanin_cone(&m, &ConeStart::Output("rdata".into()), 16).unwrap();
        assert!(cone
            .iter()
            .any(|e| e.name == "m" && e.kind == ConeKind::Mem));
        for inp in ["we", "waddr", "wdata", "raddr"] {
            assert!(cone.iter().any(|e| e.name == inp), "missing {inp}");
        }
    }

    #[test]
    fn fanout_map_inverts_operand_edges() {
        let m = sample_module();
        let fan = FanoutMap::build(&m);
        let mut expected_edges = 0;
        for (i, node) in m.nodes.iter().enumerate() {
            super::for_each_operand(node, |op| {
                expected_edges += 1;
                assert!(
                    fan.fanouts(op).contains(&NodeId(i as u32)),
                    "edge {op:?} -> n{i} missing from fanout map"
                );
            });
        }
        assert_eq!(fan.edge_count(), expected_edges);
        // Fanouts are ascending (consumers always have larger ids).
        for i in 0..m.nodes.len() {
            let outs = fan.fanouts(NodeId(i as u32));
            assert!(outs.windows(2).all(|w| w[0] < w[1]));
            assert!(outs.iter().all(|o| o.index() > i));
        }
    }

    #[test]
    fn unknown_start_is_none_and_truncation_applies() {
        let m = sample_module();
        assert!(fanin_cone(&m, &ConeStart::Output("nope".into()), 8).is_none());
        assert!(fanin_cone(&m, &ConeStart::Reg("nope".into()), 8).is_none());
        let cone = fanin_cone(&m, &ConeStart::Output("y".into()), 2).unwrap();
        assert_eq!(cone.len(), 2);
    }
}
