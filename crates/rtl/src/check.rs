//! Structural checks and the crate error type.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::ir::{Module, Node, NodeId};

/// Errors produced by structural checks, elaboration, simulation setup, and
/// netlist parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// A register was never connected to a driver.
    UnconnectedReg {
        /// Module name.
        module: String,
        /// Register name.
        reg: String,
    },
    /// A node references an id at or above its own (a forward reference,
    /// which would permit combinational cycles).
    ForwardReference {
        /// Module name.
        module: String,
        /// The offending node.
        node: u32,
    },
    /// A node, register, or port references a node id outside the module.
    DanglingNode {
        /// Module name.
        module: String,
        /// Description of the referencing site.
        site: String,
    },
    /// Two widths that must agree do not.
    WidthMismatch {
        /// Module name.
        module: String,
        /// Description of the site.
        site: String,
        /// Expected width.
        expected: u32,
        /// Found width.
        found: u32,
    },
    /// An instance references a module that is not in the design.
    UnknownModule {
        /// The missing module's name.
        name: String,
    },
    /// Instantiation is (transitively) self-referential.
    RecursiveInstance {
        /// The module at the head of the cycle.
        module: String,
    },
    /// A name was looked up and not found (port, register, module, ...).
    UnknownName {
        /// What kind of thing was looked up.
        kind: &'static str,
        /// The name that was not found.
        name: String,
    },
    /// An operation that requires a flat module was given a hierarchical
    /// one. Flatten with [`crate::flatten`] first.
    NotFlat {
        /// Module name.
        module: String,
    },
    /// A netlist file failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::UnconnectedReg { module, reg } => {
                write!(f, "module {module:?}: register {reg:?} has no driver")
            }
            RtlError::ForwardReference { module, node } => {
                write!(f, "module {module:?}: node {node} has a forward reference")
            }
            RtlError::DanglingNode { module, site } => {
                write!(f, "module {module:?}: dangling node reference at {site}")
            }
            RtlError::WidthMismatch {
                module,
                site,
                expected,
                found,
            } => write!(
                f,
                "module {module:?}: width mismatch at {site} (expected {expected}, found {found})"
            ),
            RtlError::UnknownModule { name } => write!(f, "unknown module {name:?}"),
            RtlError::RecursiveInstance { module } => {
                write!(f, "recursive instantiation through module {module:?}")
            }
            RtlError::UnknownName { kind, name } => write!(f, "unknown {kind} {name:?}"),
            RtlError::NotFlat { module } => {
                write!(f, "module {module:?} has instances; flatten it first")
            }
            RtlError::Parse { line, message } => write!(f, "netlist line {line}: {message}"),
        }
    }
}

impl Error for RtlError {}

fn node_ref_ok(module: &Module, referrer: u32, id: NodeId) -> Result<(), RtlError> {
    if id.index() >= module.nodes.len() {
        return Err(RtlError::DanglingNode {
            module: module.name.clone(),
            site: format!("node {referrer}"),
        });
    }
    if id.0 >= referrer {
        return Err(RtlError::ForwardReference {
            module: module.name.clone(),
            node: referrer,
        });
    }
    Ok(())
}

fn any_ref_ok(module: &Module, site: &str, id: NodeId) -> Result<(), RtlError> {
    if id.index() >= module.nodes.len() {
        return Err(RtlError::DanglingNode {
            module: module.name.clone(),
            site: site.to_string(),
        });
    }
    Ok(())
}

fn expect_width(module: &Module, site: &str, id: NodeId, expected: u32) -> Result<(), RtlError> {
    let found = module.node_widths[id.index()];
    if found != expected {
        return Err(RtlError::WidthMismatch {
            module: module.name.clone(),
            site: site.to_string(),
            expected,
            found,
        });
    }
    Ok(())
}

/// Validates a single module: unique names, no forward/dangling references
/// (hence no combinational cycles), all registers driven, and width
/// consistency throughout.
///
/// # Errors
///
/// Returns the first [`RtlError`] found.
pub fn check_module(m: &Module) -> Result<(), RtlError> {
    let mut names = HashSet::new();
    for p in m.inputs.iter().chain(&m.outputs) {
        if !names.insert(p.name.as_str()) {
            return Err(RtlError::UnknownName {
                kind: "unique name for port (duplicate)",
                name: p.name.clone(),
            });
        }
    }
    for (i, node) in m.nodes.iter().enumerate() {
        let this = i as u32;
        let w = m.node_widths[i];
        match node {
            Node::Input(idx) => {
                let port = m.inputs.get(*idx).ok_or_else(|| RtlError::DanglingNode {
                    module: m.name.clone(),
                    site: format!("input node {this}"),
                })?;
                if port.width != w {
                    return Err(RtlError::WidthMismatch {
                        module: m.name.clone(),
                        site: format!("input node {this}"),
                        expected: port.width,
                        found: w,
                    });
                }
            }
            Node::Const(v) => {
                if v.width() != w {
                    return Err(RtlError::WidthMismatch {
                        module: m.name.clone(),
                        site: format!("const node {this}"),
                        expected: v.width(),
                        found: w,
                    });
                }
            }
            Node::RegQ(r) => {
                let reg = m
                    .regs
                    .get(r.index())
                    .ok_or_else(|| RtlError::DanglingNode {
                        module: m.name.clone(),
                        site: format!("regq node {this}"),
                    })?;
                if reg.width != w {
                    return Err(RtlError::WidthMismatch {
                        module: m.name.clone(),
                        site: format!("regq node {this}"),
                        expected: reg.width,
                        found: w,
                    });
                }
            }
            Node::MemReadData(mem, port) => {
                let mm = m
                    .mems
                    .get(mem.index())
                    .ok_or_else(|| RtlError::DanglingNode {
                        module: m.name.clone(),
                        site: format!("memread node {this}"),
                    })?;
                if *port >= mm.read_ports.len() {
                    return Err(RtlError::DanglingNode {
                        module: m.name.clone(),
                        site: format!("memread node {this} (port {port})"),
                    });
                }
                if mm.data_width != w {
                    return Err(RtlError::WidthMismatch {
                        module: m.name.clone(),
                        site: format!("memread node {this}"),
                        expected: mm.data_width,
                        found: w,
                    });
                }
            }
            Node::InstOut(inst, _) => {
                if inst.0 as usize >= m.instances.len() {
                    return Err(RtlError::DanglingNode {
                        module: m.name.clone(),
                        site: format!("instout node {this}"),
                    });
                }
            }
            Node::Un(_, a) => node_ref_ok(m, this, *a)?,
            Node::Bin(op, a, b) => {
                node_ref_ok(m, this, *a)?;
                node_ref_ok(m, this, *b)?;
                if !op.is_shift() {
                    let (wa, wb) = (m.node_widths[a.index()], m.node_widths[b.index()]);
                    if wa != wb {
                        return Err(RtlError::WidthMismatch {
                            module: m.name.clone(),
                            site: format!("{op:?} node {this}"),
                            expected: wa,
                            found: wb,
                        });
                    }
                }
            }
            Node::Mux { sel, t, f } => {
                node_ref_ok(m, this, *sel)?;
                node_ref_ok(m, this, *t)?;
                node_ref_ok(m, this, *f)?;
                expect_width(m, &format!("mux node {this} select"), *sel, 1)?;
                expect_width(m, &format!("mux node {this}"), *t, w)?;
                expect_width(m, &format!("mux node {this}"), *f, w)?;
            }
            Node::Slice { src, hi, lo } => {
                node_ref_ok(m, this, *src)?;
                let sw = m.node_widths[src.index()];
                if hi < lo || *hi >= sw || w != hi - lo + 1 {
                    return Err(RtlError::WidthMismatch {
                        module: m.name.clone(),
                        site: format!("slice node {this} [{hi}:{lo}]"),
                        expected: hi.saturating_sub(*lo) + 1,
                        found: w,
                    });
                }
            }
            Node::Concat(a, b) => {
                node_ref_ok(m, this, *a)?;
                node_ref_ok(m, this, *b)?;
                let sum = m.node_widths[a.index()] + m.node_widths[b.index()];
                if sum != w {
                    return Err(RtlError::WidthMismatch {
                        module: m.name.clone(),
                        site: format!("concat node {this}"),
                        expected: sum,
                        found: w,
                    });
                }
            }
            Node::Zext(a, tw) | Node::Sext(a, tw) => {
                node_ref_ok(m, this, *a)?;
                let sw = m.node_widths[a.index()];
                if *tw < sw || *tw != w {
                    return Err(RtlError::WidthMismatch {
                        module: m.name.clone(),
                        site: format!("extension node {this}"),
                        expected: *tw,
                        found: w,
                    });
                }
            }
        }
    }
    for reg in &m.regs {
        let next = reg.next.ok_or_else(|| RtlError::UnconnectedReg {
            module: m.name.clone(),
            reg: reg.name.clone(),
        })?;
        any_ref_ok(m, &format!("register {:?} next", reg.name), next)?;
        expect_width(m, &format!("register {:?} next", reg.name), next, reg.width)?;
        if let Some(en) = reg.en {
            any_ref_ok(m, &format!("register {:?} enable", reg.name), en)?;
            expect_width(m, &format!("register {:?} enable", reg.name), en, 1)?;
        }
        if reg.init.width() != reg.width {
            return Err(RtlError::WidthMismatch {
                module: m.name.clone(),
                site: format!("register {:?} init", reg.name),
                expected: reg.width,
                found: reg.init.width(),
            });
        }
    }
    for mem in &m.mems {
        for (i, wp) in mem.write_ports.iter().enumerate() {
            let site = format!("memory {:?} write port {i}", mem.name);
            any_ref_ok(m, &site, wp.en)?;
            any_ref_ok(m, &site, wp.addr)?;
            any_ref_ok(m, &site, wp.data)?;
            expect_width(m, &site, wp.en, 1)?;
            expect_width(m, &site, wp.addr, mem.addr_width)?;
            expect_width(m, &site, wp.data, mem.data_width)?;
        }
        for (i, rp) in mem.read_ports.iter().enumerate() {
            let site = format!("memory {:?} read port {i}", mem.name);
            any_ref_ok(m, &site, rp.addr)?;
            expect_width(m, &site, rp.addr, mem.addr_width)?;
        }
    }
    for ((port, driver), idx) in m.outputs.iter().zip(&m.output_drivers).zip(0..) {
        let site = format!("output {:?} (index {idx})", port.name);
        any_ref_ok(m, &site, *driver)?;
        expect_width(m, &site, *driver, port.width)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use dfv_bits::Bv;

    #[test]
    fn good_module_passes() {
        let mut b = ModuleBuilder::new("ok");
        let a = b.input("a", 8);
        let r = b.reg("r", 8, Bv::zero(8));
        let q = b.reg_q(r);
        let s = b.add(a, q);
        b.connect_reg(r, s);
        b.output("y", s);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn unconnected_reg_fails() {
        let mut b = ModuleBuilder::new("bad");
        let _ = b.reg("r", 8, Bv::zero(8));
        let err = b.finish().unwrap_err();
        assert!(matches!(err, RtlError::UnconnectedReg { .. }));
        assert!(err.to_string().contains("no driver"));
    }

    #[test]
    fn hand_built_forward_reference_fails() {
        use crate::ir::{BinOp, Module, Node, NodeId};
        let m = Module {
            name: "fwd".into(),
            nodes: vec![
                Node::Const(Bv::zero(4)),
                // Refers to node 2, which comes later: a would-be comb loop.
                Node::Bin(BinOp::Add, NodeId(2), NodeId(0)),
                Node::Bin(BinOp::Add, NodeId(1), NodeId(0)),
            ],
            node_widths: vec![4, 4, 4],
            ..Module::default()
        };
        assert!(matches!(
            check_module(&m),
            Err(RtlError::ForwardReference { node: 1, .. })
        ));
    }

    #[test]
    fn hand_built_width_mismatch_fails() {
        use crate::ir::{BinOp, Module, Node, NodeId};
        let m = Module {
            name: "w".into(),
            nodes: vec![
                Node::Const(Bv::zero(4)),
                Node::Const(Bv::zero(5)),
                Node::Bin(BinOp::Add, NodeId(0), NodeId(1)),
            ],
            node_widths: vec![4, 5, 4],
            ..Module::default()
        };
        assert!(matches!(
            check_module(&m),
            Err(RtlError::WidthMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "operand widths differ")]
    fn builder_rejects_mismatch_eagerly() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 8);
        let c = b.input("b", 9);
        let _ = b.add(a, c);
    }

    #[test]
    #[should_panic(expected = "duplicate port name")]
    fn builder_rejects_duplicate_names() {
        let mut b = ModuleBuilder::new("m");
        let _ = b.input("a", 8);
        let _ = b.input("a", 4);
    }
}
