//! Word-level synchronous RTL: IR, builder, structural checks, hierarchy
//! flattening, a text netlist format, a cycle-accurate simulator, and VCD
//! export.
//!
//! This crate is the RTL substrate of the `dfv` workspace (a reproduction of
//! "Design for Verification in System-level Models and RTL", DAC 2007). The
//! same [`Module`] IR is executed by the [`Simulator`], produced by the
//! SLM-to-hardware elaborator in `dfv-slmir`, and bit-blasted by the
//! sequential equivalence checker in `dfv-sec` — one shared semantic core,
//! which is exactly what keeps system-level models and RTL consistent.
//!
//! # Quick start
//!
//! ```
//! use dfv_bits::Bv;
//! use dfv_rtl::{ModuleBuilder, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An 8-bit accumulator with clock enable.
//! let mut b = ModuleBuilder::new("accum");
//! let en = b.input("en", 1);
//! let din = b.input("din", 8);
//! let acc = b.reg("acc", 8, Bv::zero(8));
//! let q = b.reg_q(acc);
//! let sum = b.add(q, din);
//! b.connect_reg(acc, sum);
//! b.reg_enable(acc, en);
//! b.output("acc", q);
//!
//! let mut sim = Simulator::new(b.finish()?)?;
//! sim.step_with(&[("en", Bv::from_bool(true)), ("din", Bv::from_u64(8, 5))]);
//! sim.step_with(&[("en", Bv::from_bool(true)), ("din", Bv::from_u64(8, 7))]);
//! assert_eq!(sim.output("acc").to_u64(), 12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod check;
pub mod cone;
mod flatten;
pub mod ir;
mod lanes;
mod lower;
mod netlist;
mod opt;
mod schedule;
mod sim;
mod vcd;
mod xprop;

pub use builder::ModuleBuilder;
pub use check::{check_module, RtlError};
pub use cone::FanoutMap;
pub use cone::{fanin_cone, ConeEntry, ConeKind, ConeStart};
pub use flatten::flatten;
pub use ir::{Design, Module, ModuleStats, NodeId};
pub use lanes::{LaneSim, LaneStats};
pub use netlist::{parse_design, parse_module, write_design, write_module};
pub use opt::{optimize, OptStats};
pub use schedule::SimSchedule;
pub use sim::{eval_bin, eval_un, EvalMode, SimStats, Simulator, TraceStep};
pub use vcd::trace_to_vcd;
pub use xprop::{reset_coverage, XpropReport};
