//! Cycle-accurate two-phase simulation of a flat [`Module`].
//!
//! Each cycle has two phases: combinational *evaluation* (nodes computed in
//! dependency order from inputs, register outputs, and memory read
//! registers) and the *clock edge* ([`Simulator::step`]), which commits
//! register D inputs, performs memory writes, and samples memory read
//! addresses (read-first semantics: a read port returns the pre-write word).
//!
//! # Evaluation engines
//!
//! The simulator carries three interchangeable combinational engines:
//!
//! * [`EvalMode::DirtyCone`] (the default, [`Simulator::new`]) — a
//!   precompiled engine built on [`SimSchedule`]: all values live in one
//!   flat limb arena at fixed offsets, each node evaluates through a
//!   compiled kernel with single-limb fast paths, and a pass walks only
//!   the levelized fanout cone of inputs and state that actually changed.
//!   Zero heap allocation per node per pass.
//! * [`EvalMode::Bytecode`] ([`Simulator::new_vm`]) — the schedule
//!   lowered further into flat `dfv-vm` register bytecode (see
//!   `lower.rs`): every operand offset is pre-resolved, constant
//!   operands fold into immediate forms, common compare→mux and
//!   add→slice pairs fuse into one instruction, and the clock edge
//!   commits through a compiled offset plan. Small programs run dense
//!   (whole-program straight-line passes, zero tracking overhead);
//!   larger ones keep dirty-cone scheduling at instruction granularity
//!   with whole-level straight-line blocks when a level is mostly
//!   dirty.
//! * [`EvalMode::FullOracle`] ([`Simulator::new_reference`]) — the
//!   reference interpreter: every pass re-evaluates every node in id
//!   order through [`eval_bin`]/[`eval_un`] on freshly materialized
//!   [`Bv`]s. Slow but maximally simple; the differential test suite
//!   holds both compiled engines bit-identical to it, and its
//!   [`SimStats::node_evals`] keeps the historical
//!   `eval_passes * node_count` invariant.

use std::collections::HashMap;

use dfv_bits::Bv;
use dfv_obs::{ObsHook, SharedRecorder, WatchedTrace};

use crate::check::check_module;
use crate::ir::{BinOp, Module, Node, NodeId, UnOp};
use crate::lower::VmEngine;
use crate::schedule::SimSchedule;
use crate::RtlError;

/// Evaluates a binary operator on concrete values — the single source of
/// truth for operator semantics, shared with the equivalence checker's
/// bit-blaster tests and counterexample replay.
pub fn eval_bin(op: BinOp, a: &Bv, b: &Bv) -> Bv {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::UDiv => a.udiv(b),
        BinOp::URem => a.urem(b),
        BinOp::SDiv => a.sdiv(b),
        BinOp::SRem => a.srem(b),
        BinOp::And => a.and(b),
        BinOp::Or => a.or(b),
        BinOp::Xor => a.xor(b),
        BinOp::Shl => a.shl_bv(b),
        BinOp::LShr => a.lshr_bv(b),
        BinOp::AShr => a.ashr_bv(b),
        BinOp::Eq => Bv::from_bool(a == b),
        BinOp::Ne => Bv::from_bool(a != b),
        BinOp::ULt => Bv::from_bool(a.ult(b)),
        BinOp::ULe => Bv::from_bool(!b.ult(a)),
        BinOp::SLt => Bv::from_bool(a.slt(b)),
        BinOp::SLe => Bv::from_bool(!b.slt(a)),
    }
}

/// Evaluates a unary operator on a concrete value. See [`eval_bin`].
pub fn eval_un(op: UnOp, a: &Bv) -> Bv {
    match op {
        UnOp::Not => a.not(),
        UnOp::Neg => a.wrapping_neg(),
        UnOp::RedAnd => Bv::from_bool(a.reduce_and()),
        UnOp::RedOr => Bv::from_bool(a.reduce_or()),
        UnOp::RedXor => Bv::from_bool(a.reduce_xor()),
    }
}

/// Which combinational evaluation engine a [`Simulator`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Compiled levelized engine with dirty-cone scheduling (the default).
    /// A pass evaluates only the fanout cone of what changed, so
    /// [`SimStats::node_evals`] measures actual work.
    DirtyCone,
    /// The schedule lowered to flat register bytecode executed by the
    /// `dfv-vm` interpreter loop: no per-node enum dispatch, constant
    /// operands folded into immediates, common pairs fused, and the clock
    /// edge committed through a compiled offset plan. Small programs run
    /// *dense* — every pass executes the whole program straight-line with
    /// no dirty tracking — while larger ones keep dirty-cone scheduling
    /// at instruction granularity. [`SimStats::node_evals`] counts
    /// instructions executed either way (a dense pass counts the whole
    /// program), still bounded by `eval_passes * node_count`.
    Bytecode,
    /// Reference interpreter: every pass re-evaluates every node through
    /// [`eval_bin`]/[`eval_un`]. `node_evals == eval_passes * node_count`
    /// by construction.
    FullOracle,
}

/// Cumulative work counters for one [`Simulator`].
///
/// Monotonic across the simulator's lifetime (a [`Simulator::reset`]
/// clears state and trace but not these), so deltas between snapshots
/// measure the work of a bounded stretch of simulation. `node_evals`
/// is the deterministic RTL work metric the speed-ratio experiment
/// compares against the SLM kernel's activation counts. Under
/// [`EvalMode::DirtyCone`] it counts only nodes actually re-evaluated;
/// under [`EvalMode::FullOracle`] every pass counts every node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Completed clock cycles ([`Simulator::step`] calls).
    pub steps: u64,
    /// Combinational evaluation passes actually run (dirty evals).
    pub eval_passes: u64,
    /// Total node evaluations across all passes.
    pub node_evals: u64,
    /// Watched-signal value changes observed while recording the trace.
    pub value_changes: u64,
}

/// A recorded per-cycle snapshot of watched signals.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// The cycle number (0 = first cycle after reset).
    pub cycle: u64,
    /// Values in watch order.
    pub values: Vec<Bv>,
}

/// Cycle-accurate simulator for a flat [`Module`].
///
/// # Example
///
/// ```
/// use dfv_bits::Bv;
/// use dfv_rtl::{ModuleBuilder, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ModuleBuilder::new("counter");
/// let r = b.reg("count", 8, Bv::zero(8));
/// let q = b.reg_q(r);
/// let one = b.lit(8, 1);
/// let next = b.add(q, one);
/// b.connect_reg(r, next);
/// b.output("count", q);
/// let mut sim = Simulator::new(b.finish()?)?;
/// for _ in 0..5 {
///     sim.step();
/// }
/// assert_eq!(sim.output("count").to_u64(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    module: Module,
    sched: SimSchedule,
    mode: EvalMode,
    /// The bytecode engine (`Some` iff `mode == EvalMode::Bytecode`).
    vm: Option<VmEngine>,
    /// Flat value arena: `[reg slots][mem read reg slots][node slots]`,
    /// offsets fixed by `sched`.
    arena: Vec<u64>,
    /// Memory contents, one flat limb arena for all memories.
    mem_arena: Vec<u64>,
    /// Current input values.
    input_vals: Vec<Bv>,
    /// Per-level dirty buckets (indexed by topological level).
    dirty_levels: Vec<Vec<u32>>,
    /// Whether a node currently sits in a dirty bucket.
    in_dirty: Vec<bool>,
    /// Force the next pass to evaluate everything (set at reset).
    full_dirty: bool,
    /// Whether anything changed since the last pass.
    dirty: bool,
    /// Whether anything was poked or injected since the last clock edge
    /// (conservative: cleared at commit, set by every mutator).
    since_commit: bool,
    /// Whether the last bytecode commit was a provable no-op: no state
    /// changed and no memory write port fired. Together with
    /// `!since_commit` this proves the next commit is also a no-op — the
    /// node region is bit-identical to what the last commit saw — so
    /// [`Simulator::step`] skips the commit walk entirely (the quiescence
    /// short-circuit; idle cycles cost two flag checks).
    vm_quiet: bool,
    /// Reusable multi-limb intermediate buffer.
    scratch: Vec<u64>,
    cycle: u64,
    watches: Vec<Watch>,
    trace: Vec<TraceStep>,
    stats: SimStats,
    obs: ObsHook,
}

#[derive(Debug, Clone)]
enum Watch {
    Output(usize),
    Reg(usize),
    Node(NodeId),
}

/// The node-region slice at `off` (arena offset) of `l` limbs, where the
/// slice was split off the arena at `base`.
fn node_limbs(nodes: &[u64], base: usize, off: u32, l: u32) -> &[u64] {
    &nodes[off as usize - base..][..l as usize]
}

impl Simulator {
    /// Creates a simulator for `module`, validating it first. The module
    /// must be flat (no instances) — flatten a hierarchy with
    /// [`crate::flatten`] first. State starts at the reset values. Uses
    /// the compiled [`EvalMode::DirtyCone`] engine.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] if validation fails or the module has
    /// instances.
    pub fn new(module: Module) -> Result<Self, RtlError> {
        Self::with_mode(module, EvalMode::DirtyCone)
    }

    /// Creates a simulator running the [`EvalMode::FullOracle`] reference
    /// interpreter — the baseline the compiled engine is differential-
    /// tested against.
    ///
    /// # Errors
    ///
    /// As [`Simulator::new`].
    pub fn new_reference(module: Module) -> Result<Self, RtlError> {
        Self::with_mode(module, EvalMode::FullOracle)
    }

    /// Creates a simulator running the [`EvalMode::Bytecode`] engine:
    /// the schedule lowered to flat register bytecode with constant
    /// folding, instruction fusion, and instruction-level dirty-cone
    /// scheduling. Bit-identical to the other two engines.
    ///
    /// # Errors
    ///
    /// As [`Simulator::new`].
    pub fn new_vm(module: Module) -> Result<Self, RtlError> {
        Self::with_mode(module, EvalMode::Bytecode)
    }

    fn with_mode(module: Module, mode: EvalMode) -> Result<Self, RtlError> {
        check_module(&module)?;
        if !module.instances.is_empty() {
            return Err(RtlError::NotFlat {
                module: module.name.clone(),
            });
        }
        let sched = SimSchedule::build(&module);
        let vm = (mode == EvalMode::Bytecode).then(|| VmEngine::build(&module, &sched));
        let input_vals = module.inputs.iter().map(|p| Bv::zero(p.width)).collect();
        let mut sim = Simulator {
            vm,
            arena: vec![0; sched.arena_len()],
            mem_arena: vec![0; sched.mem_arena_len()],
            input_vals,
            dirty_levels: vec![Vec::new(); sched.num_levels() as usize],
            in_dirty: vec![false; module.nodes.len()],
            full_dirty: true,
            dirty: true,
            since_commit: true,
            vm_quiet: false,
            scratch: Vec::with_capacity(sched.max_limbs()),
            cycle: 0,
            watches: Vec::new(),
            trace: Vec::new(),
            stats: SimStats::default(),
            obs: ObsHook::none(),
            mode,
            sched,
            module,
        };
        sim.reset();
        Ok(sim)
    }

    /// The simulated module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The precompiled evaluation schedule (levels, fanout edges).
    pub fn schedule(&self) -> &SimSchedule {
        &self.sched
    }

    /// Which evaluation engine this simulator runs.
    pub fn eval_mode(&self) -> EvalMode {
        self.mode
    }

    /// The current cycle count (number of completed [`Simulator::step`]s
    /// since the last reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resets all registers to their init values, memories to their initial
    /// contents, inputs to zero, and the cycle counter to 0. The trace is
    /// cleared.
    pub fn reset(&mut self) {
        self.arena.fill(0);
        self.mem_arena.fill(0);
        for (i, r) in self.module.regs.iter().enumerate() {
            let s = self.sched.reg_slot(i);
            self.arena[s.off as usize..][..s.limbs as usize].copy_from_slice(r.init.limbs());
        }
        for (mi, m) in self.module.mems.iter().enumerate() {
            let (base, stride) = self.sched.mem_layout(mi);
            for (a, w) in m.init.iter().enumerate() {
                self.mem_arena[base as usize + a * stride as usize..][..stride as usize]
                    .copy_from_slice(w.limbs());
            }
        }
        // Constants are written once here; their kernels are no-ops.
        for (i, node) in self.module.nodes.iter().enumerate() {
            if let Node::Const(c) = node {
                let s = self.sched.node_slot(i);
                self.arena[s.off as usize..][..s.limbs as usize].copy_from_slice(c.limbs());
            }
        }
        for (v, p) in self.input_vals.iter_mut().zip(&self.module.inputs) {
            *v = Bv::zero(p.width);
        }
        for b in &mut self.dirty_levels {
            b.clear();
        }
        self.in_dirty.fill(false);
        self.full_dirty = true;
        self.cycle = 0;
        self.dirty = true;
        self.since_commit = true;
        self.vm_quiet = false;
        self.trace.clear();
    }

    /// Sets an input port for the current cycle. Under
    /// [`EvalMode::DirtyCone`], re-poking the value a port already holds
    /// is free: nothing is marked dirty.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or the width differs — both are
    /// harness bugs.
    pub fn poke(&mut self, port: &str, value: Bv) {
        let idx = self
            .module
            .input_index(port)
            .unwrap_or_else(|| panic!("no input port named {port:?}"));
        self.poke_at(idx, value);
    }

    /// As [`Simulator::poke`], by input-port index (the position in
    /// `self.module().inputs`) — lets a harness resolve port names once
    /// instead of scanning them every poke.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or the width differs.
    pub fn poke_at(&mut self, idx: usize, value: Bv) {
        assert_eq!(
            value.width(),
            self.module.inputs[idx].width,
            "poke width mismatch on {:?}",
            self.module.inputs[idx].name
        );
        if self.mode != EvalMode::FullOracle && self.input_vals[idx] == value {
            return;
        }
        self.input_vals[idx] = value;
        let (in_dirty, buckets, sched) = (&mut self.in_dirty, &mut self.dirty_levels, &self.sched);
        match &self.vm {
            Some(vm) => {
                // The VM has no input instructions: write the port value
                // straight into the input nodes' slots and (unless the
                // program runs dense) dirty the consuming instructions.
                let v = &self.input_vals[idx];
                for &n in sched.input_nodes(idx) {
                    let s = sched.node_slot(n as usize);
                    self.arena[s.off as usize..][..s.limbs as usize].copy_from_slice(v.limbs());
                }
                if !vm.dense() {
                    for &i in vm.input_succ(idx) {
                        if !in_dirty[i as usize] {
                            in_dirty[i as usize] = true;
                            buckets[vm.instr_level(i) as usize].push(i);
                        }
                    }
                }
            }
            None => {
                for &n in sched.input_nodes(idx) {
                    if !in_dirty[n as usize] {
                        in_dirty[n as usize] = true;
                        buckets[sched.level_raw(n) as usize].push(n);
                    }
                }
            }
        }
        self.dirty = true;
        self.since_commit = true;
    }

    /// Evaluates combinational logic if inputs or state changed since the
    /// last evaluation. Called automatically by [`Simulator::step`],
    /// [`Simulator::output`], and [`Simulator::peek`].
    pub fn eval(&mut self) {
        if !self.dirty {
            return;
        }
        let evaled = match self.mode {
            EvalMode::FullOracle => self.oracle_pass(),
            EvalMode::DirtyCone => {
                if self.full_dirty {
                    self.full_pass()
                } else {
                    self.dirty_pass()
                }
            }
            EvalMode::Bytecode => {
                let dense = self
                    .vm
                    .as_ref()
                    .expect("Bytecode mode has an engine")
                    .dense();
                if dense || self.full_dirty {
                    self.vm_full_pass()
                } else {
                    self.vm_dirty_pass()
                }
            }
        };
        self.dirty = false;
        self.stats.eval_passes += 1;
        self.stats.node_evals += evaled;
        self.obs.add("rtl.eval_passes", 1);
        self.obs.add("rtl.node_evals", evaled);
    }

    /// Reference pass: every node, in id order, through the `Bv` oracle.
    fn oracle_pass(&mut self) -> u64 {
        for i in 0..self.module.nodes.len() {
            let v = match &self.module.nodes[i] {
                Node::Input(idx) => self.input_vals[*idx].clone(),
                Node::Const(c) => c.clone(),
                Node::RegQ(r) => self.reg_bv(r.index()),
                Node::MemReadData(m, p) => self.mem_rd_bv(m.index(), *p),
                Node::InstOut(..) => unreachable!("module is flat"),
                Node::Un(op, a) => eval_un(*op, &self.node_bv(a.index())),
                Node::Bin(op, a, b) => {
                    eval_bin(*op, &self.node_bv(a.index()), &self.node_bv(b.index()))
                }
                Node::Mux { sel, t, f } => {
                    if self.node_bv(sel.index()).bit(0) {
                        self.node_bv(t.index())
                    } else {
                        self.node_bv(f.index())
                    }
                }
                Node::Slice { src, hi, lo } => self.node_bv(src.index()).slice(*hi, *lo),
                Node::Concat(a, b) => self.node_bv(a.index()).concat(&self.node_bv(b.index())),
                Node::Zext(a, w) => self.node_bv(a.index()).zext(*w),
                Node::Sext(a, w) => self.node_bv(a.index()).sext(*w),
            };
            let s = self.sched.node_slot(i);
            self.arena[s.off as usize..][..s.limbs as usize].copy_from_slice(v.limbs());
        }
        self.module.nodes.len() as u64
    }

    /// Compiled full pass: every node, in level order, through its kernel.
    /// Used for the first pass after a reset; also drains stale dirty
    /// marks.
    fn full_pass(&mut self) -> u64 {
        for &n in self.sched.order() {
            self.sched.eval_node(
                n as usize,
                &mut self.arena,
                &self.input_vals,
                &mut self.scratch,
            );
        }
        let in_dirty = &mut self.in_dirty;
        for b in &mut self.dirty_levels {
            for &n in b.iter() {
                in_dirty[n as usize] = false;
            }
            b.clear();
        }
        self.full_dirty = false;
        self.module.nodes.len() as u64
    }

    /// Incremental pass: walk only the dirty fanout cone, level by level.
    /// A node's consumers always sit at a strictly higher level, so each
    /// node is visited at most once per pass.
    fn dirty_pass(&mut self) -> u64 {
        let mut evaled = 0u64;
        for lvl in 0..self.dirty_levels.len() {
            if self.dirty_levels[lvl].is_empty() {
                continue;
            }
            let mut bucket = std::mem::take(&mut self.dirty_levels[lvl]);
            // Deterministic, cache-friendly order regardless of poke order.
            bucket.sort_unstable();
            for &n in &bucket {
                self.in_dirty[n as usize] = false;
                evaled += 1;
                let changed = self.sched.eval_node(
                    n as usize,
                    &mut self.arena,
                    &self.input_vals,
                    &mut self.scratch,
                );
                if changed {
                    let (in_dirty, buckets, sched) =
                        (&mut self.in_dirty, &mut self.dirty_levels, &self.sched);
                    for f in sched.fanouts(n) {
                        let fi = f.index();
                        if !in_dirty[fi] {
                            in_dirty[fi] = true;
                            buckets[sched.level_raw(fi as u32) as usize].push(fi as u32);
                        }
                    }
                }
            }
            bucket.clear();
            // Hand the emptied Vec back so its capacity is reused.
            self.dirty_levels[lvl] = bucket;
        }
        evaled
    }

    /// Bytecode full pass: the whole program as one straight-line block.
    /// Used for the first pass after a reset, and for *every* pass of a
    /// dense program (nothing marks, so there is nothing to drain); also
    /// drains stale dirty marks. Input node slots already hold the port
    /// values (poke writes them; reset zeroes them along with the ports).
    fn vm_full_pass(&mut self) -> u64 {
        let vm = self.vm.as_ref().expect("Bytecode mode has an engine");
        vm.prog().run(&mut self.arena, &mut self.scratch);
        // Dense programs never mark, so their buckets are provably empty;
        // only a tracked program's forced full pass has marks to drain.
        if !vm.dense() {
            let in_dirty = &mut self.in_dirty;
            for b in &mut self.dirty_levels {
                for &i in b.iter() {
                    in_dirty[i as usize] = false;
                }
                b.clear();
            }
        }
        self.full_dirty = false;
        vm.prog().len() as u64
    }

    /// Bytecode incremental pass: walk dirty instructions level by level.
    /// Successor instructions always sit at a strictly higher level, so
    /// each instruction runs at most once per pass. A mostly-dirty level
    /// is executed as its whole contiguous straight-line block instead of
    /// instruction-picking — the block costs no dispatch overhead per
    /// skipped instruction and keeps `node_evals` deterministic (marks
    /// are a set; full blocks and sorted buckets are order-independent).
    fn vm_dirty_pass(&mut self) -> u64 {
        let vm = self.vm.as_ref().expect("Bytecode mode has an engine");
        let mut evaled = 0u64;
        for lvl in 0..self.dirty_levels.len() {
            if self.dirty_levels[lvl].is_empty() {
                continue;
            }
            let mut bucket = std::mem::take(&mut self.dirty_levels[lvl]);
            let (lo, hi) = vm.level_range(lvl);
            let range_len = (hi - lo) as usize;
            if bucket.len() * 4 >= range_len {
                // Mostly dirty: run the whole level straight-line.
                for &i in &bucket {
                    self.in_dirty[i as usize] = false;
                }
                evaled += range_len as u64;
                for i in lo..hi {
                    let changed =
                        vm.prog()
                            .exec_one(i as usize, &mut self.arena, &mut self.scratch);
                    if changed {
                        let (in_dirty, buckets) = (&mut self.in_dirty, &mut self.dirty_levels);
                        for &s in vm.succs(i) {
                            if !in_dirty[s as usize] {
                                in_dirty[s as usize] = true;
                                buckets[vm.instr_level(s) as usize].push(s);
                            }
                        }
                    }
                }
            } else {
                // Deterministic, cache-friendly order regardless of poke
                // order.
                bucket.sort_unstable();
                evaled += bucket.len() as u64;
                for &i in &bucket {
                    self.in_dirty[i as usize] = false;
                    let changed =
                        vm.prog()
                            .exec_one(i as usize, &mut self.arena, &mut self.scratch);
                    if changed {
                        let (in_dirty, buckets) = (&mut self.in_dirty, &mut self.dirty_levels);
                        for &s in vm.succs(i) {
                            if !in_dirty[s as usize] {
                                in_dirty[s as usize] = true;
                                buckets[vm.instr_level(s) as usize].push(s);
                            }
                        }
                    }
                }
            }
            bucket.clear();
            // Hand the emptied Vec back so its capacity is reused.
            self.dirty_levels[lvl] = bucket;
        }
        evaled
    }

    fn node_bv(&self, n: usize) -> Bv {
        let s = self.sched.node_slot(n);
        Bv::from_limbs(s.width, &self.arena[s.off as usize..][..s.limbs as usize])
    }

    fn reg_bv(&self, r: usize) -> Bv {
        let s = self.sched.reg_slot(r);
        Bv::from_limbs(s.width, &self.arena[s.off as usize..][..s.limbs as usize])
    }

    fn mem_rd_bv(&self, m: usize, p: usize) -> Bv {
        let s = self.sched.mem_rd_slot(m, p);
        Bv::from_limbs(s.width, &self.arena[s.off as usize..][..s.limbs as usize])
    }

    /// Reads an output port value (after evaluating if needed).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn output(&mut self, port: &str) -> Bv {
        let idx = self
            .module
            .output_index(port)
            .unwrap_or_else(|| panic!("no output port named {port:?}"));
        self.eval();
        self.node_bv(self.module.output_drivers[idx].index())
    }

    /// Reads an output port's raw little-endian limbs without
    /// materializing a [`Bv`] (after evaluating if needed). The slot is
    /// kept masked by every engine, so the limbs equal
    /// `self.output(port).limbs()` — this is the allocation-free read
    /// path for harnesses that hash or compare output streams.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn output_limbs(&mut self, port: &str) -> &[u64] {
        let idx = self
            .module
            .output_index(port)
            .unwrap_or_else(|| panic!("no output port named {port:?}"));
        self.output_limbs_at(idx)
    }

    /// As [`Simulator::output_limbs`], by output-port index (the position
    /// in `self.module().outputs`) — lets a harness resolve port names
    /// once instead of scanning them every read.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn output_limbs_at(&mut self, idx: usize) -> &[u64] {
        self.eval();
        let s = self
            .sched
            .node_slot(self.module.output_drivers[idx].index());
        &self.arena[s.off as usize..][..s.limbs as usize]
    }

    /// Feeds every listed output port's limbs (ports in the given order,
    /// limbs little-endian) to `f` after a single evaluation — the
    /// batched form of [`Simulator::output_limbs_at`] for harnesses that
    /// hash or compare an output stream every cycle.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn for_each_output_limb(&mut self, idxs: &[usize], mut f: impl FnMut(u64)) {
        self.eval();
        for &idx in idxs {
            let s = self
                .sched
                .node_slot(self.module.output_drivers[idx].index());
            for &l in &self.arena[s.off as usize..][..s.limbs as usize] {
                f(l);
            }
        }
    }

    /// Reads an arbitrary node value (after evaluating if needed).
    pub fn peek(&mut self, node: NodeId) -> Bv {
        self.eval();
        self.node_bv(node.index())
    }

    /// Reads a register's current value by name.
    ///
    /// # Panics
    ///
    /// Panics if no register has that name.
    pub fn reg_value(&self, name: &str) -> Bv {
        let r = self
            .module
            .reg_index(name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        self.reg_bv(r.index())
    }

    /// Overwrites a register's current value (for state injection in
    /// equivalence-checking counterexample replay).
    ///
    /// # Panics
    ///
    /// Panics if no register has that name or the width differs.
    pub fn set_reg(&mut self, name: &str, value: Bv) {
        let r = self
            .module
            .reg_index(name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        let ri = r.index();
        assert_eq!(value.width(), self.module.regs[ri].width);
        let s = self.sched.reg_slot(ri);
        let cur = &mut self.arena[s.off as usize..][..s.limbs as usize];
        if self.mode != EvalMode::FullOracle && cur == value.limbs() {
            return;
        }
        cur.copy_from_slice(value.limbs());
        let (in_dirty, buckets, sched) = (&mut self.in_dirty, &mut self.dirty_levels, &self.sched);
        match &self.vm {
            Some(vm) => {
                if !vm.dense() {
                    for &i in vm.reg_succ(ri) {
                        if !in_dirty[i as usize] {
                            in_dirty[i as usize] = true;
                            buckets[vm.instr_level(i) as usize].push(i);
                        }
                    }
                }
            }
            None => {
                for &n in sched.reg_nodes(ri) {
                    if !in_dirty[n as usize] {
                        in_dirty[n as usize] = true;
                        buckets[sched.level_raw(n) as usize].push(n);
                    }
                }
            }
        }
        self.dirty = true;
        self.since_commit = true;
    }

    /// Reads a memory word.
    ///
    /// # Panics
    ///
    /// Panics if the memory name or address is out of range.
    pub fn mem_word(&self, mem: &str, addr: usize) -> Bv {
        let mi = self
            .module
            .mems
            .iter()
            .position(|m| m.name == mem)
            .unwrap_or_else(|| panic!("no memory named {mem:?}"));
        assert!(addr < self.module.mems[mi].depth, "address out of range");
        let (base, stride) = self.sched.mem_layout(mi);
        Bv::from_limbs(
            self.module.mems[mi].data_width,
            &self.mem_arena[base as usize + addr * stride as usize..][..stride as usize],
        )
    }

    /// Advances one clock cycle: evaluates, then commits registers and
    /// memories at the rising edge. Under [`EvalMode::DirtyCone`] only
    /// state that actually changed marks its readers dirty, so the next
    /// pass walks just the affected cone.
    pub fn step(&mut self) {
        self.eval();
        self.record_trace();
        let any = if self.vm.is_some() {
            // Quiescence short-circuit: if nothing was poked or injected
            // since the last commit, and that commit neither changed
            // state nor fired a memory write, the node region is
            // bit-identical to what it saw — this edge is a no-op.
            if !self.since_commit && self.vm_quiet {
                false
            } else {
                let (any, wrote) = self.vm_commit();
                self.vm_quiet = !any && !wrote;
                any
            }
        } else {
            self.generic_commit()
        };
        self.since_commit = false;
        self.cycle += 1;
        if self.mode == EvalMode::FullOracle || any {
            self.dirty = true;
        }
        self.stats.steps += 1;
        self.obs.add("rtl.steps", 1);
    }

    /// Clock-edge commit through the interpreter's module walk (the
    /// dirty-cone and reference engines). Returns whether any state
    /// changed.
    fn generic_commit(&mut self) -> bool {
        let base = self.sched.state_len();
        let (state, nodes) = self.arena.split_at_mut(base);
        let sched = &self.sched;
        let track = self.mode != EvalMode::FullOracle;
        let in_dirty = &mut self.in_dirty;
        let buckets = &mut self.dirty_levels;
        let mut any = false;
        let mut mark_all = |ids: &[u32], any: &mut bool| {
            for &n in ids {
                if !in_dirty[n as usize] {
                    in_dirty[n as usize] = true;
                    buckets[sched.level_raw(n) as usize].push(n);
                }
            }
            *any = true;
        };
        // Registers: sample D (respecting enables). D and enable values
        // live in the node region, register values in the state region —
        // disjoint, so the commit order across registers is irrelevant.
        for (i, reg) in self.module.regs.iter().enumerate() {
            let load = reg
                .en
                .map(|en| node_limbs(nodes, base, sched.node_slot(en.index()).off, 1)[0] & 1 == 1)
                .unwrap_or(true);
            if !load {
                continue;
            }
            let next = reg.next.expect("checked: connected");
            let ns = sched.node_slot(next.index());
            let d = node_limbs(nodes, base, ns.off, ns.limbs);
            let rs = sched.reg_slot(i);
            let cur = &mut state[rs.off as usize..][..rs.limbs as usize];
            if cur != d {
                cur.copy_from_slice(d);
                if track {
                    mark_all(sched.reg_nodes(i), &mut any);
                }
            }
        }
        // Memories: sample read addresses (read-first), then write.
        for (mi, mem) in self.module.mems.iter().enumerate() {
            let (mbase, stride) = sched.mem_layout(mi);
            let (mbase, stride) = (mbase as usize, stride as usize);
            for (pi, rp) in mem.read_ports.iter().enumerate() {
                let a = node_limbs(nodes, base, sched.node_slot(rp.addr.index()).off, 1)[0];
                let addr = a as usize % mem.depth;
                let word = &self.mem_arena[mbase + addr * stride..][..stride];
                let rs = sched.mem_rd_slot(mi, pi);
                let cur = &mut state[rs.off as usize..][..rs.limbs as usize];
                if cur != word {
                    cur.copy_from_slice(word);
                    if track {
                        mark_all(sched.mem_read_nodes(mi, pi), &mut any);
                    }
                }
            }
            for wp in &mem.write_ports {
                if node_limbs(nodes, base, sched.node_slot(wp.en.index()).off, 1)[0] & 1 == 1 {
                    let a = node_limbs(nodes, base, sched.node_slot(wp.addr.index()).off, 1)[0];
                    let addr = a as usize % mem.depth;
                    let ds = sched.node_slot(wp.data.index());
                    let d = node_limbs(nodes, base, ds.off, ds.limbs);
                    self.mem_arena[mbase + addr * stride..][..stride].copy_from_slice(d);
                }
            }
        }
        any
    }

    /// Clock-edge commit through the bytecode engine's compiled plan:
    /// every enable/D/state/address offset was resolved at lowering time
    /// ([`crate::lower::RegPlan`] / [`crate::lower::MemPlan`]), so this
    /// walks flat tables with a single-limb fast path instead of the
    /// module. Dense programs skip dirty marking entirely (their next
    /// pass reruns everything); tracked programs mark the same successor
    /// instructions the generic walk would. Returns whether any state
    /// changed and whether any memory write port fired (the pair feeding
    /// the quiescence short-circuit in [`Simulator::step`]).
    fn vm_commit(&mut self) -> (bool, bool) {
        let vm = self.vm.as_ref().expect("vm commit needs an engine");
        let dense = vm.dense();
        let base = self.sched.state_len();
        let (state, nodes) = self.arena.split_at_mut(base);
        let in_dirty = &mut self.in_dirty;
        let buckets = &mut self.dirty_levels;
        let mut any = false;
        let mut wrote = false;
        let mut mark_all = |ids: &[u32]| {
            for &i in ids {
                if !in_dirty[i as usize] {
                    in_dirty[i as usize] = true;
                    buckets[vm.instr_level(i) as usize].push(i);
                }
            }
        };
        let node1 = |off: u32| nodes[off as usize - base];
        for rp in vm.reg_plans() {
            if rp.en_off != crate::lower::NO_EN && node1(rp.en_off) & 1 == 0 {
                continue;
            }
            if rp.limbs == 1 {
                let d = node1(rp.d_off);
                let cur = &mut state[rp.state_off as usize];
                if *cur != d {
                    *cur = d;
                    any = true;
                    if !dense {
                        mark_all(vm.reg_succ(rp.reg as usize));
                    }
                }
            } else {
                let d = node_limbs(nodes, base, rp.d_off, rp.limbs);
                let cur = &mut state[rp.state_off as usize..][..rp.limbs as usize];
                if cur != d {
                    cur.copy_from_slice(d);
                    any = true;
                    if !dense {
                        mark_all(vm.reg_succ(rp.reg as usize));
                    }
                }
            }
        }
        for mp in vm.mem_plans() {
            for r in &mp.reads {
                let addr = node1(r.addr_off) as usize % mp.depth;
                let word = &self.mem_arena[mp.base + addr * mp.stride..][..mp.stride];
                let cur = &mut state[r.state_off as usize..][..mp.stride];
                if cur != word {
                    cur.copy_from_slice(word);
                    any = true;
                    if !dense {
                        mark_all(vm.mem_rd_succ(mp.mem as usize, r.port as usize));
                    }
                }
            }
            for w in &mp.writes {
                if node1(w.en_off) & 1 == 1 {
                    wrote = true;
                    let addr = node1(w.addr_off) as usize % mp.depth;
                    let d = node_limbs(nodes, base, w.d_off, mp.stride as u32);
                    self.mem_arena[mp.base + addr * mp.stride..][..mp.stride].copy_from_slice(d);
                }
            }
        }
        (any, wrote)
    }

    /// Convenience: poke several ports, then step once.
    ///
    /// # Panics
    ///
    /// Panics as [`Simulator::poke`] does.
    pub fn step_with(&mut self, inputs: &[(&str, Bv)]) {
        for (name, v) in inputs {
            self.poke(name, v.clone());
        }
        self.step();
    }

    /// Watches an output port; its value is recorded at every step.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn watch_output(&mut self, port: &str) {
        let idx = self
            .module
            .output_index(port)
            .unwrap_or_else(|| panic!("no output port named {port:?}"));
        self.watches.push(Watch::Output(idx));
    }

    /// Watches a register by name.
    ///
    /// # Panics
    ///
    /// Panics if no register has that name.
    pub fn watch_reg(&mut self, name: &str) {
        let r = self
            .module
            .reg_index(name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        self.watches.push(Watch::Reg(r.index()));
    }

    /// Watches an arbitrary node.
    pub fn watch_node(&mut self, node: NodeId) {
        self.watches.push(Watch::Node(node));
    }

    /// The names of watched signals, in watch order.
    pub fn watch_names(&self) -> Vec<String> {
        self.watches
            .iter()
            .map(|w| match w {
                Watch::Output(i) => self.module.outputs[*i].name.clone(),
                Watch::Reg(i) => self.module.regs[*i].name.clone(),
                Watch::Node(n) => self
                    .module
                    .node_names
                    .get(&n.0)
                    .cloned()
                    .unwrap_or_else(|| format!("n{}", n.0)),
            })
            .collect()
    }

    /// The declared widths of watched signals, in watch order — taken
    /// from the module's port/register/node declarations, never inferred
    /// from recorded values (so they are right even for an empty trace).
    pub fn watch_widths(&self) -> Vec<u32> {
        self.watches
            .iter()
            .map(|w| match w {
                Watch::Output(i) => self.module.outputs[*i].width,
                Watch::Reg(i) => self.module.regs[*i].width,
                Watch::Node(n) => self.module.node_widths[n.index()],
            })
            .collect()
    }

    /// The recorded trace (one entry per completed step).
    pub fn trace(&self) -> &[TraceStep] {
        &self.trace
    }

    /// Lowers the recorded trace into an observability
    /// [`WatchedTrace`] (one time unit per cycle, declared widths),
    /// ready for divergence localization or VCD rendering.
    pub fn watched_trace(&self) -> WatchedTrace {
        let mut t = WatchedTrace::new(self.watch_names(), self.watch_widths());
        for TraceStep { cycle, values } in &self.trace {
            t.push(*cycle, values.clone());
        }
        t
    }

    /// Cumulative work counters (monotonic; not cleared by reset).
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Attaches a recorder; subsequent steps report `rtl.steps`,
    /// `rtl.eval_passes`, `rtl.node_evals`, and `rtl.value_changes`.
    pub fn set_recorder(&mut self, rec: SharedRecorder) {
        self.obs.set(rec);
    }

    fn record_trace(&mut self) {
        if self.watches.is_empty() {
            return;
        }
        let values: Vec<Bv> = self
            .watches
            .iter()
            .map(|w| match w {
                Watch::Output(i) => self.node_bv(self.module.output_drivers[*i].index()),
                Watch::Reg(i) => self.reg_bv(*i),
                Watch::Node(n) => self.node_bv(n.index()),
            })
            .collect();
        let changed = match self.trace.last() {
            Some(prev) => values
                .iter()
                .zip(&prev.values)
                .filter(|(now, before)| now != before)
                .count() as u64,
            None => values.len() as u64,
        };
        self.stats.value_changes += changed;
        self.obs.add("rtl.value_changes", changed);
        self.trace.push(TraceStep {
            cycle: self.cycle,
            values,
        });
    }

    /// Runs the module as a pure function: pokes `inputs`, evaluates, and
    /// returns all outputs by name. Only meaningful for combinational
    /// modules (state is not stepped).
    ///
    /// # Panics
    ///
    /// Panics as [`Simulator::poke`] does.
    pub fn eval_comb(&mut self, inputs: &[(&str, Bv)]) -> HashMap<String, Bv> {
        for (name, v) in inputs {
            self.poke(name, v.clone());
        }
        self.eval();
        self.module
            .outputs
            .iter()
            .zip(&self.module.output_drivers)
            .map(|(p, d)| (p.name.clone(), self.node_bv(d.index())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    fn counter_with_enable() -> Module {
        let mut b = ModuleBuilder::new("ctr");
        let en = b.input("en", 1);
        let r = b.reg("count", 8, Bv::zero(8));
        let q = b.reg_q(r);
        let one = b.lit(8, 1);
        let next = b.add(q, one);
        b.connect_reg(r, next);
        b.reg_enable(r, en);
        b.output("count", q);
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts_only_when_enabled() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 2);
        sim.poke("en", Bv::from_bool(false));
        sim.step();
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 2);
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 3);
    }

    #[test]
    fn reset_restores_init() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.poke("en", Bv::from_bool(true));
        for _ in 0..10 {
            sim.step();
        }
        sim.reset();
        assert_eq!(sim.output("count").to_u64(), 0);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn comb_eval_is_pure() {
        let mut b = ModuleBuilder::new("addsub");
        let x = b.input("x", 16);
        let y = b.input("y", 16);
        let s = b.add(x, y);
        let d = b.sub(x, y);
        b.output("sum", s);
        b.output("diff", d);
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        let outs = sim.eval_comb(&[("x", Bv::from_u64(16, 100)), ("y", Bv::from_u64(16, 42))]);
        assert_eq!(outs["sum"].to_u64(), 142);
        assert_eq!(outs["diff"].to_u64(), 58);
    }

    #[test]
    fn memory_has_one_cycle_read_latency() {
        // The paper §3.2: "the RTL implements a real memory that has a delay
        // of one clock cycle for memory reads" — the canonical divergence
        // from a C array.
        let mut b = ModuleBuilder::new("memtest");
        let we = b.input("we", 1);
        let waddr = b.input("waddr", 4);
        let wdata = b.input("wdata", 8);
        let raddr = b.input("raddr", 4);
        let mem = b.mem("m", 4, 8, 16);
        b.mem_write(mem, we, waddr, wdata);
        let rdata = b.mem_read(mem, raddr);
        b.output("rdata", rdata);
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();

        // Write 0x5A to address 3.
        sim.step_with(&[
            ("we", Bv::from_bool(true)),
            ("waddr", Bv::from_u64(4, 3)),
            ("wdata", Bv::from_u64(8, 0x5A)),
            ("raddr", Bv::from_u64(4, 3)),
        ]);
        // Read-first: the read sampled at the same edge saw the OLD word.
        assert_eq!(sim.output("rdata").to_u64(), 0);
        // One more cycle with the read address held: now the new word.
        sim.step_with(&[("we", Bv::from_bool(false)), ("raddr", Bv::from_u64(4, 3))]);
        assert_eq!(sim.output("rdata").to_u64(), 0x5A);
        assert_eq!(sim.mem_word("m", 3).to_u64(), 0x5A);
    }

    #[test]
    fn trace_records_watches() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.watch_output("count");
        sim.watch_reg("count");
        sim.poke("en", Bv::from_bool(true));
        for _ in 0..3 {
            sim.step();
        }
        let t = sim.trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t[2].cycle, 2);
        assert_eq!(t[2].values[0].to_u64(), 2);
        assert_eq!(
            sim.watch_names(),
            vec!["count".to_string(), "count".to_string()]
        );
    }

    #[test]
    fn simulator_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulator>();
    }

    #[test]
    fn stats_count_work_and_widths_come_from_declarations() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.watch_output("count");
        sim.watch_reg("count");
        assert_eq!(sim.watch_widths(), vec![8, 8]);
        let rec = dfv_obs::MemoryRecorder::shared();
        sim.set_recorder(rec.clone());
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        sim.step();
        let s = sim.stats();
        assert_eq!(s.steps, 2);
        assert!(s.eval_passes >= 2);
        // Dirty-cone: node_evals counts actual work, bounded by the full
        // re-evaluation the interpreter used to do.
        let node_count = sim.module().nodes.len() as u64;
        assert!(s.node_evals > 0);
        assert!(s.node_evals <= s.eval_passes * node_count);
        // First record counts every watch; second counts the two changes.
        assert_eq!(s.value_changes, 4);
        let r = rec.lock().unwrap();
        assert_eq!(r.counter("rtl.steps"), 2);
        assert!(r.counter("rtl.node_evals") > 0);
        // Reset keeps the cumulative counters but clears the trace.
        sim.reset();
        assert_eq!(sim.stats().steps, 2);
        assert!(sim.trace().is_empty());
        let wt = sim.watched_trace();
        assert!(wt.is_empty());
        assert_eq!(wt.widths(), &[8, 8]);
    }

    #[test]
    fn reference_engine_counts_every_node_per_pass() {
        let mut sim = Simulator::new_reference(counter_with_enable()).unwrap();
        assert_eq!(sim.eval_mode(), EvalMode::FullOracle);
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 2);
        let s = sim.stats();
        let node_count = sim.module().nodes.len() as u64;
        assert_eq!(s.node_evals, s.eval_passes * node_count);
    }

    #[test]
    fn dirty_cone_skips_stable_logic() {
        // A disabled counter after one settled pass: stepping commits no
        // state change, so subsequent evals touch nothing.
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.poke("en", Bv::from_bool(false));
        assert_eq!(sim.output("count").to_u64(), 0);
        let settled = sim.stats().node_evals;
        for _ in 0..100 {
            sim.step();
        }
        assert_eq!(sim.output("count").to_u64(), 0);
        assert_eq!(
            sim.stats().node_evals,
            settled,
            "idle cycles must not re-evaluate the cone"
        );
        // Re-poking the same input value is also free.
        sim.poke("en", Bv::from_bool(false));
        assert_eq!(sim.output("count").to_u64(), 0);
        assert_eq!(sim.stats().node_evals, settled);
    }

    #[test]
    fn hierarchical_design_simulates_after_flatten() {
        use crate::flatten::flatten;
        use crate::ir::Design;
        // Two chained incrementers, each with a 1-cycle delay.
        let mut cb = ModuleBuilder::new("inc");
        let a = cb.input("a", 8);
        let one = cb.lit(8, 1);
        let s = cb.add(a, one);
        let r = cb.reg("d", 8, Bv::zero(8));
        cb.connect_reg(r, s);
        let q = cb.reg_q(r);
        cb.output("y", q);
        let child = cb.finish().unwrap();

        let mut tb = ModuleBuilder::new("top");
        let x = tb.input("x", 8);
        let o1 = tb.instantiate("u1", &child, &[x]);
        let o2 = tb.instantiate("u2", &child, &[o1[0]]);
        tb.output("y", o2[0]);
        let top = tb.finish().unwrap();

        let mut d = Design::new();
        d.add_module(child);
        d.add_module(top);
        let flat = flatten(&d, "top").unwrap();
        let mut sim = Simulator::new(flat).unwrap();
        sim.poke("x", Bv::from_u64(8, 10));
        sim.step(); // u1.d <= 11
        sim.step(); // u2.d <= 12
        assert_eq!(sim.output("y").to_u64(), 12);
    }

    #[test]
    fn simulator_rejects_unflattened_module() {
        let mut cb = ModuleBuilder::new("leaf");
        let a = cb.input("a", 8);
        cb.output("y", a);
        let leaf = cb.finish().unwrap();
        let mut tb = ModuleBuilder::new("top");
        let x = tb.input("x", 8);
        let o = tb.instantiate("u", &leaf, &[x]);
        tb.output("y", o[0]);
        let top = tb.finish().unwrap();
        assert!(Simulator::new(top).is_err());
    }

    /// Every operator shape the bytecode lowering handles: all 19 binary
    /// ops at single-limb and multi-limb widths, the unary and structural
    /// ops, constant operands on both sides (including oversized constant
    /// shift amounts), fusable compare→mux and add→slice pairs, plus a
    /// memory and registered feedback so stepping keeps the cone churning.
    fn op_soup() -> Module {
        let mut b = ModuleBuilder::new("soup");
        let x = b.input("x", 64);
        let y = b.input("y", 64);
        let n = b.input("n", 17);
        let m = b.input("m", 17);
        let wx = b.input("wx", 100);
        let wy = b.input("wy", 100);
        let c = b.input("c", 1);
        let mut outs: Vec<NodeId> = Vec::new();
        // All binary ops, single-limb and multi-limb.
        for (a, bb) in [(x, y), (wx, wy)] {
            outs.push(b.add(a, bb));
            outs.push(b.sub(a, bb));
            outs.push(b.mul(a, bb));
            outs.push(b.udiv(a, bb));
            outs.push(b.urem(a, bb));
            outs.push(b.sdiv(a, bb));
            outs.push(b.srem(a, bb));
            outs.push(b.and(a, bb));
            outs.push(b.or(a, bb));
            outs.push(b.xor(a, bb));
            outs.push(b.shl(a, bb));
            outs.push(b.lshr(a, bb));
            outs.push(b.ashr(a, bb));
            outs.push(b.eq(a, bb));
            outs.push(b.ne(a, bb));
            outs.push(b.ult(a, bb));
            outs.push(b.ule(a, bb));
            outs.push(b.slt(a, bb));
            outs.push(b.sle(a, bb));
        }
        // Unary ops, both width classes.
        for a in [n, wx] {
            outs.push(b.not(a));
            outs.push(b.neg(a));
            outs.push(b.red_and(a));
            outs.push(b.red_or(a));
            outs.push(b.red_xor(a));
        }
        // Structural ops.
        outs.push(b.mux(c, x, y));
        outs.push(b.mux(c, wx, wy));
        outs.push(b.slice(x, 40, 9));
        outs.push(b.slice(wx, 80, 30)); // multi-limb src, 1-limb out
        outs.push(b.slice(wx, 95, 10)); // multi-limb src and out
        outs.push(b.concat(n, m));
        outs.push(b.concat(wx, x));
        outs.push(b.zext(n, 64));
        outs.push(b.zext(x, 128));
        outs.push(b.zext(wx, 128));
        outs.push(b.sext(n, 64));
        outs.push(b.sext(n, 120));
        outs.push(b.sext(wx, 128));
        // Constant operands: right, left-commutative, left-subtract, and
        // constant shift amounts below / at-or-above the width.
        let k = b.lit(64, 0x00C0_FFEE_1234_5678);
        let k3 = b.lit(64, 3);
        let k70 = b.lit(64, 70);
        outs.push(b.add(x, k));
        outs.push(b.sub(k, x));
        outs.push(b.mul(k, x));
        outs.push(b.and(k, x));
        outs.push(b.eq(x, k));
        outs.push(b.shl(x, k3));
        outs.push(b.lshr(x, k3));
        outs.push(b.ashr(x, k3));
        outs.push(b.shl(x, k70));
        outs.push(b.lshr(x, k70));
        outs.push(b.ashr(x, k70));
        // Fusable pairs: a compare whose only reader is a mux select, and
        // an add whose only reader is a slice.
        let fsel = b.ult(x, y);
        outs.push(b.mux(fsel, y, x));
        let fsum = b.add(n, m);
        outs.push(b.slice(fsum, 12, 4));
        // A memory (read-first, 1-cycle latency) and registered feedback.
        let mem = b.mem("m", 4, 32, 16);
        let waddr = b.slice(x, 3, 0);
        let wdata = b.slice(y, 31, 0);
        let raddr = b.slice(y, 3, 0);
        b.mem_write(mem, c, waddr, wdata);
        outs.push(b.mem_read(mem, raddr));
        let r64 = b.reg("acc64", 64, Bv::from_u64(64, 7));
        let q64 = b.reg_q(r64);
        let fb64 = b.xor(q64, x);
        let nx64 = b.add(fb64, y);
        b.connect_reg(r64, nx64);
        b.reg_enable(r64, c);
        outs.push(q64);
        let rw = b.reg("accw", 100, Bv::zero(100));
        let qw = b.reg_q(rw);
        let nxw = b.add(qw, wx);
        b.connect_reg(rw, nxw);
        outs.push(qw);
        for (i, o) in outs.into_iter().enumerate() {
            b.output(format!("o{i}"), o);
        }
        b.finish().unwrap()
    }

    fn rand_bv(rng: &mut dfv_bits::SplitMix64, w: u32) -> Bv {
        let limbs: Vec<u64> = (0..w.div_ceil(64)).map(|_| rng.next_u64()).collect();
        Bv::from_limbs(w, &limbs)
    }

    /// Drives `sim` with seeded random stimulus and returns all outputs
    /// at every cycle.
    fn run_random(mut sim: Simulator, seed: u64, cycles: usize) -> Vec<Vec<Bv>> {
        let mut rng = dfv_bits::SplitMix64::new(seed);
        let inputs: Vec<(String, u32)> = sim
            .module()
            .inputs
            .iter()
            .map(|p| (p.name.clone(), p.width))
            .collect();
        let outs: Vec<String> = sim
            .module()
            .outputs
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let mut rows = Vec::new();
        for _ in 0..cycles {
            for (name, w) in &inputs {
                let v = rand_bv(&mut rng, *w);
                sim.poke(name, v);
            }
            rows.push(outs.iter().map(|o| sim.output(o)).collect::<Vec<_>>());
            sim.step();
        }
        rows
    }

    #[test]
    fn bytecode_engine_matches_scalar_and_oracle_on_op_soup() {
        let module = op_soup();
        for seed in [1u64, 0xDEAD_BEEF, 42] {
            let scalar = run_random(Simulator::new(module.clone()).unwrap(), seed, 48);
            let vm = run_random(Simulator::new_vm(module.clone()).unwrap(), seed, 48);
            let oracle = run_random(Simulator::new_reference(module.clone()).unwrap(), seed, 48);
            assert_eq!(vm, scalar, "vm vs scalar diverged (seed {seed})");
            assert_eq!(vm, oracle, "vm vs oracle diverged (seed {seed})");
        }
    }

    #[test]
    fn bytecode_engine_counts_and_counter_match() {
        let mut sim = Simulator::new_vm(counter_with_enable()).unwrap();
        assert_eq!(sim.eval_mode(), EvalMode::Bytecode);
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 2);
        sim.poke("en", Bv::from_bool(false));
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 2);
        // Fused and folded instructions mean at most one instruction per
        // node, so the dirty-cone bound still holds.
        let s = sim.stats();
        let node_count = sim.module().nodes.len() as u64;
        assert!(s.node_evals > 0);
        assert!(s.node_evals <= s.eval_passes * node_count);
    }

    #[test]
    fn bytecode_fused_pairs_keep_intermediates_observable() {
        // The compare and the add are absorbed into their consumers, but
        // their slots must still hold exactly the values the scalar
        // engine computes — peeks and watches read them.
        let mut b = ModuleBuilder::new("fused");
        let x = b.input("x", 32);
        let y = b.input("y", 32);
        let sel = b.ult(x, y);
        let mx = b.mux(sel, y, x);
        let sum = b.add(x, y);
        let sl = b.slice(sum, 20, 5);
        b.output("max", mx);
        b.output("mid", sl);
        let module = b.finish().unwrap();
        let mut vm = Simulator::new_vm(module.clone()).unwrap();
        let mut oracle = Simulator::new_reference(module).unwrap();
        let mut rng = dfv_bits::SplitMix64::new(9);
        for _ in 0..64 {
            let (a, bb) = (rng.bits(32), rng.bits(32));
            for sim in [&mut vm, &mut oracle] {
                sim.poke("x", Bv::from_u64(32, a));
                sim.poke("y", Bv::from_u64(32, bb));
            }
            assert_eq!(vm.output("max"), oracle.output("max"));
            assert_eq!(vm.output("mid"), oracle.output("mid"));
            assert_eq!(vm.peek(sel), oracle.peek(sel), "fused compare slot");
            assert_eq!(vm.peek(sum), oracle.peek(sum), "fused add slot");
            vm.step();
            oracle.step();
        }
    }

    #[test]
    fn bytecode_idle_cycles_and_repeat_pokes_are_free() {
        let mut sim = Simulator::new_vm(counter_with_enable()).unwrap();
        sim.poke("en", Bv::from_bool(false));
        assert_eq!(sim.output("count").to_u64(), 0);
        let settled = sim.stats().node_evals;
        for _ in 0..100 {
            sim.step();
        }
        sim.poke("en", Bv::from_bool(false));
        assert_eq!(sim.output("count").to_u64(), 0);
        assert_eq!(
            sim.stats().node_evals,
            settled,
            "idle cycles must not execute instructions"
        );
    }

    #[test]
    fn bytecode_node_evals_deterministic_under_poke_order() {
        let module = op_soup();
        let mut fwd = Simulator::new_vm(module.clone()).unwrap();
        let mut rev = Simulator::new_vm(module).unwrap();
        let mut rng = dfv_bits::SplitMix64::new(77);
        let inputs: Vec<(String, u32)> = fwd
            .module()
            .inputs
            .iter()
            .map(|p| (p.name.clone(), p.width))
            .collect();
        for _ in 0..16 {
            let vals: Vec<Bv> = inputs.iter().map(|(_, w)| rand_bv(&mut rng, *w)).collect();
            for (i, (name, _)) in inputs.iter().enumerate() {
                fwd.poke(name, vals[i].clone());
            }
            for (i, (name, _)) in inputs.iter().enumerate().rev() {
                rev.poke(name, vals[i].clone());
            }
            fwd.step();
            rev.step();
            assert_eq!(
                fwd.stats().node_evals,
                rev.stats().node_evals,
                "instruction count must not depend on poke order"
            );
        }
        assert_eq!(fwd.output("o0"), rev.output("o0"));
    }

    #[test]
    fn bytecode_set_reg_marks_cone() {
        let mut vm = Simulator::new_vm(counter_with_enable()).unwrap();
        let mut oracle = Simulator::new_reference(counter_with_enable()).unwrap();
        for sim in [&mut vm, &mut oracle] {
            sim.poke("en", Bv::from_bool(true));
            sim.step();
            sim.set_reg("count", Bv::from_u64(8, 200));
            sim.step();
        }
        assert_eq!(vm.output("count").to_u64(), 201);
        assert_eq!(oracle.output("count").to_u64(), 201);
    }
}
