//! Cycle-accurate two-phase simulation of a flat [`Module`].
//!
//! Each cycle has two phases: combinational *evaluation* (nodes computed in
//! dependency order from inputs, register outputs, and memory read
//! registers) and the *clock edge* ([`Simulator::step`]), which commits
//! register D inputs, performs memory writes, and samples memory read
//! addresses (read-first semantics: a read port returns the pre-write word).
//!
//! # Evaluation engines
//!
//! The simulator carries two interchangeable combinational engines:
//!
//! * [`EvalMode::DirtyCone`] (the default, [`Simulator::new`]) — a
//!   precompiled engine built on [`SimSchedule`]: all values live in one
//!   flat limb arena at fixed offsets, each node evaluates through a
//!   compiled kernel with single-limb fast paths, and a pass walks only
//!   the levelized fanout cone of inputs and state that actually changed.
//!   Zero heap allocation per node per pass.
//! * [`EvalMode::FullOracle`] ([`Simulator::new_reference`]) — the
//!   reference interpreter: every pass re-evaluates every node in id
//!   order through [`eval_bin`]/[`eval_un`] on freshly materialized
//!   [`Bv`]s. Slow but maximally simple; the differential test suite
//!   holds the compiled engine bit-identical to it, and its
//!   [`SimStats::node_evals`] keeps the historical
//!   `eval_passes * node_count` invariant.

use std::collections::HashMap;

use dfv_bits::Bv;
use dfv_obs::{ObsHook, SharedRecorder, WatchedTrace};

use crate::check::check_module;
use crate::ir::{BinOp, Module, Node, NodeId, UnOp};
use crate::schedule::SimSchedule;
use crate::RtlError;

/// Evaluates a binary operator on concrete values — the single source of
/// truth for operator semantics, shared with the equivalence checker's
/// bit-blaster tests and counterexample replay.
pub fn eval_bin(op: BinOp, a: &Bv, b: &Bv) -> Bv {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::UDiv => a.udiv(b),
        BinOp::URem => a.urem(b),
        BinOp::SDiv => a.sdiv(b),
        BinOp::SRem => a.srem(b),
        BinOp::And => a.and(b),
        BinOp::Or => a.or(b),
        BinOp::Xor => a.xor(b),
        BinOp::Shl => a.shl_bv(b),
        BinOp::LShr => a.lshr_bv(b),
        BinOp::AShr => a.ashr_bv(b),
        BinOp::Eq => Bv::from_bool(a == b),
        BinOp::Ne => Bv::from_bool(a != b),
        BinOp::ULt => Bv::from_bool(a.ult(b)),
        BinOp::ULe => Bv::from_bool(!b.ult(a)),
        BinOp::SLt => Bv::from_bool(a.slt(b)),
        BinOp::SLe => Bv::from_bool(!b.slt(a)),
    }
}

/// Evaluates a unary operator on a concrete value. See [`eval_bin`].
pub fn eval_un(op: UnOp, a: &Bv) -> Bv {
    match op {
        UnOp::Not => a.not(),
        UnOp::Neg => a.wrapping_neg(),
        UnOp::RedAnd => Bv::from_bool(a.reduce_and()),
        UnOp::RedOr => Bv::from_bool(a.reduce_or()),
        UnOp::RedXor => Bv::from_bool(a.reduce_xor()),
    }
}

/// Which combinational evaluation engine a [`Simulator`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Compiled levelized engine with dirty-cone scheduling (the default).
    /// A pass evaluates only the fanout cone of what changed, so
    /// [`SimStats::node_evals`] measures actual work.
    DirtyCone,
    /// Reference interpreter: every pass re-evaluates every node through
    /// [`eval_bin`]/[`eval_un`]. `node_evals == eval_passes * node_count`
    /// by construction.
    FullOracle,
}

/// Cumulative work counters for one [`Simulator`].
///
/// Monotonic across the simulator's lifetime (a [`Simulator::reset`]
/// clears state and trace but not these), so deltas between snapshots
/// measure the work of a bounded stretch of simulation. `node_evals`
/// is the deterministic RTL work metric the speed-ratio experiment
/// compares against the SLM kernel's activation counts. Under
/// [`EvalMode::DirtyCone`] it counts only nodes actually re-evaluated;
/// under [`EvalMode::FullOracle`] every pass counts every node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Completed clock cycles ([`Simulator::step`] calls).
    pub steps: u64,
    /// Combinational evaluation passes actually run (dirty evals).
    pub eval_passes: u64,
    /// Total node evaluations across all passes.
    pub node_evals: u64,
    /// Watched-signal value changes observed while recording the trace.
    pub value_changes: u64,
}

/// A recorded per-cycle snapshot of watched signals.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// The cycle number (0 = first cycle after reset).
    pub cycle: u64,
    /// Values in watch order.
    pub values: Vec<Bv>,
}

/// Cycle-accurate simulator for a flat [`Module`].
///
/// # Example
///
/// ```
/// use dfv_bits::Bv;
/// use dfv_rtl::{ModuleBuilder, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ModuleBuilder::new("counter");
/// let r = b.reg("count", 8, Bv::zero(8));
/// let q = b.reg_q(r);
/// let one = b.lit(8, 1);
/// let next = b.add(q, one);
/// b.connect_reg(r, next);
/// b.output("count", q);
/// let mut sim = Simulator::new(b.finish()?)?;
/// for _ in 0..5 {
///     sim.step();
/// }
/// assert_eq!(sim.output("count").to_u64(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    module: Module,
    sched: SimSchedule,
    mode: EvalMode,
    /// Flat value arena: `[reg slots][mem read reg slots][node slots]`,
    /// offsets fixed by `sched`.
    arena: Vec<u64>,
    /// Memory contents, one flat limb arena for all memories.
    mem_arena: Vec<u64>,
    /// Current input values.
    input_vals: Vec<Bv>,
    /// Per-level dirty buckets (indexed by topological level).
    dirty_levels: Vec<Vec<u32>>,
    /// Whether a node currently sits in a dirty bucket.
    in_dirty: Vec<bool>,
    /// Force the next pass to evaluate everything (set at reset).
    full_dirty: bool,
    /// Whether anything changed since the last pass.
    dirty: bool,
    /// Reusable multi-limb intermediate buffer.
    scratch: Vec<u64>,
    cycle: u64,
    watches: Vec<Watch>,
    trace: Vec<TraceStep>,
    stats: SimStats,
    obs: ObsHook,
}

#[derive(Debug, Clone)]
enum Watch {
    Output(usize),
    Reg(usize),
    Node(NodeId),
}

/// The node-region slice at `off` (arena offset) of `l` limbs, where the
/// slice was split off the arena at `base`.
fn node_limbs(nodes: &[u64], base: usize, off: u32, l: u32) -> &[u64] {
    &nodes[off as usize - base..][..l as usize]
}

impl Simulator {
    /// Creates a simulator for `module`, validating it first. The module
    /// must be flat (no instances) — flatten a hierarchy with
    /// [`crate::flatten`] first. State starts at the reset values. Uses
    /// the compiled [`EvalMode::DirtyCone`] engine.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] if validation fails or the module has
    /// instances.
    pub fn new(module: Module) -> Result<Self, RtlError> {
        Self::with_mode(module, EvalMode::DirtyCone)
    }

    /// Creates a simulator running the [`EvalMode::FullOracle`] reference
    /// interpreter — the baseline the compiled engine is differential-
    /// tested against.
    ///
    /// # Errors
    ///
    /// As [`Simulator::new`].
    pub fn new_reference(module: Module) -> Result<Self, RtlError> {
        Self::with_mode(module, EvalMode::FullOracle)
    }

    fn with_mode(module: Module, mode: EvalMode) -> Result<Self, RtlError> {
        check_module(&module)?;
        if !module.instances.is_empty() {
            return Err(RtlError::NotFlat {
                module: module.name.clone(),
            });
        }
        let sched = SimSchedule::build(&module);
        let input_vals = module.inputs.iter().map(|p| Bv::zero(p.width)).collect();
        let mut sim = Simulator {
            arena: vec![0; sched.arena_len()],
            mem_arena: vec![0; sched.mem_arena_len()],
            input_vals,
            dirty_levels: vec![Vec::new(); sched.num_levels() as usize],
            in_dirty: vec![false; module.nodes.len()],
            full_dirty: true,
            dirty: true,
            scratch: Vec::with_capacity(sched.max_limbs()),
            cycle: 0,
            watches: Vec::new(),
            trace: Vec::new(),
            stats: SimStats::default(),
            obs: ObsHook::none(),
            mode,
            sched,
            module,
        };
        sim.reset();
        Ok(sim)
    }

    /// The simulated module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The precompiled evaluation schedule (levels, fanout edges).
    pub fn schedule(&self) -> &SimSchedule {
        &self.sched
    }

    /// Which evaluation engine this simulator runs.
    pub fn eval_mode(&self) -> EvalMode {
        self.mode
    }

    /// The current cycle count (number of completed [`Simulator::step`]s
    /// since the last reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resets all registers to their init values, memories to their initial
    /// contents, inputs to zero, and the cycle counter to 0. The trace is
    /// cleared.
    pub fn reset(&mut self) {
        self.arena.fill(0);
        self.mem_arena.fill(0);
        for (i, r) in self.module.regs.iter().enumerate() {
            let s = self.sched.reg_slot(i);
            self.arena[s.off as usize..][..s.limbs as usize].copy_from_slice(r.init.limbs());
        }
        for (mi, m) in self.module.mems.iter().enumerate() {
            let (base, stride) = self.sched.mem_layout(mi);
            for (a, w) in m.init.iter().enumerate() {
                self.mem_arena[base as usize + a * stride as usize..][..stride as usize]
                    .copy_from_slice(w.limbs());
            }
        }
        // Constants are written once here; their kernels are no-ops.
        for (i, node) in self.module.nodes.iter().enumerate() {
            if let Node::Const(c) = node {
                let s = self.sched.node_slot(i);
                self.arena[s.off as usize..][..s.limbs as usize].copy_from_slice(c.limbs());
            }
        }
        for (v, p) in self.input_vals.iter_mut().zip(&self.module.inputs) {
            *v = Bv::zero(p.width);
        }
        for b in &mut self.dirty_levels {
            b.clear();
        }
        self.in_dirty.fill(false);
        self.full_dirty = true;
        self.cycle = 0;
        self.dirty = true;
        self.trace.clear();
    }

    /// Sets an input port for the current cycle. Under
    /// [`EvalMode::DirtyCone`], re-poking the value a port already holds
    /// is free: nothing is marked dirty.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or the width differs — both are
    /// harness bugs.
    pub fn poke(&mut self, port: &str, value: Bv) {
        let idx = self
            .module
            .input_index(port)
            .unwrap_or_else(|| panic!("no input port named {port:?}"));
        assert_eq!(
            value.width(),
            self.module.inputs[idx].width,
            "poke width mismatch on {port:?}"
        );
        if self.mode == EvalMode::DirtyCone && self.input_vals[idx] == value {
            return;
        }
        self.input_vals[idx] = value;
        let (in_dirty, buckets, sched) = (&mut self.in_dirty, &mut self.dirty_levels, &self.sched);
        for &n in sched.input_nodes(idx) {
            if !in_dirty[n as usize] {
                in_dirty[n as usize] = true;
                buckets[sched.level_raw(n) as usize].push(n);
            }
        }
        self.dirty = true;
    }

    /// Evaluates combinational logic if inputs or state changed since the
    /// last evaluation. Called automatically by [`Simulator::step`],
    /// [`Simulator::output`], and [`Simulator::peek`].
    pub fn eval(&mut self) {
        if !self.dirty {
            return;
        }
        let evaled = match self.mode {
            EvalMode::FullOracle => self.oracle_pass(),
            EvalMode::DirtyCone => {
                if self.full_dirty {
                    self.full_pass()
                } else {
                    self.dirty_pass()
                }
            }
        };
        self.dirty = false;
        self.stats.eval_passes += 1;
        self.stats.node_evals += evaled;
        self.obs.add("rtl.eval_passes", 1);
        self.obs.add("rtl.node_evals", evaled);
    }

    /// Reference pass: every node, in id order, through the `Bv` oracle.
    fn oracle_pass(&mut self) -> u64 {
        for i in 0..self.module.nodes.len() {
            let v = match &self.module.nodes[i] {
                Node::Input(idx) => self.input_vals[*idx].clone(),
                Node::Const(c) => c.clone(),
                Node::RegQ(r) => self.reg_bv(r.index()),
                Node::MemReadData(m, p) => self.mem_rd_bv(m.index(), *p),
                Node::InstOut(..) => unreachable!("module is flat"),
                Node::Un(op, a) => eval_un(*op, &self.node_bv(a.index())),
                Node::Bin(op, a, b) => {
                    eval_bin(*op, &self.node_bv(a.index()), &self.node_bv(b.index()))
                }
                Node::Mux { sel, t, f } => {
                    if self.node_bv(sel.index()).bit(0) {
                        self.node_bv(t.index())
                    } else {
                        self.node_bv(f.index())
                    }
                }
                Node::Slice { src, hi, lo } => self.node_bv(src.index()).slice(*hi, *lo),
                Node::Concat(a, b) => self.node_bv(a.index()).concat(&self.node_bv(b.index())),
                Node::Zext(a, w) => self.node_bv(a.index()).zext(*w),
                Node::Sext(a, w) => self.node_bv(a.index()).sext(*w),
            };
            let s = self.sched.node_slot(i);
            self.arena[s.off as usize..][..s.limbs as usize].copy_from_slice(v.limbs());
        }
        self.module.nodes.len() as u64
    }

    /// Compiled full pass: every node, in level order, through its kernel.
    /// Used for the first pass after a reset; also drains stale dirty
    /// marks.
    fn full_pass(&mut self) -> u64 {
        for &n in self.sched.order() {
            self.sched.eval_node(
                n as usize,
                &mut self.arena,
                &self.input_vals,
                &mut self.scratch,
            );
        }
        let in_dirty = &mut self.in_dirty;
        for b in &mut self.dirty_levels {
            for &n in b.iter() {
                in_dirty[n as usize] = false;
            }
            b.clear();
        }
        self.full_dirty = false;
        self.module.nodes.len() as u64
    }

    /// Incremental pass: walk only the dirty fanout cone, level by level.
    /// A node's consumers always sit at a strictly higher level, so each
    /// node is visited at most once per pass.
    fn dirty_pass(&mut self) -> u64 {
        let mut evaled = 0u64;
        for lvl in 0..self.dirty_levels.len() {
            if self.dirty_levels[lvl].is_empty() {
                continue;
            }
            let mut bucket = std::mem::take(&mut self.dirty_levels[lvl]);
            // Deterministic, cache-friendly order regardless of poke order.
            bucket.sort_unstable();
            for &n in &bucket {
                self.in_dirty[n as usize] = false;
                evaled += 1;
                let changed = self.sched.eval_node(
                    n as usize,
                    &mut self.arena,
                    &self.input_vals,
                    &mut self.scratch,
                );
                if changed {
                    let (in_dirty, buckets, sched) =
                        (&mut self.in_dirty, &mut self.dirty_levels, &self.sched);
                    for f in sched.fanouts(n) {
                        let fi = f.index();
                        if !in_dirty[fi] {
                            in_dirty[fi] = true;
                            buckets[sched.level_raw(fi as u32) as usize].push(fi as u32);
                        }
                    }
                }
            }
            bucket.clear();
            // Hand the emptied Vec back so its capacity is reused.
            self.dirty_levels[lvl] = bucket;
        }
        evaled
    }

    fn node_bv(&self, n: usize) -> Bv {
        let s = self.sched.node_slot(n);
        Bv::from_limbs(s.width, &self.arena[s.off as usize..][..s.limbs as usize])
    }

    fn reg_bv(&self, r: usize) -> Bv {
        let s = self.sched.reg_slot(r);
        Bv::from_limbs(s.width, &self.arena[s.off as usize..][..s.limbs as usize])
    }

    fn mem_rd_bv(&self, m: usize, p: usize) -> Bv {
        let s = self.sched.mem_rd_slot(m, p);
        Bv::from_limbs(s.width, &self.arena[s.off as usize..][..s.limbs as usize])
    }

    /// Reads an output port value (after evaluating if needed).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn output(&mut self, port: &str) -> Bv {
        let idx = self
            .module
            .output_index(port)
            .unwrap_or_else(|| panic!("no output port named {port:?}"));
        self.eval();
        self.node_bv(self.module.output_drivers[idx].index())
    }

    /// Reads an arbitrary node value (after evaluating if needed).
    pub fn peek(&mut self, node: NodeId) -> Bv {
        self.eval();
        self.node_bv(node.index())
    }

    /// Reads a register's current value by name.
    ///
    /// # Panics
    ///
    /// Panics if no register has that name.
    pub fn reg_value(&self, name: &str) -> Bv {
        let r = self
            .module
            .reg_index(name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        self.reg_bv(r.index())
    }

    /// Overwrites a register's current value (for state injection in
    /// equivalence-checking counterexample replay).
    ///
    /// # Panics
    ///
    /// Panics if no register has that name or the width differs.
    pub fn set_reg(&mut self, name: &str, value: Bv) {
        let r = self
            .module
            .reg_index(name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        let ri = r.index();
        assert_eq!(value.width(), self.module.regs[ri].width);
        let s = self.sched.reg_slot(ri);
        let cur = &mut self.arena[s.off as usize..][..s.limbs as usize];
        if self.mode == EvalMode::DirtyCone && cur == value.limbs() {
            return;
        }
        cur.copy_from_slice(value.limbs());
        let (in_dirty, buckets, sched) = (&mut self.in_dirty, &mut self.dirty_levels, &self.sched);
        for &n in sched.reg_nodes(ri) {
            if !in_dirty[n as usize] {
                in_dirty[n as usize] = true;
                buckets[sched.level_raw(n) as usize].push(n);
            }
        }
        self.dirty = true;
    }

    /// Reads a memory word.
    ///
    /// # Panics
    ///
    /// Panics if the memory name or address is out of range.
    pub fn mem_word(&self, mem: &str, addr: usize) -> Bv {
        let mi = self
            .module
            .mems
            .iter()
            .position(|m| m.name == mem)
            .unwrap_or_else(|| panic!("no memory named {mem:?}"));
        assert!(addr < self.module.mems[mi].depth, "address out of range");
        let (base, stride) = self.sched.mem_layout(mi);
        Bv::from_limbs(
            self.module.mems[mi].data_width,
            &self.mem_arena[base as usize + addr * stride as usize..][..stride as usize],
        )
    }

    /// Advances one clock cycle: evaluates, then commits registers and
    /// memories at the rising edge. Under [`EvalMode::DirtyCone`] only
    /// state that actually changed marks its readers dirty, so the next
    /// pass walks just the affected cone.
    pub fn step(&mut self) {
        self.eval();
        self.record_trace();
        let base = self.sched.state_len();
        let (state, nodes) = self.arena.split_at_mut(base);
        let sched = &self.sched;
        let dirty_cone = self.mode == EvalMode::DirtyCone;
        let in_dirty = &mut self.in_dirty;
        let buckets = &mut self.dirty_levels;
        let mut any = false;
        let mut mark_all = |ids: &[u32], any: &mut bool| {
            for &n in ids {
                if !in_dirty[n as usize] {
                    in_dirty[n as usize] = true;
                    buckets[sched.level_raw(n) as usize].push(n);
                }
            }
            *any = true;
        };
        // Registers: sample D (respecting enables). D and enable values
        // live in the node region, register values in the state region —
        // disjoint, so the commit order across registers is irrelevant.
        for (i, reg) in self.module.regs.iter().enumerate() {
            let load = reg
                .en
                .map(|en| node_limbs(nodes, base, sched.node_slot(en.index()).off, 1)[0] & 1 == 1)
                .unwrap_or(true);
            if !load {
                continue;
            }
            let next = reg.next.expect("checked: connected");
            let ns = sched.node_slot(next.index());
            let d = node_limbs(nodes, base, ns.off, ns.limbs);
            let rs = sched.reg_slot(i);
            let cur = &mut state[rs.off as usize..][..rs.limbs as usize];
            if cur != d {
                cur.copy_from_slice(d);
                if dirty_cone {
                    mark_all(sched.reg_nodes(i), &mut any);
                }
            }
        }
        // Memories: sample read addresses (read-first), then write.
        for (mi, mem) in self.module.mems.iter().enumerate() {
            let (mbase, stride) = sched.mem_layout(mi);
            let (mbase, stride) = (mbase as usize, stride as usize);
            for (pi, rp) in mem.read_ports.iter().enumerate() {
                let a = node_limbs(nodes, base, sched.node_slot(rp.addr.index()).off, 1)[0];
                let addr = a as usize % mem.depth;
                let word = &self.mem_arena[mbase + addr * stride..][..stride];
                let rs = sched.mem_rd_slot(mi, pi);
                let cur = &mut state[rs.off as usize..][..rs.limbs as usize];
                if cur != word {
                    cur.copy_from_slice(word);
                    if dirty_cone {
                        mark_all(sched.mem_read_nodes(mi, pi), &mut any);
                    }
                }
            }
            for wp in &mem.write_ports {
                if node_limbs(nodes, base, sched.node_slot(wp.en.index()).off, 1)[0] & 1 == 1 {
                    let a = node_limbs(nodes, base, sched.node_slot(wp.addr.index()).off, 1)[0];
                    let addr = a as usize % mem.depth;
                    let ds = sched.node_slot(wp.data.index());
                    let d = node_limbs(nodes, base, ds.off, ds.limbs);
                    self.mem_arena[mbase + addr * stride..][..stride].copy_from_slice(d);
                }
            }
        }
        self.cycle += 1;
        if !dirty_cone || any {
            self.dirty = true;
        }
        self.stats.steps += 1;
        self.obs.add("rtl.steps", 1);
    }

    /// Convenience: poke several ports, then step once.
    ///
    /// # Panics
    ///
    /// Panics as [`Simulator::poke`] does.
    pub fn step_with(&mut self, inputs: &[(&str, Bv)]) {
        for (name, v) in inputs {
            self.poke(name, v.clone());
        }
        self.step();
    }

    /// Watches an output port; its value is recorded at every step.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn watch_output(&mut self, port: &str) {
        let idx = self
            .module
            .output_index(port)
            .unwrap_or_else(|| panic!("no output port named {port:?}"));
        self.watches.push(Watch::Output(idx));
    }

    /// Watches a register by name.
    ///
    /// # Panics
    ///
    /// Panics if no register has that name.
    pub fn watch_reg(&mut self, name: &str) {
        let r = self
            .module
            .reg_index(name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        self.watches.push(Watch::Reg(r.index()));
    }

    /// Watches an arbitrary node.
    pub fn watch_node(&mut self, node: NodeId) {
        self.watches.push(Watch::Node(node));
    }

    /// The names of watched signals, in watch order.
    pub fn watch_names(&self) -> Vec<String> {
        self.watches
            .iter()
            .map(|w| match w {
                Watch::Output(i) => self.module.outputs[*i].name.clone(),
                Watch::Reg(i) => self.module.regs[*i].name.clone(),
                Watch::Node(n) => self
                    .module
                    .node_names
                    .get(&n.0)
                    .cloned()
                    .unwrap_or_else(|| format!("n{}", n.0)),
            })
            .collect()
    }

    /// The declared widths of watched signals, in watch order — taken
    /// from the module's port/register/node declarations, never inferred
    /// from recorded values (so they are right even for an empty trace).
    pub fn watch_widths(&self) -> Vec<u32> {
        self.watches
            .iter()
            .map(|w| match w {
                Watch::Output(i) => self.module.outputs[*i].width,
                Watch::Reg(i) => self.module.regs[*i].width,
                Watch::Node(n) => self.module.node_widths[n.index()],
            })
            .collect()
    }

    /// The recorded trace (one entry per completed step).
    pub fn trace(&self) -> &[TraceStep] {
        &self.trace
    }

    /// Lowers the recorded trace into an observability
    /// [`WatchedTrace`] (one time unit per cycle, declared widths),
    /// ready for divergence localization or VCD rendering.
    pub fn watched_trace(&self) -> WatchedTrace {
        let mut t = WatchedTrace::new(self.watch_names(), self.watch_widths());
        for TraceStep { cycle, values } in &self.trace {
            t.push(*cycle, values.clone());
        }
        t
    }

    /// Cumulative work counters (monotonic; not cleared by reset).
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Attaches a recorder; subsequent steps report `rtl.steps`,
    /// `rtl.eval_passes`, `rtl.node_evals`, and `rtl.value_changes`.
    pub fn set_recorder(&mut self, rec: SharedRecorder) {
        self.obs.set(rec);
    }

    fn record_trace(&mut self) {
        if self.watches.is_empty() {
            return;
        }
        let values: Vec<Bv> = self
            .watches
            .iter()
            .map(|w| match w {
                Watch::Output(i) => self.node_bv(self.module.output_drivers[*i].index()),
                Watch::Reg(i) => self.reg_bv(*i),
                Watch::Node(n) => self.node_bv(n.index()),
            })
            .collect();
        let changed = match self.trace.last() {
            Some(prev) => values
                .iter()
                .zip(&prev.values)
                .filter(|(now, before)| now != before)
                .count() as u64,
            None => values.len() as u64,
        };
        self.stats.value_changes += changed;
        self.obs.add("rtl.value_changes", changed);
        self.trace.push(TraceStep {
            cycle: self.cycle,
            values,
        });
    }

    /// Runs the module as a pure function: pokes `inputs`, evaluates, and
    /// returns all outputs by name. Only meaningful for combinational
    /// modules (state is not stepped).
    ///
    /// # Panics
    ///
    /// Panics as [`Simulator::poke`] does.
    pub fn eval_comb(&mut self, inputs: &[(&str, Bv)]) -> HashMap<String, Bv> {
        for (name, v) in inputs {
            self.poke(name, v.clone());
        }
        self.eval();
        self.module
            .outputs
            .iter()
            .zip(&self.module.output_drivers)
            .map(|(p, d)| (p.name.clone(), self.node_bv(d.index())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    fn counter_with_enable() -> Module {
        let mut b = ModuleBuilder::new("ctr");
        let en = b.input("en", 1);
        let r = b.reg("count", 8, Bv::zero(8));
        let q = b.reg_q(r);
        let one = b.lit(8, 1);
        let next = b.add(q, one);
        b.connect_reg(r, next);
        b.reg_enable(r, en);
        b.output("count", q);
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts_only_when_enabled() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 2);
        sim.poke("en", Bv::from_bool(false));
        sim.step();
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 2);
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 3);
    }

    #[test]
    fn reset_restores_init() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.poke("en", Bv::from_bool(true));
        for _ in 0..10 {
            sim.step();
        }
        sim.reset();
        assert_eq!(sim.output("count").to_u64(), 0);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn comb_eval_is_pure() {
        let mut b = ModuleBuilder::new("addsub");
        let x = b.input("x", 16);
        let y = b.input("y", 16);
        let s = b.add(x, y);
        let d = b.sub(x, y);
        b.output("sum", s);
        b.output("diff", d);
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        let outs = sim.eval_comb(&[("x", Bv::from_u64(16, 100)), ("y", Bv::from_u64(16, 42))]);
        assert_eq!(outs["sum"].to_u64(), 142);
        assert_eq!(outs["diff"].to_u64(), 58);
    }

    #[test]
    fn memory_has_one_cycle_read_latency() {
        // The paper §3.2: "the RTL implements a real memory that has a delay
        // of one clock cycle for memory reads" — the canonical divergence
        // from a C array.
        let mut b = ModuleBuilder::new("memtest");
        let we = b.input("we", 1);
        let waddr = b.input("waddr", 4);
        let wdata = b.input("wdata", 8);
        let raddr = b.input("raddr", 4);
        let mem = b.mem("m", 4, 8, 16);
        b.mem_write(mem, we, waddr, wdata);
        let rdata = b.mem_read(mem, raddr);
        b.output("rdata", rdata);
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();

        // Write 0x5A to address 3.
        sim.step_with(&[
            ("we", Bv::from_bool(true)),
            ("waddr", Bv::from_u64(4, 3)),
            ("wdata", Bv::from_u64(8, 0x5A)),
            ("raddr", Bv::from_u64(4, 3)),
        ]);
        // Read-first: the read sampled at the same edge saw the OLD word.
        assert_eq!(sim.output("rdata").to_u64(), 0);
        // One more cycle with the read address held: now the new word.
        sim.step_with(&[("we", Bv::from_bool(false)), ("raddr", Bv::from_u64(4, 3))]);
        assert_eq!(sim.output("rdata").to_u64(), 0x5A);
        assert_eq!(sim.mem_word("m", 3).to_u64(), 0x5A);
    }

    #[test]
    fn trace_records_watches() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.watch_output("count");
        sim.watch_reg("count");
        sim.poke("en", Bv::from_bool(true));
        for _ in 0..3 {
            sim.step();
        }
        let t = sim.trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t[2].cycle, 2);
        assert_eq!(t[2].values[0].to_u64(), 2);
        assert_eq!(
            sim.watch_names(),
            vec!["count".to_string(), "count".to_string()]
        );
    }

    #[test]
    fn simulator_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulator>();
    }

    #[test]
    fn stats_count_work_and_widths_come_from_declarations() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.watch_output("count");
        sim.watch_reg("count");
        assert_eq!(sim.watch_widths(), vec![8, 8]);
        let rec = dfv_obs::MemoryRecorder::shared();
        sim.set_recorder(rec.clone());
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        sim.step();
        let s = sim.stats();
        assert_eq!(s.steps, 2);
        assert!(s.eval_passes >= 2);
        // Dirty-cone: node_evals counts actual work, bounded by the full
        // re-evaluation the interpreter used to do.
        let node_count = sim.module().nodes.len() as u64;
        assert!(s.node_evals > 0);
        assert!(s.node_evals <= s.eval_passes * node_count);
        // First record counts every watch; second counts the two changes.
        assert_eq!(s.value_changes, 4);
        let r = rec.lock().unwrap();
        assert_eq!(r.counter("rtl.steps"), 2);
        assert!(r.counter("rtl.node_evals") > 0);
        // Reset keeps the cumulative counters but clears the trace.
        sim.reset();
        assert_eq!(sim.stats().steps, 2);
        assert!(sim.trace().is_empty());
        let wt = sim.watched_trace();
        assert!(wt.is_empty());
        assert_eq!(wt.widths(), &[8, 8]);
    }

    #[test]
    fn reference_engine_counts_every_node_per_pass() {
        let mut sim = Simulator::new_reference(counter_with_enable()).unwrap();
        assert_eq!(sim.eval_mode(), EvalMode::FullOracle);
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 2);
        let s = sim.stats();
        let node_count = sim.module().nodes.len() as u64;
        assert_eq!(s.node_evals, s.eval_passes * node_count);
    }

    #[test]
    fn dirty_cone_skips_stable_logic() {
        // A disabled counter after one settled pass: stepping commits no
        // state change, so subsequent evals touch nothing.
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.poke("en", Bv::from_bool(false));
        assert_eq!(sim.output("count").to_u64(), 0);
        let settled = sim.stats().node_evals;
        for _ in 0..100 {
            sim.step();
        }
        assert_eq!(sim.output("count").to_u64(), 0);
        assert_eq!(
            sim.stats().node_evals,
            settled,
            "idle cycles must not re-evaluate the cone"
        );
        // Re-poking the same input value is also free.
        sim.poke("en", Bv::from_bool(false));
        assert_eq!(sim.output("count").to_u64(), 0);
        assert_eq!(sim.stats().node_evals, settled);
    }

    #[test]
    fn hierarchical_design_simulates_after_flatten() {
        use crate::flatten::flatten;
        use crate::ir::Design;
        // Two chained incrementers, each with a 1-cycle delay.
        let mut cb = ModuleBuilder::new("inc");
        let a = cb.input("a", 8);
        let one = cb.lit(8, 1);
        let s = cb.add(a, one);
        let r = cb.reg("d", 8, Bv::zero(8));
        cb.connect_reg(r, s);
        let q = cb.reg_q(r);
        cb.output("y", q);
        let child = cb.finish().unwrap();

        let mut tb = ModuleBuilder::new("top");
        let x = tb.input("x", 8);
        let o1 = tb.instantiate("u1", &child, &[x]);
        let o2 = tb.instantiate("u2", &child, &[o1[0]]);
        tb.output("y", o2[0]);
        let top = tb.finish().unwrap();

        let mut d = Design::new();
        d.add_module(child);
        d.add_module(top);
        let flat = flatten(&d, "top").unwrap();
        let mut sim = Simulator::new(flat).unwrap();
        sim.poke("x", Bv::from_u64(8, 10));
        sim.step(); // u1.d <= 11
        sim.step(); // u2.d <= 12
        assert_eq!(sim.output("y").to_u64(), 12);
    }

    #[test]
    fn simulator_rejects_unflattened_module() {
        let mut cb = ModuleBuilder::new("leaf");
        let a = cb.input("a", 8);
        cb.output("y", a);
        let leaf = cb.finish().unwrap();
        let mut tb = ModuleBuilder::new("top");
        let x = tb.input("x", 8);
        let o = tb.instantiate("u", &leaf, &[x]);
        tb.output("y", o[0]);
        let top = tb.finish().unwrap();
        assert!(Simulator::new(top).is_err());
    }
}
