//! Cycle-accurate two-phase simulation of a flat [`Module`].
//!
//! Each cycle has two phases: combinational *evaluation* (nodes computed in
//! topological order from inputs, register outputs, and memory read
//! registers) and the *clock edge* ([`Simulator::step`]), which commits
//! register D inputs, performs memory writes, and samples memory read
//! addresses (read-first semantics: a read port returns the pre-write word).

use std::collections::HashMap;

use dfv_bits::Bv;
use dfv_obs::{ObsHook, SharedRecorder, WatchedTrace};

use crate::check::check_module;
use crate::ir::{BinOp, Module, Node, NodeId, UnOp};
use crate::RtlError;

/// Evaluates a binary operator on concrete values — the single source of
/// truth for operator semantics, shared with the equivalence checker's
/// bit-blaster tests and counterexample replay.
pub fn eval_bin(op: BinOp, a: &Bv, b: &Bv) -> Bv {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::UDiv => a.udiv(b),
        BinOp::URem => a.urem(b),
        BinOp::SDiv => a.sdiv(b),
        BinOp::SRem => a.srem(b),
        BinOp::And => a.and(b),
        BinOp::Or => a.or(b),
        BinOp::Xor => a.xor(b),
        BinOp::Shl => a.shl_bv(b),
        BinOp::LShr => a.lshr_bv(b),
        BinOp::AShr => a.ashr_bv(b),
        BinOp::Eq => Bv::from_bool(a == b),
        BinOp::Ne => Bv::from_bool(a != b),
        BinOp::ULt => Bv::from_bool(a.ult(b)),
        BinOp::ULe => Bv::from_bool(!b.ult(a)),
        BinOp::SLt => Bv::from_bool(a.slt(b)),
        BinOp::SLe => Bv::from_bool(!b.slt(a)),
    }
}

/// Evaluates a unary operator on a concrete value. See [`eval_bin`].
pub fn eval_un(op: UnOp, a: &Bv) -> Bv {
    match op {
        UnOp::Not => a.not(),
        UnOp::Neg => a.wrapping_neg(),
        UnOp::RedAnd => Bv::from_bool(a.reduce_and()),
        UnOp::RedOr => Bv::from_bool(a.reduce_or()),
        UnOp::RedXor => Bv::from_bool(a.reduce_xor()),
    }
}

/// Cumulative work counters for one [`Simulator`].
///
/// Monotonic across the simulator's lifetime (a [`Simulator::reset`]
/// clears state and trace but not these), so deltas between snapshots
/// measure the work of a bounded stretch of simulation. `node_evals`
/// is the deterministic RTL work metric the speed-ratio experiment
/// compares against the SLM kernel's activation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Completed clock cycles ([`Simulator::step`] calls).
    pub steps: u64,
    /// Combinational evaluation passes actually run (dirty evals).
    pub eval_passes: u64,
    /// Total node evaluations across all passes.
    pub node_evals: u64,
    /// Watched-signal value changes observed while recording the trace.
    pub value_changes: u64,
}

/// A recorded per-cycle snapshot of watched signals.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// The cycle number (0 = first cycle after reset).
    pub cycle: u64,
    /// Values in watch order.
    pub values: Vec<Bv>,
}

/// Cycle-accurate simulator for a flat [`Module`].
///
/// # Example
///
/// ```
/// use dfv_bits::Bv;
/// use dfv_rtl::{ModuleBuilder, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ModuleBuilder::new("counter");
/// let r = b.reg("count", 8, Bv::zero(8));
/// let q = b.reg_q(r);
/// let one = b.lit(8, 1);
/// let next = b.add(q, one);
/// b.connect_reg(r, next);
/// b.output("count", q);
/// let mut sim = Simulator::new(b.finish()?)?;
/// for _ in 0..5 {
///     sim.step();
/// }
/// assert_eq!(sim.output("count").to_u64(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    module: Module,
    /// Current combinational values, one per node.
    values: Vec<Bv>,
    /// Current register values.
    reg_vals: Vec<Bv>,
    /// Memory contents.
    mem_words: Vec<Vec<Bv>>,
    /// Registered read data per (mem, read port).
    mem_read_regs: Vec<Vec<Bv>>,
    /// Current input values.
    input_vals: Vec<Bv>,
    cycle: u64,
    dirty: bool,
    watches: Vec<Watch>,
    trace: Vec<TraceStep>,
    stats: SimStats,
    obs: ObsHook,
}

#[derive(Debug, Clone)]
enum Watch {
    Output(usize),
    Reg(usize),
    Node(NodeId),
}

impl Simulator {
    /// Creates a simulator for `module`, validating it first. The module
    /// must be flat (no instances) — flatten a hierarchy with
    /// [`crate::flatten`] first. State starts at the reset values.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] if validation fails or the module has
    /// instances.
    pub fn new(module: Module) -> Result<Self, RtlError> {
        check_module(&module)?;
        if !module.instances.is_empty() {
            return Err(RtlError::NotFlat {
                module: module.name.clone(),
            });
        }
        let values = module.node_widths.iter().map(|&w| Bv::zero(w)).collect();
        let input_vals = module.inputs.iter().map(|p| Bv::zero(p.width)).collect();
        let mut sim = Simulator {
            values,
            reg_vals: Vec::new(),
            mem_words: Vec::new(),
            mem_read_regs: Vec::new(),
            input_vals,
            cycle: 0,
            dirty: true,
            watches: Vec::new(),
            trace: Vec::new(),
            stats: SimStats::default(),
            obs: ObsHook::none(),
            module,
        };
        sim.reset();
        Ok(sim)
    }

    /// The simulated module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The current cycle count (number of completed [`Simulator::step`]s
    /// since the last reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resets all registers to their init values, memories to their initial
    /// contents, inputs to zero, and the cycle counter to 0. The trace is
    /// cleared.
    pub fn reset(&mut self) {
        self.reg_vals = self.module.regs.iter().map(|r| r.init.clone()).collect();
        self.mem_words = self
            .module
            .mems
            .iter()
            .map(|m| {
                let mut words = m.init.clone();
                words.resize(m.depth, Bv::zero(m.data_width));
                words
            })
            .collect();
        self.mem_read_regs = self
            .module
            .mems
            .iter()
            .map(|m| vec![Bv::zero(m.data_width); m.read_ports.len()])
            .collect();
        for (v, p) in self.input_vals.iter_mut().zip(&self.module.inputs) {
            *v = Bv::zero(p.width);
        }
        self.cycle = 0;
        self.dirty = true;
        self.trace.clear();
    }

    /// Sets an input port for the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or the width differs — both are
    /// harness bugs.
    pub fn poke(&mut self, port: &str, value: Bv) {
        let idx = self
            .module
            .input_index(port)
            .unwrap_or_else(|| panic!("no input port named {port:?}"));
        assert_eq!(
            value.width(),
            self.module.inputs[idx].width,
            "poke width mismatch on {port:?}"
        );
        self.input_vals[idx] = value;
        self.dirty = true;
    }

    /// Evaluates combinational logic if inputs changed since the last
    /// evaluation. Called automatically by [`Simulator::step`],
    /// [`Simulator::output`], and [`Simulator::peek`].
    pub fn eval(&mut self) {
        if !self.dirty {
            return;
        }
        for i in 0..self.module.nodes.len() {
            let v = match &self.module.nodes[i] {
                Node::Input(idx) => self.input_vals[*idx].clone(),
                Node::Const(c) => c.clone(),
                Node::RegQ(r) => self.reg_vals[r.index()].clone(),
                Node::MemReadData(m, p) => self.mem_read_regs[m.index()][*p].clone(),
                Node::InstOut(..) => unreachable!("module is flat"),
                Node::Un(op, a) => eval_un(*op, &self.values[a.index()]),
                Node::Bin(op, a, b) => {
                    eval_bin(*op, &self.values[a.index()], &self.values[b.index()])
                }
                Node::Mux { sel, t, f } => {
                    if self.values[sel.index()].bit(0) {
                        self.values[t.index()].clone()
                    } else {
                        self.values[f.index()].clone()
                    }
                }
                Node::Slice { src, hi, lo } => self.values[src.index()].slice(*hi, *lo),
                Node::Concat(a, b) => self.values[a.index()].concat(&self.values[b.index()]),
                Node::Zext(a, w) => self.values[a.index()].zext(*w),
                Node::Sext(a, w) => self.values[a.index()].sext(*w),
            };
            self.values[i] = v;
        }
        self.dirty = false;
        self.stats.eval_passes += 1;
        self.stats.node_evals += self.module.nodes.len() as u64;
        self.obs.add("rtl.eval_passes", 1);
        self.obs
            .add("rtl.node_evals", self.module.nodes.len() as u64);
    }

    /// Reads an output port value (after evaluating if needed).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn output(&mut self, port: &str) -> Bv {
        let idx = self
            .module
            .output_index(port)
            .unwrap_or_else(|| panic!("no output port named {port:?}"));
        self.eval();
        self.values[self.module.output_drivers[idx].index()].clone()
    }

    /// Reads an arbitrary node value (after evaluating if needed).
    pub fn peek(&mut self, node: NodeId) -> Bv {
        self.eval();
        self.values[node.index()].clone()
    }

    /// Reads a register's current value by name.
    ///
    /// # Panics
    ///
    /// Panics if no register has that name.
    pub fn reg_value(&self, name: &str) -> Bv {
        let r = self
            .module
            .reg_index(name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        self.reg_vals[r.index()].clone()
    }

    /// Overwrites a register's current value (for state injection in
    /// equivalence-checking counterexample replay).
    ///
    /// # Panics
    ///
    /// Panics if no register has that name or the width differs.
    pub fn set_reg(&mut self, name: &str, value: Bv) {
        let r = self
            .module
            .reg_index(name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        assert_eq!(value.width(), self.module.regs[r.index()].width);
        self.reg_vals[r.index()] = value;
        self.dirty = true;
    }

    /// Reads a memory word.
    ///
    /// # Panics
    ///
    /// Panics if the memory name or address is out of range.
    pub fn mem_word(&self, mem: &str, addr: usize) -> Bv {
        let mi = self
            .module
            .mems
            .iter()
            .position(|m| m.name == mem)
            .unwrap_or_else(|| panic!("no memory named {mem:?}"));
        self.mem_words[mi][addr].clone()
    }

    /// Advances one clock cycle: evaluates, then commits registers and
    /// memories at the rising edge.
    pub fn step(&mut self) {
        self.eval();
        self.record_trace();
        // Registers: sample D (respecting enables).
        let mut new_regs = Vec::with_capacity(self.reg_vals.len());
        for (i, reg) in self.module.regs.iter().enumerate() {
            let load = reg
                .en
                .map(|en| self.values[en.index()].bit(0))
                .unwrap_or(true);
            if load {
                let next = reg.next.expect("checked: connected");
                new_regs.push(self.values[next.index()].clone());
            } else {
                new_regs.push(self.reg_vals[i].clone());
            }
        }
        // Memories: sample read addresses (read-first), then write.
        for (mi, mem) in self.module.mems.iter().enumerate() {
            for (pi, rp) in mem.read_ports.iter().enumerate() {
                let addr = self.values[rp.addr.index()].to_u64() as usize % mem.depth;
                self.mem_read_regs[mi][pi] = self.mem_words[mi][addr].clone();
            }
            for wp in &mem.write_ports {
                if self.values[wp.en.index()].bit(0) {
                    let addr = self.values[wp.addr.index()].to_u64() as usize % mem.depth;
                    self.mem_words[mi][addr] = self.values[wp.data.index()].clone();
                }
            }
        }
        self.reg_vals = new_regs;
        self.cycle += 1;
        self.dirty = true;
        self.stats.steps += 1;
        self.obs.add("rtl.steps", 1);
    }

    /// Convenience: poke several ports, then step once.
    ///
    /// # Panics
    ///
    /// Panics as [`Simulator::poke`] does.
    pub fn step_with(&mut self, inputs: &[(&str, Bv)]) {
        for (name, v) in inputs {
            self.poke(name, v.clone());
        }
        self.step();
    }

    /// Watches an output port; its value is recorded at every step.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn watch_output(&mut self, port: &str) {
        let idx = self
            .module
            .output_index(port)
            .unwrap_or_else(|| panic!("no output port named {port:?}"));
        self.watches.push(Watch::Output(idx));
    }

    /// Watches a register by name.
    ///
    /// # Panics
    ///
    /// Panics if no register has that name.
    pub fn watch_reg(&mut self, name: &str) {
        let r = self
            .module
            .reg_index(name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        self.watches.push(Watch::Reg(r.index()));
    }

    /// Watches an arbitrary node.
    pub fn watch_node(&mut self, node: NodeId) {
        self.watches.push(Watch::Node(node));
    }

    /// The names of watched signals, in watch order.
    pub fn watch_names(&self) -> Vec<String> {
        self.watches
            .iter()
            .map(|w| match w {
                Watch::Output(i) => self.module.outputs[*i].name.clone(),
                Watch::Reg(i) => self.module.regs[*i].name.clone(),
                Watch::Node(n) => self
                    .module
                    .node_names
                    .get(&n.0)
                    .cloned()
                    .unwrap_or_else(|| format!("n{}", n.0)),
            })
            .collect()
    }

    /// The declared widths of watched signals, in watch order — taken
    /// from the module's port/register/node declarations, never inferred
    /// from recorded values (so they are right even for an empty trace).
    pub fn watch_widths(&self) -> Vec<u32> {
        self.watches
            .iter()
            .map(|w| match w {
                Watch::Output(i) => self.module.outputs[*i].width,
                Watch::Reg(i) => self.module.regs[*i].width,
                Watch::Node(n) => self.module.node_widths[n.index()],
            })
            .collect()
    }

    /// The recorded trace (one entry per completed step).
    pub fn trace(&self) -> &[TraceStep] {
        &self.trace
    }

    /// Lowers the recorded trace into an observability
    /// [`WatchedTrace`] (one time unit per cycle, declared widths),
    /// ready for divergence localization or VCD rendering.
    pub fn watched_trace(&self) -> WatchedTrace {
        let mut t = WatchedTrace::new(self.watch_names(), self.watch_widths());
        for TraceStep { cycle, values } in &self.trace {
            t.push(*cycle, values.clone());
        }
        t
    }

    /// Cumulative work counters (monotonic; not cleared by reset).
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Attaches a recorder; subsequent steps report `rtl.steps`,
    /// `rtl.eval_passes`, `rtl.node_evals`, and `rtl.value_changes`.
    pub fn set_recorder(&mut self, rec: SharedRecorder) {
        self.obs.set(rec);
    }

    fn record_trace(&mut self) {
        if self.watches.is_empty() {
            return;
        }
        let values: Vec<Bv> = self
            .watches
            .iter()
            .map(|w| match w {
                Watch::Output(i) => self.values[self.module.output_drivers[*i].index()].clone(),
                Watch::Reg(i) => self.reg_vals[*i].clone(),
                Watch::Node(n) => self.values[n.index()].clone(),
            })
            .collect();
        let changed = match self.trace.last() {
            Some(prev) => values
                .iter()
                .zip(&prev.values)
                .filter(|(now, before)| now != before)
                .count() as u64,
            None => values.len() as u64,
        };
        self.stats.value_changes += changed;
        self.obs.add("rtl.value_changes", changed);
        self.trace.push(TraceStep {
            cycle: self.cycle,
            values,
        });
    }

    /// Runs the module as a pure function: pokes `inputs`, evaluates, and
    /// returns all outputs by name. Only meaningful for combinational
    /// modules (state is not stepped).
    ///
    /// # Panics
    ///
    /// Panics as [`Simulator::poke`] does.
    pub fn eval_comb(&mut self, inputs: &[(&str, Bv)]) -> HashMap<String, Bv> {
        for (name, v) in inputs {
            self.poke(name, v.clone());
        }
        self.eval();
        self.module
            .outputs
            .iter()
            .zip(&self.module.output_drivers)
            .map(|(p, d)| (p.name.clone(), self.values[d.index()].clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    fn counter_with_enable() -> Module {
        let mut b = ModuleBuilder::new("ctr");
        let en = b.input("en", 1);
        let r = b.reg("count", 8, Bv::zero(8));
        let q = b.reg_q(r);
        let one = b.lit(8, 1);
        let next = b.add(q, one);
        b.connect_reg(r, next);
        b.reg_enable(r, en);
        b.output("count", q);
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts_only_when_enabled() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 2);
        sim.poke("en", Bv::from_bool(false));
        sim.step();
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 2);
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        assert_eq!(sim.output("count").to_u64(), 3);
    }

    #[test]
    fn reset_restores_init() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.poke("en", Bv::from_bool(true));
        for _ in 0..10 {
            sim.step();
        }
        sim.reset();
        assert_eq!(sim.output("count").to_u64(), 0);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn comb_eval_is_pure() {
        let mut b = ModuleBuilder::new("addsub");
        let x = b.input("x", 16);
        let y = b.input("y", 16);
        let s = b.add(x, y);
        let d = b.sub(x, y);
        b.output("sum", s);
        b.output("diff", d);
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();
        let outs = sim.eval_comb(&[("x", Bv::from_u64(16, 100)), ("y", Bv::from_u64(16, 42))]);
        assert_eq!(outs["sum"].to_u64(), 142);
        assert_eq!(outs["diff"].to_u64(), 58);
    }

    #[test]
    fn memory_has_one_cycle_read_latency() {
        // The paper §3.2: "the RTL implements a real memory that has a delay
        // of one clock cycle for memory reads" — the canonical divergence
        // from a C array.
        let mut b = ModuleBuilder::new("memtest");
        let we = b.input("we", 1);
        let waddr = b.input("waddr", 4);
        let wdata = b.input("wdata", 8);
        let raddr = b.input("raddr", 4);
        let mem = b.mem("m", 4, 8, 16);
        b.mem_write(mem, we, waddr, wdata);
        let rdata = b.mem_read(mem, raddr);
        b.output("rdata", rdata);
        let mut sim = Simulator::new(b.finish().unwrap()).unwrap();

        // Write 0x5A to address 3.
        sim.step_with(&[
            ("we", Bv::from_bool(true)),
            ("waddr", Bv::from_u64(4, 3)),
            ("wdata", Bv::from_u64(8, 0x5A)),
            ("raddr", Bv::from_u64(4, 3)),
        ]);
        // Read-first: the read sampled at the same edge saw the OLD word.
        assert_eq!(sim.output("rdata").to_u64(), 0);
        // One more cycle with the read address held: now the new word.
        sim.step_with(&[("we", Bv::from_bool(false)), ("raddr", Bv::from_u64(4, 3))]);
        assert_eq!(sim.output("rdata").to_u64(), 0x5A);
        assert_eq!(sim.mem_word("m", 3).to_u64(), 0x5A);
    }

    #[test]
    fn trace_records_watches() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.watch_output("count");
        sim.watch_reg("count");
        sim.poke("en", Bv::from_bool(true));
        for _ in 0..3 {
            sim.step();
        }
        let t = sim.trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t[2].cycle, 2);
        assert_eq!(t[2].values[0].to_u64(), 2);
        assert_eq!(
            sim.watch_names(),
            vec!["count".to_string(), "count".to_string()]
        );
    }

    #[test]
    fn simulator_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulator>();
    }

    #[test]
    fn stats_count_work_and_widths_come_from_declarations() {
        let mut sim = Simulator::new(counter_with_enable()).unwrap();
        sim.watch_output("count");
        sim.watch_reg("count");
        assert_eq!(sim.watch_widths(), vec![8, 8]);
        let rec = dfv_obs::MemoryRecorder::shared();
        sim.set_recorder(rec.clone());
        sim.poke("en", Bv::from_bool(true));
        sim.step();
        sim.step();
        let s = sim.stats();
        assert_eq!(s.steps, 2);
        assert!(s.eval_passes >= 2);
        let node_count = sim.module().nodes.len() as u64;
        assert_eq!(s.node_evals, s.eval_passes * node_count);
        // First record counts every watch; second counts the two changes.
        assert_eq!(s.value_changes, 4);
        let r = rec.lock().unwrap();
        assert_eq!(r.counter("rtl.steps"), 2);
        assert!(r.counter("rtl.node_evals") > 0);
        // Reset keeps the cumulative counters but clears the trace.
        sim.reset();
        assert_eq!(sim.stats().steps, 2);
        assert!(sim.trace().is_empty());
        let wt = sim.watched_trace();
        assert!(wt.is_empty());
        assert_eq!(wt.widths(), &[8, 8]);
    }

    #[test]
    fn hierarchical_design_simulates_after_flatten() {
        use crate::flatten::flatten;
        use crate::ir::Design;
        // Two chained incrementers, each with a 1-cycle delay.
        let mut cb = ModuleBuilder::new("inc");
        let a = cb.input("a", 8);
        let one = cb.lit(8, 1);
        let s = cb.add(a, one);
        let r = cb.reg("d", 8, Bv::zero(8));
        cb.connect_reg(r, s);
        let q = cb.reg_q(r);
        cb.output("y", q);
        let child = cb.finish().unwrap();

        let mut tb = ModuleBuilder::new("top");
        let x = tb.input("x", 8);
        let o1 = tb.instantiate("u1", &child, &[x]);
        let o2 = tb.instantiate("u2", &child, &[o1[0]]);
        tb.output("y", o2[0]);
        let top = tb.finish().unwrap();

        let mut d = Design::new();
        d.add_module(child);
        d.add_module(top);
        let flat = flatten(&d, "top").unwrap();
        let mut sim = Simulator::new(flat).unwrap();
        sim.poke("x", Bv::from_u64(8, 10));
        sim.step(); // u1.d <= 11
        sim.step(); // u2.d <= 12
        assert_eq!(sim.output("y").to_u64(), 12);
    }

    #[test]
    fn simulator_rejects_unflattened_module() {
        let mut cb = ModuleBuilder::new("leaf");
        let a = cb.input("a", 8);
        cb.output("y", a);
        let leaf = cb.finish().unwrap();
        let mut tb = ModuleBuilder::new("top");
        let x = tb.input("x", 8);
        let o = tb.instantiate("u", &leaf, &[x]);
        tb.output("y", o[0]);
        let top = tb.finish().unwrap();
        assert!(Simulator::new(top).is_err());
    }
}
