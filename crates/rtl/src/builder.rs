//! Ergonomic construction of [`Module`]s.
//!
//! [`ModuleBuilder`] validates every operation at insertion time (width
//! agreement, operand existence) so that a finished module is correct by
//! construction; [`ModuleBuilder::finish`] additionally runs the structural
//! checks of [`crate::check_module`].

use std::collections::HashSet;

use dfv_bits::Bv;

use crate::check::check_module;
use crate::ir::{
    BinOp, Instance, Mem, MemId, Module, Node, NodeId, Port, ReadPort, Reg, RegId, UnOp, WritePort,
};
use crate::RtlError;

/// Builds a [`Module`] node by node.
///
/// All methods that create nodes return the new [`NodeId`]. Methods panic on
/// *programming errors* (width mismatches, dangling ids) — these are bugs in
/// the generator, not data errors — with messages naming the offending
/// operation.
///
/// # Example
///
/// ```
/// use dfv_bits::Bv;
/// use dfv_rtl::ModuleBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ModuleBuilder::new("accum");
/// let din = b.input("din", 8);
/// let acc = b.reg("acc", 16, Bv::zero(16));
/// let q = b.reg_q(acc);
/// let wide = b.zext(din, 16);
/// let sum = b.add(q, wide);
/// b.connect_reg(acc, sum);
/// b.output("total", b.reg_q(acc));
/// let module = b.finish()?;
/// assert_eq!(module.stats().regs, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    m: Module,
    reg_q_nodes: Vec<NodeId>,
    /// Names are unique per kind: a register may share its name with the
    /// output port it drives, as in Verilog.
    names: HashSet<(&'static str, String)>,
}

impl ModuleBuilder {
    /// Starts building a module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            m: Module {
                name: name.into(),
                ..Module::default()
            },
            reg_q_nodes: Vec::new(),
            names: HashSet::new(),
        }
    }

    fn push(&mut self, node: Node, width: u32) -> NodeId {
        assert!(width > 0, "node width must be at least 1");
        let id = NodeId(self.m.nodes.len() as u32);
        self.m.nodes.push(node);
        self.m.node_widths.push(width);
        id
    }

    fn width(&self, id: NodeId) -> u32 {
        assert!(
            id.index() < self.m.nodes.len(),
            "node id {id:?} does not belong to this module"
        );
        self.m.node_widths[id.index()]
    }

    fn claim_name(&mut self, kind: &'static str, name: &str) {
        assert!(
            self.names.insert((kind, name.to_string())),
            "duplicate {kind} name {name:?}"
        );
    }

    /// Declares an input port and returns the node carrying its value.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or `width` is zero.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> NodeId {
        let name = name.into();
        self.claim_name("port", &name);
        let idx = self.m.inputs.len();
        self.m.inputs.push(Port { name, width });
        self.push(Node::Input(idx), width)
    }

    /// Declares an output port driven by `driver`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used.
    pub fn output(&mut self, name: impl Into<String>, driver: NodeId) {
        let name = name.into();
        self.claim_name("port", &name);
        let width = self.width(driver);
        self.m.outputs.push(Port { name, width });
        self.m.output_drivers.push(driver);
    }

    /// Creates a constant node.
    pub fn constant(&mut self, value: Bv) -> NodeId {
        let w = value.width();
        self.push(Node::Const(value), w)
    }

    /// Shorthand for a `u64` constant of the given width.
    pub fn lit(&mut self, width: u32, value: u64) -> NodeId {
        self.constant(Bv::from_u64(width, value))
    }

    /// Declares a register with a reset value. Connect its D input later
    /// with [`ModuleBuilder::connect_reg`].
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or `init.width() != width`.
    pub fn reg(&mut self, name: impl Into<String>, width: u32, init: Bv) -> RegId {
        let name = name.into();
        self.claim_name("register", &name);
        assert_eq!(
            init.width(),
            width,
            "register {name:?} init width {} != {width}",
            init.width()
        );
        let id = RegId(self.m.regs.len() as u32);
        self.m.regs.push(Reg {
            name,
            width,
            init,
            next: None,
            en: None,
        });
        let q = self.push(Node::RegQ(id), width);
        self.reg_q_nodes.push(q);
        id
    }

    /// The node carrying a register's current (Q) value.
    pub fn reg_q(&self, reg: RegId) -> NodeId {
        self.reg_q_nodes[reg.index()]
    }

    /// Connects a register's D input.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or the register is already connected.
    pub fn connect_reg(&mut self, reg: RegId, next: NodeId) {
        let w = self.width(next);
        let r = &mut self.m.regs[reg.index()];
        assert_eq!(
            r.width, w,
            "register {:?} next width {w} != {}",
            r.name, r.width
        );
        assert!(r.next.is_none(), "register {:?} connected twice", r.name);
        r.next = Some(next);
    }

    /// Sets a register's clock enable (1-bit).
    ///
    /// # Panics
    ///
    /// Panics if `en` is not one bit wide.
    pub fn reg_enable(&mut self, reg: RegId, en: NodeId) {
        assert_eq!(self.width(en), 1, "register enable must be one bit");
        self.m.regs[reg.index()].en = Some(en);
    }

    /// Declares a memory. `depth` words of `data_width` bits, addressed by
    /// `addr_width` bits.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used, `depth` is zero or exceeds
    /// `2^addr_width`, or any width is zero.
    pub fn mem(
        &mut self,
        name: impl Into<String>,
        addr_width: u32,
        data_width: u32,
        depth: usize,
    ) -> MemId {
        let name = name.into();
        self.claim_name("memory", &name);
        assert!(
            data_width > 0 && addr_width > 0,
            "memory widths must be nonzero"
        );
        assert!(depth > 0, "memory depth must be nonzero");
        if addr_width < usize::BITS {
            assert!(
                depth <= 1usize << addr_width,
                "memory {name:?} depth {depth} exceeds 2^{addr_width}"
            );
        }
        let id = MemId(self.m.mems.len() as u32);
        self.m.mems.push(Mem {
            name,
            addr_width,
            data_width,
            depth,
            init: Vec::new(),
            write_ports: Vec::new(),
            read_ports: Vec::new(),
        });
        id
    }

    /// Sets a memory's initial contents (missing words are zero).
    ///
    /// # Panics
    ///
    /// Panics if `init` is longer than the depth or a word has the wrong
    /// width.
    pub fn mem_init(&mut self, mem: MemId, init: Vec<Bv>) {
        let m = &mut self.m.mems[mem.index()];
        assert!(init.len() <= m.depth, "memory init longer than depth");
        for w in &init {
            assert_eq!(w.width(), m.data_width, "memory init word width mismatch");
        }
        m.init = init;
    }

    /// Adds a synchronous read port and returns the node carrying the
    /// registered read data (valid one cycle after the address).
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not have the memory's address width.
    pub fn mem_read(&mut self, mem: MemId, addr: NodeId) -> NodeId {
        let (aw, dw) = {
            let m = &self.m.mems[mem.index()];
            (m.addr_width, m.data_width)
        };
        assert_eq!(self.width(addr), aw, "memory read address width mismatch");
        let port_idx = self.m.mems[mem.index()].read_ports.len();
        self.m.mems[mem.index()].read_ports.push(ReadPort { addr });
        self.push(Node::MemReadData(mem, port_idx), dw)
    }

    /// Adds a write port (write-enable gated, sampled at the clock edge).
    ///
    /// # Panics
    ///
    /// Panics on width mismatches (`en` 1 bit, `addr`/`data` matching the
    /// memory).
    pub fn mem_write(&mut self, mem: MemId, en: NodeId, addr: NodeId, data: NodeId) {
        let (aw, dw) = {
            let m = &self.m.mems[mem.index()];
            (m.addr_width, m.data_width)
        };
        assert_eq!(self.width(en), 1, "memory write enable must be one bit");
        assert_eq!(self.width(addr), aw, "memory write address width mismatch");
        assert_eq!(self.width(data), dw, "memory write data width mismatch");
        self.m.mems[mem.index()]
            .write_ports
            .push(WritePort { en, addr, data });
    }

    fn bin(&mut self, op: BinOp, a: NodeId, b: NodeId) -> NodeId {
        let (wa, wb) = (self.width(a), self.width(b));
        let out_width = if op.is_shift() {
            wa
        } else {
            assert_eq!(wa, wb, "{op:?} operand widths differ ({wa} vs {wb})");
            if op.is_comparison() {
                1
            } else {
                wa
            }
        };
        self.push(Node::Bin(op, a, b), out_width)
    }

    /// `a + b` (modular, equal widths).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Add, a, b)
    }

    /// `a - b` (modular, equal widths).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Sub, a, b)
    }

    /// `a * b` (low half, equal widths).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Mul, a, b)
    }

    /// Unsigned `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn udiv(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::UDiv, a, b)
    }

    /// Unsigned `a % b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn urem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::URem, a, b)
    }

    /// Signed `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn sdiv(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::SDiv, a, b)
    }

    /// Signed `a % b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn srem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::SRem, a, b)
    }

    /// Bitwise `a & b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::And, a, b)
    }

    /// Bitwise `a | b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Or, a, b)
    }

    /// Bitwise `a ^ b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Xor, a, b)
    }

    /// `a << b` with a dynamic amount.
    pub fn shl(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Shl, a, b)
    }

    /// Logical `a >> b` with a dynamic amount.
    pub fn lshr(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::LShr, a, b)
    }

    /// Arithmetic `a >>> b` with a dynamic amount.
    pub fn ashr(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::AShr, a, b)
    }

    /// `a == b` (1 bit).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn eq(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Eq, a, b)
    }

    /// `a != b` (1 bit).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn ne(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::Ne, a, b)
    }

    /// Unsigned `a < b` (1 bit).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn ult(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::ULt, a, b)
    }

    /// Unsigned `a <= b` (1 bit).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn ule(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::ULe, a, b)
    }

    /// Signed `a < b` (1 bit).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn slt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::SLt, a, b)
    }

    /// Signed `a <= b` (1 bit).
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn sle(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(BinOp::SLe, a, b)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        let w = self.width(a);
        self.push(Node::Un(UnOp::Not, a), w)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        let w = self.width(a);
        self.push(Node::Un(UnOp::Neg, a), w)
    }

    /// Reduction AND (1 bit).
    pub fn red_and(&mut self, a: NodeId) -> NodeId {
        self.push(Node::Un(UnOp::RedAnd, a), 1)
    }

    /// Reduction OR (1 bit).
    pub fn red_or(&mut self, a: NodeId) -> NodeId {
        self.push(Node::Un(UnOp::RedOr, a), 1)
    }

    /// Reduction XOR (1 bit).
    pub fn red_xor(&mut self, a: NodeId) -> NodeId {
        self.push(Node::Un(UnOp::RedXor, a), 1)
    }

    /// Two-way multiplexer `if sel { t } else { f }`.
    ///
    /// # Panics
    ///
    /// Panics if `sel` is not 1 bit or `t`/`f` widths differ.
    pub fn mux(&mut self, sel: NodeId, t: NodeId, f: NodeId) -> NodeId {
        assert_eq!(self.width(sel), 1, "mux select must be one bit");
        let (wt, wf) = (self.width(t), self.width(f));
        assert_eq!(wt, wf, "mux data widths differ ({wt} vs {wf})");
        self.push(Node::Mux { sel, t, f }, wt)
    }

    /// Inclusive part-select `src[hi:lo]`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` is outside the source width.
    pub fn slice(&mut self, src: NodeId, hi: u32, lo: u32) -> NodeId {
        let w = self.width(src);
        assert!(
            hi >= lo && hi < w,
            "slice [{hi}:{lo}] invalid for width {w}"
        );
        self.push(Node::Slice { src, hi, lo }, hi - lo + 1)
    }

    /// Single-bit select `src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the source width.
    pub fn bit(&mut self, src: NodeId, i: u32) -> NodeId {
        self.slice(src, i, i)
    }

    /// Concatenation `{hi, lo}`.
    pub fn concat(&mut self, hi: NodeId, lo: NodeId) -> NodeId {
        let w = self.width(hi) + self.width(lo);
        self.push(Node::Concat(hi, lo), w)
    }

    /// Zero-extension to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is narrower than the source.
    pub fn zext(&mut self, src: NodeId, width: u32) -> NodeId {
        let w = self.width(src);
        assert!(width >= w, "zext target {width} narrower than source {w}");
        if width == w {
            return src;
        }
        self.push(Node::Zext(src, width), width)
    }

    /// Sign-extension to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is narrower than the source.
    pub fn sext(&mut self, src: NodeId, width: u32) -> NodeId {
        let w = self.width(src);
        assert!(width >= w, "sext target {width} narrower than source {w}");
        if width == w {
            return src;
        }
        self.push(Node::Sext(src, width), width)
    }

    /// Truncation to the low `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or wider than the source.
    pub fn trunc(&mut self, src: NodeId, width: u32) -> NodeId {
        let w = self.width(src);
        assert!(width <= w, "trunc target {width} wider than source {w}");
        if width == w {
            return src;
        }
        self.slice(src, width - 1, 0)
    }

    /// Instantiates another module. `input_conns` drive the instance's
    /// inputs in port order; returns the nodes carrying the instance's
    /// outputs in port order.
    ///
    /// Widths are validated against `module`'s ports immediately.
    ///
    /// # Panics
    ///
    /// Panics if the connection count or a width differs, or the instance
    /// name is taken.
    pub fn instantiate(
        &mut self,
        name: impl Into<String>,
        module: &Module,
        input_conns: &[NodeId],
    ) -> Vec<NodeId> {
        let name = name.into();
        self.claim_name("instance", &name);
        assert_eq!(
            input_conns.len(),
            module.inputs.len(),
            "instance {name:?} of {:?}: expected {} input connections, got {}",
            module.name,
            module.inputs.len(),
            input_conns.len()
        );
        for (c, p) in input_conns.iter().zip(&module.inputs) {
            assert_eq!(
                self.width(*c),
                p.width,
                "instance {name:?}: width mismatch on port {:?}",
                p.name
            );
        }
        let inst_id = crate::ir::InstId(self.m.instances.len() as u32);
        self.m.instances.push(Instance {
            name,
            module: module.name.clone(),
            input_conns: input_conns.to_vec(),
        });
        module
            .outputs
            .iter()
            .enumerate()
            .map(|(i, p)| self.push(Node::InstOut(inst_id, i), p.width))
            .collect()
    }

    /// The width of an already-created node — useful for code generators
    /// that need to adapt operand widths on the fly.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this builder.
    pub fn node_width(&self, id: NodeId) -> u32 {
        self.width(id)
    }

    /// Resizes to `width`, zero-extending or truncating as needed.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn resize_zext(&mut self, src: NodeId, width: u32) -> NodeId {
        if width >= self.width(src) {
            self.zext(src, width)
        } else {
            self.trunc(src, width)
        }
    }

    /// Resizes to `width`, sign-extending or truncating as needed.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn resize_sext(&mut self, src: NodeId, width: u32) -> NodeId {
        if width >= self.width(src) {
            self.sext(src, width)
        } else {
            self.trunc(src, width)
        }
    }

    /// Attaches a debug name to a node (visible in traces and netlists).
    pub fn name_node(&mut self, id: NodeId, name: impl Into<String>) {
        self.m.node_names.insert(id.0, name.into());
    }

    /// Finishes the module, running structural checks.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] if a register is unconnected or any structural
    /// check fails.
    pub fn finish(self) -> Result<Module, RtlError> {
        check_module(&self.m)?;
        Ok(self.m)
    }

    /// Finishes the module **without** structural checks — for tests that
    /// deliberately build broken modules.
    pub fn finish_unchecked(self) -> Module {
        self.m
    }
}
