//! The word-level synchronous IR shared by the whole workspace.
//!
//! A [`Module`] is a directed acyclic graph of combinational [`Node`]s plus
//! sequential elements ([`Reg`]s and [`Mem`]s) and sub-module [`Instance`]s.
//! Acyclicity is structural: every node may only reference nodes with a
//! smaller id, so combinational loops cannot be expressed at all (state
//! elements break cycles — a register's `next` may reference any node).
//!
//! The same IR serves three masters, mirroring the paper's methodology:
//!
//! * the cycle-accurate RTL simulator ([`crate::Simulator`]) executes it,
//! * the SLM elaborator (`dfv-slmir`) *produces* purely combinational
//!   instances of it from conditioned C-like source ("inferring a
//!   hardware-like model statically"),
//! * the sequential equivalence checker (`dfv-sec`) bit-blasts it.

use std::collections::HashMap;
use std::fmt;

use dfv_bits::Bv;

/// Identifies a combinational node within one [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Identifies a register within one [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegId(pub(crate) u32);

/// Identifies a memory within one [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemId(pub(crate) u32);

/// Identifies a sub-module instance within one [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RegId {
    /// The raw index of this register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MemId {
    /// The raw index of this memory.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named, sized port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name, unique among ports of the module.
    pub name: String,
    /// Width in bits.
    pub width: u32,
}

/// Unary operators. Reductions produce a 1-bit result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise NOT.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Reduction AND (1 bit).
    RedAnd,
    /// Reduction OR (1 bit).
    RedOr,
    /// Reduction XOR / parity (1 bit).
    RedXor,
}

/// Binary operators. Arithmetic/logic ops require equal operand widths and
/// produce that width; comparisons produce 1 bit; shifts take an arbitrary
///-width amount and produce the left operand's width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Modular addition.
    Add,
    /// Modular subtraction.
    Sub,
    /// Modular multiplication (low half).
    Mul,
    /// Unsigned division (divide-by-zero yields all-ones).
    UDiv,
    /// Unsigned remainder (by zero yields the dividend).
    URem,
    /// Signed division truncating toward zero.
    SDiv,
    /// Signed remainder (sign of dividend).
    SRem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by a dynamic amount.
    Shl,
    /// Logical shift right by a dynamic amount.
    LShr,
    /// Arithmetic shift right by a dynamic amount.
    AShr,
    /// Equality (1 bit).
    Eq,
    /// Inequality (1 bit).
    Ne,
    /// Unsigned less-than (1 bit).
    ULt,
    /// Unsigned less-or-equal (1 bit).
    ULe,
    /// Signed less-than (1 bit).
    SLt,
    /// Signed less-or-equal (1 bit).
    SLe,
}

impl BinOp {
    /// Whether this operator produces a 1-bit result regardless of operand
    /// width.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::ULt | BinOp::ULe | BinOp::SLt | BinOp::SLe
        )
    }

    /// Whether this operator is a shift (whose right operand width is
    /// unconstrained).
    pub fn is_shift(self) -> bool {
        matches!(self, BinOp::Shl | BinOp::LShr | BinOp::AShr)
    }
}

/// One combinational node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// The value of input port `inputs[idx]`.
    Input(usize),
    /// A constant.
    Const(Bv),
    /// The current (Q) output of a register.
    RegQ(RegId),
    /// The registered read data of memory read port `(mem, port_idx)`.
    MemReadData(MemId, usize),
    /// The value of output `out_idx` of sub-module instance `inst`.
    InstOut(InstId, usize),
    /// A unary operation.
    Un(UnOp, NodeId),
    /// A binary operation.
    Bin(BinOp, NodeId, NodeId),
    /// A two-way multiplexer: `if sel { t } else { f }` (`sel` is 1 bit).
    Mux {
        /// 1-bit select.
        sel: NodeId,
        /// Value when `sel` is 1.
        t: NodeId,
        /// Value when `sel` is 0.
        f: NodeId,
    },
    /// Inclusive part-select `src[hi:lo]`.
    Slice {
        /// Source node.
        src: NodeId,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// Concatenation `{hi, lo}` (first operand becomes the MSBs).
    Concat(NodeId, NodeId),
    /// Zero-extension to the given width.
    Zext(NodeId, u32),
    /// Sign-extension to the given width.
    Sext(NodeId, u32),
}

/// A D-type register, clocked by the module's single implicit clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Reg {
    /// Register name, unique among registers of the module.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Reset / initial value, applied by [`crate::Simulator::reset`].
    pub init: Bv,
    /// The D input; `None` until connected (a check error if left open).
    pub next: Option<NodeId>,
    /// Optional clock-enable (1 bit). When 0 the register holds its value.
    pub en: Option<NodeId>,
}

/// A write port of a memory.
#[derive(Debug, Clone, PartialEq)]
pub struct WritePort {
    /// 1-bit write enable.
    pub en: NodeId,
    /// Address (width = the memory's address width).
    pub addr: NodeId,
    /// Write data (width = the memory's data width).
    pub data: NodeId,
}

/// A synchronous-read port of a memory: the address is sampled at the clock
/// edge and the (pre-write, "read-first") data appears one cycle later via
/// [`Node::MemReadData`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReadPort {
    /// Address (width = the memory's address width).
    pub addr: NodeId,
}

/// A synchronous memory with one-cycle read latency — the canonical
/// SLM-vs-RTL timing divergence of the paper's §3.2 ("the SLM may model a
/// memory simply as a static array in C ... while the RTL implements a real
/// memory that has a delay of one clock cycle").
#[derive(Debug, Clone, PartialEq)]
pub struct Mem {
    /// Memory name, unique among memories of the module.
    pub name: String,
    /// Address width; the depth is `2^addr_width` unless limited.
    pub addr_width: u32,
    /// Data width.
    pub data_width: u32,
    /// Number of words (`<= 2^addr_width`). Out-of-range accesses wrap
    /// modulo the depth.
    pub depth: usize,
    /// Initial contents; missing words initialize to zero.
    pub init: Vec<Bv>,
    /// Write ports.
    pub write_ports: Vec<WritePort>,
    /// Synchronous read ports.
    pub read_ports: Vec<ReadPort>,
}

/// An instantiation of another module within this one.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name, unique among instances of the module.
    pub name: String,
    /// Name of the instantiated module (resolved within a [`Design`]).
    pub module: String,
    /// Driver node for each input port of the instantiated module, in that
    /// module's input order.
    pub input_conns: Vec<NodeId>,
}

/// One synchronous module: ports, a combinational DAG, registers, memories,
/// and instances of other modules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Input ports.
    pub inputs: Vec<Port>,
    /// Output ports (parallel to [`Module::output_drivers`]).
    pub outputs: Vec<Port>,
    /// The node driving each output port.
    pub output_drivers: Vec<NodeId>,
    /// Combinational nodes in topological (definition) order.
    pub nodes: Vec<Node>,
    /// Cached width of each node.
    pub node_widths: Vec<u32>,
    /// Optional debug names for nodes.
    pub node_names: HashMap<u32, String>,
    /// Registers.
    pub regs: Vec<Reg>,
    /// Memories.
    pub mems: Vec<Mem>,
    /// Sub-module instances.
    pub instances: Vec<Instance>,
}

impl Module {
    /// The width of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this module.
    pub fn width_of(&self, id: NodeId) -> u32 {
        self.node_widths[id.index()]
    }

    /// All node ids of this module, in definition (topological) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Looks up an input port index by name.
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|p| p.name == name)
    }

    /// Looks up an output port index by name.
    pub fn output_index(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|p| p.name == name)
    }

    /// Looks up a named combinational node (see
    /// `ModuleBuilder::name_node`) by its debug name.
    pub fn node_named(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .map(|(&raw, _)| NodeId(raw))
    }

    /// Looks up a register by name.
    pub fn reg_index(&self, name: &str) -> Option<RegId> {
        self.regs
            .iter()
            .position(|r| r.name == name)
            .map(|i| RegId(i as u32))
    }

    /// Whether the module is purely combinational (no state, no instances).
    pub fn is_combinational(&self) -> bool {
        self.regs.is_empty() && self.mems.is_empty() && self.instances.is_empty()
    }

    /// Structural size statistics, used as complexity proxies by the
    /// experiment harness.
    pub fn stats(&self) -> ModuleStats {
        let mut op_nodes = 0usize;
        let mut mux_nodes = 0usize;
        for n in &self.nodes {
            match n {
                Node::Un(..) | Node::Bin(..) => op_nodes += 1,
                Node::Mux { .. } => mux_nodes += 1,
                _ => {}
            }
        }
        ModuleStats {
            nodes: self.nodes.len(),
            op_nodes,
            mux_nodes,
            regs: self.regs.len(),
            reg_bits: self.regs.iter().map(|r| r.width as usize).sum(),
            mems: self.mems.len(),
            mem_bits: self
                .mems
                .iter()
                .map(|m| m.depth * m.data_width as usize)
                .sum(),
            instances: self.instances.len(),
        }
    }
}

/// Structural size statistics for a [`Module`]. See [`Module::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModuleStats {
    /// Total combinational nodes.
    pub nodes: usize,
    /// Unary/binary operator nodes.
    pub op_nodes: usize,
    /// Multiplexer nodes.
    pub mux_nodes: usize,
    /// Register count.
    pub regs: usize,
    /// Total register bits.
    pub reg_bits: usize,
    /// Memory count.
    pub mems: usize,
    /// Total memory bits.
    pub mem_bits: usize,
    /// Instance count.
    pub instances: usize,
}

impl fmt::Display for ModuleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes ({} ops, {} muxes), {} regs ({} bits), {} mems ({} bits), {} instances",
            self.nodes,
            self.op_nodes,
            self.mux_nodes,
            self.regs,
            self.reg_bits,
            self.mems,
            self.mem_bits,
            self.instances
        )
    }
}

/// A collection of modules, one of which is the top for elaboration.
#[derive(Debug, Clone, Default)]
pub struct Design {
    /// Modules, in no particular order; names must be unique.
    pub modules: Vec<Module>,
}

impl Design {
    /// Creates an empty design.
    pub fn new() -> Self {
        Design::default()
    }

    /// Adds a module.
    ///
    /// # Panics
    ///
    /// Panics if a module of the same name already exists.
    pub fn add_module(&mut self, module: Module) {
        assert!(
            self.module(&module.name).is_none(),
            "duplicate module name {:?}",
            module.name
        );
        self.modules.push(module);
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}
