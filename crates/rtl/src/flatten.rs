//! Hierarchy elaboration: inline all instances to produce a flat module.
//!
//! The paper's §4.2 recommends partitioning SLM and RTL consistently so that
//! blocks correspond one-to-one. In this workspace, blocks are [`Module`]s
//! composed via [`crate::ir::Instance`]s; verification tools (simulator,
//! equivalence checker) operate on *flattened* modules, while the
//! block-level correspondence is preserved in hierarchical names
//! (`instance.register`).

use std::collections::{HashMap, HashSet};

use crate::ir::{Design, Mem, MemId, Module, Node, NodeId, ReadPort, Reg, RegId, WritePort};
use crate::RtlError;

/// Flattens `top` within `design`, recursively inlining every instance.
///
/// Names of inlined registers, memories, and node debug names are prefixed
/// with the instance path (`inst.name`).
///
/// # Errors
///
/// Returns [`RtlError::UnknownModule`] for unresolved instances and
/// [`RtlError::RecursiveInstance`] for instantiation cycles.
pub fn flatten(design: &Design, top: &str) -> Result<Module, RtlError> {
    let mut cache: HashMap<String, Module> = HashMap::new();
    let mut visiting = HashSet::new();
    flatten_inner(design, top, &mut cache, &mut visiting)
}

fn flatten_inner(
    design: &Design,
    name: &str,
    cache: &mut HashMap<String, Module>,
    visiting: &mut HashSet<String>,
) -> Result<Module, RtlError> {
    if let Some(m) = cache.get(name) {
        return Ok(m.clone());
    }
    if !visiting.insert(name.to_string()) {
        return Err(RtlError::RecursiveInstance {
            module: name.to_string(),
        });
    }
    let m = design.module(name).ok_or_else(|| RtlError::UnknownModule {
        name: name.to_string(),
    })?;
    // Flatten children first.
    let mut flat_children: HashMap<String, Module> = HashMap::new();
    for inst in &m.instances {
        if !flat_children.contains_key(&inst.module) {
            let fc = flatten_inner(design, &inst.module, cache, visiting)?;
            flat_children.insert(inst.module.clone(), fc);
        }
    }
    visiting.remove(name);

    let flat = inline_instances(m, &flat_children);
    cache.insert(name.to_string(), flat.clone());
    Ok(flat)
}

/// Inlines the (already flat) children of `m` into a new flat module.
fn inline_instances(m: &Module, children: &HashMap<String, Module>) -> Module {
    if m.instances.is_empty() {
        return m.clone();
    }
    let mut out = Module {
        name: m.name.clone(),
        inputs: m.inputs.clone(),
        outputs: m.outputs.clone(),
        ..Module::default()
    };
    // parent node id -> new node id
    let mut pmap: Vec<Option<NodeId>> = vec![None; m.nodes.len()];
    // For each instance, the new ids of its output drivers.
    let mut inst_outs: Vec<Option<Vec<NodeId>>> = vec![None; m.instances.len()];

    for (i, node) in m.nodes.iter().enumerate() {
        let new_id = match node {
            Node::InstOut(inst, out_idx) => {
                let ii = inst.0 as usize;
                if inst_outs[ii].is_none() {
                    let instance = &m.instances[ii];
                    let child = &children[&instance.module];
                    let conns: Vec<NodeId> = instance
                        .input_conns
                        .iter()
                        .map(|c| pmap[c.index()].expect("connection precedes instance outputs"))
                        .collect();
                    inst_outs[ii] = Some(inline_child(&mut out, &instance.name, child, &conns));
                }
                inst_outs[ii].as_ref().expect("just inlined")[*out_idx]
            }
            other => push_remapped(&mut out, other, &m.node_widths[i], &|id: NodeId| {
                pmap[id.index()].expect("topological order")
            }),
        };
        pmap[i] = Some(new_id);
        if let Some(n) = m.node_names.get(&(i as u32)) {
            out.node_names.insert(new_id.0, n.clone());
        }
    }
    let remap = |id: NodeId| pmap[id.index()].expect("mapped");
    out.output_drivers = m.output_drivers.iter().map(|d| remap(*d)).collect();
    remap_state(&mut out, m, "", &remap, 0, 0);
    out
}

/// Pushes a copy of `node` (which must not be `InstOut`) into `out` with
/// operand ids remapped.
fn push_remapped(
    out: &mut Module,
    node: &Node,
    width: &u32,
    remap: &dyn Fn(NodeId) -> NodeId,
) -> NodeId {
    let new = match node {
        Node::Input(i) => Node::Input(*i),
        Node::Const(v) => Node::Const(v.clone()),
        Node::RegQ(r) => Node::RegQ(*r),
        Node::MemReadData(mm, p) => Node::MemReadData(*mm, *p),
        Node::InstOut(..) => unreachable!("InstOut handled by caller"),
        Node::Un(op, a) => Node::Un(*op, remap(*a)),
        Node::Bin(op, a, b) => Node::Bin(*op, remap(*a), remap(*b)),
        Node::Mux { sel, t, f } => Node::Mux {
            sel: remap(*sel),
            t: remap(*t),
            f: remap(*f),
        },
        Node::Slice { src, hi, lo } => Node::Slice {
            src: remap(*src),
            hi: *hi,
            lo: *lo,
        },
        Node::Concat(a, b) => Node::Concat(remap(*a), remap(*b)),
        Node::Zext(a, w) => Node::Zext(remap(*a), *w),
        Node::Sext(a, w) => Node::Sext(remap(*a), *w),
    };
    let id = NodeId(out.nodes.len() as u32);
    out.nodes.push(new);
    out.node_widths.push(*width);
    id
}

/// Copies `src`'s registers and memories into `out` with ports remapped and
/// names prefixed; `reg_off`/`mem_off` are the id offsets in `out`.
fn remap_state(
    out: &mut Module,
    src: &Module,
    prefix: &str,
    remap: &dyn Fn(NodeId) -> NodeId,
    _reg_off: usize,
    _mem_off: usize,
) {
    for r in &src.regs {
        out.regs.push(Reg {
            name: format!("{prefix}{}", r.name),
            width: r.width,
            init: r.init.clone(),
            next: r.next.map(remap),
            en: r.en.map(remap),
        });
    }
    for mm in &src.mems {
        out.mems.push(Mem {
            name: format!("{prefix}{}", mm.name),
            addr_width: mm.addr_width,
            data_width: mm.data_width,
            depth: mm.depth,
            init: mm.init.clone(),
            write_ports: mm
                .write_ports
                .iter()
                .map(|wp| WritePort {
                    en: remap(wp.en),
                    addr: remap(wp.addr),
                    data: remap(wp.data),
                })
                .collect(),
            read_ports: mm
                .read_ports
                .iter()
                .map(|rp| ReadPort {
                    addr: remap(rp.addr),
                })
                .collect(),
        });
    }
}

/// Inlines flat `child` into `out`, driving its inputs from `conns`.
/// Returns the new ids of the child's output drivers.
fn inline_child(
    out: &mut Module,
    inst_name: &str,
    child: &Module,
    conns: &[NodeId],
) -> Vec<NodeId> {
    debug_assert!(child.instances.is_empty(), "child must already be flat");
    let reg_off = out.regs.len();
    let mem_off = out.mems.len();
    let mut cmap: Vec<NodeId> = Vec::with_capacity(child.nodes.len());
    for (i, node) in child.nodes.iter().enumerate() {
        let new_id = match node {
            Node::Input(idx) => {
                // Reuse the parent's connection node directly.
                cmap.push(conns[*idx]);
                continue;
            }
            Node::RegQ(r) => {
                let id = NodeId(out.nodes.len() as u32);
                out.nodes
                    .push(Node::RegQ(RegId((reg_off + r.index()) as u32)));
                out.node_widths.push(child.node_widths[i]);
                id
            }
            Node::MemReadData(mm, p) => {
                let id = NodeId(out.nodes.len() as u32);
                out.nodes
                    .push(Node::MemReadData(MemId((mem_off + mm.index()) as u32), *p));
                out.node_widths.push(child.node_widths[i]);
                id
            }
            other => {
                let cm = cmap.clone();
                push_remapped(out, other, &child.node_widths[i], &move |id: NodeId| {
                    cm[id.index()]
                })
            }
        };
        if let Some(n) = child.node_names.get(&(i as u32)) {
            out.node_names.insert(new_id.0, format!("{inst_name}.{n}"));
        }
        cmap.push(new_id);
    }
    let cm = cmap.clone();
    let remap = move |id: NodeId| cm[id.index()];
    remap_state(
        out,
        child,
        &format!("{inst_name}."),
        &remap,
        reg_off,
        mem_off,
    );
    child
        .output_drivers
        .iter()
        .map(|d| cmap[d.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::check::check_module;
    use crate::ir::Design;
    use dfv_bits::Bv;

    /// A child module: one-cycle-delayed increment.
    fn child() -> Module {
        let mut b = ModuleBuilder::new("inc");
        let a = b.input("a", 8);
        let one = b.lit(8, 1);
        let sum = b.add(a, one);
        let r = b.reg("d", 8, Bv::zero(8));
        b.connect_reg(r, sum);
        let q = b.reg_q(r);
        b.output("y", q);
        b.finish().unwrap()
    }

    fn parent(design: &mut Design) -> Module {
        let c = child();
        let mut b = ModuleBuilder::new("top");
        let x = b.input("x", 8);
        let outs1 = b.instantiate("u1", &c, &[x]);
        let outs2 = b.instantiate("u2", &c, &[outs1[0]]);
        b.output("y", outs2[0]);
        design.add_module(c);
        b.finish().unwrap()
    }

    #[test]
    fn flatten_inlines_two_levels() {
        let mut d = Design::new();
        let top = parent(&mut d);
        d.add_module(top);
        let flat = flatten(&d, "top").unwrap();
        assert!(flat.instances.is_empty());
        assert_eq!(flat.regs.len(), 2);
        assert_eq!(flat.regs[0].name, "u1.d");
        assert_eq!(flat.regs[1].name, "u2.d");
        check_module(&flat).unwrap();
    }

    #[test]
    fn flatten_missing_module_errors() {
        let mut d = Design::new();
        let c = child();
        let mut b = ModuleBuilder::new("top");
        let x = b.input("x", 8);
        let o = b.instantiate("u1", &c, &[x]);
        b.output("y", o[0]);
        d.add_module(b.finish().unwrap()); // child never added to design
        assert!(matches!(
            flatten(&d, "top"),
            Err(RtlError::UnknownModule { .. })
        ));
    }

    #[test]
    fn flatten_detects_recursion() {
        // Build a self-instantiating module by hand (the builder cannot,
        // since it needs the child module value).
        let mut d = Design::new();
        let c = child();
        let mut b = ModuleBuilder::new("loopy");
        let x = b.input("x", 8);
        let o = b.instantiate("u", &c, &[x]);
        b.output("y", o[0]);
        let mut m = b.finish().unwrap();
        m.instances[0].module = "loopy".into();
        d.add_module(m);
        assert!(matches!(
            flatten(&d, "loopy"),
            Err(RtlError::RecursiveInstance { .. })
        ));
    }

    #[test]
    fn flat_module_is_identity() {
        let c = child();
        let mut d = Design::new();
        d.add_module(c.clone());
        let flat = flatten(&d, "inc").unwrap();
        assert_eq!(flat, c);
    }
}
