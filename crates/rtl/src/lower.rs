//! Lowering of a [`SimSchedule`] into `dfv-vm` bytecode — the
//! [`crate::EvalMode::Bytecode`] engine behind [`crate::Simulator::new_vm`].
//!
//! Each combinational node becomes (at most) one [`Instr`] with every
//! operand resolved to an absolute limb-arena offset, emitted in
//! `(level, id)` order so each topological level is one contiguous
//! straight-line block. Three families of nodes emit *no* instruction:
//!
//! * `Input` — [`crate::Simulator::poke`] writes the port value straight
//!   into the input nodes' slots and marks the consuming instructions
//!   dirty ([`VmEngine::input_succ`]);
//! * `Const` — written once at reset, never changes;
//! * fused producers — a single-consumer compare feeding a mux select, an
//!   add feeding a slice, or a constant multiply/shift feeding an add is
//!   absorbed into the consumer ([`Instr::CmpMux1`] / [`Instr::AddSlice1`]
//!   / [`Instr::MulCAdd1`] / [`Instr::ShlCAdd1`]). The fused instruction
//!   still writes the producer's slot, so peeks, traces, register D
//!   sampling, and output reads observe exactly the values the scalar
//!   engine produces.
//!
//! Constant operands of single-limb binary ops fold into const-operand
//! instructions (`AddC1`, `EqC1`, constant-amount shifts, ...);
//! commutative ops swap a constant left operand to the right.
//!
//! Dirty-cone semantics carry over at instruction granularity: the
//! successor map ([`VmEngine::succs`]) lists, for each instruction, the
//! instructions reading any slot it writes, all at strictly higher
//! levels — so one pass per level, in level order, visits each dirty
//! instruction exactly once, exactly like the kernel engine's node walk.
//! Programs of at most [`DENSE_MAX`] instructions skip all of that and
//! run *dense*: every pass executes the whole program straight-line, and
//! pokes and commits do no marking at all — for a small module the
//! bookkeeping costs more than the instructions it would skip.
//!
//! The clock edge is compiled too: [`RegPlan`] / [`MemPlan`] resolve
//! every register's enable/D/state offsets and every memory port's
//! address/data offsets at lowering time, so [`crate::Simulator::step`]
//! under this engine commits state through flat offset tables instead of
//! walking the module.

use dfv_vm::{Cmp, Instr, NBinOp, NUnOp, Program};

use crate::ir::{BinOp, Module, Node, NodeId, UnOp};
use crate::schedule::SimSchedule;

/// Programs at or below this many instructions run *dense*: every pass
/// executes the whole program straight-line and no dirty tracking happens
/// at all. For a small module the per-instruction execution cost is a few
/// nanoseconds, so change detection, successor propagation, and bucket
/// maintenance cost more than the instructions they would skip.
const DENSE_MAX: usize = 64;

/// Sentinel offset for "no enable" in a [`RegPlan`].
pub(crate) const NO_EN: u32 = u32::MAX;

/// One register's compiled clock-edge commit: sample the D node slot into
/// the state slot when the (optional) enable bit is set. All offsets are
/// absolute limb-arena offsets resolved at lowering time.
#[derive(Debug, Clone)]
pub(crate) struct RegPlan {
    /// Enable node offset ([`NO_EN`] = always load). Enables are 1 bit.
    pub en_off: u32,
    /// D (next-value) node offset.
    pub d_off: u32,
    /// Register state slot offset.
    pub state_off: u32,
    /// Limbs per value.
    pub limbs: u32,
    /// Register index (names the [`VmEngine::reg_succ`] list to mark).
    pub reg: u32,
}

/// One memory read port's compiled commit: sample the addressed word into
/// the read-register state slot (read-first: before this cycle's writes).
#[derive(Debug, Clone)]
pub(crate) struct MemReadPlan {
    /// Address node offset (addresses are single-limb).
    pub addr_off: u32,
    /// Read-register state slot offset.
    pub state_off: u32,
    /// Port index (names the [`VmEngine::mem_rd_succ`] list to mark).
    pub port: u32,
}

/// One memory write port's compiled commit.
#[derive(Debug, Clone)]
pub(crate) struct MemWritePlan {
    /// Write-enable node offset (1 bit).
    pub en_off: u32,
    /// Address node offset (single-limb).
    pub addr_off: u32,
    /// Write-data node offset.
    pub d_off: u32,
}

/// One memory's compiled commit plan: read ports sample before write
/// ports land (read-first semantics, exactly as the generic commit loop).
#[derive(Debug, Clone)]
pub(crate) struct MemPlan {
    /// Memory index (names the [`VmEngine::mem_rd_succ`] lists).
    pub mem: u32,
    /// Base offset of this memory in the memory arena.
    pub base: usize,
    /// Limbs per word.
    pub stride: usize,
    /// Words (addresses wrap modulo this, as in the generic loop).
    pub depth: usize,
    pub reads: Vec<MemReadPlan>,
    pub writes: Vec<MemWritePlan>,
}

/// The compiled bytecode engine for one module: the validated program
/// plus the dirty-tracking side tables and the clock-edge commit plan.
#[derive(Debug, Clone)]
pub(crate) struct VmEngine {
    prog: Program,
    /// Whether the program is small enough to run dense (whole-program
    /// straight-line passes, no dirty tracking). See [`DENSE_MAX`].
    dense: bool,
    /// Clock-edge commit plan, one entry per register in index order.
    reg_plans: Vec<RegPlan>,
    /// Clock-edge commit plan, one entry per memory in index order.
    mem_plans: Vec<MemPlan>,
    /// Topological level of each instruction (its owning node's level;
    /// for a fused pair, the consumer's).
    instr_level: Vec<u32>,
    /// Per level: the `[lo, hi)` instruction range (levels are contiguous
    /// because emission is level-sorted). `(0, 0)` for instruction-free
    /// levels.
    level_ranges: Vec<(u32, u32)>,
    /// CSR successor map over instruction ids.
    succ_off: Vec<u32>,
    succ: Vec<u32>,
    /// Per input port: instructions to mark dirty when the port changes.
    input_succ: Vec<Vec<u32>>,
    /// Per register: the `RegQ` copy instructions reading it.
    reg_succ: Vec<Vec<u32>>,
    /// Per memory, per read port: the read-data copy instructions.
    mem_rd_succ: Vec<Vec<Vec<u32>>>,
}

/// Not lowered to an instruction (input, constant, or fused-away).
const NO_INSTR: u32 = u32::MAX;

impl VmEngine {
    /// Lowers a checked flat module and its schedule into bytecode.
    ///
    /// # Panics
    ///
    /// Panics if the lowering emits invalid bytecode — an internal bug by
    /// construction, since every offset comes from the schedule's own
    /// arena layout.
    pub(crate) fn build(module: &Module, sched: &SimSchedule) -> Self {
        let n = module.nodes.len();
        let one_limb = |id: &NodeId| sched.node_slot(id.index()).limbs == 1;

        // Fusion plan: absorb a producer P into its sole consumer C.
        // `fused[p]` suppresses P's own instruction; `fuse_src[c]` tells
        // C's emission which producer it carries.
        let mut fused = vec![false; n];
        let mut fuse_src: Vec<Option<u32>> = vec![None; n];
        for (i, node) in module.nodes.iter().enumerate() {
            let (p, want_add) = match node {
                Node::Mux { sel, .. } if one_limb(&NodeId(i as u32)) => (sel.index(), false),
                Node::Slice { src, .. } if one_limb(&NodeId(i as u32)) && one_limb(src) => {
                    (src.index(), true)
                }
                _ => continue,
            };
            if fused[p] {
                continue;
            }
            let Node::Bin(op, x, y) = &module.nodes[p] else {
                continue;
            };
            let shape_ok = if want_add {
                *op == BinOp::Add
            } else {
                cmp_of(*op).is_some()
            };
            if shape_ok && one_limb(x) && one_limb(y) && sole_consumer(sched, p as u32, i as u32) {
                fused[p] = true;
                fuse_src[i] = Some(p as u32);
            }
        }

        // Second fusion pass: a constant multiply or constant left shift
        // feeding one operand of a sole-consumer single-limb add becomes a
        // fused multiply-/shift-accumulate ([`Instr::MulCAdd1`] /
        // [`Instr::ShlCAdd1`]) — the FIR tap and convolution inner-loop
        // idiom `acc += x * coeff` in one dispatch.
        for (i, node) in module.nodes.iter().enumerate() {
            if fused[i] || fuse_src[i].is_some() {
                continue;
            }
            let Node::Bin(BinOp::Add, u, v) = node else {
                continue;
            };
            if u.index() == v.index()
                || !one_limb(&NodeId(i as u32))
                || const1_of(module, u).is_some()
                || const1_of(module, v).is_some()
            {
                continue;
            }
            let ow = sched.node_slot(i).width;
            for cand in [u, v] {
                let p = cand.index();
                if fused[p] || sched.node_slot(p).width != ow {
                    continue;
                }
                let shape_ok = match &module.nodes[p] {
                    Node::Bin(BinOp::Mul, x, y) => {
                        one_limb(x)
                            && one_limb(y)
                            && (const1_of(module, x).is_some() != const1_of(module, y).is_some())
                    }
                    Node::Bin(BinOp::Shl, x, y) => {
                        one_limb(x)
                            && const1_of(module, x).is_none()
                            && const1_of(module, y).is_some_and(|sh| sh < ow as u64)
                    }
                    _ => false,
                };
                if shape_ok && sole_consumer(sched, p as u32, i as u32) {
                    fused[p] = true;
                    fuse_src[i] = Some(p as u32);
                    break;
                }
            }
        }

        // Emission in (level, id) order — levels come out contiguous.
        let mut instrs: Vec<Instr> = Vec::new();
        let mut instr_level: Vec<u32> = Vec::new();
        let mut node_instr = vec![NO_INSTR; n];
        for &nid in sched.order() {
            let i = nid as usize;
            if fused[i] {
                continue;
            }
            if matches!(module.nodes[i], Node::Input(_) | Node::Const(_)) {
                continue;
            }
            let idx = instrs.len() as u32;
            instrs.push(lower_node(module, sched, i, fuse_src[i]));
            instr_level.push(sched.level_raw(nid));
            node_instr[i] = idx;
            if let Some(p) = fuse_src[i] {
                node_instr[p as usize] = idx;
            }
        }
        let num_instrs = instrs.len();

        // Contiguous per-level ranges.
        let mut level_ranges = vec![(0u32, 0u32); sched.num_levels() as usize];
        let mut start = 0usize;
        while start < num_instrs {
            let lvl = instr_level[start] as usize;
            let mut end = start + 1;
            while end < num_instrs && instr_level[end] as usize == lvl {
                end += 1;
            }
            level_ranges[lvl] = (start as u32, end as u32);
            start = end;
        }

        // Successor map: instructions reading any slot instruction `i`
        // writes. Every fanout of an owned node is a computation node and
        // therefore has an instruction; a fused producer's only fanout is
        // its own consumer, which folds into the same instruction.
        let mut succ_sets: Vec<Vec<u32>> = vec![Vec::new(); num_instrs];
        for i in 0..n {
            let own = node_instr[i];
            if own == NO_INSTR {
                continue;
            }
            for f in sched.fanouts(i as u32) {
                let fi = node_instr[f.index()];
                debug_assert_ne!(fi, NO_INSTR, "consumer without an instruction");
                if fi != own {
                    succ_sets[own as usize].push(fi);
                }
            }
        }
        let mut succ_off = Vec::with_capacity(num_instrs + 1);
        let mut succ = Vec::new();
        succ_off.push(0u32);
        for set in &mut succ_sets {
            set.sort_unstable();
            set.dedup();
            succ.extend_from_slice(set);
            succ_off.push(succ.len() as u32);
        }

        let consumer_instrs = |nodes: &[u32]| -> Vec<u32> {
            let mut v: Vec<u32> = nodes
                .iter()
                .flat_map(|&nid| sched.fanouts(nid))
                .map(|f| node_instr[f.index()])
                .collect();
            debug_assert!(v.iter().all(|&i| i != NO_INSTR));
            v.sort_unstable();
            v.dedup();
            v
        };
        let input_succ = (0..module.inputs.len())
            .map(|idx| consumer_instrs(sched.input_nodes(idx)))
            .collect();
        // Register / memory commits dirty the RegQ / read-data copy
        // instructions themselves (they re-read the state slots).
        let owned = |nodes: &[u32]| -> Vec<u32> {
            let mut v: Vec<u32> = nodes.iter().map(|&nid| node_instr[nid as usize]).collect();
            debug_assert!(v.iter().all(|&i| i != NO_INSTR));
            v.sort_unstable();
            v
        };
        let reg_succ = (0..module.regs.len())
            .map(|r| owned(sched.reg_nodes(r)))
            .collect();
        let mem_rd_succ = module
            .mems
            .iter()
            .enumerate()
            .map(|(mi, m)| {
                (0..m.read_ports.len())
                    .map(|pi| owned(sched.mem_read_nodes(mi, pi)))
                    .collect()
            })
            .collect();

        let reg_plans = module
            .regs
            .iter()
            .enumerate()
            .map(|(i, reg)| {
                let next = reg.next.expect("checked: connected");
                let rs = sched.reg_slot(i);
                RegPlan {
                    en_off: reg
                        .en
                        .map(|en| sched.node_slot(en.index()).off)
                        .unwrap_or(NO_EN),
                    d_off: sched.node_slot(next.index()).off,
                    state_off: rs.off,
                    limbs: rs.limbs,
                    reg: i as u32,
                }
            })
            .collect();
        let mem_plans = module
            .mems
            .iter()
            .enumerate()
            .map(|(mi, m)| {
                let (base, stride) = sched.mem_layout(mi);
                MemPlan {
                    mem: mi as u32,
                    base: base as usize,
                    stride: stride as usize,
                    depth: m.depth,
                    reads: m
                        .read_ports
                        .iter()
                        .enumerate()
                        .map(|(pi, rp)| MemReadPlan {
                            addr_off: sched.node_slot(rp.addr.index()).off,
                            state_off: sched.mem_rd_slot(mi, pi).off,
                            port: pi as u32,
                        })
                        .collect(),
                    writes: m
                        .write_ports
                        .iter()
                        .map(|wp| MemWritePlan {
                            en_off: sched.node_slot(wp.en.index()).off,
                            addr_off: sched.node_slot(wp.addr.index()).off,
                            d_off: sched.node_slot(wp.data.index()).off,
                        })
                        .collect(),
                }
            })
            .collect();

        let prog = Program::new(instrs, sched.arena_len())
            .expect("schedule lowering emitted invalid bytecode");
        VmEngine {
            dense: prog.len() <= DENSE_MAX,
            prog,
            reg_plans,
            mem_plans,
            instr_level,
            level_ranges,
            succ_off,
            succ,
            input_succ,
            reg_succ,
            mem_rd_succ,
        }
    }

    pub(crate) fn prog(&self) -> &Program {
        &self.prog
    }

    /// Whether this program runs dense (whole-program passes, no dirty
    /// tracking).
    pub(crate) fn dense(&self) -> bool {
        self.dense
    }

    pub(crate) fn reg_plans(&self) -> &[RegPlan] {
        &self.reg_plans
    }

    pub(crate) fn mem_plans(&self) -> &[MemPlan] {
        &self.mem_plans
    }

    pub(crate) fn instr_level(&self, i: u32) -> u32 {
        self.instr_level[i as usize]
    }

    pub(crate) fn level_range(&self, lvl: usize) -> (u32, u32) {
        self.level_ranges[lvl]
    }

    pub(crate) fn succs(&self, i: u32) -> &[u32] {
        &self.succ[self.succ_off[i as usize] as usize..self.succ_off[i as usize + 1] as usize]
    }

    pub(crate) fn input_succ(&self, idx: usize) -> &[u32] {
        &self.input_succ[idx]
    }

    pub(crate) fn reg_succ(&self, r: usize) -> &[u32] {
        &self.reg_succ[r]
    }

    pub(crate) fn mem_rd_succ(&self, m: usize, p: usize) -> &[u32] {
        &self.mem_rd_succ[m][p]
    }
}

/// Whether node `p`'s only combinational consumers are all node `c`.
fn sole_consumer(sched: &SimSchedule, p: u32, c: u32) -> bool {
    let fo = sched.fanouts(p);
    !fo.is_empty() && fo.iter().all(|f| f.index() as u32 == c)
}

fn cmp_of(op: BinOp) -> Option<Cmp> {
    match op {
        BinOp::Eq => Some(Cmp::Eq),
        BinOp::Ne => Some(Cmp::Ne),
        BinOp::ULt => Some(Cmp::Ult),
        BinOp::ULe => Some(Cmp::Ule),
        BinOp::SLt => Some(Cmp::Slt),
        BinOp::SLe => Some(Cmp::Sle),
        _ => None,
    }
}

fn nbin_of(op: BinOp) -> NBinOp {
    match op {
        BinOp::Add => NBinOp::Add,
        BinOp::Sub => NBinOp::Sub,
        BinOp::Mul => NBinOp::Mul,
        BinOp::UDiv => NBinOp::UDiv,
        BinOp::URem => NBinOp::URem,
        BinOp::SDiv => NBinOp::SDiv,
        BinOp::SRem => NBinOp::SRem,
        BinOp::And => NBinOp::And,
        BinOp::Or => NBinOp::Or,
        BinOp::Xor => NBinOp::Xor,
        BinOp::Shl => NBinOp::Shl,
        BinOp::LShr => NBinOp::LShr,
        BinOp::AShr => NBinOp::AShr,
        BinOp::Eq => NBinOp::Eq,
        BinOp::Ne => NBinOp::Ne,
        BinOp::ULt => NBinOp::Ult,
        BinOp::ULe => NBinOp::Ule,
        BinOp::SLt => NBinOp::Slt,
        BinOp::SLe => NBinOp::Sle,
    }
}

fn nun_of(op: UnOp) -> NUnOp {
    match op {
        UnOp::Not => NUnOp::Not,
        UnOp::Neg => NUnOp::Neg,
        UnOp::RedAnd => NUnOp::RedAnd,
        UnOp::RedOr => NUnOp::RedOr,
        UnOp::RedXor => NUnOp::RedXor,
    }
}

/// The single-limb value of a `Const` node, if `id` is one.
fn const1_of(module: &Module, id: &NodeId) -> Option<u64> {
    match &module.nodes[id.index()] {
        Node::Const(c) if c.width() <= 64 => Some(c.to_u64()),
        _ => None,
    }
}

/// Lowers one non-fused computation node (with `fuse` naming the absorbed
/// producer for a fused mux/slice consumer).
fn lower_node(module: &Module, sched: &SimSchedule, i: usize, fuse: Option<u32>) -> Instr {
    let s = sched.node_slot(i);
    let (dst, ow, ol) = (s.off, s.width, s.limbs);
    let so = |id: &NodeId| sched.node_slot(id.index());
    match &module.nodes[i] {
        Node::Input(_) | Node::Const(_) | Node::InstOut(..) => {
            unreachable!("not lowered to instructions")
        }
        Node::RegQ(r) => copy_instr(dst, sched.reg_slot(r.index()).off, ol),
        Node::MemReadData(m, p) => copy_instr(dst, sched.mem_rd_slot(m.index(), *p).off, ol),
        Node::Un(op, a) => {
            let a = so(a);
            if a.limbs == 1 && ol == 1 {
                match op {
                    UnOp::Not => Instr::Not1 {
                        dst,
                        a: a.off,
                        w: a.width as u8,
                    },
                    UnOp::Neg => Instr::Neg1 {
                        dst,
                        a: a.off,
                        w: a.width as u8,
                    },
                    UnOp::RedAnd => Instr::RedAnd1 {
                        dst,
                        a: a.off,
                        w: a.width as u8,
                    },
                    UnOp::RedOr => Instr::RedOr1 { dst, a: a.off },
                    UnOp::RedXor => Instr::RedXor1 { dst, a: a.off },
                }
            } else {
                Instr::NUn {
                    op: nun_of(*op),
                    dst,
                    a: a.off,
                    aw: a.width as u16,
                    ow: ow as u16,
                }
            }
        }
        Node::Bin(op, a, b) => lower_bin(module, sched, *op, a, b, dst, ow, ol, fuse),
        Node::Mux { sel, t, f } => {
            if let Some(p) = fuse {
                let Node::Bin(op, x, y) = &module.nodes[p as usize] else {
                    unreachable!("fused mux select is a compare");
                };
                let (xs, ys) = (so(x), so(y));
                Instr::CmpMux1 {
                    kind: cmp_of(*op).expect("fusion planned on a compare"),
                    a: xs.off,
                    b: ys.off,
                    aw: xs.width as u8,
                    bw: ys.width as u8,
                    dst_c: so(sel).off,
                    t: so(t).off,
                    f: so(f).off,
                    dst,
                }
            } else if ol == 1 {
                Instr::Mux1 {
                    dst,
                    sel: so(sel).off,
                    t: so(t).off,
                    f: so(f).off,
                }
            } else {
                Instr::NMux {
                    dst,
                    sel: so(sel).off,
                    t: so(t).off,
                    f: so(f).off,
                    l: ol as u16,
                }
            }
        }
        Node::Slice { src, lo, .. } => {
            if let Some(p) = fuse {
                let Node::Bin(BinOp::Add, x, y) = &module.nodes[p as usize] else {
                    unreachable!("fused slice source is an add");
                };
                let (xs, ys) = (so(x), so(y));
                Instr::AddSlice1 {
                    a: xs.off,
                    b: ys.off,
                    aw: xs.width as u8,
                    dst_a: so(src).off,
                    sh: *lo as u8,
                    ow: ow as u8,
                    dst,
                }
            } else {
                let a = so(src);
                if a.limbs == 1 {
                    Instr::Slice1 {
                        dst,
                        a: a.off,
                        sh: *lo as u8,
                        w: ow as u8,
                    }
                } else {
                    Instr::NSlice {
                        dst,
                        a: a.off,
                        aw: a.width as u16,
                        lo: *lo as u16,
                        ow: ow as u16,
                    }
                }
            }
        }
        Node::Concat(a, b) => {
            let (a, b) = (so(a), so(b));
            if ol == 1 {
                Instr::Concat1 {
                    dst,
                    a: a.off,
                    b: b.off,
                    sh: b.width as u8,
                }
            } else {
                Instr::NConcat {
                    dst,
                    a: a.off,
                    aw: a.width as u16,
                    b: b.off,
                    bw: b.width as u16,
                    ow: ow as u16,
                }
            }
        }
        Node::Zext(a, _) => {
            let a = so(a);
            if ol == 1 {
                // A masked narrower value in a single limb IS its
                // zero-extension.
                Instr::Copy1 { dst, a: a.off }
            } else {
                Instr::NZext {
                    dst,
                    a: a.off,
                    aw: a.width as u16,
                    ow: ow as u16,
                }
            }
        }
        Node::Sext(a, _) => {
            let a = so(a);
            if a.limbs == 1 && ol == 1 {
                Instr::Sext1 {
                    dst,
                    a: a.off,
                    aw: a.width as u8,
                    ow: ow as u8,
                }
            } else {
                Instr::NSext {
                    dst,
                    a: a.off,
                    aw: a.width as u16,
                    ow: ow as u16,
                }
            }
        }
    }
}

fn copy_instr(dst: u32, a: u32, limbs: u32) -> Instr {
    if limbs == 1 {
        Instr::Copy1 { dst, a }
    } else {
        Instr::NCopy {
            dst,
            a,
            l: limbs as u16,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn lower_bin(
    module: &Module,
    sched: &SimSchedule,
    op: BinOp,
    a: &NodeId,
    b: &NodeId,
    dst: u32,
    ow: u32,
    ol: u32,
    fuse: Option<u32>,
) -> Instr {
    // A planned accumulate fusion: this add absorbs its const-multiply or
    // const-shift operand. The producer's slot (`dst_p`) is still written
    // so peeks/regs reading the intermediate term stay correct.
    if let Some(p) = fuse {
        let ps = sched.node_slot(p as usize);
        let other = if a.index() == p as usize { b } else { a };
        let b_off = sched.node_slot(other.index()).off;
        return match &module.nodes[p as usize] {
            Node::Bin(BinOp::Mul, x, y) => {
                let (src, imm) = match const1_of(module, x) {
                    Some(c) => (y, c),
                    None => (
                        x,
                        const1_of(module, y).expect("fusion planned on a const multiply"),
                    ),
                };
                Instr::MulCAdd1 {
                    a: sched.node_slot(src.index()).off,
                    imm,
                    dst_p: ps.off,
                    b: b_off,
                    dst,
                    w: ow as u8,
                }
            }
            Node::Bin(BinOp::Shl, x, y) => Instr::ShlCAdd1 {
                a: sched.node_slot(x.index()).off,
                sh: const1_of(module, y).expect("fusion planned on a const shift") as u8,
                dst_p: ps.off,
                b: b_off,
                dst,
                w: ow as u8,
            },
            _ => unreachable!("fused add operand is a const multiply or shift"),
        };
    }
    let (sa, sb) = (sched.node_slot(a.index()), sched.node_slot(b.index()));
    if sa.limbs != 1 || sb.limbs != 1 || ol != 1 {
        return Instr::NBin {
            op: nbin_of(op),
            dst,
            a: sa.off,
            b: sb.off,
            aw: sa.width as u16,
            bw: sb.width as u16,
            ow: ow as u16,
        };
    }
    let (aw, bw) = (sa.width as u8, sb.width as u8);
    let ca = const1_of(module, a);
    let cb = const1_of(module, b);
    // Constant right operand (the common shape after expression building).
    if let Some(imm) = cb {
        if let Some(ins) = const_rhs(op, dst, sa.off, imm, aw) {
            return ins;
        }
    }
    // Constant left operand: swap if commutative, or use the reversed
    // subtract form.
    if let (Some(imm), None) = (ca, cb) {
        match op {
            BinOp::Add
            | BinOp::Mul
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Eq
            | BinOp::Ne => {
                if let Some(ins) = const_rhs(op, dst, sb.off, imm, bw) {
                    return ins;
                }
            }
            BinOp::Sub => {
                return Instr::RSubC1 {
                    dst,
                    a: sb.off,
                    imm,
                    w: aw,
                }
            }
            _ => {}
        }
    }
    match op {
        BinOp::Add => Instr::Add1 {
            dst,
            a: sa.off,
            b: sb.off,
            w: aw,
        },
        BinOp::Sub => Instr::Sub1 {
            dst,
            a: sa.off,
            b: sb.off,
            w: aw,
        },
        BinOp::Mul => Instr::Mul1 {
            dst,
            a: sa.off,
            b: sb.off,
            w: aw,
        },
        BinOp::UDiv => Instr::UDiv1 {
            dst,
            a: sa.off,
            b: sb.off,
            w: aw,
        },
        BinOp::URem => Instr::URem1 {
            dst,
            a: sa.off,
            b: sb.off,
        },
        BinOp::SDiv => Instr::SDiv1 {
            dst,
            a: sa.off,
            b: sb.off,
            aw,
            bw,
        },
        BinOp::SRem => Instr::SRem1 {
            dst,
            a: sa.off,
            b: sb.off,
            aw,
            bw,
        },
        BinOp::And => Instr::And1 {
            dst,
            a: sa.off,
            b: sb.off,
        },
        BinOp::Or => Instr::Or1 {
            dst,
            a: sa.off,
            b: sb.off,
        },
        BinOp::Xor => Instr::Xor1 {
            dst,
            a: sa.off,
            b: sb.off,
        },
        BinOp::Shl => Instr::Shl1 {
            dst,
            a: sa.off,
            b: sb.off,
            w: aw,
        },
        BinOp::LShr => Instr::LShr1 {
            dst,
            a: sa.off,
            b: sb.off,
            w: aw,
        },
        BinOp::AShr => Instr::AShr1 {
            dst,
            a: sa.off,
            b: sb.off,
            w: aw,
        },
        BinOp::Eq => Instr::Eq1 {
            dst,
            a: sa.off,
            b: sb.off,
        },
        BinOp::Ne => Instr::Ne1 {
            dst,
            a: sa.off,
            b: sb.off,
        },
        BinOp::ULt => Instr::Ult1 {
            dst,
            a: sa.off,
            b: sb.off,
        },
        BinOp::ULe => Instr::Ule1 {
            dst,
            a: sa.off,
            b: sb.off,
        },
        BinOp::SLt => Instr::Slt1 {
            dst,
            a: sa.off,
            b: sb.off,
            aw,
            bw,
        },
        BinOp::SLe => Instr::Sle1 {
            dst,
            a: sa.off,
            b: sb.off,
            aw,
            bw,
        },
    }
}

/// The const-right-operand form of `a_off <op> imm`, if one exists.
fn const_rhs(op: BinOp, dst: u32, a: u32, imm: u64, w: u8) -> Option<Instr> {
    Some(match op {
        BinOp::Add => Instr::AddC1 { dst, a, imm, w },
        BinOp::Sub => Instr::SubC1 { dst, a, imm, w },
        BinOp::Mul => Instr::MulC1 { dst, a, imm, w },
        BinOp::And => Instr::AndC1 { dst, a, imm },
        BinOp::Or => Instr::OrC1 { dst, a, imm },
        BinOp::Xor => Instr::XorC1 { dst, a, imm },
        BinOp::Eq => Instr::EqC1 { dst, a, imm },
        BinOp::Ne => Instr::NeC1 { dst, a, imm },
        BinOp::Shl if imm >= w as u64 => Instr::Const1 { dst, imm: 0 },
        BinOp::Shl => Instr::ShlC1 {
            dst,
            a,
            sh: imm as u8,
            w,
        },
        BinOp::LShr if imm >= w as u64 => Instr::Const1 { dst, imm: 0 },
        BinOp::LShr => Instr::LShrC1 {
            dst,
            a,
            sh: imm as u8,
        },
        BinOp::AShr => Instr::AShrC1 {
            dst,
            a,
            sh: imm.min(63) as u8,
            w,
        },
        _ => return None,
    })
}
